"""Tests for repro.parallel (multi-core measurement collection)."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.hpc import MeasurementSession, SimBackend
from repro.parallel import (
    ChunkSpec,
    measure_categories_parallel,
    plan_chunks,
    resolve_context,
)


class TestPlanChunks:
    def test_covers_every_index_once(self):
        chunks = plan_chunks({0: 10, 1: 7, 5: 3}, workers=4)
        seen = {}
        for spec in chunks:
            for index in range(spec.start, spec.stop):
                key = (spec.category, index)
                assert key not in seen
                seen[key] = True
        assert len(seen) == 20

    def test_single_worker_is_one_chunk_per_category(self):
        chunks = plan_chunks({3: 12, 1: 5}, workers=1)
        assert chunks == [ChunkSpec(1, 0, 5), ChunkSpec(3, 0, 12)]

    def test_more_workers_than_samples(self):
        chunks = plan_chunks({0: 2}, workers=8)
        assert chunks == [ChunkSpec(0, 0, 1), ChunkSpec(0, 1, 2)]

    def test_rejects_bad_arguments(self):
        with pytest.raises(MeasurementError):
            plan_chunks({0: 4}, workers=0)
        with pytest.raises(MeasurementError):
            plan_chunks({0: 0}, workers=2)

    def test_names_every_empty_category_up_front(self):
        # The plan must fail atomically: no chunks for the valid
        # categories, and one error naming *all* offenders.
        with pytest.raises(MeasurementError) as excinfo:
            plan_chunks({0: 5, 1: 0, 2: 3, 7: 0, 4: -2}, workers=2)
        assert "1, 4, 7" in str(excinfo.value)


class TestResolveContext:
    def test_returns_a_usable_context(self):
        context = resolve_context()
        assert context.get_start_method() in ("fork", "spawn", "forkserver")

    def test_unknown_method_falls_back_to_spawn(self):
        context = resolve_context("no-such-start-method")
        assert context.get_start_method() == "spawn"


class TestParallelMeasurement:
    def test_bit_identical_across_worker_counts(self, tiny_trained_model,
                                                digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=5)
        samples = {category: digits_dataset.category(category).images[:5]
                   for category in (0, 1, 2)}
        single = measure_categories_parallel(backend, samples, workers=1)
        quad = measure_categories_parallel(backend, samples, workers=4)
        assert single == quad

    def test_matches_sequential_session(self, tiny_trained_model,
                                        digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=9)
        session = MeasurementSession(backend, warmup=1)
        sequential = session.collect(digits_dataset, [0, 1], 5)
        parallel = session.collect(digits_dataset, [0, 1], 5, workers=2)
        for category in sequential.categories:
            for event in sequential.events:
                assert np.array_equal(sequential.values(category, event),
                                      parallel.values(category, event))

    def test_rejects_stream_noise_scheme(self, tiny_trained_model,
                                         digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scheme="stream")
        samples = {0: digits_dataset.category(0).images[:3]}
        with pytest.raises(MeasurementError):
            measure_categories_parallel(backend, samples, workers=2)

    def test_rejects_bad_worker_count(self, tiny_trained_model,
                                      digits_dataset):
        backend = SimBackend(tiny_trained_model)
        samples = {0: digits_dataset.category(0).images[:3]}
        with pytest.raises(MeasurementError):
            measure_categories_parallel(backend, samples, workers=0)

    def test_session_rejects_bad_worker_count(self, tiny_trained_model,
                                              digits_dataset):
        session = MeasurementSession(SimBackend(tiny_trained_model))
        with pytest.raises(MeasurementError):
            session.collect(digits_dataset, [0, 1], 4, workers=0)
