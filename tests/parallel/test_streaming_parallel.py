"""Tests for measure_categories_streaming (accumulator-shipping workers)."""

import numpy as np
import pytest

from repro.core.streaming import StreamingEvaluator
from repro.errors import MeasurementError
from repro.hpc import MeasurementSession, SimBackend
from repro.parallel import measure_categories_streaming
from repro.stats.streaming import StreamingMoments
from repro.uarch.events import HpcEvent


def events_of(state):
    return tuple(HpcEvent.from_name(str(name))
                 for name in np.asarray(state["events"]).tolist())


def evaluator_of(state):
    evaluator = StreamingEvaluator(events=events_of(state))
    evaluator.merge_state(state)
    return evaluator


def assert_states_bitwise_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        assert np.array_equal(np.asarray(a[key]), np.asarray(b[key])), key


class TestStreamingMeasurement:
    def _samples(self, digits_dataset, count=5, categories=(0, 1, 2)):
        return {category: digits_dataset.category(category).images[:count]
                for category in categories}

    def test_state_is_bit_reproducible(self, tiny_trained_model,
                                       digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=5)
        samples = self._samples(digits_dataset)
        first = measure_categories_streaming(backend, samples, workers=2)
        second = measure_categories_streaming(backend, samples, workers=2)
        assert_states_bitwise_equal(first, second)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_start_method_does_not_change_state(self, tiny_trained_model,
                                                digits_dataset,
                                                start_method):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=5)
        samples = self._samples(digits_dataset, count=3, categories=(0, 1))
        baseline = measure_categories_streaming(backend, samples, workers=1)
        state = measure_categories_streaming(backend, samples, workers=2,
                                             start_method=start_method)
        # Chunking (and so shard rounding) is worker-count-dependent, but
        # counts are exact and events identical.
        assert events_of(state) == events_of(baseline)
        for category in (0, 1):
            assert state[f"cat{category}/count"][0] == 3

    def test_matches_sequential_measurement(self, tiny_trained_model,
                                            digits_dataset):
        # The shipped-and-merged state derives the same t matrix as an
        # in-process evaluator fed the raw readings of the same samples.
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=7)
        samples = self._samples(digits_dataset, count=6)
        state = measure_categories_streaming(backend, samples, workers=3)

        session = MeasurementSession(backend, warmup=0)
        sequential = StreamingEvaluator()
        for category, images in samples.items():
            sequential.observe(
                category,
                session.measure_category(images, category=category))

        parallel_report = evaluator_of(state).report()
        sequential_report = sequential.report()
        for got, want in zip(parallel_report.results,
                             sequential_report.results):
            assert got.event == want.event
            denom = max(abs(want.ttest.statistic), 1.0)
            assert abs(got.ttest.statistic
                       - want.ttest.statistic) <= 1e-9 * denom
            assert got.distinguishable == want.distinguishable

    def test_worker_count_equivalence(self, tiny_trained_model,
                                      digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=9)
        samples = self._samples(digits_dataset, count=6)
        reports = []
        for workers in (1, 2, 4):
            state = measure_categories_streaming(backend, samples,
                                                 workers=workers)
            reports.append(evaluator_of(state).report())
        for report in reports[1:]:
            for got, want in zip(report.results, reports[0].results):
                denom = max(abs(want.ttest.statistic), 1.0)
                assert abs(got.ttest.statistic
                           - want.ttest.statistic) <= 1e-9 * denom
                assert got.distinguishable == want.distinguishable

    def test_index_base_shifts_noise_keys(self, tiny_trained_model,
                                          digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=11)
        samples = self._samples(digits_dataset, count=4, categories=(0,))
        base = measure_categories_streaming(backend, samples, workers=2)
        shifted = measure_categories_streaming(backend, samples, workers=2,
                                               index_base=4)
        # Different absolute indices draw different per-sample noise.
        assert not np.array_equal(base["cat0/mean"], shifted["cat0/mean"])

        # And the shifted round matches the sequential path at the same
        # offset bit-exactly (counts are integers, so means of identical
        # readings are identical floats).
        session = MeasurementSession(backend, warmup=0)
        readings = session.measure_category(samples[0], category=0,
                                            index_base=4)
        sequential = StreamingEvaluator()
        sequential.observe(0, readings)
        expected = sequential.state()
        moments = StreamingMoments.from_state(shifted,
                                              columns=len(events_of(shifted)))
        np.testing.assert_allclose(moments.state()["cat0/mean"],
                                   expected["cat0/mean"], rtol=1e-12)
        assert moments.state()["cat0/count"][0] == 4

    def test_rejects_empty_and_bad_workers(self, tiny_trained_model):
        backend = SimBackend(tiny_trained_model)
        with pytest.raises(MeasurementError):
            measure_categories_streaming(backend, {}, workers=2)
        with pytest.raises(MeasurementError):
            measure_categories_streaming(backend, {0: []}, workers=0)
