"""Worker telemetry shipping: merged snapshots must match sequential ones.

The merge-determinism contract: for one seed, every metric covered by
:func:`repro.obs.deterministic_metric_records` is bit-for-bit identical
whether measurement ran in-process or across any number of workers, under
either multiprocessing start method, and under fault injection with
retries — chunk retries must never double-count.
"""

import multiprocessing

import pytest

from repro import obs
from repro.hpc import MeasurementSession, SimBackend
from repro.obs.report import deterministic_metric_records
from repro.parallel import measure_categories_parallel, plan_chunks
from repro.resilience import RetryPolicy
from repro.resilience.faults import FaultKind, FaultPlan, FaultSpec, FlakyBackend

START_METHODS = [
    method for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]


def _samples(dataset, categories=(0, 1, 2), per_category=5):
    return {category: dataset.category(category).images[:per_category]
            for category in categories}


def _deterministic(snapshot):
    """Comparable (name, labels, payload) tuples of the covered records."""
    out = []
    for record in deterministic_metric_records(snapshot.metrics):
        payload = {k: v for k, v in record.items() if k != "labels"}
        out.append((record["name"], tuple(sorted(record["labels"].items())),
                    tuple(sorted(payload.items(), key=lambda kv: kv[0],))))
    return out


def _run_parallel(model, samples, workers, start_method=None, seed=5):
    backend = SimBackend(model, noise_scale=1.0, seed=seed)
    with obs.session(obs.TelemetryConfig(enabled=True,
                                         console=False)) as runtime:
        results = measure_categories_parallel(
            backend, samples, warmup=1, workers=workers,
            start_method=start_method)
        return results, runtime.snapshot()


def _run_sequential(model, dataset, categories=(0, 1, 2), per_category=5,
                    seed=5):
    backend = SimBackend(model, noise_scale=1.0, seed=seed)
    with obs.session(obs.TelemetryConfig(enabled=True,
                                         console=False)) as runtime:
        session = MeasurementSession(backend, warmup=1, cache=None)
        session.collect(dataset, list(categories), per_category)
        return runtime.snapshot()


class TestMergeDeterminism:
    def test_worker_counts_agree_bit_for_bit(self, tiny_trained_model,
                                             digits_dataset):
        samples = _samples(digits_dataset)
        snapshots = [
            _run_parallel(tiny_trained_model, samples, workers)[1]
            for workers in (1, 2, 4)
        ]
        baseline = _deterministic(snapshots[0])
        assert baseline  # the guarantee must cover something
        for snapshot in snapshots[1:]:
            assert _deterministic(snapshot) == baseline

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_start_methods_agree_with_sequential(self, tiny_trained_model,
                                                 digits_dataset,
                                                 start_method):
        samples = _samples(digits_dataset)
        results, snapshot = _run_parallel(tiny_trained_model, samples,
                                          workers=2,
                                          start_method=start_method)
        sequential = _run_sequential(tiny_trained_model, digits_dataset)
        assert _deterministic(snapshot) == _deterministic(sequential)
        # ...and the measured data itself is unchanged.
        single = _run_parallel(tiny_trained_model, samples, workers=1)[0]
        assert results == single

    def test_sequential_records_include_sample_counts(self,
                                                      tiny_trained_model,
                                                      digits_dataset):
        snapshot = _run_sequential(tiny_trained_model, digits_dataset)
        for category in (0, 1, 2):
            assert snapshot.counter_value("measurement.samples",
                                          category=category) == 5.0


class TestWorkerSpans:
    def test_chunk_spans_reparented_under_parallel_measure(
            self, tiny_trained_model, digits_dataset):
        samples = _samples(digits_dataset)
        _, snapshot = _run_parallel(tiny_trained_model, samples, workers=2)
        parents = snapshot.find_spans("parallel.measure")
        assert len(parents) == 1
        chunk_spans = snapshot.find_spans("measure.chunk")
        expected = plan_chunks({c: len(s) for c, s in samples.items()}, 2)
        assert len(chunk_spans) == len(expected)
        assert all(span.parent is parents[0] for span in chunk_spans)
        # Shipped spans carry their worker-side attributes and durations.
        starts = sorted((span.attributes["category"],
                         span.attributes["start"]) for span in chunk_spans)
        assert starts == sorted((spec.category, spec.start)
                                for spec in expected)
        assert all(span.wall_s >= 0.0 and span.finished
                   for span in chunk_spans)

    def test_chunk_counter_matches_chunk_plan(self, tiny_trained_model,
                                              digits_dataset):
        samples = _samples(digits_dataset)
        _, snapshot = _run_parallel(tiny_trained_model, samples, workers=3)
        expected = plan_chunks({c: len(s) for c, s in samples.items()}, 3)
        assert snapshot.counter_value("measure.chunk") == len(expected)

    def test_workers_inherit_trace_id(self, tiny_trained_model,
                                      digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=5)
        samples = _samples(digits_dataset)
        with obs.session(obs.TelemetryConfig(enabled=True,
                                             console=False)) as runtime:
            with obs.span("outer"):
                context = obs.current_context()
                assert context is not None
                assert context.trace_id == runtime.tracer.trace_id
            measure_categories_parallel(backend, samples, warmup=0,
                                        workers=2)
            # Adopted spans live in the parent tracer: one trace end-to-end.
            assert runtime.tracer.find("measure.chunk")


class TestFaultInjection:
    def test_in_worker_retries_do_not_change_merged_counters(
            self, tiny_trained_model, digits_dataset):
        samples = _samples(digits_dataset)
        clean = _run_parallel(tiny_trained_model, samples, workers=2)
        # ~10% of the 15 measured keys fault once; in-worker retries
        # absorb every fault, so results and merged telemetry must match
        # the clean run bit-for-bit.
        plan = FaultPlan([
            FaultSpec(FaultKind.TIMEOUT, category=0, index=1),
            FaultSpec(FaultKind.GARBAGE, category=2, index=3),
        ])
        backend = FlakyBackend(
            SimBackend(tiny_trained_model, noise_scale=1.0, seed=5), plan)
        retry = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)
        with obs.session(obs.TelemetryConfig(enabled=True,
                                             console=False)) as runtime:
            results = measure_categories_parallel(
                backend, samples, warmup=1, workers=2, retry=retry)
            snapshot = runtime.snapshot()
        assert results == clean[0]
        assert _deterministic(snapshot) == _deterministic(clean[1])
        assert snapshot.counter_value("faults.injected") == 2.0

    def test_chunk_retries_do_not_double_count(self, tiny_trained_model,
                                               digits_dataset, tmp_path):
        samples = _samples(digits_dataset)
        clean = _run_parallel(tiny_trained_model, samples, workers=2)
        # The fault outlives the in-worker retry budget, so the first
        # chunk attempt *fails* and the supervisor resubmits the chunk;
        # the marker files make the attempt count global, so the retried
        # chunk succeeds.  The failed attempt's telemetry must be
        # discarded with it: chunk counters and sample counts stay exact.
        retry = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
        plan = FaultPlan(
            [FaultSpec(FaultKind.TIMEOUT, category=1, index=0,
                       times=retry.max_attempts)],
            state_dir=tmp_path / "fault-state")
        backend = FlakyBackend(
            SimBackend(tiny_trained_model, noise_scale=1.0, seed=5), plan)
        with obs.session(obs.TelemetryConfig(enabled=True,
                                             console=False)) as runtime:
            results = measure_categories_parallel(
                backend, samples, warmup=1, workers=2, retry=retry)
            snapshot = runtime.snapshot()
        assert results == clean[0]
        assert _deterministic(snapshot) == _deterministic(clean[1])
        expected = plan_chunks({c: len(s) for c, s in samples.items()}, 2)
        assert snapshot.counter_value("measure.chunk") == len(expected)
        assert snapshot.counter_value("supervisor.chunk_error") == 1.0
        for category in (0, 1, 2):
            assert snapshot.counter_value("measurement.samples",
                                          category=category) == 5.0
