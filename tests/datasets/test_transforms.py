"""Tests for repro.datasets.transforms and shapes helpers."""

import numpy as np
import pytest

from repro.datasets import (
    LabeledDataset,
    batches,
    ellipse_mask,
    horizontal_flip,
    normalize,
    paint,
    random_shift,
    rectangle_mask,
    triangle_mask,
    vertical_gradient,
)
from repro.errors import DatasetError


def toy_dataset(rng, n=12):
    images = rng.random((n, 1, 6, 6))
    labels = np.arange(n) % 3
    return LabeledDataset(images, labels, ("a", "b", "c"))


class TestNormalize:
    def test_zero_mean_unit_std(self, rng):
        ds, mean, std = normalize(toy_dataset(rng))
        assert float(ds.images.mean()) == pytest.approx(0.0, abs=1e-12)
        assert float(ds.images.std()) == pytest.approx(1.0, rel=1e-12)

    def test_reusing_training_statistics(self, rng):
        train = toy_dataset(rng)
        test = toy_dataset(np.random.default_rng(99))
        _, mean, std = normalize(train)
        normalized, m2, s2 = normalize(test, mean=mean, std=std)
        assert (m2, s2) == (mean, std)
        np.testing.assert_allclose(normalized.images,
                                   (test.images - mean) / std)

    def test_rejects_constant_dataset(self):
        ds = LabeledDataset(np.ones((2, 1, 2, 2)), np.zeros(2), ("a",))
        with pytest.raises(DatasetError):
            normalize(ds)


class TestAugmentations:
    def test_random_shift_preserves_shape_and_mass_bound(self, rng):
        ds = toy_dataset(rng)
        shifted = random_shift(ds, max_pixels=2, seed=4)
        assert shifted.images.shape == ds.images.shape
        assert float(shifted.images.sum()) <= float(ds.images.sum()) + 1e-9

    def test_zero_shift_noop(self, rng):
        ds = toy_dataset(rng)
        assert random_shift(ds, max_pixels=0) is ds

    def test_flip_probability_one_mirrors_everything(self, rng):
        ds = toy_dataset(rng)
        flipped = horizontal_flip(ds, probability=1.0, seed=1)
        np.testing.assert_array_equal(flipped.images,
                                      ds.images[:, :, :, ::-1])

    def test_flip_probability_zero_noop(self, rng):
        ds = toy_dataset(rng)
        flipped = horizontal_flip(ds, probability=0.0, seed=1)
        np.testing.assert_array_equal(flipped.images, ds.images)

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(DatasetError):
            horizontal_flip(toy_dataset(rng), probability=1.5)


class TestBatches:
    def test_covers_every_sample_once(self, rng):
        ds = toy_dataset(rng, n=10)
        seen = 0
        for x, y in batches(ds, batch_size=3, seed=0):
            seen += x.shape[0]
            assert x.shape[0] == y.shape[0]
        assert seen == 10

    def test_unshuffled_order(self, rng):
        ds = toy_dataset(rng, n=6)
        first_x, first_y = next(iter(batches(ds, 4, shuffle=False)))
        np.testing.assert_array_equal(first_x, ds.images[:4])

    def test_rejects_bad_batch_size(self, rng):
        with pytest.raises(DatasetError):
            next(iter(batches(toy_dataset(rng), 0)))


class TestShapeMasks:
    def test_ellipse_center_inside(self):
        mask = ellipse_mask(16, 0.5, 0.5, 0.25, 0.25)
        assert mask[8, 8]
        assert not mask[0, 0]
        # Area of a r=0.25 circle in a unit square is ~pi/16 of pixels.
        assert mask.mean() == pytest.approx(np.pi / 16, rel=0.2)

    def test_rectangle_bounds(self):
        mask = rectangle_mask(10, 0.0, 0.0, 0.5, 1.0)
        assert mask[:, :5].all()
        assert not mask[:, 5:].any()

    def test_triangle_contains_centroid(self):
        mask = triangle_mask(32, (0.2, 0.8), (0.8, 0.8), (0.5, 0.2))
        assert mask[int(0.6 * 32), 16]
        assert not mask[1, 1]

    def test_paint_blends(self):
        image = np.zeros((3, 8, 8))
        mask = rectangle_mask(8, 0.0, 0.0, 1.0, 1.0)
        paint(image, mask, (1.0, 0.5, 0.0), alpha=0.5)
        assert image[0, 0, 0] == pytest.approx(0.5)
        assert image[1, 0, 0] == pytest.approx(0.25)

    def test_vertical_gradient_endpoints(self):
        image = vertical_gradient(16, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))
        assert image[0, 0, 0] < 0.1
        assert image[0, -1, 0] > 0.9

    def test_degenerate_rectangle_rejected(self):
        with pytest.raises(DatasetError):
            rectangle_mask(8, 0.5, 0.5, 0.5, 0.6)
