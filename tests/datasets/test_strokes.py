"""Tests for repro.datasets.strokes (rasterization primitives)."""

import math

import numpy as np
import pytest

from repro.datasets.strokes import arc, line, rasterize, transform_strokes
from repro.errors import DatasetError


class TestPrimitives:
    def test_line_two_points(self):
        assert line(0.0, 0.1, 1.0, 0.9) == [(0.0, 0.1), (1.0, 0.9)]

    def test_arc_endpoints(self):
        points = arc(0.5, 0.5, 0.4, 0.4, 0, 90, segments=4)
        assert len(points) == 5
        assert points[0] == pytest.approx((0.9, 0.5))
        assert points[-1] == pytest.approx((0.5, 0.9))

    def test_full_circle_closes(self):
        points = arc(0.5, 0.5, 0.3, 0.3, 0, 360, segments=16)
        assert points[0] == pytest.approx(points[-1])

    def test_arc_rejects_zero_segments(self):
        with pytest.raises(DatasetError):
            arc(0.5, 0.5, 0.1, 0.1, 0, 90, segments=0)


class TestTransform:
    def test_identity(self):
        strokes = [line(0.2, 0.2, 0.8, 0.8)]
        assert transform_strokes(strokes) == strokes

    def test_translation(self):
        out = transform_strokes([[(0.5, 0.5)] * 2], translate=(0.1, -0.2))
        assert out[0][0] == pytest.approx((0.6, 0.3))

    def test_rotation_about_center(self):
        out = transform_strokes([[(1.0, 0.5), (1.0, 0.5)]], rotation_deg=90)
        # (1.0, 0.5) is 0.5 right of center; rotating 90deg clockwise in
        # screen coordinates maps it 0.5 below center.
        assert out[0][0] == pytest.approx((0.5, 1.0))

    def test_scale_about_center(self):
        out = transform_strokes([[(1.0, 0.5), (0.5, 0.5)]], scale=0.5)
        assert out[0][0] == pytest.approx((0.75, 0.5))
        assert out[0][1] == pytest.approx((0.5, 0.5))

    def test_shear(self):
        out = transform_strokes([[(0.5, 1.0), (0.5, 1.0)]], shear=0.2)
        assert out[0][0][0] == pytest.approx(0.5 + 0.2 * 0.5)


class TestRasterize:
    def test_output_shape_and_range(self):
        image = rasterize([line(0.1, 0.5, 0.9, 0.5)], size=28)
        assert image.shape == (28, 28)
        assert image.min() >= 0.0
        assert image.max() <= 1.0
        assert image.max() > 0.5  # the stroke is visible

    def test_stroke_is_where_expected(self):
        image = rasterize([line(0.0, 0.5, 1.0, 0.5)], size=21,
                          thickness=0.04, margin=0.0)
        middle_row = image[10]
        top_row = image[0]
        assert middle_row.mean() > 0.9
        assert top_row.mean() < 0.05

    def test_thicker_stroke_covers_more(self):
        thin = rasterize([line(0.1, 0.5, 0.9, 0.5)], thickness=0.03)
        thick = rasterize([line(0.1, 0.5, 0.9, 0.5)], thickness=0.09)
        assert thick.sum() > thin.sum() * 1.5

    def test_degenerate_segment_is_a_dot(self):
        image = rasterize([[(0.5, 0.5), (0.5, 0.5)]], size=28)
        assert image.max() > 0.5
        assert image.sum() < 80.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(DatasetError):
            rasterize([line(0, 0, 1, 1)], size=2)
        with pytest.raises(DatasetError):
            rasterize([line(0, 0, 1, 1)], thickness=0.0)
        with pytest.raises(DatasetError):
            rasterize([[(0.5, 0.5)]])
