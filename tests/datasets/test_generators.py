"""Tests for the synthetic MNIST and CIFAR dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    CIFAR_CLASS_NAMES,
    DIGIT_CLASS_NAMES,
    SyntheticDigits,
    SyntheticObjects,
)
from repro.errors import DatasetError


class TestSyntheticDigits:
    def test_shapes_and_range(self):
        ds = SyntheticDigits().generate(3, seed=0)
        assert ds.images.shape == (30, 1, 28, 28)
        assert ds.images.min() >= 0.0
        assert ds.images.max() <= 1.0
        assert ds.class_names == DIGIT_CLASS_NAMES

    def test_deterministic(self):
        a = SyntheticDigits().generate(2, seed=7)
        b = SyntheticDigits().generate(2, seed=7)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_seeds_differ(self):
        a = SyntheticDigits().generate(2, seed=1)
        b = SyntheticDigits().generate(2, seed=2)
        assert not np.array_equal(a.images, b.images)

    def test_category_subset(self):
        ds = SyntheticDigits().generate(4, seed=0, categories=[2, 7])
        assert sorted(np.unique(ds.labels).tolist()) == [2, 7]
        assert len(ds) == 8

    def test_within_class_variation(self):
        ds = SyntheticDigits().generate(5, seed=0, categories=[3])
        flat = ds.images.reshape(5, -1)
        distances = np.linalg.norm(flat[0] - flat[1:], axis=1)
        assert np.all(distances > 0.1)

    def test_between_class_structure_exceeds_within(self):
        gen = SyntheticDigits()
        per_class_mean = {}
        for digit in (0, 1, 7):
            sub = gen.generate(8, seed=3, categories=[digit])
            per_class_mean[digit] = sub.images.mean(axis=0).ravel()
        between = np.linalg.norm(per_class_mean[0] - per_class_mean[1])
        assert between > 2.0  # structurally different digits

    def test_rejects_bad_category(self):
        with pytest.raises(DatasetError):
            SyntheticDigits().generate(1, categories=[10])

    def test_rejects_zero_samples(self):
        with pytest.raises(DatasetError):
            SyntheticDigits().generate(0)

    def test_rejects_bad_configuration(self):
        with pytest.raises(DatasetError):
            SyntheticDigits(size=4)
        with pytest.raises(DatasetError):
            SyntheticDigits(noise_std=-1.0)
        with pytest.raises(DatasetError):
            SyntheticDigits(thickness_range=(0.1, 0.05))

    def test_custom_size(self):
        ds = SyntheticDigits(size=20).generate(1, seed=0, categories=[5])
        assert ds.images.shape == (1, 1, 20, 20)


class TestSyntheticObjects:
    def test_shapes_and_range(self):
        ds = SyntheticObjects().generate(2, seed=0)
        assert ds.images.shape == (20, 3, 32, 32)
        assert ds.images.min() >= 0.0
        assert ds.images.max() <= 1.0
        assert ds.class_names == CIFAR_CLASS_NAMES

    def test_deterministic(self):
        a = SyntheticObjects().generate(2, seed=5)
        b = SyntheticObjects().generate(2, seed=5)
        np.testing.assert_array_equal(a.images, b.images)

    def test_images_are_colored(self):
        ds = SyntheticObjects().generate(2, seed=1)
        channel_means = ds.images.mean(axis=(0, 2, 3))
        assert np.ptp(channel_means) > 0.01  # not grayscale

    def test_classes_structurally_distinct(self):
        gen = SyntheticObjects()
        ship = gen.generate(6, seed=2, categories=[8]).images.mean(axis=0)
        frog = gen.generate(6, seed=2, categories=[6]).images.mean(axis=0)
        assert np.linalg.norm((ship - frog).ravel()) > 3.0

    def test_rejects_bad_category(self):
        with pytest.raises(DatasetError):
            SyntheticObjects().generate(1, categories=[-1])

    def test_rejects_bad_configuration(self):
        with pytest.raises(DatasetError):
            SyntheticObjects(size=4)
        with pytest.raises(DatasetError):
            SyntheticObjects(noise_std=-0.5)


class TestTrainability:
    def test_digits_cnn_learns_quickly(self):
        # The generators exist to be classified; a tiny CNN must beat chance
        # decisively after a couple of epochs.
        from repro.core.experiment import build_model
        from repro.nn import Adam, Trainer
        ds = SyntheticDigits().generate(12, seed=10)
        train, test = ds.split(0.75, seed=11)
        model = build_model("mnist", seed=1)
        trainer = Trainer(model, optimizer=Adam(0.002), batch_size=32)
        trainer.fit(train.images, train.labels, epochs=3)
        assert trainer.evaluate(test.images, test.labels) > 0.5
