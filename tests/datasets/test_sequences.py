"""Tests for repro.datasets.synthetic_sequences."""

import numpy as np
import pytest

from repro.datasets import ACTIVITY_CLASS_NAMES, SyntheticSensorTraces
from repro.errors import DatasetError


class TestGeneration:
    def test_shapes_and_names(self):
        ds = SyntheticSensorTraces().generate(4, seed=0)
        assert ds.images.shape == (24, 32, 3)
        assert ds.class_names == ACTIVITY_CLASS_NAMES
        assert ds.sample_shape == (32, 3)

    def test_deterministic(self):
        a = SyntheticSensorTraces().generate(3, seed=5)
        b = SyntheticSensorTraces().generate(3, seed=5)
        np.testing.assert_array_equal(a.images, b.images)

    def test_category_subset(self):
        ds = SyntheticSensorTraces().generate(3, seed=1, categories=[1, 4])
        assert sorted(np.unique(ds.labels).tolist()) == [1, 4]

    def test_custom_timesteps(self):
        ds = SyntheticSensorTraces(timesteps=16).generate(2, seed=0,
                                                          categories=[0])
        assert ds.images.shape == (2, 16, 3)

    def test_rejects_bad_arguments(self):
        with pytest.raises(DatasetError):
            SyntheticSensorTraces(timesteps=4)
        with pytest.raises(DatasetError):
            SyntheticSensorTraces(noise_std=-1.0)
        with pytest.raises(DatasetError):
            SyntheticSensorTraces().generate(0)
        with pytest.raises(DatasetError):
            SyntheticSensorTraces().generate(2, categories=[9])


class TestClassStructure:
    def test_resting_is_calm_running_is_energetic(self):
        gen = SyntheticSensorTraces()
        resting = gen.generate(10, seed=2, categories=[0]).images
        running = gen.generate(10, seed=2, categories=[2]).images
        # Compare temporal dynamics per axis (the per-axis means differ by
        # design: gravity sits on different axes per posture).
        resting_motion = resting.std(axis=1).mean()
        running_motion = running.std(axis=1).mean()
        assert running_motion > 3 * resting_motion

    def test_within_class_variation_exists(self):
        ds = SyntheticSensorTraces().generate(6, seed=3, categories=[1])
        flat = ds.images.reshape(6, -1)
        assert np.linalg.norm(flat[0] - flat[1]) > 0.5

    def test_dataset_api_works_on_sequences(self):
        ds = SyntheticSensorTraces().generate(10, seed=4)
        train, test = ds.split(0.7, seed=5)
        assert train.class_counts() == [7] * 6
        sub = ds.category(3)
        assert np.all(sub.labels == 3)
