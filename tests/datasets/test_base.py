"""Tests for repro.datasets.base."""

import numpy as np
import pytest

from repro.datasets import LabeledDataset, concatenate
from repro.errors import DatasetError


def make_dataset(n_per_class=5, classes=3, rng=None):
    rng = rng or np.random.default_rng(0)
    images = rng.random((n_per_class * classes, 1, 4, 4))
    labels = np.repeat(np.arange(classes), n_per_class)
    return LabeledDataset(images, labels,
                          tuple(f"c{i}" for i in range(classes)), name="toy")


class TestConstruction:
    def test_basic_properties(self):
        ds = make_dataset()
        assert len(ds) == 15
        assert ds.num_classes == 3
        assert ds.sample_shape == (1, 4, 4)
        assert ds.class_counts() == [5, 5, 5]

    def test_rejects_flat_samples(self):
        with pytest.raises(DatasetError):
            LabeledDataset(np.zeros((3, 4)), np.zeros(3), ("a",))
        with pytest.raises(DatasetError):
            LabeledDataset(np.zeros((3, 1, 2, 2, 2)), np.zeros(3), ("a",))

    def test_accepts_sequence_samples(self):
        ds = LabeledDataset(np.zeros((3, 8, 2)), np.zeros(3), ("a",))
        assert ds.sample_shape == (8, 2)

    def test_rejects_length_mismatch(self):
        with pytest.raises(DatasetError):
            LabeledDataset(np.zeros((3, 1, 2, 2)), np.zeros(2), ("a",))

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(DatasetError):
            LabeledDataset(np.zeros((2, 1, 2, 2)), np.array([0, 5]),
                           ("a", "b"))


class TestCategory:
    def test_filters_single_class(self):
        ds = make_dataset()
        sub = ds.category(1)
        assert len(sub) == 5
        assert np.all(sub.labels == 1)

    def test_unknown_category_rejected(self):
        with pytest.raises(DatasetError):
            make_dataset().category(7)

    def test_empty_category_rejected(self):
        ds = LabeledDataset(np.zeros((2, 1, 2, 2)), np.array([0, 0]),
                            ("a", "b"))
        with pytest.raises(DatasetError):
            ds.category(1)


class TestSplit:
    def test_stratified(self):
        train, test = make_dataset(n_per_class=10).split(0.7, seed=1)
        assert train.class_counts() == [7, 7, 7]
        assert test.class_counts() == [3, 3, 3]

    def test_disjoint_and_complete(self):
        ds = make_dataset(n_per_class=10)
        train, test = ds.split(0.5, seed=2)
        assert len(train) + len(test) == len(ds)

    def test_deterministic(self):
        ds = make_dataset(n_per_class=10)
        a = ds.split(0.6, seed=3)[0]
        b = ds.split(0.6, seed=3)[0]
        np.testing.assert_array_equal(a.images, b.images)

    def test_rejects_degenerate_fraction(self):
        with pytest.raises(DatasetError):
            make_dataset().split(1.0)

    def test_rejects_empty_side(self):
        ds = make_dataset(n_per_class=1)
        with pytest.raises(DatasetError):
            ds.split(0.99, seed=0)


class TestMisc:
    def test_take(self):
        ds = make_dataset()
        assert len(ds.take(4)) == 4
        with pytest.raises(DatasetError):
            ds.take(0)
        with pytest.raises(DatasetError):
            ds.take(100)

    def test_shuffled_is_permutation(self):
        ds = make_dataset()
        shuffled = ds.shuffled(seed=9)
        assert sorted(shuffled.labels.tolist()) == sorted(ds.labels.tolist())
        assert not np.array_equal(shuffled.labels, ds.labels)

    def test_iter_samples(self):
        ds = make_dataset(n_per_class=2, classes=2)
        pairs = list(ds.iter_samples())
        assert len(pairs) == 4
        image, label = pairs[0]
        assert image.shape == (1, 4, 4)
        assert isinstance(label, int)

    def test_concatenate(self):
        a = make_dataset(n_per_class=2)
        b = make_dataset(n_per_class=3)
        merged = concatenate([a, b])
        assert len(merged) == len(a) + len(b)

    def test_concatenate_rejects_mismatched_classes(self):
        a = make_dataset()
        b = LabeledDataset(np.zeros((1, 1, 4, 4)), np.zeros(1), ("other",))
        with pytest.raises(DatasetError):
            concatenate([a, b])

    def test_concatenate_rejects_empty_list(self):
        with pytest.raises(DatasetError):
            concatenate([])
