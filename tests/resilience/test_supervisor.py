"""Tests for repro.resilience.supervisor (worker supervision).

Worker processes are genuinely forked and genuinely killed here: the
SIGKILL tests assert the acceptance criterion that a dead worker's chunks
are resubmitted and complete without losing or duplicating a single
``(category, index)``.
"""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.hpc import SimBackend
from repro.parallel import measure_categories_parallel, resolve_context
from repro.resilience import (
    ChunkDiagnostic,
    ChunkSupervisor,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FlakyBackend,
    RetryPolicy,
)


# Module-level chunk tasks: worker tasks must be picklable.
def _double(spec):
    return spec.category * 2


def _explode(spec):
    if spec.category == 1:
        raise ValueError(f"poisoned chunk {spec.category}")
    return spec.category


def _die(spec):
    import os
    import signal
    os.kill(os.getpid(), signal.SIGKILL)


class _Spec:
    """Minimal chunk-shaped object (category/start/stop)."""

    def __init__(self, category, start=0, stop=1):
        self.category = category
        self.start = start
        self.stop = stop


class TestSupervisorBasics:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(MeasurementError):
            ChunkSupervisor(resolve_context(), workers=0)

    def test_rejects_negative_budgets(self):
        with pytest.raises(MeasurementError):
            ChunkSupervisor(resolve_context(), workers=1, max_restarts=-1)

    def test_runs_all_chunks(self):
        supervisor = ChunkSupervisor(resolve_context(), workers=2)
        specs = [_Spec(i) for i in range(5)]
        results = supervisor.run(_double, specs)
        assert results == {(i, 0): i * 2 for i in range(5)}

    def test_poisoned_chunk_exhausts_and_reports_diagnostics(self):
        supervisor = ChunkSupervisor(resolve_context(), workers=2,
                                     max_chunk_retries=1)
        specs = [_Spec(0), _Spec(1)]
        with pytest.raises(MeasurementError) as excinfo:
            supervisor.run(_explode, specs)
        diagnostics = excinfo.value.diagnostics
        assert len(diagnostics) == 1
        diag = diagnostics[0]
        assert isinstance(diag, ChunkDiagnostic)
        assert diag.category == 1
        assert diag.attempts == 2  # first try + one retry
        assert "poisoned chunk 1" in diag.error
        assert "category=1" in diag.format()

    def test_unrecoverable_worker_death_is_bounded(self):
        supervisor = ChunkSupervisor(resolve_context(), workers=1,
                                     max_restarts=1)
        with pytest.raises(MeasurementError) as excinfo:
            supervisor.run(_die, [_Spec(7)])
        assert excinfo.value.diagnostics
        assert "restart budget" in str(excinfo.value)


class TestKilledWorkerRecovery:
    """The acceptance scenario: SIGKILL a worker mid-run, lose nothing."""

    def _samples(self, dataset, categories, n=4):
        return {category: dataset.category(category).images[:n]
                for category in categories}

    def test_sigkilled_workers_chunks_are_resubmitted(
            self, tiny_trained_model, digits_dataset, tmp_path):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=5)
        samples = self._samples(digits_dataset, (0, 1, 2))
        clean = measure_categories_parallel(backend, samples, workers=2)
        # Kill whichever worker measures (1, 2) — once.
        plan = FaultPlan([FaultSpec(FaultKind.WORKER_DEATH, 1, 2, times=1)],
                         state_dir=tmp_path)
        flaky = FlakyBackend(backend, plan)
        survived = measure_categories_parallel(flaky, samples, workers=2)
        assert survived == clean  # nothing lost, duplicated, or renumbered

    def test_death_plus_transient_faults_still_bit_identical(
            self, tiny_trained_model, digits_dataset, tmp_path):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=6)
        samples = self._samples(digits_dataset, (0, 1))
        clean = measure_categories_parallel(backend, samples, workers=2)
        plan = FaultPlan(
            [FaultSpec(FaultKind.WORKER_DEATH, 0, 1, times=1),
             FaultSpec(FaultKind.TIMEOUT, 1, 0, times=1),
             FaultSpec(FaultKind.GARBAGE, 1, 3, times=2)],
            state_dir=tmp_path)
        flaky = FlakyBackend(backend, plan)
        retry = RetryPolicy(max_attempts=3, backoff_base=0.0)
        survived = measure_categories_parallel(flaky, samples, workers=2,
                                               retry=retry)
        assert survived == clean

    def test_sample_counts_exact_after_recovery(
            self, tiny_trained_model, digits_dataset, tmp_path):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=7)
        samples = self._samples(digits_dataset, (0, 1, 2), n=5)
        plan = FaultPlan([FaultSpec(FaultKind.WORKER_DEATH, 2, 0, times=1)],
                         state_dir=tmp_path)
        flaky = FlakyBackend(backend, plan)
        result = measure_categories_parallel(flaky, samples, workers=3)
        for category in (0, 1, 2):
            assert len(result[category]) == 5


class TestExhaustedRetriesInWorkers:
    def test_persistent_fault_surfaces_chunk_diagnostics(
            self, tiny_trained_model, digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=8)
        samples = {0: digits_dataset.category(0).images[:3]}
        plan = FaultPlan([FaultSpec(FaultKind.TIMEOUT, 0, 1, times=-1)])
        flaky = FlakyBackend(backend, plan)
        retry = RetryPolicy(max_attempts=2, backoff_base=0.0)
        with pytest.raises(MeasurementError) as excinfo:
            measure_categories_parallel(flaky, samples, workers=1,
                                        retry=retry, max_chunk_retries=1)
        assert excinfo.value.diagnostics
        assert excinfo.value.diagnostics[0].category == 0


def test_parallel_retry_matches_sequential_clean_run(
        tiny_trained_model, digits_dataset):
    """Transient in-worker faults + retries == clean run, any worker count."""
    backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=9)
    samples = {category: digits_dataset.category(category).images[:4]
               for category in (0, 1)}
    clean = measure_categories_parallel(backend, samples, workers=1)
    plan = FaultPlan([FaultSpec(FaultKind.TIMEOUT, 0, 0, times=1),
                      FaultSpec(FaultKind.EXIT_CODE, 1, 2, times=1),
                      FaultSpec(FaultKind.GARBAGE, 0, 3, times=2)])
    flaky = FlakyBackend(backend, plan)
    retry = RetryPolicy(max_attempts=3, backoff_base=0.0)
    faulty = measure_categories_parallel(flaky, samples, workers=4,
                                         retry=retry)
    assert faulty == clean
