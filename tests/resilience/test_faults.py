"""Tests for repro.resilience.faults (deterministic fault injection)."""

import pytest

from repro.errors import ConfigError, PerfUnavailableError
from repro.hpc import SimBackend
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FlakyBackend,
    RetryPolicy,
)


class TestFaultSpec:
    def test_rejects_zero_times(self):
        with pytest.raises(ConfigError):
            FaultSpec(FaultKind.TIMEOUT, 0, 0, times=0)

    def test_rejects_below_minus_one(self):
        with pytest.raises(ConfigError):
            FaultSpec(FaultKind.TIMEOUT, 0, 0, times=-2)

    def test_forever_is_allowed(self):
        assert FaultSpec(FaultKind.TIMEOUT, 0, 0, times=-1).times == -1


class TestFaultPlan:
    def test_rejects_duplicate_keys(self):
        with pytest.raises(ConfigError):
            FaultPlan([FaultSpec(FaultKind.TIMEOUT, 0, 1),
                       FaultSpec(FaultKind.GARBAGE, 0, 1)])

    def test_worker_death_requires_state_dir(self):
        with pytest.raises(ConfigError, match="state_dir"):
            FaultPlan([FaultSpec(FaultKind.WORKER_DEATH, 0, 0)])

    def test_transient_fault_clears_after_times(self):
        plan = FaultPlan([FaultSpec(FaultKind.TIMEOUT, 1, 2, times=2)])
        assert plan.fault_for((1, 2)) is not None
        assert plan.fault_for((1, 2)) is not None
        assert plan.fault_for((1, 2)) is None

    def test_persistent_fault_never_clears(self):
        plan = FaultPlan([FaultSpec(FaultKind.TIMEOUT, 0, 0, times=-1)])
        for _ in range(5):
            assert plan.fault_for((0, 0)) is not None

    def test_unscheduled_keys_are_clean(self):
        plan = FaultPlan([FaultSpec(FaultKind.TIMEOUT, 0, 0)])
        assert plan.fault_for((0, 1)) is None
        assert plan.fault_for((3, 0)) is None

    def test_file_backed_attempts_survive_new_plan_objects(self, tmp_path):
        # Simulates the worker-death situation: the counting process dies,
        # a fresh plan object (fresh fork) must see prior attempts.
        first = FaultPlan([FaultSpec(FaultKind.TIMEOUT, 0, 0, times=1)],
                          state_dir=tmp_path)
        assert first.fault_for((0, 0)) is not None
        second = FaultPlan([FaultSpec(FaultKind.TIMEOUT, 0, 0, times=1)],
                           state_dir=tmp_path)
        assert second.fault_for((0, 0)) is None


class TestFlakyBackend:
    @pytest.fixture()
    def inner(self, tiny_trained_model):
        return SimBackend(tiny_trained_model, noise_scale=1.0, seed=11)

    def test_clean_keys_pass_through_unchanged(self, inner, digits_dataset):
        sample = digits_dataset.images[0]
        flaky = FlakyBackend(inner, FaultPlan([]))
        direct = inner.measure(sample, noise_key=(0, 0))
        wrapped = flaky.measure(sample, noise_key=(0, 0))
        assert wrapped.prediction == direct.prediction
        assert wrapped.counts == direct.counts

    @pytest.mark.parametrize("kind", [FaultKind.TIMEOUT, FaultKind.EXIT_CODE,
                                      FaultKind.GARBAGE])
    def test_fault_kinds_raise_retryable_error(self, kind, inner,
                                               digits_dataset):
        flaky = FlakyBackend(inner, FaultPlan([FaultSpec(kind, 0, 0)]))
        with pytest.raises(PerfUnavailableError):
            flaky.measure(digits_dataset.images[0], noise_key=(0, 0))

    def test_transient_fault_recovers_to_exact_clean_value(self, inner,
                                                           digits_dataset):
        sample = digits_dataset.images[0]
        clean = inner.measure(sample, noise_key=(2, 5))
        flaky = FlakyBackend(
            inner, FaultPlan([FaultSpec(FaultKind.TIMEOUT, 2, 5, times=1)]))
        with pytest.raises(PerfUnavailableError):
            flaky.measure(sample, noise_key=(2, 5))
        recovered = flaky.measure(sample, noise_key=(2, 5))
        assert recovered.counts == clean.counts

    def test_retry_policy_rides_over_faults(self, inner, digits_dataset):
        sample = digits_dataset.images[0]
        clean = inner.measure(sample, noise_key=(1, 1))
        flaky = FlakyBackend(
            inner, FaultPlan([FaultSpec(FaultKind.GARBAGE, 1, 1, times=2)]))
        policy = RetryPolicy(max_attempts=3, sleep=lambda _: None)
        measured = policy.call(
            lambda: flaky.measure(sample, noise_key=(1, 1)), key=(1, 1))
        assert measured.counts == clean.counts

    def test_delegates_backend_surface(self, inner):
        flaky = FlakyBackend(inner, FaultPlan([]))
        assert flaky.supports_noise_keys is True
        assert flaky.fingerprint() == inner.fingerprint()
        assert flaky.events == inner.events
        assert "flaky" in flaky.describe()

    def test_unkeyed_calls_auto_number(self, inner, digits_dataset):
        sample = digits_dataset.images[0]
        flaky = FlakyBackend(
            inner, FaultPlan([FaultSpec(FaultKind.TIMEOUT, -1, 1)]))
        flaky.measure(sample)  # key (-1, 0): clean
        with pytest.raises(PerfUnavailableError):
            flaky.measure(sample)  # key (-1, 1): faulted

    def test_clean_batch_is_never_faulted(self, inner, digits_dataset):
        flaky = FlakyBackend(
            inner,
            FaultPlan([FaultSpec(FaultKind.TIMEOUT, 0, 0, times=-1)]))
        batch = flaky.measure_clean_batch(digits_dataset.images[:2])
        assert len(batch) == 2
