"""Tests for GracefulShutdown (signal -> cooperative stop flag)."""

import os
import signal

import pytest

from repro.resilience import GracefulShutdown


class TestGracefulShutdown:
    def test_first_signal_sets_flag_without_raising(self):
        with GracefulShutdown() as stop:
            assert not stop.requested
            os.kill(os.getpid(), signal.SIGTERM)
            assert stop.requested
            assert stop.signal_received == signal.SIGTERM
            assert stop() is True

    def test_second_signal_raises_keyboard_interrupt(self):
        with GracefulShutdown() as stop:
            os.kill(os.getpid(), signal.SIGTERM)
            with pytest.raises(KeyboardInterrupt, match="second signal"):
                os.kill(os.getpid(), signal.SIGINT)
            assert stop.requested

    def test_sigint_is_trapped_too(self):
        with GracefulShutdown() as stop:
            os.kill(os.getpid(), signal.SIGINT)  # would normally raise
            assert stop.signal_received == signal.SIGINT

    def test_handlers_restored_on_exit(self):
        before_term = signal.getsignal(signal.SIGTERM)
        before_int = signal.getsignal(signal.SIGINT)
        with GracefulShutdown():
            assert signal.getsignal(signal.SIGTERM) != before_term
        assert signal.getsignal(signal.SIGTERM) is before_term
        assert signal.getsignal(signal.SIGINT) is before_int

    def test_handlers_restored_when_body_raises(self):
        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(RuntimeError):
            with GracefulShutdown():
                raise RuntimeError("body failed")
        assert signal.getsignal(signal.SIGTERM) is before

    def test_custom_signal_set(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulShutdown(signals=(signal.SIGTERM,)) as stop:
            assert signal.getsignal(signal.SIGINT) is before
            os.kill(os.getpid(), signal.SIGTERM)
            assert stop.requested

    def test_usable_as_should_stop_probe(self):
        stop = GracefulShutdown()
        calls = []
        # Not installed: behaves as a plain always-False probe.
        for _ in range(3):
            calls.append(stop())
        assert calls == [False, False, False]
