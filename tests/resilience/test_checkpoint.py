"""Tests for MeasurementSession incremental checkpointing + lifecycle."""

import numpy as np
import pytest

from repro.errors import PerfUnavailableError
from repro.hpc import MeasurementCache, MeasurementSession, SimBackend
from repro.resilience import FaultKind, FaultPlan, FaultSpec, FlakyBackend


class _CountingBackend:
    """Keyed delegating backend that counts measure() calls."""

    supports_noise_keys = True

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def measure(self, sample, noise_key=None):
        self.calls += 1
        return self.inner.measure(sample, noise_key=noise_key)

    def fingerprint(self):
        return self.inner.fingerprint()

    @property
    def events(self):
        return self.inner.events


@pytest.fixture()
def backend(tiny_trained_model):
    return SimBackend(tiny_trained_model, noise_scale=1.0, seed=13)


class TestCheckpointResume:
    def test_interrupted_collect_resumes_from_checkpoints(
            self, backend, digits_dataset, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        clean = MeasurementSession(backend, warmup=0).collect(
            digits_dataset, [0, 1, 2], 4)
        # First run dies on category 1's first measurement, after
        # category 0 completed and was checkpointed.
        dying = FlakyBackend(backend, FaultPlan(
            [FaultSpec(FaultKind.TIMEOUT, 1, 0, times=-1)]))
        session = MeasurementSession(dying, warmup=0, cache=cache)
        with pytest.raises(PerfUnavailableError):
            session.collect(digits_dataset, [0, 1, 2], 4)
        # Second run: category 0 must come from its checkpoint, the rest
        # is measured fresh; the merged result equals a clean pass.
        counting = _CountingBackend(backend)
        resumed = MeasurementSession(counting, warmup=0, cache=cache).collect(
            digits_dataset, [0, 1, 2], 4)
        assert counting.calls == 8  # categories 1 and 2 only
        for category in (0, 1, 2):
            for event in clean.events:
                np.testing.assert_array_equal(
                    resumed.values(category, event),
                    clean.values(category, event))

    def test_checkpoints_removed_after_successful_collect(
            self, backend, digits_dataset, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        session = MeasurementSession(backend, warmup=0, cache=cache)
        session.collect(digits_dataset, [0, 1], 3)
        entries = list((tmp_path / "cache").glob("measure-*.npz"))
        assert len(entries) == 1  # the final entry only, no partials

    def test_checkpointing_disabled_leaves_no_partials(
            self, backend, digits_dataset, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        dying = FlakyBackend(backend, FaultPlan(
            [FaultSpec(FaultKind.TIMEOUT, 1, 0, times=-1)]))
        session = MeasurementSession(dying, warmup=0, cache=cache,
                                     checkpoint=False)
        with pytest.raises(PerfUnavailableError):
            session.collect(digits_dataset, [0, 1], 3)
        assert list((tmp_path / "cache").glob("measure-*.npz")) == []

    def test_full_cache_hit_still_short_circuits(self, backend,
                                                 digits_dataset, tmp_path):
        cache = MeasurementCache(tmp_path / "cache")
        first = MeasurementSession(backend, warmup=0, cache=cache).collect(
            digits_dataset, [0, 1], 3)
        counting = _CountingBackend(backend)
        second = MeasurementSession(counting, warmup=0, cache=cache).collect(
            digits_dataset, [0, 1], 3)
        assert counting.calls == 0
        for event in first.events:
            np.testing.assert_array_equal(second.values(0, event),
                                          first.values(0, event))

    def test_resume_survives_process_boundaries_via_disk(
            self, backend, digits_dataset, tmp_path):
        # Checkpoints must live in the cache directory, not in session
        # state: a brand-new session (fresh process, after a crash) with
        # the same cache resumes.
        cache_dir = tmp_path / "cache"
        dying = FlakyBackend(backend, FaultPlan(
            [FaultSpec(FaultKind.EXIT_CODE, 1, 2, times=-1)]))
        with pytest.raises(PerfUnavailableError):
            MeasurementSession(dying, warmup=0,
                               cache=MeasurementCache(cache_dir)).collect(
                digits_dataset, [0, 1], 4)
        partials = list(cache_dir.glob("measure-*.npz"))
        assert len(partials) == 1  # category 0's checkpoint hit the disk
        resumed = MeasurementSession(
            backend, warmup=0, cache=MeasurementCache(cache_dir)).collect(
            digits_dataset, [0, 1], 4)
        assert resumed.sample_count(0) == 4
        assert resumed.sample_count(1) == 4


class TestCacheRemove:
    def test_remove_drops_entry(self, tmp_path):
        from repro.hpc import EventDistributions
        from repro.uarch import HpcEvent
        cache = MeasurementCache(tmp_path)
        cache.put("key", EventDistributions(
            {0: {HpcEvent.CYCLES: np.array([1.0, 2.0])}}))
        cache.remove("key")
        assert cache.get("key") is None

    def test_remove_missing_is_fine(self, tmp_path):
        MeasurementCache(tmp_path).remove("never-written")


class TestSessionLifecycle:
    def test_context_manager_calls_backend_cleanup(self, tiny_trained_model):
        class _Closable:
            supports_noise_keys = False
            cleaned = False

            def measure(self, sample):
                raise NotImplementedError

            def fingerprint(self):
                return "closable"

            def cleanup(self):
                self.cleaned = True

        backend = _Closable()
        with MeasurementSession(backend, warmup=0) as session:
            assert session.backend is backend
        assert backend.cleaned is True

    def test_close_without_cleanup_hook_is_fine(self, backend):
        MeasurementSession(backend, warmup=0).close()
