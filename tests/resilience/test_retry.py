"""Tests for repro.resilience.retry (bounded deterministic retry)."""

import pytest

from repro import obs
from repro.errors import (
    BackendError,
    ConfigError,
    MeasurementError,
    PerfUnavailableError,
)
from repro.resilience import NO_RETRY, RetryPolicy


def no_sleep_policy(**overrides):
    sleeps = []
    defaults = dict(max_attempts=3, sleep=sleeps.append)
    defaults.update(overrides)
    return RetryPolicy(**defaults), sleeps


class _Flaky:
    """Callable failing a scripted number of times before succeeding."""

    def __init__(self, failures, exc=PerfUnavailableError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"transient failure #{self.calls}")
        return "ok"


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_backoff(self):
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base=-1.0)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)


class TestCall:
    def test_returns_on_first_success(self):
        policy, sleeps = no_sleep_policy()
        flaky = _Flaky(failures=0)
        assert policy.call(flaky) == "ok"
        assert flaky.calls == 1
        assert sleeps == []

    def test_retries_transient_failures(self):
        policy, sleeps = no_sleep_policy()
        flaky = _Flaky(failures=2)
        assert policy.call(flaky, key=(1, 4)) == "ok"
        assert flaky.calls == 3
        assert len(sleeps) == 2

    def test_exhaustion_reraises_original_error(self):
        policy, _ = no_sleep_policy()
        flaky = _Flaky(failures=99)
        with pytest.raises(PerfUnavailableError, match="transient"):
            policy.call(flaky)
        assert flaky.calls == 3

    def test_non_retryable_errors_propagate_immediately(self):
        policy, _ = no_sleep_policy()
        flaky = _Flaky(failures=99, exc=ValueError)
        with pytest.raises(ValueError):
            policy.call(flaky)
        assert flaky.calls == 1

    def test_measurement_error_is_not_retryable_by_default(self):
        # MeasurementError signals bad *requests*, not flaky acquisition.
        policy, _ = no_sleep_policy()
        flaky = _Flaky(failures=99, exc=MeasurementError)
        with pytest.raises(MeasurementError):
            policy.call(flaky)
        assert flaky.calls == 1

    def test_backend_error_base_is_retryable(self):
        policy, _ = no_sleep_policy()
        flaky = _Flaky(failures=1, exc=BackendError)
        assert policy.call(flaky) == "ok"

    def test_no_retry_sentinel_is_single_attempt(self):
        flaky = _Flaky(failures=1)
        with pytest.raises(PerfUnavailableError):
            NO_RETRY.call(flaky)
        assert flaky.calls == 1


class TestBackoffSchedule:
    def test_delay_is_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(max_attempts=5, seed=7)
        twin = RetryPolicy(max_attempts=5, seed=7)
        for attempt in (1, 2, 3):
            assert policy.delay((2, 9), attempt) == twin.delay((2, 9), attempt)

    def test_delay_varies_with_key_attempt_and_seed(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.delay((0, 0), 1) != policy.delay((0, 1), 1)
        assert policy.delay((0, 0), 1) != policy.delay((0, 0), 2)
        assert (policy.delay((0, 0), 1)
                != RetryPolicy(jitter=0.5, seed=1).delay((0, 0), 1))

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_attempts=10, backoff_base=0.1,
                             backoff_factor=2.0, max_backoff=0.5, jitter=0.0)
        assert policy.delay(None, 1) == pytest.approx(0.1)
        assert policy.delay(None, 2) == pytest.approx(0.2)
        assert policy.delay(None, 5) == pytest.approx(0.5)  # capped

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0,
                             max_backoff=1.0, jitter=0.1)
        for index in range(50):
            delay = policy.delay((0, index), 1)
            assert 0.9 <= delay <= 1.1

    def test_sleeps_follow_the_schedule(self):
        policy, sleeps = no_sleep_policy(max_attempts=3, backoff_base=0.2,
                                         jitter=0.0)
        with pytest.raises(PerfUnavailableError):
            policy.call(_Flaky(failures=99), key=(3, 3))
        assert sleeps == [pytest.approx(0.2), pytest.approx(0.4)]


class TestCallUntil:
    def test_probe_success_short_circuits(self):
        policy, sleeps = no_sleep_policy()
        assert policy.call_until(lambda: True) is True
        assert sleeps == []

    def test_probe_retries_until_true(self):
        policy, _ = no_sleep_policy()
        outcomes = iter([False, False, True])
        assert policy.call_until(lambda: next(outcomes)) is True

    def test_probe_gives_up_after_budget(self):
        policy, sleeps = no_sleep_policy()
        calls = []
        assert policy.call_until(lambda: calls.append(1) and False) is False
        assert len(calls) == 3
        assert len(sleeps) == 2


class TestTelemetry:
    def test_attempt_and_exhausted_counters(self):
        obs.configure(obs.TelemetryConfig(enabled=True, console=False))
        try:
            policy, _ = no_sleep_policy()
            with pytest.raises(PerfUnavailableError):
                policy.call(_Flaky(failures=99), label="measure")
            snapshot = obs.active().snapshot()
            assert snapshot.counter_value(
                "retry.attempt", op="measure",
                error="PerfUnavailableError") == 3.0
            assert snapshot.counter_value("retry.exhausted", op="measure") == 1.0
        finally:
            obs.reset()
