"""Acceptance: fault-riddled runs are bit-identical to clean runs.

With ``RetryPolicy(max_attempts=3)``, a sim-backend collection where ~10%
of measurements suffer injected transient faults (timeouts + garbage
readouts) must produce byte-for-byte the same distributions — and the
Evaluator the same verdicts — as a fault-free run.  Resilience must be
invisible in the data.
"""

import numpy as np
import pytest

from repro.core import Evaluator
from repro.hpc import MeasurementSession, SimBackend
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    FlakyBackend,
    RetryPolicy,
)

CATEGORIES = [0, 1, 2]
SAMPLES = 10


def ten_percent_plan():
    """Transient faults on ~10% of the 30 measurement keys."""
    return FaultPlan([
        FaultSpec(FaultKind.TIMEOUT, 0, 3, times=1),
        FaultSpec(FaultKind.GARBAGE, 1, 0, times=2),
        FaultSpec(FaultKind.TIMEOUT, 2, 7, times=1),
    ])


@pytest.fixture()
def backend(tiny_trained_model):
    return SimBackend(tiny_trained_model, noise_scale=1.0, seed=21)


def _collect(session, dataset, workers=None):
    return session.collect(dataset, CATEGORIES, SAMPLES, workers=workers)


def assert_identical(first, second):
    assert first.categories == second.categories
    for category in first.categories:
        for event in first.events:
            np.testing.assert_array_equal(first.values(category, event),
                                          second.values(category, event))


class TestFaultedRunsAreBitIdentical:
    def test_sequential(self, backend, digits_dataset):
        clean = _collect(MeasurementSession(backend, warmup=0),
                         digits_dataset)
        flaky = FlakyBackend(backend, ten_percent_plan())
        retry = RetryPolicy(max_attempts=3, backoff_base=0.0)
        faulted = _collect(
            MeasurementSession(flaky, warmup=0, retry=retry), digits_dataset)
        assert_identical(clean, faulted)

    def test_parallel(self, backend, digits_dataset):
        clean = _collect(MeasurementSession(backend, warmup=0),
                         digits_dataset)
        flaky = FlakyBackend(backend, ten_percent_plan())
        retry = RetryPolicy(max_attempts=3, backoff_base=0.0)
        faulted = _collect(
            MeasurementSession(flaky, warmup=0, retry=retry),
            digits_dataset, workers=3)
        assert_identical(clean, faulted)

    def test_verdicts_identical(self, backend, digits_dataset):
        evaluator = Evaluator(confidence=0.95)
        clean_report = evaluator.evaluate(
            _collect(MeasurementSession(backend, warmup=0), digits_dataset))
        flaky = FlakyBackend(backend, ten_percent_plan())
        retry = RetryPolicy(max_attempts=3, backoff_base=0.0)
        faulted_report = evaluator.evaluate(_collect(
            MeasurementSession(flaky, warmup=0, retry=retry),
            digits_dataset))
        assert faulted_report.alarm == clean_report.alarm
        assert len(faulted_report.results) == len(clean_report.results)
        for clean_pair, faulted_pair in zip(clean_report.results,
                                            faulted_report.results):
            assert faulted_pair.event == clean_pair.event
            assert faulted_pair.pair == clean_pair.pair
            assert faulted_pair.ttest.statistic == clean_pair.ttest.statistic
            assert faulted_pair.ttest.p_value == clean_pair.ttest.p_value
            assert (faulted_pair.distinguishable
                    == clean_pair.distinguishable)

    def test_warmup_runs_are_also_identical(self, backend, digits_dataset):
        clean = _collect(MeasurementSession(backend, warmup=2),
                         digits_dataset)
        flaky = FlakyBackend(backend, ten_percent_plan())
        retry = RetryPolicy(max_attempts=3, backoff_base=0.0)
        faulted = _collect(
            MeasurementSession(flaky, warmup=2, retry=retry), digits_dataset)
        assert_identical(clean, faulted)
