"""Tests for MonitorDaemon: equivalence, backpressure, crash recovery."""

import asyncio

import numpy as np
import pytest

from repro.core.streaming import StreamingEvaluator
from repro.serve import (
    AdmissionController,
    MeasurementRound,
    MonitorDaemon,
    ServeConfig,
    SyntheticTenantLoad,
    TenantFailure,
    TenantSpec,
    run_load,
)


def make_config(**overrides):
    overrides.setdefault("tenants", (
        TenantSpec("alpha", categories=(0, 1, 2)),
        TenantSpec("beta", categories=(0, 1)),
    ))
    overrides.setdefault("batch_size", 6)
    overrides.setdefault("queue_capacity", 3)
    return ServeConfig(**overrides)


def offline_replay(spec, config, rounds):
    evaluator = StreamingEvaluator(confidence=config.confidence,
                                   method=config.method, events=spec.events)
    for batches in rounds:
        for category in sorted(batches):
            evaluator.observe_rows(category, batches[category])
        if evaluator.ready:
            evaluator.tick()
    return evaluator


def assert_states_equal(daemon, tenant, offline):
    got = daemon.monitors[tenant].evaluator.state()
    want = offline.state()
    assert set(got) - {"serve/rounds"} == set(want)
    for key in want:
        assert np.array_equal(got[key], want[key]), (tenant, key)
    assert daemon.monitors[tenant].evaluator.alarm_latency_rows() \
        == offline.alarm_latency_rows()


class TestEquivalence:
    def test_daemon_verdicts_match_offline_replay_bitwise(self):
        """The tentpole contract: the async multi-tenant pipeline and an
        offline `repro stream`-style replay agree bit for bit."""
        config = make_config()

        async def main():
            daemon = MonitorDaemon(config)
            daemon.start()
            await run_load(daemon, rounds=9, seed=3)
            await daemon.stop()
            return daemon

        daemon = asyncio.run(main())
        for spec in config.tenants:
            rounds = SyntheticTenantLoad(spec, seed=3).rounds(
                9, config.batch_size)
            offline = offline_replay(spec, config, rounds)
            assert_states_equal(daemon, spec.tenant, offline)
            # The leak is real: detections must exist, not vacuously match.
            assert offline.alarm_latency_rows()

    def test_interleaved_producers_cannot_corrupt_rounds(self):
        # Many concurrent producers per tenant: round-atomic admission
        # must keep per-category sequences aligned regardless.
        config = make_config(tenants=(TenantSpec("t", categories=(0, 1)),),
                             queue_capacity=2)
        load = SyntheticTenantLoad(config.tenants[0], seed=4)
        rounds = load.rounds(12, config.batch_size)

        async def main():
            daemon = MonitorDaemon(config)
            daemon.start()

            async def produce(indexes):
                for i in indexes:
                    await daemon.submit_round(MeasurementRound(
                        tenant="t", index=i, batches=rounds[i]))
                    await asyncio.sleep(0)

            # Three producers, striped round ranges, racing each other.
            await asyncio.gather(produce(range(0, 4)),
                                 produce(range(4, 8)),
                                 produce(range(8, 12)))
            await daemon.stop()
            return daemon

        daemon = asyncio.run(main())
        monitor = daemon.monitors["t"]
        assert monitor.rounds_ingested == 12
        # Producer interleaving reorders rounds but each category saw the
        # same multiset of rows, and every round stayed internally intact:
        # per-category counts remain aligned.
        for category in (0, 1):
            assert monitor.evaluator.samples_seen(category) \
                == 12 * config.batch_size


class TestBackpressure:
    def test_block_policy_bounds_queue_depth_and_loses_nothing(self):
        config = make_config(
            tenants=(TenantSpec("t", categories=(0, 1)),),
            admission="block", queue_capacity=2, batch_size=4)
        load = SyntheticTenantLoad(config.tenants[0], seed=5)
        depths = []

        async def main():
            daemon = MonitorDaemon(config)

            # Slow the consumer: every ingest yields many times first.
            original = daemon.monitors["t"].ingest_round

            def slow_ingest(round_):
                return original(round_)

            async def produce():
                for i in range(10):
                    await daemon.submit_round(MeasurementRound(
                        tenant="t", index=i,
                        batches=load.round_batches(i, config.batch_size)))
                    depths.append(daemon.admission.depth("t"))

            daemon.monitors["t"].ingest_round = slow_ingest
            daemon.start()
            await produce()
            await daemon.stop()
            return daemon

        daemon = asyncio.run(main())
        assert max(depths) <= config.queue_capacity
        assert daemon.admission.peak_buffered_bytes \
            <= daemon.admission.capacity_bytes(config.batch_size)
        monitor = daemon.monitors["t"]
        assert monitor.rounds_ingested == 10  # lossless
        offline = offline_replay(
            config.tenants[0], config, load.rounds(10, config.batch_size))
        assert_states_equal(daemon, "t", offline)

    def test_reject_policy_drops_whole_rounds_only(self):
        config = make_config(
            tenants=(TenantSpec("t", categories=(0, 1, 2)),),
            admission="reject", queue_capacity=1, batch_size=4)
        load = SyntheticTenantLoad(config.tenants[0], seed=6)
        rounds = load.rounds(20, config.batch_size)

        async def main():
            daemon = MonitorDaemon(config)
            daemon.start()
            admitted_indexes = []
            # Flood without yielding: the single-slot shards overflow.
            for i in range(20):
                if await daemon.submit_round(MeasurementRound(
                        tenant="t", index=i, batches=rounds[i])):
                    admitted_indexes.append(i)
            await daemon.stop()
            return daemon, admitted_indexes

        daemon, admitted = asyncio.run(main())
        monitor = daemon.monitors["t"]
        assert daemon.admission.rejected["t"] > 0
        assert daemon.admission.rejected["t"] + len(admitted) == 20
        assert monitor.rounds_ingested == len(admitted)
        # Per-category counts never desync: every category saw exactly
        # the admitted rounds.
        for category in (0, 1, 2):
            assert monitor.evaluator.samples_seen(category) \
                == len(admitted) * config.batch_size
        # Verdicts equal an offline replay of the admitted rounds only.
        offline = offline_replay(config.tenants[0], config,
                                 [rounds[i] for i in admitted])
        assert_states_equal(daemon, "t", offline)


class TestCrashRecovery:
    def test_consumer_crash_reingests_inflight_round_exactly_once(self):
        config = make_config(
            tenants=(TenantSpec("t", categories=(0, 1)),),
            max_consumer_restarts=2)
        load = SyntheticTenantLoad(config.tenants[0], seed=7)
        rounds = load.rounds(8, config.batch_size)
        crashes = []

        def crash_once(tenant, round_index):
            # Fetched-but-not-ingested: the worst possible crash point.
            if round_index == 3 and not crashes:
                crashes.append(round_index)
                raise RuntimeError("consumer died mid-round")

        async def main():
            daemon = MonitorDaemon(config, ingest_fault=crash_once)
            daemon.start()
            for i, batches in enumerate(rounds):
                await daemon.submit_round(MeasurementRound(
                    tenant="t", index=i, batches=batches))
            await daemon.stop()
            return daemon

        daemon = asyncio.run(main())
        assert crashes == [3]
        assert daemon.restarts["t"] == 1
        assert "t" not in daemon.failed
        monitor = daemon.monitors["t"]
        assert monitor.rounds_ingested == 8  # nothing lost, nothing doubled
        offline = offline_replay(config.tenants[0], config, rounds)
        assert_states_equal(daemon, "t", offline)

    def test_restart_budget_exhaustion_fails_the_tenant(self):
        config = make_config(
            tenants=(TenantSpec("t", categories=(0, 1)),),
            max_consumer_restarts=1)
        load = SyntheticTenantLoad(config.tenants[0], seed=8)

        def always_crash(tenant, round_index):
            raise RuntimeError("hardware gremlin")

        async def main():
            daemon = MonitorDaemon(config, ingest_fault=always_crash)
            daemon.start()
            await daemon.submit_round(MeasurementRound(
                tenant="t", index=0,
                batches=load.round_batches(0, config.batch_size)))
            # Give the supervisor time to burn its restart budget.
            for _ in range(50):
                await asyncio.sleep(0)
                if "t" in daemon.failed:
                    break
            with pytest.raises(TenantFailure):
                await daemon.submit_round(MeasurementRound(
                    tenant="t", index=1,
                    batches=load.round_batches(1, config.batch_size)))
            await daemon.stop(drain=False)
            return daemon

        daemon = asyncio.run(main())
        assert "t" in daemon.failed
        assert daemon.restarts["t"] == config.max_consumer_restarts + 1
        assert daemon.summary()["t"]["failed"] is True

    def test_fail_tenant_wakes_a_blocked_submit(self):
        # Regression: a producer awaiting shard space used to sleep
        # forever once the tenant's consumer died (nothing would ever
        # drain the shard it was blocked on).
        config = make_config(tenants=(TenantSpec("t", categories=(0, 1)),),
                             admission="block", queue_capacity=1)
        load = SyntheticTenantLoad(config.tenants[0], seed=23)

        async def main():
            admission = AdmissionController(config)
            await admission.submit(MeasurementRound(
                tenant="t", index=0,
                batches=load.round_batches(0, config.batch_size)))
            blocked = asyncio.ensure_future(admission.submit(
                MeasurementRound(
                    tenant="t", index=1,
                    batches=load.round_batches(1, config.batch_size))))
            for _ in range(5):
                await asyncio.sleep(0)  # let it block on the full shard
            assert not blocked.done()
            admission.fail_tenant("t")
            with pytest.raises(TenantFailure):
                await asyncio.wait_for(blocked, timeout=5.0)
            # Later submissions fail fast instead of blocking.
            with pytest.raises(TenantFailure):
                await asyncio.wait_for(admission.submit(MeasurementRound(
                    tenant="t", index=2,
                    batches=load.round_batches(2, config.batch_size))),
                    timeout=5.0)

        asyncio.run(main())

    def test_dead_tenant_never_wedges_producers_or_shutdown(self):
        # End to end: the consumer poisons itself on the parked round and
        # burns its restart budget while the producer floods the 1-slot
        # shards; the producer must raise TenantFailure (whether blocked
        # mid-put or pre-checked) and stop(drain=True) must not hang on
        # the dead tenant's never-drained shards.
        config = make_config(
            tenants=(TenantSpec("t", categories=(0, 1)),),
            admission="block", queue_capacity=1, max_consumer_restarts=2)
        load = SyntheticTenantLoad(config.tenants[0], seed=24)

        def always_crash(tenant, round_index):
            raise RuntimeError("poisoned round")

        async def main():
            daemon = MonitorDaemon(config, ingest_fault=always_crash)
            daemon.start()

            async def produce():
                for i in range(10):
                    await daemon.submit_round(MeasurementRound(
                        tenant="t", index=i,
                        batches=load.round_batches(i, config.batch_size)))

            with pytest.raises(TenantFailure):
                await asyncio.wait_for(produce(), timeout=10.0)
            await asyncio.wait_for(daemon.stop(), timeout=10.0)
            return daemon

        daemon = asyncio.run(main())
        assert "t" in daemon.failed
        assert daemon.monitors["t"].rounds_ingested == 0

    def test_other_tenants_survive_one_tenants_failure(self):
        config = make_config(max_consumer_restarts=0)
        load_beta = SyntheticTenantLoad(config.spec("beta"), seed=9)

        def crash_alpha(tenant, round_index):
            if tenant == "alpha":
                raise RuntimeError("alpha only")

        async def main():
            daemon = MonitorDaemon(config, ingest_fault=crash_alpha)
            daemon.start()
            await daemon.submit_round(MeasurementRound(
                tenant="alpha", index=0,
                batches=SyntheticTenantLoad(
                    config.spec("alpha"), seed=9).round_batches(
                        0, config.batch_size)))
            for i in range(4):
                await daemon.submit_round(MeasurementRound(
                    tenant="beta", index=i,
                    batches=load_beta.round_batches(i, config.batch_size)))
            for _ in range(100):
                await asyncio.sleep(0)
                if ("alpha" in daemon.failed
                        and daemon.monitors["beta"].rounds_ingested == 4):
                    break
            await daemon.stop(drain=False)
            return daemon

        daemon = asyncio.run(main())
        assert "alpha" in daemon.failed
        assert daemon.monitors["beta"].rounds_ingested == 4


class TestCheckpointing:
    def test_stop_checkpoints_and_restart_resumes_bit_exactly(self, tmp_path):
        config = make_config(
            tenants=(TenantSpec("t", categories=(0, 1)),),
            state_dir=str(tmp_path / "state"), drift_threshold=6.0)
        load = SyntheticTenantLoad(config.tenants[0], seed=10)
        rounds = load.rounds(10, config.batch_size)

        async def phase(daemon, chunk, start):
            daemon.start()
            for i, batches in enumerate(chunk, start=start):
                await daemon.submit_round(MeasurementRound(
                    tenant="t", index=i, batches=batches))
            await daemon.stop()

        async def main():
            first = MonitorDaemon(config)
            await phase(first, rounds[:5], 0)
            assert (tmp_path / "state" / "tenant-t.npz").exists()
            second = MonitorDaemon(config)  # resumes from the checkpoint
            assert second.monitors["t"].rounds_ingested == 5
            await phase(second, rounds[5:], 5)
            return second

        daemon = asyncio.run(main())
        offline = offline_replay(config.tenants[0], config, rounds)
        assert_states_equal(daemon, "t", offline)
        assert daemon.monitors["t"].rounds_ingested == 10

    def test_corrupt_checkpoint_starts_fresh(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        (state / "tenant-t.npz").write_bytes(b"not an npz archive")
        config = make_config(tenants=(TenantSpec("t", categories=(0, 1)),),
                             state_dir=str(state))
        daemon = MonitorDaemon(config)
        assert daemon.monitors["t"].rounds_ingested == 0
