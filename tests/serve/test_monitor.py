"""Tests for TenantMonitor: stream-equivalence, alarms, persistence."""

import numpy as np
import pytest

from repro.core.streaming import StreamingEvaluator
from repro.errors import ConfigError, EvaluationError
from repro.serve import (
    MeasurementRound,
    ServeConfig,
    SyntheticTenantLoad,
    TenantMonitor,
    TenantSpec,
)
from repro.uarch.events import ALL_EVENTS


def make_config(**overrides):
    overrides.setdefault("tenants", (TenantSpec("t", categories=(0, 1, 2)),))
    overrides.setdefault("batch_size", 8)
    return ServeConfig(**overrides)


def offline_replay(spec, config, rounds):
    """The `repro stream` twin: observe sorted categories, then tick."""
    evaluator = StreamingEvaluator(confidence=config.confidence,
                                   method=config.method, events=spec.events)
    for batches in rounds:
        for category in sorted(batches):
            evaluator.observe_rows(category, batches[category])
        if evaluator.ready:
            evaluator.tick()
    return evaluator


class TestStreamEquivalence:
    def test_monitor_state_is_bit_identical_to_offline_replay(self):
        config = make_config()
        spec = config.tenants[0]
        load = SyntheticTenantLoad(spec, seed=11)
        rounds = load.rounds(10, config.batch_size)

        monitor = TenantMonitor(spec, config)
        for index, batches in enumerate(rounds):
            monitor.ingest_round(MeasurementRound(
                tenant="t", index=index, batches=batches))
        offline = offline_replay(spec, config, rounds)

        got = monitor.evaluator.state()
        want = offline.state()
        assert set(got) - {"serve/rounds"} == set(want)
        for key in want:
            assert np.array_equal(got[key], want[key]), key

    def test_detection_records_match_offline_replay(self):
        config = make_config()
        spec = config.tenants[0]
        rounds = SyntheticTenantLoad(spec, seed=12).rounds(
            8, config.batch_size)
        monitor = TenantMonitor(spec, config)
        for index, batches in enumerate(rounds):
            monitor.ingest_round(MeasurementRound(
                tenant="t", index=index, batches=batches))
        offline = offline_replay(spec, config, rounds)
        assert monitor.evaluator.alarm_latency_rows() \
            == offline.alarm_latency_rows()
        assert monitor.evaluator.alarm_latency_rows()  # signal is real

    def test_tick_arrays_match_offline_replay_bitwise(self):
        config = make_config()
        spec = config.tenants[0]
        rounds = SyntheticTenantLoad(spec, seed=13).rounds(
            6, config.batch_size)
        monitor = TenantMonitor(spec, config)
        offline = StreamingEvaluator(confidence=config.confidence,
                                     method=config.method,
                                     events=spec.events)
        for index, batches in enumerate(rounds):
            monitor.ingest_round(MeasurementRound(
                tenant="t", index=index, batches=batches))
            for category in sorted(batches):
                offline.observe_rows(category, batches[category])
            tick = offline.tick()
            report = monitor.evaluator.report()
            offline_report = offline.report()
            for got, want in zip(report.results, offline_report.results):
                assert got.ttest.statistic == want.ttest.statistic
                assert got.ttest.p_value == want.ttest.p_value


class TestAlarms:
    def test_spending_layer_alarms_on_leaky_stream(self):
        config = make_config()
        spec = config.tenants[0]
        monitor = TenantMonitor(spec, config)
        load = SyntheticTenantLoad(spec, seed=14)
        outcomes = [monitor.ingest_round(MeasurementRound(
            tenant="t", index=i,
            batches=load.round_batches(i, config.batch_size)))
            for i in range(6)]
        assert monitor.leakage_alarmed
        first = monitor.first_leakage_alarm
        assert first is not None and first.leakage_alarm.triggered
        assert outcomes[first.round_index].alarmed

    def test_spent_alpha_decays_with_ticks(self):
        config = make_config()
        spec = config.tenants[0]
        monitor = TenantMonitor(spec, config)
        load = SyntheticTenantLoad(spec, seed=15)
        alphas = []
        for i in range(5):
            outcome = monitor.ingest_round(MeasurementRound(
                tenant="t", index=i,
                batches=load.round_batches(i, config.batch_size)))
            alphas.append(outcome.spent_alpha)
        assert all(a > b for a, b in zip(alphas, alphas[1:]))
        assert alphas[0] == config.alpha / 2.0

    def test_identical_streams_never_alarm(self):
        # All categories share one distribution: no leakage signal.
        config = make_config()
        spec = config.tenants[0]
        monitor = TenantMonitor(spec, config)
        rng = np.random.default_rng(16)
        for i in range(10):
            batches = {category: rng.normal(
                1000.0, 40.0, size=(config.batch_size, len(spec.events)))
                for category in spec.categories}
            monitor.ingest_round(MeasurementRound(
                tenant="t", index=i, batches=batches))
        assert not monitor.leakage_alarmed

    def test_drift_alarm_fires_after_injected_shift(self):
        config = make_config(drift_threshold=5.0, drift_window=16)
        spec = config.tenants[0]
        monitor = TenantMonitor(spec, config)
        load = SyntheticTenantLoad(spec, seed=17, drift_after_round=6,
                                   drift_shift=8.0)
        drift_round = None
        for i in range(14):
            outcome = monitor.ingest_round(MeasurementRound(
                tenant="t", index=i,
                batches=load.round_batches(i, config.batch_size)))
            if outcome.drift_alarms and drift_round is None:
                drift_round = i
        assert monitor.drift_alarmed
        assert drift_round is not None and drift_round >= 6

    def test_no_drift_monitor_by_default(self):
        monitor = TenantMonitor(make_config().tenants[0], make_config())
        assert monitor.drift is None
        assert not monitor.drift_alarmed


class TestValidation:
    def test_wrong_tenant_is_rejected(self):
        config = make_config()
        monitor = TenantMonitor(config.tenants[0], config)
        with pytest.raises(EvaluationError, match="routed"):
            monitor.ingest_round(MeasurementRound(
                tenant="other", index=0,
                batches={c: np.ones((2, len(ALL_EVENTS)))
                         for c in (0, 1, 2)}))

    def test_missing_category_is_rejected(self):
        config = make_config()
        monitor = TenantMonitor(config.tenants[0], config)
        with pytest.raises(EvaluationError, match="missing categories"):
            monitor.ingest_round(MeasurementRound(
                tenant="t", index=0,
                batches={0: np.ones((2, len(ALL_EVENTS)))}))

    def test_malformed_batch_is_rejected_without_side_effects(self):
        # Regression: a round whose *last* category failed validation
        # used to leave the earlier categories folded in, so the
        # daemon's re-ingest after a consumer restart double-counted
        # them.  Ingestion must be all-or-nothing.
        config = make_config(drift_threshold=5.0)
        spec = config.tenants[0]
        monitor = TenantMonitor(spec, config)
        load = SyntheticTenantLoad(spec, seed=20)
        for i in range(3):
            monitor.ingest_round(MeasurementRound(
                tenant="t", index=i,
                batches=load.round_batches(i, config.batch_size)))
        before = monitor.state()

        bad = dict(load.round_batches(3, config.batch_size))
        bad[2] = np.ones((config.batch_size, len(spec.events) + 1))
        with pytest.raises(EvaluationError, match="shape"):
            monitor.ingest_round(MeasurementRound(
                tenant="t", index=3, batches=bad))
        non_numeric = dict(load.round_batches(3, config.batch_size))
        non_numeric[1] = np.array([["not", "a"], ["number", "row"]])
        with pytest.raises(EvaluationError, match="not numeric"):
            monitor.ingest_round(MeasurementRound(
                tenant="t", index=3, batches=non_numeric))

        after = monitor.state()
        assert set(after) == set(before)
        for key in before:
            assert np.array_equal(after[key], before[key]), key
        assert monitor.rounds_ingested == 3
        # A corrected round then ingests cleanly.
        outcome = monitor.ingest_round(MeasurementRound(
            tenant="t", index=3,
            batches=load.round_batches(3, config.batch_size)))
        assert outcome.round_index == 3
        assert monitor.rounds_ingested == 4

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ServeConfig(tenants=())
        with pytest.raises(ConfigError):
            make_config(admission="maybe")
        with pytest.raises(ConfigError):
            make_config(queue_capacity=0)
        with pytest.raises(ConfigError):
            make_config(spending="linear")
        with pytest.raises(ConfigError):
            TenantSpec("t", categories=(0,))
        with pytest.raises(ConfigError):
            ServeConfig(tenants=(TenantSpec("a"), TenantSpec("a")))


class TestPersistence:
    def test_state_round_trip_is_bit_exact(self):
        config = make_config(drift_threshold=5.0)
        spec = config.tenants[0]
        monitor = TenantMonitor(spec, config)
        load = SyntheticTenantLoad(spec, seed=18)
        for i in range(6):
            monitor.ingest_round(MeasurementRound(
                tenant="t", index=i,
                batches=load.round_batches(i, config.batch_size)))
        restored = TenantMonitor.from_state(monitor.state(), spec, config)
        assert restored.rounds_ingested == monitor.rounds_ingested
        assert restored.evaluator.ticks == monitor.evaluator.ticks
        assert restored.evaluator.alarm_latency_rows() \
            == monitor.evaluator.alarm_latency_rows()
        got, want = restored.state(), monitor.state()
        assert set(got) == set(want)
        for key in want:
            assert np.array_equal(got[key], want[key]), key

    def test_leakage_alarm_state_survives_round_trip(self):
        # Regression: checkpoint/resume used to forget that the spending
        # layer had ever fired — leakage_alarmed reported False after a
        # --state-dir resume.
        config = make_config()
        spec = config.tenants[0]
        monitor = TenantMonitor(spec, config)
        load = SyntheticTenantLoad(spec, seed=21)
        for i in range(6):
            monitor.ingest_round(MeasurementRound(
                tenant="t", index=i,
                batches=load.round_batches(i, config.batch_size)))
        assert monitor.leakage_alarmed  # signal is real

        restored = TenantMonitor.from_state(monitor.state(), spec, config)
        assert restored.leakage_alarmed
        first, twin = monitor.first_leakage_alarm, \
            restored.first_leakage_alarm
        assert twin.tick == first.tick
        assert twin.round_index == first.round_index
        assert twin.spent_alpha == first.spent_alpha
        assert restored.summary()["leakage_alarm_tick"] \
            == monitor.summary()["leakage_alarm_tick"]
        # The restored history re-persists identically.
        again = TenantMonitor.from_state(restored.state(), spec, config)
        got, want = again.state(), monitor.state()
        assert set(got) == set(want)
        for key in want:
            assert np.array_equal(got[key], want[key]), key

    def test_drift_alarms_survive_round_trip_and_do_not_refire(self):
        # Regression: the drift first-detection table was dropped by
        # checkpoints, so already-alarmed cells re-fired as new first
        # detections after a resume.
        config = make_config(drift_threshold=5.0, drift_window=16)
        spec = config.tenants[0]
        load = SyntheticTenantLoad(spec, seed=22, drift_after_round=4,
                                   drift_shift=8.0)
        monitor = TenantMonitor(spec, config)
        for i in range(12):
            monitor.ingest_round(MeasurementRound(
                tenant="t", index=i,
                batches=load.round_batches(i, config.batch_size)))
        assert monitor.drift_alarmed  # signal is real

        restored = TenantMonitor.from_state(monitor.state(), spec, config)
        assert restored.drift_alarmed
        assert restored.drift.alarm_rows() == monitor.drift.alarm_rows()
        # Continuing the drifted stream raises exactly what the
        # uninterrupted monitor raises — no cell fires twice.
        for i in range(12, 16):
            batches = load.round_batches(i, config.batch_size)
            got = restored.ingest_round(MeasurementRound(
                tenant="t", index=i, batches=batches))
            want = monitor.ingest_round(MeasurementRound(
                tenant="t", index=i, batches=batches))
            assert [a.to_dict() for a in got.drift_alarms] \
                == [a.to_dict() for a in want.drift_alarms]
        assert restored.drift.alarm_rows() == monitor.drift.alarm_rows()

    def test_resumed_monitor_continues_identically(self):
        config = make_config()
        spec = config.tenants[0]
        load = SyntheticTenantLoad(spec, seed=19)
        rounds = load.rounds(10, config.batch_size)

        whole = TenantMonitor(spec, config)
        for i, batches in enumerate(rounds):
            whole.ingest_round(MeasurementRound(
                tenant="t", index=i, batches=batches))

        first_half = TenantMonitor(spec, config)
        for i, batches in enumerate(rounds[:5]):
            first_half.ingest_round(MeasurementRound(
                tenant="t", index=i, batches=batches))
        resumed = TenantMonitor.from_state(first_half.state(), spec, config)
        for i, batches in enumerate(rounds[5:], start=5):
            resumed.ingest_round(MeasurementRound(
                tenant="t", index=i, batches=batches))

        got, want = resumed.evaluator.state(), whole.evaluator.state()
        for key in want:
            assert np.array_equal(got[key], want[key]), key
