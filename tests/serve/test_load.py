"""Tests for the synthetic load generator and load reports."""

import asyncio

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serve import (
    MonitorDaemon,
    ServeConfig,
    SyntheticTenantLoad,
    TenantSpec,
    run_load,
)
from repro.serve.load import percentile


class TestSyntheticTenantLoad:
    def test_rounds_are_pure_functions_of_index(self):
        spec = TenantSpec("t", categories=(0, 1))
        a = SyntheticTenantLoad(spec, seed=1)
        b = SyntheticTenantLoad(spec, seed=1)
        # Different call orders, identical rows.
        a5 = a.round_batches(5, 4)
        a0 = a.round_batches(0, 4)
        b0 = b.round_batches(0, 4)
        b5 = b.round_batches(5, 4)
        for category in (0, 1):
            assert np.array_equal(a0[category], b0[category])
            assert np.array_equal(a5[category], b5[category])

    def test_tenants_and_seeds_are_independent_streams(self):
        spec_a = TenantSpec("a", categories=(0, 1))
        spec_b = TenantSpec("b", categories=(0, 1))
        rows_a = SyntheticTenantLoad(spec_a, seed=1).round_batches(0, 4)
        rows_b = SyntheticTenantLoad(spec_b, seed=1).round_batches(0, 4)
        reseed = SyntheticTenantLoad(spec_a, seed=2).round_batches(0, 4)
        assert not np.array_equal(rows_a[0], rows_b[0])
        assert not np.array_equal(rows_a[0], reseed[0])

    def test_category_means_are_separated(self):
        # The leak: category index shifts the mean — that is the signal
        # the paper's t-tests detect.
        spec = TenantSpec("t", categories=(0, 3))
        rows = SyntheticTenantLoad(spec, seed=0).round_batches(0, 400)
        assert rows[3].mean() - rows[0].mean() > 30.0

    def test_drift_injection_starts_at_configured_round(self):
        spec = TenantSpec("t", categories=(0, 1))
        load = SyntheticTenantLoad(spec, seed=0, drift_after_round=3,
                                   drift_shift=10.0)
        calm = load.round_batches(2, 200)
        shifted = load.round_batches(3, 200)
        assert shifted[0].mean() - calm[0].mean() > 300.0


class TestRunLoad:
    def test_reports_cover_every_tenant(self):
        config = ServeConfig(
            tenants=(TenantSpec("a", categories=(0, 1)),
                     TenantSpec("b", categories=(0, 1))),
            batch_size=5, queue_capacity=4)

        async def main():
            daemon = MonitorDaemon(config)
            daemon.start()
            reports = await run_load(daemon, rounds=6, seed=2)
            await daemon.stop()
            return reports

        reports = asyncio.run(main())
        assert set(reports) == {"a", "b"}
        for report in reports.values():
            assert report.rounds_offered == 6
            assert report.rounds_admitted == 6
            assert report.rounds_rejected == 0
            assert len(report.ingest_latency_ms) == 6
            assert all(lat >= 0.0 for lat in report.ingest_latency_ms)
            # Category separation is ~3.75 sigma of the batch mean: the
            # leak is found within the run.
            assert report.first_alarm_round is not None

    def test_rps_pacing_slows_production(self):
        config = ServeConfig(tenants=(TenantSpec("t", categories=(0, 1)),),
                             batch_size=2, queue_capacity=4)

        async def timed(rps):
            daemon = MonitorDaemon(config)
            daemon.start()
            loop = asyncio.get_running_loop()
            started = loop.time()
            await run_load(daemon, rounds=4, rps=rps, seed=0)
            elapsed = loop.time() - started
            await daemon.stop()
            return elapsed

        paced = asyncio.run(timed(rps=50.0))
        assert paced >= 3 * (1.0 / 50.0)  # 4 rounds at 50/s >= 60ms

    def test_rejects_bad_round_count(self):
        config = ServeConfig(tenants=(TenantSpec("t", categories=(0, 1)),))

        async def main():
            daemon = MonitorDaemon(config)
            daemon.start()
            try:
                await run_load(daemon, rounds=0)
            finally:
                await daemon.stop(drain=False)

        with pytest.raises(ConfigError):
            asyncio.run(main())


class TestPercentile:
    def test_empty_series_is_nan(self):
        assert np.isnan(percentile([], 95))

    def test_matches_numpy(self):
        values = [5.0, 1.0, 9.0, 3.0]
        assert percentile(values, 50) == float(np.percentile(values, 50))
