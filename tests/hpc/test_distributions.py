"""Tests for repro.hpc.distributions."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.hpc import EventDistributions
from repro.uarch import EventCounts, HpcEvent


def sample_distributions():
    return EventDistributions({
        1: {HpcEvent.CACHE_MISSES: np.array([10.0, 12.0, 11.0]),
            HpcEvent.BRANCHES: np.array([100.0, 101.0, 99.0])},
        2: {HpcEvent.CACHE_MISSES: np.array([20.0, 21.0]),
            HpcEvent.BRANCHES: np.array([100.0, 102.0])},
    })


class TestConstruction:
    def test_accessors(self):
        dists = sample_distributions()
        assert dists.categories == [1, 2]
        assert set(dists.events) == {HpcEvent.CACHE_MISSES, HpcEvent.BRANCHES}
        np.testing.assert_array_equal(
            dists.values(1, HpcEvent.CACHE_MISSES), [10.0, 12.0, 11.0])
        assert dists.sample_count(1) == 3
        assert dists.sample_count(2) == 2

    def test_mean_and_category_means(self):
        dists = sample_distributions()
        assert dists.mean(1, HpcEvent.CACHE_MISSES) == pytest.approx(11.0)
        means = dists.category_means(HpcEvent.CACHE_MISSES)
        assert means == {1: pytest.approx(11.0), 2: pytest.approx(20.5)}

    def test_string_event_names_accepted(self):
        dists = sample_distributions()
        np.testing.assert_array_equal(
            dists.values(1, "cache-misses"), [10.0, 12.0, 11.0])

    def test_rejects_empty(self):
        with pytest.raises(MeasurementError):
            EventDistributions({})
        with pytest.raises(MeasurementError):
            EventDistributions({1: {}})
        with pytest.raises(MeasurementError):
            EventDistributions({1: {HpcEvent.CYCLES: np.array([])}})

    def test_rejects_ragged_event_sets(self):
        with pytest.raises(MeasurementError):
            EventDistributions({
                1: {HpcEvent.CYCLES: np.array([1.0])},
                2: {HpcEvent.BRANCHES: np.array([1.0])},
            })

    def test_unknown_queries_rejected(self):
        dists = sample_distributions()
        with pytest.raises(MeasurementError):
            dists.values(9, HpcEvent.CYCLES)
        with pytest.raises(MeasurementError):
            dists.values(1, HpcEvent.CYCLES)


class TestConstructionFromMeasurements:
    def test_from_event_counts(self):
        dists = EventDistributions.from_measurements({
            0: [EventCounts({HpcEvent.CYCLES: 10}),
                EventCounts({HpcEvent.CYCLES: 12})],
            1: [EventCounts({HpcEvent.CYCLES: 30}),
                EventCounts({HpcEvent.CYCLES: 33})],
        })
        np.testing.assert_array_equal(dists.values(0, HpcEvent.CYCLES),
                                      [10, 12])


class TestPersistence:
    def test_array_round_trip(self):
        dists = sample_distributions()
        restored = EventDistributions.from_arrays(dists.to_arrays())
        assert restored.categories == dists.categories
        for category in dists.categories:
            for event in dists.events:
                np.testing.assert_array_equal(
                    restored.values(category, event),
                    dists.values(category, event))

    def test_from_arrays_rejects_garbage(self):
        with pytest.raises(MeasurementError):
            EventDistributions.from_arrays({"unrelated": np.array([1.0])})


class TestCombinators:
    def test_subset(self):
        dists = sample_distributions()
        sub = dists.subset([2])
        assert sub.categories == [2]

    def test_merge_concatenates(self):
        dists = sample_distributions()
        merged = dists.merged_with(sample_distributions())
        assert merged.sample_count(1) == 6

    def test_merge_rejects_mismatched_events(self):
        other = EventDistributions(
            {1: {HpcEvent.CYCLES: np.array([1.0, 2.0])}})
        with pytest.raises(MeasurementError):
            sample_distributions().merged_with(other)

    def test_summary_text(self):
        text = sample_distributions().summary()
        assert "category 1" in text
        assert "cache-misses" in text
