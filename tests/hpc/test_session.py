"""Tests for repro.hpc.session (collection + caching)."""

import multiprocessing

import numpy as np
import pytest

from repro import obs
from repro.errors import MeasurementError
from repro.hpc import (
    EventDistributions,
    MeasurementCache,
    MeasurementSession,
    SimBackend,
)
from repro.hpc.session import _merge_event_columns
from repro.uarch import HpcEvent


@pytest.fixture(scope="module")
def module_backend(tiny_trained_model):
    return SimBackend(tiny_trained_model, noise_scale=0.0)


class TestCollect:
    def test_shapes(self, module_backend, digits_dataset):
        session = MeasurementSession(module_backend, warmup=0)
        dists = session.collect(digits_dataset, [0, 1], 4)
        assert dists.categories == [0, 1]
        assert dists.sample_count(0) == 4
        assert len(dists.events) == 8

    def test_insufficient_samples_rejected(self, module_backend,
                                           digits_dataset):
        session = MeasurementSession(module_backend, warmup=0)
        with pytest.raises(MeasurementError):
            session.collect(digits_dataset, [0], 999)

    def test_minimum_two_measurements(self, module_backend, digits_dataset):
        session = MeasurementSession(module_backend, warmup=0)
        with pytest.raises(MeasurementError):
            session.collect(digits_dataset, [0], 1)

    def test_negative_warmup_rejected(self, module_backend):
        with pytest.raises(MeasurementError):
            MeasurementSession(module_backend, warmup=-1)

    def test_measure_category_warmup_not_recorded(self, module_backend,
                                                  digits_dataset):
        session = MeasurementSession(module_backend, warmup=2)
        sub = digits_dataset.category(0)
        readings = session.measure_category(sub.images[:5])
        assert len(readings) == 5

    def test_measure_category_rejects_empty(self, module_backend):
        session = MeasurementSession(module_backend)
        with pytest.raises(MeasurementError):
            session.measure_category([])


class TestCache:
    def test_round_trip(self, tmp_path):
        cache = MeasurementCache(tmp_path)
        dists = EventDistributions(
            {0: {HpcEvent.CYCLES: np.array([1.0, 2.0])}})
        cache.put("key", dists)
        restored = cache.get("key")
        np.testing.assert_array_equal(restored.values(0, HpcEvent.CYCLES),
                                      [1.0, 2.0])

    def test_miss_returns_none(self, tmp_path):
        assert MeasurementCache(tmp_path).get("absent") is None

    def test_corrupt_entry_self_heals(self, tmp_path):
        cache = MeasurementCache(tmp_path)
        dists = EventDistributions(
            {0: {HpcEvent.CYCLES: np.array([1.0, 2.0])}})
        path = cache.put("key", dists)
        path.write_bytes(b"garbage")
        assert cache.get("key") is None
        assert not path.exists()

    def test_collect_uses_cache(self, tiny_trained_model, digits_dataset,
                                tmp_path):
        backend = SimBackend(tiny_trained_model, noise_scale=0.0)
        cache = MeasurementCache(tmp_path)
        session = MeasurementSession(backend, warmup=0, cache=cache)
        first = session.collect(digits_dataset, [0, 1], 3)
        counting = _CountingBackend(backend)
        session_cached = MeasurementSession(counting, warmup=0, cache=cache)
        second = session_cached.collect(digits_dataset, [0, 1], 3)
        assert counting.calls == 0  # everything served from cache
        for category in (0, 1):
            np.testing.assert_array_equal(
                first.values(category, HpcEvent.CYCLES),
                second.values(category, HpcEvent.CYCLES))

    def test_cache_key_respects_sample_count(self, tiny_trained_model,
                                             digits_dataset, tmp_path):
        backend = SimBackend(tiny_trained_model, noise_scale=0.0)
        cache = MeasurementCache(tmp_path)
        session = MeasurementSession(backend, warmup=0, cache=cache)
        three = session.collect(digits_dataset, [0], 3)
        four = session.collect(digits_dataset, [0], 4)
        assert three.sample_count(0) == 3
        assert four.sample_count(0) == 4


def _hammer_cache(directory, key, value, rounds):
    """Worker for the concurrent-writer test: put the same key repeatedly."""
    cache = MeasurementCache(directory)
    dists = EventDistributions(
        {0: {HpcEvent.CYCLES: np.full(4096, float(value))}})
    for _ in range(rounds):
        cache.put(key, dists)


class TestCacheAtomicity:
    def test_concurrent_writers_never_corrupt_an_entry(self, tmp_path):
        context = multiprocessing.get_context()
        writers = [
            context.Process(target=_hammer_cache,
                            args=(str(tmp_path), "shared", value, 20))
            for value in (1, 2)
        ]
        for process in writers:
            process.start()
        for process in writers:
            process.join()
        assert all(process.exitcode == 0 for process in writers)
        restored = MeasurementCache(tmp_path).get("shared")
        assert restored is not None  # a torn write would read as corrupt
        values = restored.values(0, HpcEvent.CYCLES)
        # Last writer wins, but the entry must be one writer's intact
        # payload — never an interleaving of the two.
        assert np.all(values == values[0])
        assert values[0] in (1.0, 2.0)

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = MeasurementCache(tmp_path)
        dists = EventDistributions(
            {0: {HpcEvent.CYCLES: np.array([1.0, 2.0])}})
        cache.put("key", dists)
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []

    def test_corrupt_entry_increments_eviction_counter(self, tmp_path):
        obs.configure(obs.TelemetryConfig(enabled=True, console=False))
        try:
            cache = MeasurementCache(tmp_path)
            dists = EventDistributions(
                {0: {HpcEvent.CYCLES: np.array([1.0, 2.0])}})
            path = cache.put("key", dists)
            path.write_bytes(b"garbage")
            assert cache.get("key") is None
            snapshot = obs.active().snapshot()
            assert snapshot.counter_value(
                "cache.corrupt", kind="measurement") == 1.0
            assert snapshot.counter_value(
                "cache.miss", kind="measurement") == 1.0
        finally:
            obs.reset()


class TestMergeEventColumns:
    def _dists(self, categories, events, base=0.0):
        return EventDistributions({
            category: {event: np.array([base + category, base + category + 1])
                       for event in events}
            for category in categories
        })

    def test_merges_disjoint_event_columns(self):
        first = self._dists([0, 1], [HpcEvent.CYCLES])
        second = self._dists([0, 1], [HpcEvent.INSTRUCTIONS], base=10.0)
        merged = _merge_event_columns(first, second)
        assert set(merged.events) == {HpcEvent.CYCLES, HpcEvent.INSTRUCTIONS}
        np.testing.assert_array_equal(
            merged.values(1, HpcEvent.CYCLES), [1.0, 2.0])
        np.testing.assert_array_equal(
            merged.values(1, HpcEvent.INSTRUCTIONS), [11.0, 12.0])

    def test_rejects_overlapping_events(self):
        first = self._dists([0], [HpcEvent.CYCLES, HpcEvent.INSTRUCTIONS])
        second = self._dists([0], [HpcEvent.CYCLES])
        with pytest.raises(MeasurementError, match="overlapping"):
            _merge_event_columns(first, second)

    def test_rejects_mismatched_categories(self):
        first = self._dists([0, 1], [HpcEvent.CYCLES])
        second = self._dists([0, 2], [HpcEvent.INSTRUCTIONS])
        with pytest.raises(MeasurementError, match="different categories"):
            _merge_event_columns(first, second)


class _CountingBackend:
    """Delegating backend that counts measure() calls."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def measure(self, sample):
        self.calls += 1
        return self._inner.measure(sample)

    def fingerprint(self):
        return self._inner.fingerprint()

    @property
    def events(self):
        return self._inner.events
