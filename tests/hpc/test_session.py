"""Tests for repro.hpc.session (collection + caching)."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.hpc import (
    EventDistributions,
    MeasurementCache,
    MeasurementSession,
    SimBackend,
)
from repro.uarch import HpcEvent


@pytest.fixture(scope="module")
def module_backend(tiny_trained_model):
    return SimBackend(tiny_trained_model, noise_scale=0.0)


class TestCollect:
    def test_shapes(self, module_backend, digits_dataset):
        session = MeasurementSession(module_backend, warmup=0)
        dists = session.collect(digits_dataset, [0, 1], 4)
        assert dists.categories == [0, 1]
        assert dists.sample_count(0) == 4
        assert len(dists.events) == 8

    def test_insufficient_samples_rejected(self, module_backend,
                                           digits_dataset):
        session = MeasurementSession(module_backend, warmup=0)
        with pytest.raises(MeasurementError):
            session.collect(digits_dataset, [0], 999)

    def test_minimum_two_measurements(self, module_backend, digits_dataset):
        session = MeasurementSession(module_backend, warmup=0)
        with pytest.raises(MeasurementError):
            session.collect(digits_dataset, [0], 1)

    def test_negative_warmup_rejected(self, module_backend):
        with pytest.raises(MeasurementError):
            MeasurementSession(module_backend, warmup=-1)

    def test_measure_category_warmup_not_recorded(self, module_backend,
                                                  digits_dataset):
        session = MeasurementSession(module_backend, warmup=2)
        sub = digits_dataset.category(0)
        readings = session.measure_category(sub.images[:5])
        assert len(readings) == 5

    def test_measure_category_rejects_empty(self, module_backend):
        session = MeasurementSession(module_backend)
        with pytest.raises(MeasurementError):
            session.measure_category([])


class TestCache:
    def test_round_trip(self, tmp_path):
        cache = MeasurementCache(tmp_path)
        dists = EventDistributions(
            {0: {HpcEvent.CYCLES: np.array([1.0, 2.0])}})
        cache.put("key", dists)
        restored = cache.get("key")
        np.testing.assert_array_equal(restored.values(0, HpcEvent.CYCLES),
                                      [1.0, 2.0])

    def test_miss_returns_none(self, tmp_path):
        assert MeasurementCache(tmp_path).get("absent") is None

    def test_corrupt_entry_self_heals(self, tmp_path):
        cache = MeasurementCache(tmp_path)
        dists = EventDistributions(
            {0: {HpcEvent.CYCLES: np.array([1.0, 2.0])}})
        path = cache.put("key", dists)
        path.write_bytes(b"garbage")
        assert cache.get("key") is None
        assert not path.exists()

    def test_collect_uses_cache(self, tiny_trained_model, digits_dataset,
                                tmp_path):
        backend = SimBackend(tiny_trained_model, noise_scale=0.0)
        cache = MeasurementCache(tmp_path)
        session = MeasurementSession(backend, warmup=0, cache=cache)
        first = session.collect(digits_dataset, [0, 1], 3)
        counting = _CountingBackend(backend)
        session_cached = MeasurementSession(counting, warmup=0, cache=cache)
        second = session_cached.collect(digits_dataset, [0, 1], 3)
        assert counting.calls == 0  # everything served from cache
        for category in (0, 1):
            np.testing.assert_array_equal(
                first.values(category, HpcEvent.CYCLES),
                second.values(category, HpcEvent.CYCLES))

    def test_cache_key_respects_sample_count(self, tiny_trained_model,
                                             digits_dataset, tmp_path):
        backend = SimBackend(tiny_trained_model, noise_scale=0.0)
        cache = MeasurementCache(tmp_path)
        session = MeasurementSession(backend, warmup=0, cache=cache)
        three = session.collect(digits_dataset, [0], 3)
        four = session.collect(digits_dataset, [0], 4)
        assert three.sample_count(0) == 3
        assert four.sample_count(0) == 4


class _CountingBackend:
    """Delegating backend that counts measure() calls."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def measure(self, sample):
        self.calls += 1
        return self._inner.measure(sample)

    def fingerprint(self):
        return self._inner.fingerprint()

    @property
    def events(self):
        return self._inner.events
