"""Tests for MeasurementSession.stream (measure-and-evaluate-as-you-go)."""

import numpy as np
import pytest

from repro.core.evaluator import Evaluator
from repro.errors import MeasurementError
from repro.hpc import MeasurementSession, SimBackend
from repro.hpc.session import MeasurementCache


def assert_reports_match(stream_report, batch_report, rel=1e-9):
    assert len(stream_report.results) == len(batch_report.results)
    for got, want in zip(stream_report.results, batch_report.results):
        assert (got.event, got.category_a, got.category_b) == \
            (want.event, want.category_a, want.category_b)
        denom = max(abs(want.ttest.statistic), 1.0)
        assert abs(got.ttest.statistic - want.ttest.statistic) <= rel * denom
        assert got.distinguishable == want.distinguishable


class TestStream:
    def test_matches_one_shot_collect(self, tiny_trained_model,
                                      digits_dataset):
        # Absolute noise keys make the streamed rounds measure the exact
        # same values as one collect() pass, so the reports agree to
        # accumulator roundoff.
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=21)
        session = MeasurementSession(backend, warmup=2, cache=None)
        distributions = session.collect(digits_dataset, [0, 1, 2], 10)
        batch_report = Evaluator().evaluate(distributions)

        evaluator = session.stream(digits_dataset, [0, 1, 2], 10,
                                   batch_size=4)
        assert evaluator.ticks == 3  # rounds of 4, 4, 2
        assert [evaluator.samples_seen(c) for c in (0, 1, 2)] == [10] * 3
        assert_reports_match(evaluator.report(), batch_report)

    def test_parallel_stream_matches_sequential(self, tiny_trained_model,
                                                digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=22)
        session = MeasurementSession(backend, warmup=1, cache=None)
        sequential = session.stream(digits_dataset, [0, 1], 8, batch_size=4)
        parallel = session.stream(digits_dataset, [0, 1], 8, batch_size=4,
                                  workers=2)
        assert_reports_match(parallel.report(), sequential.report())
        assert parallel.ticks == sequential.ticks

    def test_on_tick_sees_every_round(self, tiny_trained_model,
                                      digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=23)
        session = MeasurementSession(backend, warmup=0, cache=None)
        ticks = []
        session.stream(digits_dataset, [0, 1], 9, batch_size=3,
                       on_tick=ticks.append)
        assert [t.tick for t in ticks] == [1, 2, 3]
        assert ticks[-1].samples == {0: 9, 1: 9}

    def test_resume_from_checkpoint_is_bit_exact(self, tiny_trained_model,
                                                 digits_dataset, tmp_path):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=24)

        # Ground truth: an uninterrupted stream with its own cache.
        whole_session = MeasurementSession(
            backend, warmup=1, cache=MeasurementCache(tmp_path / "whole"))
        whole = whole_session.stream(digits_dataset, [0, 1], 8, batch_size=2)

        # Interrupt after the second round's tick: round 1 is already
        # checkpointed, round 2's state is not yet written.
        class Boom(RuntimeError):
            pass

        def explode_on_second(tick):
            if tick.tick == 2:
                raise Boom()

        cache = MeasurementCache(tmp_path / "resumed")
        session = MeasurementSession(backend, warmup=1, cache=cache)
        with pytest.raises(Boom):
            session.stream(digits_dataset, [0, 1], 8, batch_size=2,
                           on_tick=explode_on_second)

        resumed_ticks = []
        resumed = session.stream(digits_dataset, [0, 1], 8, batch_size=2,
                                 on_tick=resumed_ticks.append)
        # Only the rounds after the checkpoint re-ran.
        assert [t.tick for t in resumed_ticks] == [2, 3, 4]
        for key, value in whole.state().items():
            assert np.array_equal(value, resumed.state()[key]), key
        assert resumed.alarm_latency() == whole.alarm_latency()

    def test_completed_stream_state_is_instant_resume(self, tiny_trained_model,
                                                      digits_dataset,
                                                      tmp_path):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=25)
        session = MeasurementSession(backend, warmup=0,
                                     cache=MeasurementCache(tmp_path))
        first = session.stream(digits_dataset, [0, 1], 6, batch_size=3)
        ticks = []
        again = session.stream(digits_dataset, [0, 1], 6, batch_size=3,
                               on_tick=ticks.append)
        assert ticks == []  # no rounds re-ran
        for key, value in first.state().items():
            assert np.array_equal(value, again.state()[key]), key

    def test_validations(self, tiny_trained_model, digits_dataset):
        backend = SimBackend(tiny_trained_model)
        session = MeasurementSession(backend, cache=None)
        with pytest.raises(MeasurementError):
            session.stream(digits_dataset, [0, 1], 1)
        with pytest.raises(MeasurementError):
            session.stream(digits_dataset, [0, 1], 4, batch_size=0)
        with pytest.raises(MeasurementError):
            session.stream(digits_dataset, [0, 1], 4, workers=0)
        with pytest.raises(MeasurementError):
            session.stream(digits_dataset, [0], 10_000)  # not enough data


class TestCollectOnBatch:
    def test_on_batch_feeds_every_category(self, tiny_trained_model,
                                           digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=26)
        session = MeasurementSession(backend, warmup=0, cache=None)
        fed = []
        distributions = session.collect(
            digits_dataset, [0, 1, 2], 5,
            on_batch=lambda category, readings: fed.append(
                (category, len(readings))))
        assert sorted(fed) == [(0, 5), (1, 5), (2, 5)]
        assert distributions.sample_count(0) == 5

    def test_on_batch_parallel_path(self, tiny_trained_model,
                                    digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=27)
        session = MeasurementSession(backend, warmup=0, cache=None)
        fed = {}
        session.collect(digits_dataset, [0, 1], 4, workers=2,
                        on_batch=lambda category, readings: fed.setdefault(
                            category, len(readings)))
        assert fed == {0: 4, 1: 4}
