"""Tests for SimBackend.measure_batch — the engine-backed batch front end.

Policy/scheme/cold-warm sweeps live in
``tests/uarch/test_engine_invariance.py``; this module covers the
backend-level behaviours around the batch call itself: auto key
assignment, noise-stream continuation, argument validation and the
packed noise draw.
"""

import numpy as np
import pytest

from repro.errors import BackendError
from repro.hpc.sim_backend import SimBackend


@pytest.fixture(scope="module")
def samples(digits_dataset):
    return [image for image in digits_dataset.category(1).images[:6]]


def assert_identical(want, got):
    assert len(want) == len(got)
    for a, b in zip(want, got):
        assert a.prediction == b.prediction
        assert all(a.counts[event] == b.counts[event] for event in a.counts)


class TestAutoKeys:
    def test_unkeyed_batch_matches_unkeyed_loop(self, tiny_trained_model,
                                                samples):
        # Unkeyed per-sample-scheme calls burn one auto index each; the
        # batch must consume the same indices in the same order.
        loop = SimBackend(tiny_trained_model)
        batch = SimBackend(tiny_trained_model)
        assert_identical([loop.measure(sample) for sample in samples],
                         batch.measure_batch(samples))
        # Auto index advanced equally: the next unkeyed call still agrees.
        assert_identical([loop.measure(samples[0])],
                         [batch.measure(samples[0])])


class TestStreamScheme:
    def test_stream_draws_stay_aligned_after_batch(self, tiny_trained_model,
                                                   samples):
        loop = SimBackend(tiny_trained_model, noise_scheme="stream")
        batch = SimBackend(tiny_trained_model, noise_scheme="stream")
        assert_identical([loop.measure(sample) for sample in samples],
                         batch.measure_batch(samples))
        # The sequential generator must have consumed the exact same
        # number of variates, so later measurements remain identical.
        assert_identical([loop.measure(samples[0])],
                         [batch.measure(samples[0])])


class TestNoiseScaleZero:
    def test_counts_are_exact(self, tiny_trained_model, samples):
        loop = SimBackend(tiny_trained_model, noise_scale=0.0)
        batch = SimBackend(tiny_trained_model, noise_scale=0.0)
        assert_identical([loop.measure(sample) for sample in samples],
                         batch.measure_batch(samples))


class TestValidation:
    def test_empty_batch(self, tiny_trained_model):
        assert SimBackend(tiny_trained_model).measure_batch([]) == []

    def test_keys_rejected_under_stream_scheme(self, tiny_trained_model,
                                               samples):
        backend = SimBackend(tiny_trained_model, noise_scheme="stream")
        with pytest.raises(BackendError):
            backend.measure_batch(samples[:2], noise_keys=[(0, 0), (0, 1)])

    def test_key_count_must_match(self, tiny_trained_model, samples):
        backend = SimBackend(tiny_trained_model)
        with pytest.raises(BackendError):
            backend.measure_batch(samples[:3], noise_keys=[(0, 0)])


class TestRetrySessionRouting:
    def test_retry_session_still_takes_batched_path(self, tiny_trained_model,
                                                    samples):
        # The default pipeline configures retries=3; a retry policy on a
        # deterministic backend must not silently kick the session back
        # to the per-sample loop.
        from repro.hpc import MeasurementSession
        from repro.resilience import RetryPolicy

        backend = SimBackend(tiny_trained_model)
        session = MeasurementSession(backend, warmup=0,
                                     retry=RetryPolicy(max_attempts=3))
        calls = []
        original = backend.measure
        backend.measure = lambda *a, **k: calls.append(1) or original(*a, **k)
        counts = session.measure_category(samples, category=0)
        assert not calls, "retry session fell back to the per-sample loop"

        plain = MeasurementSession(SimBackend(tiny_trained_model), warmup=0)
        want = plain.measure_category(samples, category=0)
        for a, b in zip(want, counts):
            assert all(a[event] == b[event] for event in a)

    def test_failing_batch_falls_back_to_retried_loop(self, tiny_trained_model,
                                                      samples):
        from repro.hpc import MeasurementSession
        from repro.resilience import RetryPolicy

        class BrokenBatchBackend(SimBackend):
            def measure_batch(self, batch, noise_keys=None):
                raise BackendError("injected batch failure")

        session = MeasurementSession(BrokenBatchBackend(tiny_trained_model),
                                     warmup=0,
                                     retry=RetryPolicy(max_attempts=3))
        counts = session.measure_category(samples, category=0)
        plain = MeasurementSession(SimBackend(tiny_trained_model), warmup=0)
        want = plain.measure_category(samples, category=0)
        for a, b in zip(want, counts):
            assert all(a[event] == b[event] for event in a)

    def test_failing_batch_without_retry_raises(self, tiny_trained_model,
                                                samples):
        from repro.hpc import MeasurementSession

        class BrokenBatchBackend(SimBackend):
            def measure_batch(self, batch, noise_keys=None):
                raise BackendError("injected batch failure")

        session = MeasurementSession(BrokenBatchBackend(tiny_trained_model),
                                     warmup=0)
        with pytest.raises(BackendError):
            session.measure_category(samples, category=0)


class TestPackedNoise:
    def test_packed_draw_equals_scalar_draws(self, tiny_trained_model,
                                             samples):
        # _noisy_packed must consume the generator bit stream exactly like
        # the per-event scalar path, so identical keys give identical
        # noise whichever path produced the measurement.
        backend = SimBackend(tiny_trained_model)
        key = (3, 7)
        want = backend.measure(samples[0], noise_key=key)
        got = backend.measure_batch([samples[0]], noise_keys=[key])[0]
        assert_identical([want], [got])
