"""Tests for repro.hpc.perf_backend.

Real hardware counters are rarely available in CI containers; the behaviour
tests run only where ``perf`` works, while the availability probing and
failure paths are always exercised.
"""

import pytest

from repro.errors import PerfUnavailableError
from repro.hpc import PerfBackend, perf_available
from repro.uarch import HpcEvent

PERF_OK = perf_available()


class TestAvailabilityProbe:
    def test_probe_returns_bool(self):
        assert isinstance(PERF_OK, bool)

    def test_probe_is_safe_to_repeat(self):
        assert perf_available() == PERF_OK

    def test_probe_handles_missing_binary(self, monkeypatch):
        monkeypatch.setattr("shutil.which", lambda name: None)
        assert perf_available() is False


@pytest.mark.skipif(PERF_OK, reason="perf works here; failure path untestable")
class TestUnavailableHost:
    def test_backend_construction_raises(self, tiny_trained_model):
        with pytest.raises(PerfUnavailableError):
            PerfBackend(tiny_trained_model)


@pytest.mark.skipif(not PERF_OK, reason="perf hardware counters unavailable")
class TestRealPerf:
    def test_measures_all_requested_events(self, tiny_trained_model,
                                           digits_dataset):
        backend = PerfBackend(tiny_trained_model,
                              events=(HpcEvent.CYCLES,
                                      HpcEvent.INSTRUCTIONS))
        try:
            measurement = backend.measure(digits_dataset.images[0])
            assert measurement.counts[HpcEvent.CYCLES] > 0
            assert measurement.counts[HpcEvent.INSTRUCTIONS] > 0
            assert 0 <= measurement.prediction < 10
        finally:
            backend.cleanup()

    def test_prediction_matches_local_model(self, tiny_trained_model,
                                            digits_dataset):
        backend = PerfBackend(tiny_trained_model,
                              events=(HpcEvent.CYCLES,))
        try:
            image = digits_dataset.images[0]
            measurement = backend.measure(image)
            assert measurement.prediction == (
                tiny_trained_model.classify_one(image))
        finally:
            backend.cleanup()
