"""Tests for repro.hpc.perf_backend.

Real hardware counters are rarely available in CI containers; the behaviour
tests run only where ``perf`` works, while the availability probing,
failure, and lifecycle paths are exercised everywhere by faking the
``perf stat`` subprocess.
"""

import subprocess
import types

import pytest

from repro.errors import PerfUnavailableError
from repro.hpc import PerfBackend, perf_available
from repro.resilience import RetryPolicy
from repro.uarch import HpcEvent

PERF_OK = perf_available()

#: Minimal well-formed ``perf stat -x,`` stderr for the probe's event set.
_GOOD_CSV = "12345,,cycles,1000,100.00,,\n"


def _fake_run(stdout="7\n", stderr=_GOOD_CSV, returncode=0):
    def run(argv, **kwargs):
        return types.SimpleNamespace(returncode=returncode, stdout=stdout,
                                     stderr=stderr)
    return run


@pytest.fixture()
def fake_perf(monkeypatch):
    """Make PerfBackend constructible and measurable without real perf."""
    monkeypatch.setattr("repro.hpc.perf_backend.perf_available",
                        lambda *a, **k: True)
    monkeypatch.setattr("subprocess.run", _fake_run())


class TestAvailabilityProbe:
    def test_probe_returns_bool(self):
        assert isinstance(PERF_OK, bool)

    def test_probe_is_safe_to_repeat(self):
        assert perf_available() == PERF_OK

    def test_probe_handles_missing_binary(self, monkeypatch):
        monkeypatch.setattr("shutil.which", lambda name: None)
        assert perf_available() is False


@pytest.mark.skipif(PERF_OK, reason="perf works here; failure path untestable")
class TestUnavailableHost:
    def test_backend_construction_raises(self, tiny_trained_model):
        with pytest.raises(PerfUnavailableError):
            PerfBackend(tiny_trained_model)


class TestFailurePaths:
    """Acquisition failures with a faked perf subprocess."""

    def test_timeout_becomes_retryable_error(self, fake_perf, monkeypatch,
                                             tiny_trained_model,
                                             digits_dataset):
        with PerfBackend(tiny_trained_model,
                         events=(HpcEvent.CYCLES,), timeout=3.0) as backend:
            def stall(argv, **kwargs):
                raise subprocess.TimeoutExpired(argv, 3.0)
            monkeypatch.setattr("subprocess.run", stall)
            with pytest.raises(PerfUnavailableError, match="timeout"):
                backend.measure(digits_dataset.images[0])

    def test_nonzero_exit_raises(self, fake_perf, monkeypatch,
                                 tiny_trained_model, digits_dataset):
        with PerfBackend(tiny_trained_model,
                         events=(HpcEvent.CYCLES,)) as backend:
            monkeypatch.setattr("subprocess.run",
                                _fake_run(returncode=1, stderr="boom"))
            with pytest.raises(PerfUnavailableError, match="rc=1"):
                backend.measure(digits_dataset.images[0])

    def test_garbage_csv_raises(self, fake_perf, monkeypatch,
                                tiny_trained_model, digits_dataset):
        with PerfBackend(tiny_trained_model,
                         events=(HpcEvent.CYCLES,)) as backend:
            monkeypatch.setattr(
                "subprocess.run",
                _fake_run(stderr="this is not,perf output at all"))
            with pytest.raises(Exception):
                backend.measure(digits_dataset.images[0])

    def test_retry_policy_rides_over_transient_failures(
            self, fake_perf, monkeypatch, tiny_trained_model, digits_dataset):
        calls = {"n": 0}
        good = _fake_run()

        def flaky_run(argv, **kwargs):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise subprocess.TimeoutExpired(argv, 1.0)
            return good(argv, **kwargs)

        retry = RetryPolicy(max_attempts=3, sleep=lambda _: None)
        with PerfBackend(tiny_trained_model, events=(HpcEvent.CYCLES,),
                         retry=retry) as backend:
            monkeypatch.setattr("subprocess.run", flaky_run)
            measurement = backend.measure(digits_dataset.images[0])
        assert measurement.prediction == 7
        assert calls["n"] == 3


class TestScratchDirLifecycle:
    def test_measure_leaves_no_sample_files(self, fake_perf,
                                            tiny_trained_model,
                                            digits_dataset):
        with PerfBackend(tiny_trained_model,
                         events=(HpcEvent.CYCLES,)) as backend:
            workdir = backend._workdir
            backend.measure(digits_dataset.images[0])
            backend.measure(digits_dataset.images[1])
            leftovers = [p.name for p in workdir.iterdir()
                         if p.name.startswith("sample-")]
            assert leftovers == []

    def test_failed_measure_leaves_no_sample_files(self, fake_perf,
                                                   monkeypatch,
                                                   tiny_trained_model,
                                                   digits_dataset):
        with PerfBackend(tiny_trained_model,
                         events=(HpcEvent.CYCLES,)) as backend:
            monkeypatch.setattr("subprocess.run",
                                _fake_run(returncode=1, stderr=""))
            with pytest.raises(PerfUnavailableError):
                backend.measure(digits_dataset.images[0])
            leftovers = [p.name for p in backend._workdir.iterdir()
                         if p.name.startswith("sample-")]
            assert leftovers == []

    def test_context_manager_removes_workdir(self, fake_perf,
                                             tiny_trained_model):
        with PerfBackend(tiny_trained_model,
                         events=(HpcEvent.CYCLES,)) as backend:
            workdir = backend._workdir
            assert workdir.is_dir()
        assert not workdir.exists()

    def test_cleanup_is_idempotent(self, fake_perf, tiny_trained_model):
        backend = PerfBackend(tiny_trained_model, events=(HpcEvent.CYCLES,))
        workdir = backend._workdir
        backend.cleanup()
        backend.cleanup()
        assert not workdir.exists()

    def test_garbage_collection_reclaims_workdir(self, fake_perf,
                                                 tiny_trained_model):
        backend = PerfBackend(tiny_trained_model, events=(HpcEvent.CYCLES,))
        workdir = backend._workdir
        finalizer = backend._finalizer
        del backend
        finalizer()  # what gc would eventually trigger
        assert not workdir.exists()

    def test_failed_init_does_not_leak_workdir(self, fake_perf, monkeypatch,
                                               tiny_trained_model):
        created = []
        import tempfile as _tempfile
        real_mkdtemp = _tempfile.mkdtemp

        def recording_mkdtemp(*args, **kwargs):
            path = real_mkdtemp(*args, **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr("tempfile.mkdtemp", recording_mkdtemp)
        monkeypatch.setattr("repro.hpc.perf_backend.save_model",
                            lambda *a, **k: (_ for _ in ()).throw(
                                OSError("disk full")))
        with pytest.raises(OSError):
            PerfBackend(tiny_trained_model, events=(HpcEvent.CYCLES,))
        assert len(created) == 1
        import pathlib
        assert not pathlib.Path(created[0]).exists()


@pytest.mark.skipif(not PERF_OK, reason="perf hardware counters unavailable")
class TestRealPerf:
    def test_measures_all_requested_events(self, tiny_trained_model,
                                           digits_dataset):
        backend = PerfBackend(tiny_trained_model,
                              events=(HpcEvent.CYCLES,
                                      HpcEvent.INSTRUCTIONS))
        try:
            measurement = backend.measure(digits_dataset.images[0])
            assert measurement.counts[HpcEvent.CYCLES] > 0
            assert measurement.counts[HpcEvent.INSTRUCTIONS] > 0
            assert 0 <= measurement.prediction < 10
        finally:
            backend.cleanup()

    def test_prediction_matches_local_model(self, tiny_trained_model,
                                            digits_dataset):
        backend = PerfBackend(tiny_trained_model,
                              events=(HpcEvent.CYCLES,))
        try:
            image = digits_dataset.images[0]
            measurement = backend.measure(image)
            assert measurement.prediction == (
                tiny_trained_model.classify_one(image))
        finally:
            backend.cleanup()
