"""Tests for MeasurementSession.collect_with_limited_pmu."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.hpc import MeasurementSession, SimBackend
from repro.uarch import ALL_EVENTS, HpcEvent
from repro.uarch.pmu import FIXED_EVENTS


@pytest.fixture(scope="module")
def limited_session(tiny_trained_model):
    backend = SimBackend(tiny_trained_model, noise_scale=0.0)
    return MeasurementSession(backend, warmup=0)


class TestLimitedPmuCollection:
    def test_all_events_collected_across_passes(self, limited_session,
                                                digits_dataset):
        dists = limited_session.collect_with_limited_pmu(
            digits_dataset, [0, 1], 4, programmable_counters=2)
        assert set(dists.events) == set(ALL_EVENTS)
        assert dists.sample_count(0) == 4

    def test_single_counter_still_works(self, limited_session,
                                        digits_dataset):
        dists = limited_session.collect_with_limited_pmu(
            digits_dataset, [0], 3, programmable_counters=1)
        assert set(dists.events) == set(ALL_EVENTS)

    def test_matches_unlimited_collection_with_zero_noise(
            self, limited_session, digits_dataset):
        # Deterministic backend: per-pass measurements of the same samples
        # must equal a one-pass collection value-for-value.
        full = limited_session.collect(digits_dataset, [0, 1], 4)
        limited = limited_session.collect_with_limited_pmu(
            digits_dataset, [0, 1], 4, programmable_counters=2)
        for category in (0, 1):
            for event in ALL_EVENTS:
                np.testing.assert_array_equal(
                    limited.values(category, event),
                    full.values(category, event))

    def test_fixed_events_measured_once(self, limited_session,
                                        digits_dataset):
        dists = limited_session.collect_with_limited_pmu(
            digits_dataset, [0], 3, programmable_counters=2)
        for event in FIXED_EVENTS:
            assert event in dists.events

    def test_rejects_zero_counters(self, limited_session, digits_dataset):
        with pytest.raises(MeasurementError):
            limited_session.collect_with_limited_pmu(
                digits_dataset, [0], 3, programmable_counters=0)

    def test_rejects_insufficient_samples(self, limited_session,
                                          digits_dataset):
        with pytest.raises(MeasurementError):
            limited_session.collect_with_limited_pmu(
                digits_dataset, [0], 10_000)
