"""Stream interruption: drift wiring, graceful stop, lossless resume."""

import os
import signal

import numpy as np
import pytest

from repro.core.drift import DriftMonitor
from repro.errors import MeasurementError
from repro.hpc import MeasurementSession, SimBackend
from repro.hpc.session import MeasurementCache
from repro.resilience import GracefulShutdown

from .test_session_stream import assert_reports_match


class TestStreamDrift:
    def test_drift_monitor_sees_every_row(self, tiny_trained_model,
                                          digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=31)
        session = MeasurementSession(backend, warmup=0, cache=None)
        drift = DriftMonitor(window=6, threshold=1000.0)  # never alarms
        evaluator = session.stream(digits_dataset, [0, 1], 10,
                                   batch_size=5, drift=drift)
        # Windows hold min(stream, window) rows per category.
        assert sorted(drift._windows) == [0, 1]
        for category in (0, 1):
            assert drift._windows[category].count == 6
            assert drift._windows[category].total_seen == 10
        assert not drift.alarm
        assert evaluator.ticks == 2

    def test_drift_needs_in_process_measurement(self, tiny_trained_model,
                                                digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=32)
        session = MeasurementSession(backend, warmup=0, cache=None)
        with pytest.raises(MeasurementError, match="workers=1"):
            session.stream(digits_dataset, [0, 1], 8, batch_size=4,
                           workers=2, drift=DriftMonitor())

    def test_drift_baseline_is_evaluator_state(self, tiny_trained_model,
                                               digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=33)
        session = MeasurementSession(backend, warmup=0, cache=None)
        drift = DriftMonitor(window=4, threshold=1000.0)
        evaluator = session.stream(digits_dataset, [0, 1], 8,
                                   batch_size=4, drift=drift)
        # The monitor's window content must be the tail of what the
        # evaluator accumulated (same rows, same order, same values).
        window = drift._windows[0].window()
        assert window.shape == (4, len(evaluator.events))
        assert evaluator.samples_seen(0) == 8


class TestGracefulStop:
    def test_should_stop_ends_at_round_boundary(self, tiny_trained_model,
                                                digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=34)
        session = MeasurementSession(backend, warmup=0, cache=None)
        rounds = []

        def stop_after_two():
            return len(rounds) >= 2

        evaluator = session.stream(digits_dataset, [0, 1], 12, batch_size=3,
                                   on_tick=rounds.append,
                                   should_stop=stop_after_two)
        assert evaluator.ticks == 2
        assert evaluator.samples_seen(0) == 6  # two of four rounds ran

    def test_killed_then_resumed_loses_no_samples(self, tiny_trained_model,
                                                  digits_dataset, tmp_path):
        """The satellite's contract: SIGTERM mid-stream, resume, and the
        final verdicts are bit-identical to an uninterrupted run."""
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=35)

        whole_session = MeasurementSession(
            backend, warmup=0, cache=MeasurementCache(tmp_path / "whole"))
        whole = whole_session.stream(digits_dataset, [0, 1], 12,
                                     batch_size=3)

        cache = MeasurementCache(tmp_path / "resumed")
        session = MeasurementSession(backend, warmup=0, cache=cache)
        ticks = []

        with GracefulShutdown() as stop:
            def deliver_sigterm(tick):
                ticks.append(tick)
                if tick.tick == 2:
                    # A real signal, exactly what `kill <pid>` delivers.
                    os.kill(os.getpid(), signal.SIGTERM)

            interrupted = session.stream(digits_dataset, [0, 1], 12,
                                         batch_size=3,
                                         on_tick=deliver_sigterm,
                                         should_stop=stop)
        assert stop.requested
        assert interrupted.ticks == 2
        assert interrupted.samples_seen(0) == 6

        # Resume: rounds 1-2 come from the checkpoint, 3-4 are measured.
        resumed = session.stream(digits_dataset, [0, 1], 12, batch_size=3)
        assert resumed.samples_seen(0) == 12
        assert resumed.ticks == whole.ticks
        assert_reports_match(resumed.report(), whole.report(), rel=0.0)
        assert ([r.to_dict() for r in resumed.alarm_latency()]
                == [r.to_dict() for r in whole.alarm_latency()])

    def test_stop_before_first_round_measures_nothing(
            self, tiny_trained_model, digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=36)
        session = MeasurementSession(backend, warmup=0, cache=None)
        evaluator = session.stream(digits_dataset, [0, 1], 8, batch_size=4,
                                   should_stop=lambda: True)
        assert evaluator.ticks == 0
        assert evaluator.samples_seen(0) == 0
