"""Tests for repro.hpc.parse (perf stat CSV parsing)."""

import pytest

from repro.errors import BackendError
from repro.hpc import build_perf_command, parse_perf_stat_csv
from repro.uarch import HpcEvent

SAMPLE_OUTPUT = """\
# started on Mon Jul  6 12:00:00 2026

226770129,,branches,401528361,100.00,,
6246087,,branch-misses,401528361,100.00,,
61954576,,bus-cycles,401528361,100.00,,
8364694,,cache-misses,401528361,100.00,,
63415934,,cache-references,401528361,100.00,,
1622128035,,cycles,401528361,100.00,,
1209422281,,instructions,401528361,100.00,,
1599201092,,ref-cycles,401528361,100.00,,
"""


class TestParsing:
    def test_full_event_set(self):
        result = parse_perf_stat_csv(SAMPLE_OUTPUT)
        assert result.counts[HpcEvent.CACHE_MISSES] == 8364694
        assert result.counts[HpcEvent.BRANCHES] == 226770129
        assert len(result.counts) == 8
        assert result.multiplex_fraction[HpcEvent.CYCLES] == 100.0

    def test_not_counted_and_not_supported(self):
        text = ("<not counted>,,cache-misses,0,0.00,,\n"
                "<not supported>,,ref-cycles,0,0.00,,\n"
                "123,,cycles,100,100.00,,\n")
        result = parse_perf_stat_csv(text)
        assert HpcEvent.CACHE_MISSES in result.not_counted
        assert HpcEvent.REF_CYCLES in result.not_supported
        assert result.counts[HpcEvent.CYCLES] == 123

    def test_event_modifiers_stripped(self):
        result = parse_perf_stat_csv("55,,cycles:u,10,100.00,,\n")
        assert result.counts[HpcEvent.CYCLES] == 55

    def test_unknown_events_skipped(self):
        text = ("10,,cycles,5,100.00,,\n"
                "77,,weird-vendor-event,5,100.00,,\n")
        result = parse_perf_stat_csv(text)
        assert len(result.counts) == 1

    def test_comments_and_blank_lines_skipped(self):
        result = parse_perf_stat_csv("# comment\n\n12,,cycles,5,100.00,,\n")
        assert result.counts[HpcEvent.CYCLES] == 12

    def test_custom_separator(self):
        result = parse_perf_stat_csv("1234;;cycles;5;100.00", separator=";")
        assert result.counts[HpcEvent.CYCLES] == 1234
        assert result.multiplex_fraction[HpcEvent.CYCLES] == 100.0

    def test_garbage_value_rejected(self):
        with pytest.raises(BackendError):
            parse_perf_stat_csv("abc,,cycles,5,100.00,,\n")

    def test_empty_output_rejected(self):
        with pytest.raises(BackendError):
            parse_perf_stat_csv("# nothing here\n")


class TestCommandBuilder:
    def test_pid_attach_form(self):
        argv = build_perf_command([HpcEvent.CACHE_MISSES], pid=1234)
        assert argv[:2] == ["perf", "stat"]
        assert "-p" in argv
        assert "1234" in argv
        assert "cache-misses" in argv[argv.index("-e") + 1]

    def test_command_form(self):
        argv = build_perf_command([HpcEvent.CYCLES, HpcEvent.BRANCHES],
                                  command=["true"])
        assert argv[-1] == "true"
        assert "--" in argv
        assert "cycles,branches" == argv[argv.index("-e") + 1]

    def test_exactly_one_target_required(self):
        with pytest.raises(BackendError):
            build_perf_command([HpcEvent.CYCLES])
        with pytest.raises(BackendError):
            build_perf_command([HpcEvent.CYCLES], pid=1, command=["true"])
