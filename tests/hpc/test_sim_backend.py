"""Tests for repro.hpc.sim_backend."""

import numpy as np
import pytest

from repro.errors import BackendError
from repro.hpc import SimBackend
from repro.trace import TraceConfig
from repro.uarch import CpuConfig, HpcEvent


@pytest.fixture(scope="module")
def backend_factory(request):
    def make(model, **kwargs):
        return SimBackend(model, **kwargs)
    return make


class TestMeasurement:
    def test_measure_returns_prediction_and_counts(self, tiny_trained_model,
                                                   digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=0.0)
        measurement = backend.measure(digits_dataset.images[0])
        assert 0 <= measurement.prediction < 10
        assert len(measurement.counts) == 8

    def test_zero_noise_is_deterministic(self, tiny_trained_model,
                                         digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=0.0)
        image = digits_dataset.images[0]
        assert backend.measure(image).counts == backend.measure(image).counts

    def test_noise_perturbs_counts(self, tiny_trained_model, digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=1)
        image = digits_dataset.images[0]
        a = backend.measure(image).counts
        b = backend.measure(image).counts
        assert a != b

    def test_noise_is_small_relative_to_counts(self, tiny_trained_model,
                                               digits_dataset):
        image = digits_dataset.images[0]
        clean = SimBackend(tiny_trained_model, noise_scale=0.0).measure(image)
        noisy = SimBackend(tiny_trained_model, noise_scale=1.0,
                           seed=2).measure(image)
        for event in clean.counts:
            reference = clean.counts[event]
            assert abs(noisy.counts[event] - reference) < max(
                0.05 * reference, 50_000)

    def test_measure_clean_bypasses_noise(self, tiny_trained_model,
                                          digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=3)
        image = digits_dataset.images[0]
        assert (backend.measure_clean(image).counts
                == backend.measure_clean(image).counts)

    def test_reset_noise_reproduces_stream(self, tiny_trained_model,
                                           digits_dataset):
        backend = SimBackend(tiny_trained_model, seed=4)
        image = digits_dataset.images[0]
        first = [backend.measure(image).counts for _ in range(3)]
        backend.reset_noise()
        second = [backend.measure(image).counts for _ in range(3)]
        assert first == second

    def test_noise_profile_override(self, tiny_trained_model, digits_dataset):
        quiet = SimBackend(
            tiny_trained_model, seed=5,
            noise_profile={event: 0.0 for event in HpcEvent})
        image = digits_dataset.images[0]
        a = quiet.measure(image).counts
        b = quiet.measure(image).counts
        # Relative noise zeroed; only the additive floor remains.
        for event in (HpcEvent.BRANCHES, HpcEvent.INSTRUCTIONS):
            assert abs(a[event] - b[event]) < 5000

    def test_measure_many(self, tiny_trained_model, digits_dataset):
        backend = SimBackend(tiny_trained_model)
        results = backend.measure_many(digits_dataset.images[:3])
        assert len(results) == 3

    def test_rejects_negative_noise(self, tiny_trained_model):
        with pytest.raises(BackendError):
            SimBackend(tiny_trained_model, noise_scale=-1.0)


class TestNoiseSchemes:
    def test_keyed_measurement_is_pure(self, tiny_trained_model,
                                       digits_dataset):
        backend = SimBackend(tiny_trained_model, seed=6)
        image = digits_dataset.images[0]
        assert (backend.measure(image, noise_key=(2, 7)).counts
                == backend.measure(image, noise_key=(2, 7)).counts)

    def test_keyed_noise_independent_of_order(self, tiny_trained_model,
                                              digits_dataset):
        image = digits_dataset.images[0]
        keys = [(0, 0), (0, 1), (1, 0), (1, 1)]
        backend = SimBackend(tiny_trained_model, seed=6)
        forward = {key: backend.measure(image, noise_key=key).counts
                   for key in keys}
        backend = SimBackend(tiny_trained_model, seed=6)
        backward = {key: backend.measure(image, noise_key=key).counts
                    for key in reversed(keys)}
        assert forward == backward

    def test_distinct_keys_draw_distinct_noise(self, tiny_trained_model,
                                               digits_dataset):
        backend = SimBackend(tiny_trained_model, seed=6)
        image = digits_dataset.images[0]
        assert (backend.measure(image, noise_key=(0, 0)).counts
                != backend.measure(image, noise_key=(0, 1)).counts)

    def test_stream_scheme_reproduces_sequentially(self, tiny_trained_model,
                                                   digits_dataset):
        image = digits_dataset.images[0]
        first = SimBackend(tiny_trained_model, seed=6,
                           noise_scheme="stream")
        second = SimBackend(tiny_trained_model, seed=6,
                            noise_scheme="stream")
        for _ in range(3):
            assert first.measure(image).counts == second.measure(image).counts

    def test_stream_scheme_rejects_noise_keys(self, tiny_trained_model,
                                              digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scheme="stream")
        with pytest.raises(BackendError):
            backend.measure(digits_dataset.images[0], noise_key=(0, 0))

    def test_rejects_unknown_scheme(self, tiny_trained_model):
        with pytest.raises(BackendError):
            SimBackend(tiny_trained_model, noise_scheme="bogus")

    def test_supports_noise_keys_flag(self, tiny_trained_model):
        assert SimBackend(tiny_trained_model).supports_noise_keys
        assert not SimBackend(tiny_trained_model,
                              noise_scheme="stream").supports_noise_keys

    def test_scheme_changes_fingerprint(self, tiny_trained_model):
        per_sample = SimBackend(tiny_trained_model, seed=7).fingerprint()
        stream = SimBackend(tiny_trained_model, seed=7,
                            noise_scheme="stream").fingerprint()
        assert per_sample != stream


class TestFingerprint:
    def test_stable_for_same_configuration(self, tiny_trained_model):
        a = SimBackend(tiny_trained_model, seed=7)
        b = SimBackend(tiny_trained_model, seed=7)
        assert a.fingerprint() == b.fingerprint()

    def test_changes_with_seed_and_configs(self, tiny_trained_model):
        base = SimBackend(tiny_trained_model, seed=7).fingerprint()
        assert SimBackend(tiny_trained_model, seed=8).fingerprint() != base
        assert SimBackend(tiny_trained_model, seed=7,
                          trace_config=TraceConfig(dense_stride=2)
                          ).fingerprint() != base
        assert SimBackend(tiny_trained_model, seed=7,
                          cpu_config=CpuConfig(base_cpi=2000)
                          ).fingerprint() != base

    def test_describe_mentions_configuration(self, tiny_trained_model):
        text = SimBackend(tiny_trained_model).describe()
        assert "sim backend" in text
        assert "L1D" in text


class TestEngines:
    def test_engine_reaches_traced_inference(self, tiny_trained_model):
        backend = SimBackend(tiny_trained_model, engine="layers")
        assert backend.engine == "layers"
        assert backend.traced.engine == "layers"
        assert SimBackend(tiny_trained_model).traced.engine == "compiled"

    def test_rejects_unknown_engine(self, tiny_trained_model):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            SimBackend(tiny_trained_model, engine="bogus")

    def test_measurements_engine_invariant(self, tiny_trained_model,
                                           digits_dataset):
        compiled = SimBackend(tiny_trained_model, noise_scale=0.0)
        layers = SimBackend(tiny_trained_model, noise_scale=0.0,
                            engine="layers")
        for image in digits_dataset.images[:4]:
            mc = compiled.measure_clean(image)
            ml = layers.measure_clean(image)
            assert mc.prediction == ml.prediction
            assert mc.counts == ml.counts
        batch = digits_dataset.images[:4]
        for mc, ml in zip(compiled.measure_clean_batch(batch),
                          layers.measure_clean_batch(batch)):
            assert mc.prediction == ml.prediction
            assert mc.counts == ml.counts

    def test_fingerprint_engine_invariant(self, tiny_trained_model):
        # The engine never changes measured values, so cached artifacts
        # must remain valid across engines.
        assert (SimBackend(tiny_trained_model).fingerprint()
                == SimBackend(tiny_trained_model,
                              engine="layers").fingerprint())
