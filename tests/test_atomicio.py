"""Tests for the centralized atomic-write discipline (repro.atomicio)."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro import atomicio
from repro.atomicio import (
    atomic_write,
    atomic_write_bytes,
    atomic_write_text,
    sweep_stale_temps,
    temp_path_for,
)


@pytest.fixture(autouse=True)
def fresh_sweep_registry():
    """Each test sees an unswept world (the registry is process-global)."""
    saved = set(atomicio._SWEPT)
    atomicio._SWEPT.clear()
    yield
    atomicio._SWEPT.clear()
    atomicio._SWEPT.update(saved)


class TestAtomicWrite:
    def test_publishes_final_file_and_removes_temp(self, tmp_path):
        target = tmp_path / "artifact.json"
        result = atomic_write_text(target, '{"ok": true}\n')
        assert result == target
        assert target.read_text() == '{"ok": true}\n'
        assert not temp_path_for(target).exists()
        assert list(tmp_path.iterdir()) == [target]

    def test_bytes_writer_round_trips_npz(self, tmp_path):
        target = tmp_path / "arrays.npz"
        payload = {"a": np.arange(5.0), "b": np.eye(2)}
        atomic_write_bytes(target,
                           lambda stream: np.savez(stream, **payload))
        with np.load(target) as data:
            assert np.array_equal(data["a"], payload["a"])
            assert np.array_equal(data["b"], payload["b"])

    def test_failed_writer_leaves_no_temp_and_no_target(self, tmp_path):
        # Fault injection: the payload writer dies mid-write.  The old
        # copy-pasted writers leaked `.tmp-{pid}` here before the
        # discipline grew its `finally`.
        target = tmp_path / "broken.npz"

        def explode(stream):
            stream.write(b"partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError, match="disk on fire"):
            atomic_write_bytes(target, explode)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_failed_writer_preserves_previous_version(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "v1")

        def explode(temp):
            temp.write_text("v2-partial")
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            atomic_write(target, explode)
        assert target.read_text() == "v1"
        assert not temp_path_for(target).exists()


class TestStaleTempSweep:
    def test_dead_pid_orphan_is_swept(self, tmp_path):
        # A real process that has exited: its pid is guaranteed dead.
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        orphan = tmp_path / f"artifact.npz.tmp-{dead.pid}"
        orphan.write_bytes(b"torn half-write from a SIGKILL'd process")
        assert sweep_stale_temps(tmp_path) == 1
        assert not orphan.exists()

    def test_live_pid_temp_is_preserved(self, tmp_path):
        # PID 1 is always alive (init/container entrypoint) and never us.
        live = tmp_path / "artifact.npz.tmp-1"
        live.write_bytes(b"concurrent writer in flight")
        assert sweep_stale_temps(tmp_path) == 0
        assert live.exists()

    def test_own_pid_leftover_is_swept(self, tmp_path):
        # Our own pid's leftover predates this call by construction, so
        # it is garbage even though the pid is alive.
        stale = tmp_path / f"artifact.npz.tmp-{os.getpid()}"
        stale.write_bytes(b"leftover")
        assert sweep_stale_temps(tmp_path) == 1
        assert not stale.exists()

    def test_sweep_runs_once_per_directory(self, tmp_path):
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        orphan = tmp_path / f"a.tmp-{dead.pid}"
        orphan.write_bytes(b"x")
        assert sweep_stale_temps(tmp_path) == 1
        orphan.write_bytes(b"x")
        # Second call is a no-op unless forced.
        assert sweep_stale_temps(tmp_path) == 0
        assert orphan.exists()
        assert sweep_stale_temps(tmp_path, force=True) == 1

    def test_first_atomic_write_sweeps_directory(self, tmp_path):
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        orphan = tmp_path / f"old.npz.tmp-{dead.pid}"
        orphan.write_bytes(b"torn")
        atomic_write_text(tmp_path / "fresh.txt", "hello")
        assert not orphan.exists()

    def test_non_temp_files_never_touched(self, tmp_path):
        keep = tmp_path / "data.npz"
        keep.write_bytes(b"real artifact")
        odd = tmp_path / "notes.tmp-abc"  # non-numeric: not our pattern
        odd.write_bytes(b"something else")
        sweep_stale_temps(tmp_path)
        assert keep.exists() and odd.exists()

    def test_missing_directory_is_noop(self, tmp_path):
        assert sweep_stale_temps(tmp_path / "nope") == 0

    def test_sweep_skips_in_flight_temp_of_own_process(self, tmp_path):
        # Regression: temp names carry only the pid, so a sweep racing a
        # sibling thread's in-flight write into the same directory used
        # to unlink its live temp and fail its os.replace.  The write
        # registers its temp; a sweep during the write must skip it.
        target = tmp_path / "artifact.txt"

        def writer(temp):
            temp.write_text("payload")
            assert sweep_stale_temps(tmp_path, force=True) == 0
            assert temp.exists()

        atomic_write(target, writer)
        assert target.read_text() == "payload"

    def test_relative_and_absolute_spellings_sweep_once(self, tmp_path,
                                                        monkeypatch):
        # Regression: the once-per-directory registry compared
        # unnormalized Paths, so "dir" and "/abs/dir" swept twice.
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        sub = tmp_path / "cache"
        sub.mkdir()
        orphan = sub / f"a.npz.tmp-{dead.pid}"
        orphan.write_bytes(b"torn")
        monkeypatch.chdir(tmp_path)
        assert sweep_stale_temps("cache") == 1
        orphan.write_bytes(b"torn")
        assert sweep_stale_temps(sub) == 0  # absolute spelling: no resweep
        assert orphan.exists()


class TestTraceStoreLeakRegression:
    def test_failed_save_leaves_store_dir_clean(self, tmp_path, monkeypatch):
        # Regression: a crash inside np.savez used to orphan the temp
        # file in the store directory.
        from repro.attack.trace_store import TraceStore
        from repro.attack import trace_store as store_module

        store = TraceStore(tmp_path / "store")

        def explode(stream, **arrays):
            stream.write(b"partial")
            raise OSError("ENOSPC")

        monkeypatch.setattr(store_module.np, "savez", explode)
        with pytest.raises(OSError):
            store.put("run1", [])
        leftovers = list((tmp_path / "store").glob("*.tmp-*"))
        assert leftovers == []
