"""Tests for run reports and the merge-determinism metric filter."""

import json

from repro import obs
from repro.obs import TelemetryConfig
from repro.obs.report import (
    RUN_REPORT_SCHEMA_VERSION,
    build_run_report,
    capture_environment,
    deterministic_metric_records,
    write_run_report,
)


def _record(name, kind="counter", labels=None, **extra):
    base = {"type": "metric", "kind": kind, "name": name,
            "labels": labels or {}, "value": 1.0}
    base.update(extra)
    return base


class TestDeterministicFilter:
    def test_keeps_data_counters(self):
        records = [
            _record("measurement.samples", labels={"category": "0"}),
            _record("ttest.pairs"),
            _record("ttest.category_rejections", labels={"category": "1"}),
            _record("cache.hit", labels={"kind": "measurement"}),
        ]
        assert deterministic_metric_records(records) == sorted(
            records, key=lambda r: r["name"])

    def test_drops_topology_and_timing_records(self):
        dropped = [
            _record("measure.chunk"),
            _record("parallel.workers", kind="gauge"),
            _record("supervisor.restart"),
            _record("engine.compile"),
            _record("profile.cpu_s", kind="histogram"),
            _record("backend.measure_ns", kind="histogram"),
            _record("pipeline.stage_s", kind="histogram"),
            _record("train.step", kind="histogram"),
            _record("faults.injected", labels={"kind": "timeout"}),
            _record("retry.attempt"),
        ]
        assert deterministic_metric_records(dropped) == []

    def test_output_is_sorted_by_name_and_labels(self):
        records = [
            _record("b.counter"),
            _record("a.counter", labels={"x": "2"}),
            _record("a.counter", labels={"x": "1"}),
        ]
        names = [(r["name"], r["labels"]) for r in
                 deterministic_metric_records(records)]
        assert names == [("a.counter", {"x": "1"}),
                         ("a.counter", {"x": "2"}),
                         ("b.counter", {})]


class TestEnvironmentCapture:
    def test_baseline_fields(self):
        env = capture_environment()
        assert env["cpu_count"] >= 1
        assert env["python"]
        assert env["repro_version"]
        assert "start_method" in env

    def test_config_fields(self):
        from repro.core.experiment import ExperimentConfig
        config = ExperimentConfig(workers=2, cache_dir="")
        env = capture_environment(config)
        assert env["workers"] == 2
        assert env["dataset"] == "mnist"
        assert env["model_fingerprint"] == config.model_key()


class TestRunReport:
    def test_build_and_write_round_trip(self, tmp_path):
        with obs.session(TelemetryConfig(enabled=True, console=False,
                                         profile=True)) as runtime:
            with obs.span("experiment.run"):
                with obs.span("experiment.measure") as span:
                    from repro.obs.profiling import profile_stage
                    with profile_stage("measure", span=span):
                        obs.inc("measurement.samples", 5, category=0)
            snapshot = runtime.snapshot()
        report = build_run_report(snapshot)
        assert report["schema"] == RUN_REPORT_SCHEMA_VERSION
        assert report["environment"]["cpu_count"] >= 1
        assert report["spans"][0]["name"] == "experiment.run"
        assert report["spans"][0]["children"][0]["name"] == \
            "experiment.measure"
        assert "measure" in report["profile"]
        assert "cpu_s" in report["profile"]["measure"]
        names = {r["name"] for r in report["deterministic_metrics"]}
        assert "measurement.samples" in names
        assert not any(name.startswith("profile.") for name in names)
        path = write_run_report(report, tmp_path / "RUN_REPORT.json")
        loaded = json.loads(path.read_text())
        assert loaded["type"] == "run_report"
        assert loaded["schema"] == report["schema"]

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path):
        path = write_run_report({"type": "run_report", "schema": 1},
                                tmp_path / "deep" / "RUN_REPORT.json")
        assert path.exists()
        assert list(path.parent.iterdir()) == [path]


class TestStreamingSection:
    def test_schema_bumped_for_streaming(self):
        assert RUN_REPORT_SCHEMA_VERSION >= 2

    def test_streaming_section_passthrough(self):
        with obs.session(TelemetryConfig(enabled=True,
                                         console=False)) as runtime:
            obs.inc("stream.ticks", 3)
            snapshot = runtime.snapshot()
        section = {"stream_schema": 1, "batch_size": 10, "ticks": 3,
                   "alarm": True, "detections": [], "memory_bytes": 512}
        report = build_run_report(snapshot, streaming=section)
        assert report["streaming"] == section
        # stream.* counters count what was computed, so they fall under
        # the merge-determinism guarantee.
        names = {r["name"] for r in report["deterministic_metrics"]}
        assert "stream.ticks" in names

    def test_streaming_omitted_by_default(self):
        with obs.session(TelemetryConfig(enabled=True,
                                         console=False)) as runtime:
            snapshot = runtime.snapshot()
        assert "streaming" not in build_run_report(snapshot)
