"""Tests for per-stage resource profiling."""

import tracemalloc

from repro import obs
from repro.obs import TelemetryConfig
from repro.obs.profiling import profile_stage, profiling_enabled, rss_peak_kb


class TestProfileStage:
    def test_records_histograms_and_annotates_span(self):
        with obs.session(TelemetryConfig(enabled=True, console=False,
                                         profile=True)) as runtime:
            assert profiling_enabled()
            with obs.span("stage") as span:
                with profile_stage("stage", span=span):
                    _ = [bytearray(4096) for _ in range(64)]
            snapshot = runtime.snapshot()
        names = {r["name"] for r in snapshot.metrics
                 if r["kind"] == "histogram"}
        assert {"profile.cpu_s", "profile.tracemalloc_peak_kb"} <= names
        alloc = next(r for r in snapshot.metrics
                     if r["name"] == "profile.tracemalloc_peak_kb")
        assert alloc["labels"] == {"stage": "stage"}
        assert alloc["count"] == 1
        assert alloc["max"] >= 4096 * 64 / 1024.0 * 0.5  # at least most of it
        assert "profile.cpu_s" in span.attributes
        assert "profile.tracemalloc_peak_kb" in span.attributes

    def test_noop_without_profile_flag(self):
        with obs.session(TelemetryConfig(enabled=True, console=False,
                                         profile=False)) as runtime:
            assert not profiling_enabled()
            with profile_stage("stage"):
                pass
            assert runtime.snapshot().metrics == []

    def test_noop_when_telemetry_disabled(self):
        with obs.session(TelemetryConfig(enabled=False)):
            assert not profiling_enabled()
            with profile_stage("stage"):
                pass

    def test_stops_tracemalloc_it_started(self):
        assert not tracemalloc.is_tracing()
        with obs.session(TelemetryConfig(enabled=True, console=False,
                                         profile=True)):
            with profile_stage("stage"):
                assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()

    def test_leaves_foreign_tracemalloc_running(self):
        tracemalloc.start()
        try:
            with obs.session(TelemetryConfig(enabled=True, console=False,
                                             profile=True)):
                with profile_stage("stage"):
                    pass
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_rss_peak_is_positive_where_supported(self):
        peak = rss_peak_kb()
        assert peak is None or peak > 0

    def test_profile_env_var_implies_enabled(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_ENABLED, raising=False)
        monkeypatch.delenv(obs.ENV_OUT, raising=False)
        monkeypatch.setenv(obs.ENV_PROFILE, "1")
        config = TelemetryConfig.from_env()
        assert config.enabled and config.profile

    def test_progress_env_var_does_not_imply_enabled(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_ENABLED, raising=False)
        monkeypatch.delenv(obs.ENV_OUT, raising=False)
        monkeypatch.delenv(obs.ENV_PROFILE, raising=False)
        monkeypatch.setenv(obs.ENV_PROGRESS, "1")
        config = TelemetryConfig.from_env()
        assert config.progress and not config.enabled
