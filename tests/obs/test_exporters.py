"""Tests for telemetry exporters: JSONL round-trip, in-memory, console."""

import pytest

from repro import obs
from repro.obs import (
    ConsoleExporter,
    InMemoryExporter,
    JsonlExporter,
    TelemetryConfig,
    read_jsonl,
)


@pytest.fixture()
def populated_runtime():
    """An enabled runtime with one span tree and a few metrics."""
    with obs.session(TelemetryConfig(enabled=True, console=False)) as runtime:
        with obs.span("experiment.run", dataset="mnist"):
            with obs.span("experiment.train"):
                obs.set_gauge("train.loss", 0.25)
            with obs.span("experiment.measure"):
                obs.inc("cache.miss", kind="measurement")
                obs.observe("backend.measure_ns", 1000.0, backend="sim")
        yield runtime


class TestSnapshot:
    def test_records_flatten_spans_then_metrics(self, populated_runtime):
        snapshot = populated_runtime.snapshot()
        records = snapshot.records()
        span_records = [r for r in records if r["type"] == "span"]
        metric_records = [r for r in records if r["type"] == "metric"]
        assert [r["name"] for r in span_records] == [
            "experiment.run", "experiment.train", "experiment.measure"]
        assert {r["name"] for r in metric_records} == {
            "train.loss", "cache.miss", "backend.measure_ns"}

    def test_find_spans_and_counter_value(self, populated_runtime):
        snapshot = populated_runtime.snapshot()
        assert len(snapshot.find_spans("experiment.train")) == 1
        assert snapshot.counter_value("cache.miss") == 1.0
        assert snapshot.counter_value("cache.miss", kind="measurement") == 1.0
        assert snapshot.counter_value("cache.miss", kind="model") == 0.0


class TestJsonl:
    def test_round_trip(self, populated_runtime, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        JsonlExporter(path).export(populated_runtime.snapshot())
        records = read_jsonl(path)
        assert all(isinstance(r, dict) for r in records)
        spans = [r for r in records if r["type"] == "span"]
        root = next(r for r in spans if r["parent_id"] is None)
        assert root["name"] == "experiment.run"
        assert root["attributes"] == {"dataset": "mnist"}
        children = [r for r in spans if r["parent_id"] == root["id"]]
        assert {r["name"] for r in children} == {
            "experiment.train", "experiment.measure"}
        assert all(r["wall_s"] >= 0.0 for r in spans)

    def test_export_appends(self, populated_runtime, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        exporter = JsonlExporter(path)
        exporter.export(populated_runtime.snapshot())
        first = len(read_jsonl(path))
        exporter.export(populated_runtime.snapshot())
        assert len(read_jsonl(path)) == 2 * first

    def test_flush_writes_configured_sink(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with obs.session(TelemetryConfig(enabled=True, console=False,
                                         jsonl_path=str(path))):
            with obs.span("stage"):
                obs.inc("events")
            obs.flush()
        names = {r["name"] for r in read_jsonl(path)}
        assert names == {"stage", "events"}


class TestInMemory:
    def test_sink_collects_snapshots(self, populated_runtime):
        sink = InMemoryExporter()
        populated_runtime.exporters.append(sink)
        populated_runtime.flush()
        populated_runtime.flush()
        assert len(sink.snapshots) == 2
        assert sink.last.counter_value("cache.miss") == 1.0
        assert any(r["type"] == "span" for r in sink.records())

    def test_empty_sink_has_empty_last(self):
        sink = InMemoryExporter()
        assert sink.last.spans == [] and sink.last.metrics == []


class TestConsole:
    def test_format_contains_stages_and_metrics(self, populated_runtime):
        text = ConsoleExporter().format(populated_runtime.snapshot())
        assert "telemetry summary" in text
        assert "experiment.run" in text
        assert "experiment.train" in text
        assert "wall=" in text and "cpu=" in text
        assert "cache.miss{kind=measurement}" in text
        assert "train.loss" in text
        assert "backend.measure_ns{backend=sim}" in text

    def test_many_siblings_are_aggregated(self):
        with obs.session(TelemetryConfig(enabled=True, console=False)):
            with obs.span("root"):
                for _ in range(20):
                    with obs.span("leaf"):
                        pass
            text = ConsoleExporter(max_children_per_name=8).format(
                obs.active().snapshot())
        assert "leaf x20" in text

    def test_error_span_is_flagged(self):
        with obs.session(TelemetryConfig(enabled=True, console=False)):
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("nope")
            text = ConsoleExporter().format(obs.active().snapshot())
        assert "[error]" in text


class TestEnvConfig:
    def test_from_env_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_ENABLED, raising=False)
        monkeypatch.delenv(obs.ENV_OUT, raising=False)
        config = TelemetryConfig.from_env()
        assert not config.enabled

    def test_from_env_enabled(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_ENABLED, "1")
        assert TelemetryConfig.from_env().enabled

    def test_out_path_implies_enabled(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_ENABLED, raising=False)
        monkeypatch.setenv(obs.ENV_OUT, "/tmp/t.jsonl")
        config = TelemetryConfig.from_env()
        assert config.enabled and config.jsonl_path == "/tmp/t.jsonl"
