"""Tests for telemetry exporters: JSONL round-trip, in-memory, console."""

import multiprocessing

import pytest

from repro import obs
from repro.errors import ConfigError
from repro.obs import (
    ConsoleExporter,
    InMemoryExporter,
    JsonlExporter,
    TelemetryConfig,
    TelemetrySnapshot,
    read_jsonl,
)


@pytest.fixture()
def populated_runtime():
    """An enabled runtime with one span tree and a few metrics."""
    with obs.session(TelemetryConfig(enabled=True, console=False)) as runtime:
        with obs.span("experiment.run", dataset="mnist"):
            with obs.span("experiment.train"):
                obs.set_gauge("train.loss", 0.25)
            with obs.span("experiment.measure"):
                obs.inc("cache.miss", kind="measurement")
                obs.observe("backend.measure_ns", 1000.0, backend="sim")
        yield runtime


class TestSnapshot:
    def test_records_flatten_spans_then_metrics(self, populated_runtime):
        snapshot = populated_runtime.snapshot()
        records = snapshot.records()
        span_records = [r for r in records if r["type"] == "span"]
        metric_records = [r for r in records if r["type"] == "metric"]
        assert [r["name"] for r in span_records] == [
            "experiment.run", "experiment.train", "experiment.measure"]
        assert {r["name"] for r in metric_records} == {
            "train.loss", "cache.miss", "backend.measure_ns"}

    def test_find_spans_and_counter_value(self, populated_runtime):
        snapshot = populated_runtime.snapshot()
        assert len(snapshot.find_spans("experiment.train")) == 1
        assert snapshot.counter_value("cache.miss") == 1.0
        assert snapshot.counter_value("cache.miss", kind="measurement") == 1.0
        assert snapshot.counter_value("cache.miss", kind="model") == 0.0


class TestJsonl:
    def test_round_trip(self, populated_runtime, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        JsonlExporter(path).export(populated_runtime.snapshot())
        records = read_jsonl(path)
        assert all(isinstance(r, dict) for r in records)
        spans = [r for r in records if r["type"] == "span"]
        root = next(r for r in spans if r["parent_id"] is None)
        assert root["name"] == "experiment.run"
        assert root["attributes"] == {"dataset": "mnist"}
        children = [r for r in spans if r["parent_id"] == root["id"]]
        assert {r["name"] for r in children} == {
            "experiment.train", "experiment.measure"}
        assert all(r["wall_s"] >= 0.0 for r in spans)

    def test_export_appends(self, populated_runtime, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        exporter = JsonlExporter(path)
        exporter.export(populated_runtime.snapshot())
        first = len(read_jsonl(path))
        exporter.export(populated_runtime.snapshot())
        assert len(read_jsonl(path)) == 2 * first

    def test_flush_writes_configured_sink(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with obs.session(TelemetryConfig(enabled=True, console=False,
                                         jsonl_path=str(path))):
            with obs.span("stage"):
                obs.inc("events")
            obs.flush()
        records = read_jsonl(path)
        meta = [r for r in records if r["type"] == "meta"]
        assert len(meta) == 1
        assert meta[0]["schema"] == obs.TELEMETRY_SCHEMA_VERSION
        names = {r["name"] for r in records if r["type"] != "meta"}
        assert names == {"stage", "events"}

    def test_export_leads_with_schema_header(self, populated_runtime,
                                             tmp_path):
        path = tmp_path / "telemetry.jsonl"
        JsonlExporter(path).export(populated_runtime.snapshot())
        records = read_jsonl(path)
        header = records[0]
        assert header["type"] == "meta"
        assert header["schema"] == obs.TELEMETRY_SCHEMA_VERSION
        assert header["spans"] == 3
        assert header["metrics"] == len(records) - 1 - header["spans"]


def _make_snapshot(counter=0.0, gauge=None, observations=()):
    with obs.session(TelemetryConfig(enabled=True, console=False)) as runtime:
        if counter:
            obs.inc("events", counter, kind="test")
        if gauge is not None:
            obs.set_gauge("level", gauge)
        for value in observations:
            obs.observe("latency_ns", value)
        return runtime.snapshot()


class TestSnapshotMerge:
    def test_counters_add_and_gauges_take_incoming(self):
        merged = _make_snapshot(counter=2.0, gauge=1.0).merge(
            _make_snapshot(counter=3.0, gauge=7.0))
        assert merged.counter_value("events", kind="test") == 5.0
        gauge = next(r for r in merged.metrics if r["name"] == "level")
        assert gauge["value"] == 7.0

    def test_histograms_merge_at_bucket_resolution(self):
        merged = _make_snapshot(observations=[1.0, 2.0]).merge(
            _make_snapshot(observations=[4.0, 1000.0]))
        record = next(r for r in merged.metrics
                      if r["name"] == "latency_ns")
        assert record["count"] == 4
        assert record["total"] == 1007.0
        assert record["min"] == 1.0 and record["max"] == 1000.0
        assert sum(count for _, count in record["buckets"]) == 4
        assert record["truncated"] is True  # percentiles now bucket-based

    def test_spans_concatenate(self):
        with obs.session(TelemetryConfig(enabled=True, console=False)) as rt:
            with obs.span("a"):
                pass
            first = rt.snapshot()
        with obs.session(TelemetryConfig(enabled=True, console=False)) as rt:
            with obs.span("b"):
                pass
            second = rt.snapshot()
        merged = first.merge(second)
        assert [s.name for s in merged.spans] == ["a", "b"]

    def test_merge_order_of_metrics_is_canonical(self):
        one = _make_snapshot(counter=1.0, gauge=2.0)
        two = _make_snapshot(counter=4.0, gauge=3.0, observations=[1.0])
        forward = one.merge(two)
        backward = two.merge(one)
        assert ([r["name"] for r in forward.metrics]
                == [r["name"] for r in backward.metrics])

    def test_kind_conflict_is_an_error(self):
        counter_snap = _make_snapshot(counter=1.0)
        gauge_snap = _make_snapshot(gauge=1.0)
        gauge_snap.metrics[0]["name"] = "events"
        gauge_snap.metrics[0]["labels"] = {"kind": "test"}
        with pytest.raises(ConfigError):
            counter_snap.merge(gauge_snap)


def _concurrent_export(args):
    path, writer_id, exports = args
    for index in range(exports):
        snapshot = TelemetrySnapshot(metrics=[{
            "type": "metric", "kind": "counter",
            "name": f"writer.{writer_id}",
            "labels": {"index": str(index), "pad": "x" * 2000},
            "value": float(index),
        }])
        JsonlExporter(path).export(snapshot)
    return writer_id


class TestConcurrentJsonl:
    def test_parallel_writers_never_tear_lines(self, tmp_path):
        path = tmp_path / "shared.jsonl"
        writers, exports = 4, 8
        context = multiprocessing.get_context("spawn")
        with context.Pool(writers) as pool:
            pool.map(_concurrent_export,
                     [(str(path), w, exports) for w in range(writers)])
        records = read_jsonl(path)  # json.loads fails on any torn line
        metric = [r for r in records if r["type"] == "metric"]
        meta = [r for r in records if r["type"] == "meta"]
        assert len(metric) == writers * exports
        assert len(meta) == writers * exports
        seen = {(r["name"], r["labels"]["index"]) for r in metric}
        assert len(seen) == writers * exports


class TestInMemory:
    def test_sink_collects_snapshots(self, populated_runtime):
        sink = InMemoryExporter()
        populated_runtime.exporters.append(sink)
        populated_runtime.flush()
        populated_runtime.flush()
        assert len(sink.snapshots) == 2
        assert sink.last.counter_value("cache.miss") == 1.0
        assert any(r["type"] == "span" for r in sink.records())

    def test_empty_sink_has_empty_last(self):
        sink = InMemoryExporter()
        assert sink.last.spans == [] and sink.last.metrics == []


class TestConsole:
    def test_format_contains_stages_and_metrics(self, populated_runtime):
        text = ConsoleExporter().format(populated_runtime.snapshot())
        assert "telemetry summary" in text
        assert "experiment.run" in text
        assert "experiment.train" in text
        assert "wall=" in text and "cpu=" in text
        assert "cache.miss{kind=measurement}" in text
        assert "train.loss" in text
        assert "backend.measure_ns{backend=sim}" in text

    def test_many_siblings_are_aggregated(self):
        with obs.session(TelemetryConfig(enabled=True, console=False)):
            with obs.span("root"):
                for _ in range(20):
                    with obs.span("leaf"):
                        pass
            text = ConsoleExporter(max_children_per_name=8).format(
                obs.active().snapshot())
        assert "leaf x20" in text

    def test_error_span_is_flagged(self):
        with obs.session(TelemetryConfig(enabled=True, console=False)):
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("nope")
            text = ConsoleExporter().format(obs.active().snapshot())
        assert "[error]" in text


class TestEnvConfig:
    def test_from_env_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_ENABLED, raising=False)
        monkeypatch.delenv(obs.ENV_OUT, raising=False)
        config = TelemetryConfig.from_env()
        assert not config.enabled

    def test_from_env_enabled(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_ENABLED, "1")
        assert TelemetryConfig.from_env().enabled

    def test_out_path_implies_enabled(self, monkeypatch):
        monkeypatch.delenv(obs.ENV_ENABLED, raising=False)
        monkeypatch.setenv(obs.ENV_OUT, "/tmp/t.jsonl")
        config = TelemetryConfig.from_env()
        assert config.enabled and config.jsonl_path == "/tmp/t.jsonl"
