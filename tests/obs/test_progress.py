"""Tests for the live measurement progress reporter."""

import io

from repro.obs.progress import ProgressReporter


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_reporter(total_chunks=4, total_samples=20, **kwargs):
    stream = io.StringIO()
    clock = FakeClock()
    reporter = ProgressReporter(total_chunks, total_samples=total_samples,
                                stream=stream, clock=clock, **kwargs)
    return reporter, stream, clock


class TestProgressReporter:
    def test_counts_and_rate_and_eta(self):
        reporter, _, clock = make_reporter()
        clock.advance(2.0)
        reporter.chunk_done(0, 5)
        clock.advance(2.0)
        reporter.chunk_done(1, 5)
        line = reporter.format_line()
        assert "2/4 chunks" in line
        assert "10/20 samples" in line
        assert "2.5/s" in line      # 10 samples over 4 seconds
        assert "eta 4s" in line     # 10 remaining at 2.5/s

    def test_retries_and_restarts_appear_when_nonzero(self):
        reporter, _, _ = make_reporter()
        assert "retries" not in reporter.format_line()
        reporter.chunk_failed(0, error=ValueError("boom"))
        reporter.chunk_lost(1)
        reporter.pool_restart()
        line = reporter.format_line()
        assert "retries=1" in line
        assert "lost=1 restarts=1" in line

    def test_non_tty_updates_are_throttled_lines(self):
        reporter, stream, clock = make_reporter(min_interval_s=1.0)
        reporter.chunk_done(0, 5)   # first render always shows
        reporter.chunk_done(1, 5)   # within the interval: suppressed
        clock.advance(1.5)
        reporter.chunk_done(2, 5)   # past the interval: shows
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert all("\r" not in line for line in lines)

    def test_finish_renders_final_state_and_is_idempotent(self):
        reporter, stream, _ = make_reporter(min_interval_s=1000.0)
        reporter.chunk_done(0, 5)
        reporter.chunk_done(1, 5)   # throttled away
        reporter.finish()           # forced final render
        reporter.finish()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "2/4 chunks" in lines[-1]

    def test_per_category_chunk_counts(self):
        reporter, _, _ = make_reporter()
        reporter.chunk_done(0, 5)
        reporter.chunk_done(0, 5)
        reporter.chunk_done(3, 5)
        assert reporter.per_category == {0: 2, 3: 1}

    def test_supervisor_accepts_reporter_as_observer(self, tiny_trained_model,
                                                     digits_dataset):
        from repro.hpc import SimBackend
        from repro.parallel import measure_categories_parallel, plan_chunks

        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=5)
        samples = {c: digits_dataset.category(c).images[:4] for c in (0, 1)}
        stream = io.StringIO()
        chunks = plan_chunks({c: len(s) for c, s in samples.items()}, 2)
        reporter = ProgressReporter(len(chunks), total_samples=8,
                                    stream=stream, min_interval_s=0.0)
        measure_categories_parallel(backend, samples, workers=2,
                                    progress=reporter)
        assert reporter.done_chunks == len(chunks)
        assert reporter.done_samples == 8
        assert f"{len(chunks)}/{len(chunks)} chunks" in \
            stream.getvalue().splitlines()[-1]
