"""Tests for the metrics registry: counters, gauges, histograms, labels."""

import pytest

from repro import obs
from repro.errors import ConfigError
from repro.obs import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_counts_up_from_zero(self, registry):
        counter = registry.counter("hits")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ConfigError):
            registry.counter("hits").inc(-1)

    def test_same_name_same_labels_is_same_instrument(self, registry):
        registry.inc("cache.hit", kind="model")
        registry.inc("cache.hit", kind="model")
        assert registry.counter_value("cache.hit", kind="model") == 2.0

    def test_labels_partition_instruments(self, registry):
        registry.inc("cache.hit", kind="model")
        registry.inc("cache.hit", kind="measurement", amount=3)
        assert registry.counter_value("cache.hit", kind="model") == 1.0
        assert registry.counter_value("cache.hit", kind="measurement") == 3.0

    def test_label_order_is_canonical(self, registry):
        registry.inc("m", a=1, b=2)
        registry.inc("m", b=2, a=1)
        assert registry.counter_value("m", a=1, b=2) == 2.0

    def test_untouched_counter_reads_zero(self, registry):
        assert registry.counter_value("never") == 0.0


class TestGauge:
    def test_last_write_wins(self, registry):
        registry.set_gauge("accuracy", 0.5)
        registry.set_gauge("accuracy", 0.9)
        (record,) = registry.snapshot()
        assert record["kind"] == "gauge"
        assert record["value"] == 0.9

    def test_unset_gauge_snapshot_is_none(self, registry):
        registry.gauge("pending")
        (record,) = registry.snapshot()
        assert record["value"] is None


class TestHistogram:
    def test_summary_statistics(self, registry):
        histogram = registry.histogram("latency")
        for value in [1.0, 2.0, 3.0, 4.0, 10.0]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["total"] == 20.0
        assert summary["mean"] == 4.0
        assert summary["min"] == 1.0
        assert summary["max"] == 10.0
        assert summary["p50"] == 3.0
        assert summary["p95"] == 10.0

    def test_empty_histogram_summary_is_zeroed(self, registry):
        assert registry.histogram("empty").summary()["count"] == 0

    def test_percentile_bounds_checked(self, registry):
        with pytest.raises(ConfigError):
            registry.histogram("h").percentile(101)

    def test_observe_helper(self, registry):
        registry.observe("layer_ns", 100, layer="conv1")
        registry.observe("layer_ns", 200, layer="conv1")
        (record,) = registry.snapshot()
        assert record["labels"] == {"layer": "conv1"}
        assert record["count"] == 2 and record["mean"] == 150.0


class TestRegistry:
    def test_kind_conflicts_rejected(self, registry):
        registry.counter("thing")
        with pytest.raises(ConfigError):
            registry.gauge("thing")
        with pytest.raises(ConfigError):
            registry.histogram("thing")

    def test_snapshot_is_sorted_and_typed(self, registry):
        registry.inc("b.counter")
        registry.set_gauge("a.gauge", 1.0)
        names = [record["name"] for record in registry.snapshot()]
        assert names == sorted(names)
        for record in registry.snapshot():
            assert record["type"] == "metric"

    def test_clear_drops_everything(self, registry):
        registry.inc("x")
        registry.clear()
        assert registry.snapshot() == []
        assert registry.counter_value("x") == 0.0


class TestRuntimeMetricsFastPath:
    def test_disabled_runtime_records_nothing(self):
        with obs.session(obs.TelemetryConfig(enabled=False)):
            obs.inc("c")
            obs.set_gauge("g", 1.0)
            obs.observe("h", 2.0)
            assert obs.active().metrics.snapshot() == []

    def test_enabled_runtime_records(self):
        with obs.session(obs.TelemetryConfig(enabled=True, console=False)):
            obs.inc("c", 2)
            obs.set_gauge("g", 1.5)
            obs.observe("h", 2.0)
            records = {r["name"]: r for r in obs.active().metrics.snapshot()}
            assert records["c"]["value"] == 2.0
            assert records["g"]["value"] == 1.5
            assert records["h"]["count"] == 1
