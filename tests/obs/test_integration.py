"""Integration: the experiment pipeline emits the expected telemetry.

Runs the full (tiny) pipeline twice against one cache directory and checks
the span tree, the cold-run cache misses, the warm-run cache hits, and the
corrupt-cache-entry recovery path.
"""

import pytest

from repro import obs
from repro.core.experiment import ExperimentConfig, run_experiment


@pytest.fixture()
def restore_runtime():
    """Restore the env-derived telemetry runtime after the test."""
    yield
    obs.reset()


def tiny_config(cache_dir, **overrides) -> ExperimentConfig:
    overrides.setdefault("telemetry",
                         obs.TelemetryConfig(enabled=True, console=False))
    return ExperimentConfig(
        dataset="mnist", samples_per_category=3, categories=(0, 1),
        train_samples_per_class=8, epochs=2, cache_dir=str(cache_dir),
        **overrides)


class TestExperimentTelemetry:
    def test_cold_run_emits_span_tree_and_misses(self, tmp_path,
                                                 restore_runtime):
        run_experiment(tiny_config(tmp_path))
        snapshot = obs.active().snapshot()

        (root,) = snapshot.find_spans("experiment.run")
        stages = [child.name for child in root.children]
        assert stages == ["experiment.train", "experiment.measure",
                          "experiment.evaluate"]
        assert all(child.wall_s > 0.0 for child in root.children)
        assert root.wall_s >= sum(child.wall_s for child in root.children)

        # Stage internals nest where they should.
        assert len(root.find("train.fit")) == 1
        assert len(root.find("train.epoch")) == 2
        (collect,) = root.find("measure.collect")
        assert collect.attributes["cache"] == "miss"
        assert len(root.find("measure.category")) == 2
        assert len(root.find("evaluate.ttests")) == 1

        # Cold run: both artifact caches miss, then write.  Per-category
        # checkpoint traffic is labelled separately and never skews the
        # headline cache counters.
        assert snapshot.counter_value("cache.miss", kind="model") == 1.0
        assert snapshot.counter_value("cache.miss", kind="measurement") == 1.0
        assert snapshot.counter_value("cache.miss", kind="checkpoint") == 2.0
        assert snapshot.counter_value("cache.hit") == 0.0
        assert snapshot.counter_value("cache.write", kind="model") == 1.0
        assert snapshot.counter_value("cache.write", kind="measurement") == 1.0
        assert snapshot.counter_value("cache.write", kind="checkpoint") == 2.0
        assert snapshot.counter_value("checkpoint.write") == 2.0
        assert snapshot.counter_value("measurement.samples") == 6.0
        assert snapshot.counter_value("ttest.pairs") == 8.0

    def test_warm_run_hits_both_caches(self, tmp_path, restore_runtime):
        config = tiny_config(tmp_path)
        run_experiment(config)
        run_experiment(config)  # fresh runtime via config.telemetry
        snapshot = obs.active().snapshot()

        assert snapshot.counter_value("cache.hit", kind="model") == 1.0
        assert snapshot.counter_value("cache.hit", kind="measurement") == 1.0
        assert snapshot.counter_value("cache.miss") == 0.0
        # The measurement stage is a cache lookup: no categories measured.
        (collect,) = snapshot.find_spans("measure.collect")
        assert collect.attributes["cache"] == "hit"
        assert snapshot.find_spans("measure.category") == []
        assert snapshot.counter_value("measurement.samples") == 0.0

    def test_corrupt_cache_entry_is_evicted_and_remeasured(self, tmp_path,
                                                           restore_runtime):
        config = tiny_config(tmp_path)
        cold = run_experiment(config)
        (entry,) = list(tmp_path.glob("measure-*.npz"))
        entry.write_bytes(b"this is not an npz archive")

        result = run_experiment(config)
        snapshot = obs.active().snapshot()
        assert snapshot.counter_value("cache.corrupt",
                                      kind="measurement") == 1.0
        assert snapshot.counter_value("cache.miss", kind="measurement") == 1.0
        # Re-measured, re-cached, and statistically identical to the cold run.
        assert snapshot.counter_value("cache.write", kind="measurement") == 1.0
        assert snapshot.counter_value("measurement.samples") == 6.0
        assert list(tmp_path.glob("measure-*.npz"))
        assert result.distributions.categories == \
            cold.distributions.categories

    def test_evaluator_metrics_have_category_labels(self, tmp_path,
                                                    restore_runtime):
        result = run_experiment(tiny_config(tmp_path))
        snapshot = obs.active().snapshot()
        # Two categories, 8 events -> 8 pairwise tests; each test belongs
        # to both of its categories.
        assert snapshot.counter_value("ttest.pairs") == 8.0
        for category in (0, 1):
            assert snapshot.counter_value("ttest.category_pairs",
                                          category=category) == 8.0
        rejections = snapshot.counter_value("ttest.rejections")
        assert snapshot.counter_value("ttest.category_rejections") == \
            2.0 * rejections
        assert rejections == sum(r.distinguishable
                                 for r in result.report.results)

    def test_engine_telemetry_emitted(self, tmp_path, restore_runtime):
        run_experiment(tiny_config(tmp_path))
        snapshot = obs.active().snapshot()

        # The trainer's evaluation pass and the traced measurement path
        # each compile a plan.
        compiles = snapshot.find_spans("engine.compile")
        assert len(compiles) >= 2
        assert all(span.attributes["model"] == "mnist-cnn"
                   for span in compiles)
        assert any(span.attributes["preserve"] for span in compiles)

        records = {(r["name"], tuple(sorted(r["labels"].items()))): r
                   for r in obs.active().metrics.snapshot()}
        fused = records[("engine.fused_layers", ())]
        assert fused["value"] >= 2.0  # two conv+relu fusions in mnist-cnn
        forward = records[("engine.forward", (("model", "mnist-cnn"),))]
        assert forward["count"] >= 1
        assert forward["min"] > 0

    def test_layers_engine_emits_no_engine_telemetry(self, tmp_path,
                                                     restore_runtime):
        run_experiment(tiny_config(tmp_path, engine="layers"))
        snapshot = obs.active().snapshot()
        assert snapshot.find_spans("engine.compile") == []
        assert all(r["name"] != "engine.forward"
                   for r in obs.active().metrics.snapshot())

    def test_disabled_telemetry_records_nothing(self, tmp_path,
                                                restore_runtime):
        config = tiny_config(tmp_path,
                             telemetry=obs.TelemetryConfig(enabled=False))
        run_experiment(config)
        snapshot = obs.active().snapshot()
        assert snapshot.spans == []
        assert snapshot.metrics == []

    def test_gauges_and_backend_histograms_populate(self, tmp_path,
                                                    restore_runtime):
        run_experiment(tiny_config(tmp_path))
        records = {(r["name"], tuple(sorted(r["labels"].items()))): r
                   for r in obs.active().metrics.snapshot()}
        accuracy = records[("model.test_accuracy", ())]
        assert 0.0 <= accuracy["value"] <= 1.0
        # The session routes measured samples through the batched engine
        # (one measure_batch call per category).
        measure = records[("backend.measure_batch_ns", (("backend", "sim"),))]
        assert measure["count"] == 2  # one batch per category
        assert measure["min"] > 0
        measured = records[("backend.measurements", (("backend", "sim"),))]
        assert measured["value"] == 6  # 3 samples x 2 categories
        layer_records = [r for r in records.values()
                         if r["name"] == "trace.layer_ns"]
        assert {r["labels"]["layer"] for r in layer_records} >= {
            "conv1", "conv2", "fc"}

    def test_unwritable_jsonl_sink_warns_instead_of_raising(
            self, tmp_path, restore_runtime, capsys):
        bad = tmp_path / "missing" / "sub"
        # Parent creation will fail: make `missing` a *file*.
        (tmp_path / "missing").write_text("not a directory")
        config = tiny_config(tmp_path / "cache",
                             telemetry=obs.TelemetryConfig(
                                 enabled=True, console=False,
                                 jsonl_path=str(bad / "out.jsonl")))
        run_experiment(config)
        snapshot = obs.flush()  # must not raise
        assert snapshot.spans  # the run's telemetry survived the bad sink
        assert obs.active().jsonl_written is False
        assert "could not write telemetry JSONL" in capsys.readouterr().err
