"""Tests for span tracing: nesting, exception safety, durations."""

import time

import pytest

from repro import obs
from repro.obs import NOOP_SPAN, SpanTracer


@pytest.fixture()
def tracer():
    return SpanTracer()


class TestSpanTree:
    def test_nesting_builds_parent_child_tree(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child-a") as a:
                with tracer.span("grandchild") as g:
                    pass
            with tracer.span("child-b") as b:
                pass
        assert root.children == [a, b]
        assert a.children == [g]
        assert g.parent is a and a.parent is root and root.parent is None
        assert tracer.roots == [root]

    def test_sequential_roots_are_separate_trees(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span.name for span in tracer.roots] == ["first", "second"]

    def test_walk_and_find(self, tracer):
        with tracer.span("outer"):
            with tracer.span("epoch"):
                pass
            with tracer.span("epoch"):
                pass
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["outer", "epoch", "epoch"]
        assert len(root.find("epoch")) == 2
        assert len(tracer.find("epoch")) == 2

    def test_attributes_via_kwargs_and_setter(self, tracer):
        with tracer.span("s", dataset="mnist") as span:
            span.set_attribute("accuracy", 0.9)
        assert span.attributes == {"dataset": "mnist", "accuracy": 0.9}

    def test_current_tracks_innermost(self, tracer):
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None


class TestDurations:
    def test_durations_are_monotonic_and_nonnegative(self, tracer):
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                time.sleep(0.01)
        assert child.wall_s >= 0.01
        assert parent.wall_s >= child.wall_s
        assert parent.cpu_s >= 0.0

    def test_finish_is_idempotent(self, tracer):
        with tracer.span("s") as span:
            pass
        first = span.wall_s
        span.finish()
        assert span.wall_s == first

    def test_open_span_reports_running_duration(self, tracer):
        with tracer.span("s") as span:
            assert not span.finished
            assert span.wall_s >= 0.0
        assert span.finished


class TestExceptionSafety:
    def test_exception_closes_span_and_reraises(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing") as span:
                raise ValueError("boom")
        assert span.finished
        assert span.status == "error"
        assert "boom" in span.error
        assert tracer.roots == [span]

    def test_exception_unwinds_nested_stack(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError()
        assert tracer.current is None
        root = tracer.roots[0]
        assert root.status == "error"
        assert root.children[0].status == "error"

    def test_ok_status_on_clean_exit(self, tracer):
        with tracer.span("s") as span:
            pass
        assert span.status == "ok" and span.error is None


class TestDecorator:
    def test_traced_decorator_records_calls(self, tracer):
        @tracer.traced("work.unit", flavour="test")
        def work(x):
            return x * 2

        assert work(21) == 42
        (span,) = tracer.roots
        assert span.name == "work.unit"
        assert span.attributes == {"flavour": "test"}

    def test_traced_default_name_is_qualname(self, tracer):
        @tracer.traced()
        def helper():
            return 1

        helper()
        assert "helper" in tracer.roots[0].name


class TestSerialization:
    def test_to_dict_round_trips_ids(self, tracer):
        with tracer.span("root", k="v"):
            with tracer.span("child"):
                pass
        root = tracer.roots[0]
        record = root.to_dict()
        child_record = root.children[0].to_dict()
        assert record["parent_id"] is None
        assert child_record["parent_id"] == record["id"]
        assert record["attributes"] == {"k": "v"}
        assert record["wall_s"] >= child_record["wall_s"]


class TestRuntimeFastPath:
    def test_disabled_runtime_returns_shared_noop(self):
        with obs.session(obs.TelemetryConfig(enabled=False)):
            assert obs.span("anything", a=1) is NOOP_SPAN
            with obs.span("x") as span:
                span.set_attribute("ignored", True)  # must not raise
            assert obs.active().tracer.roots == []

    def test_enabled_runtime_records(self):
        with obs.session(obs.TelemetryConfig(enabled=True, console=False)):
            with obs.span("stage", n=3):
                pass
            (root,) = obs.active().tracer.roots
            assert root.name == "stage" and root.attributes == {"n": 3}

    def test_traced_runtime_decorator_respects_enablement(self):
        @obs.traced("decorated.fn")
        def fn():
            return "ok"

        with obs.session(obs.TelemetryConfig(enabled=False)):
            assert fn() == "ok"
            assert obs.active().tracer.roots == []
        with obs.session(obs.TelemetryConfig(enabled=True, console=False)):
            assert fn() == "ok"
            assert obs.active().tracer.roots[0].name == "decorated.fn"
