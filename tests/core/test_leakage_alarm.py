"""Tests for repro.core.leakage and repro.core.alarm."""

import numpy as np
import pytest

from repro.core import (
    AlarmPolicy,
    CONSERVATIVE_POLICY,
    Evaluator,
    PAPER_POLICY,
)
from repro.errors import EvaluationError
from repro.hpc import EventDistributions
from repro.uarch import HpcEvent

from .test_evaluator import make_distributions


@pytest.fixture(scope="module")
def report():
    return Evaluator().evaluate(make_distributions())


class TestLeakageReport:
    def test_for_event_and_for_pair(self, report):
        cm = report.for_event(HpcEvent.CACHE_MISSES)
        assert len(cm) == 3
        pair = report.for_pair(1, 3)
        assert len(pair) == 2  # one result per event

    def test_for_pair_order_insensitive(self, report):
        assert report.for_pair(3, 1) == report.for_pair(1, 3)

    def test_unknown_queries_rejected(self, report):
        with pytest.raises(EvaluationError):
            report.for_event(HpcEvent.CYCLES)
        with pytest.raises(EvaluationError):
            report.for_pair(1, 9)

    def test_rejection_count(self, report):
        assert report.rejection_count(HpcEvent.CACHE_MISSES) == 2
        assert report.rejection_count(HpcEvent.BRANCHES) <= 1

    def test_fully_distinguishable_events(self):
        rng = np.random.default_rng(0)
        dists = EventDistributions({
            1: {HpcEvent.CACHE_MISSES: rng.normal(100, 1, 30)},
            2: {HpcEvent.CACHE_MISSES: rng.normal(200, 1, 30)},
            3: {HpcEvent.CACHE_MISSES: rng.normal(300, 1, 30)},
        })
        report = Evaluator().evaluate(dists)
        assert report.fully_distinguishable_events() == [
            HpcEvent.CACHE_MISSES]

    def test_corrected_rejections_more_conservative(self, report):
        raw = [r.distinguishable
               for r in report.for_event(HpcEvent.CACHE_MISSES)]
        corrected = report.corrected_rejections(HpcEvent.CACHE_MISSES,
                                                method="bonferroni")
        assert sum(corrected) <= sum(raw)

    def test_rows_and_csv(self, report):
        rows = report.rows()
        assert len(rows) == len(report.results)
        assert {"event", "t", "p", "cohens_d"} <= set(rows[0])
        csv_text = report.to_csv()
        assert csv_text.count("\n") == len(rows)
        assert "cache-misses" in csv_text

    def test_summary_mentions_verdict(self, report):
        text = report.summary()
        assert "ALARM: RAISED" in text
        assert "cache-misses" in text

    def test_label_with_display_map(self, report):
        result = report.for_pair(1, 3)[0]
        assert result.label() == "t1,3"
        assert result.label({1: 5, 3: 6}) == "t5,6"


class TestAlarmPolicy:
    def test_paper_policy_triggers(self, report):
        alarm = PAPER_POLICY.decide(report)
        assert alarm.triggered
        assert any("cache-misses" in reason for reason in alarm.reasons)
        assert "ALARM RAISED" in alarm.format()

    def test_no_alarm_formatting(self):
        quiet = Evaluator().evaluate(make_distributions(shift=0.0, seed=8))
        alarm = AlarmPolicy(min_rejections=3).decide(quiet)
        assert not alarm.triggered
        assert "no alarm" in alarm.format()

    def test_min_rejections_threshold(self, report):
        # cache-misses distinguishes exactly 2 pairs in this fixture.
        assert AlarmPolicy(min_rejections=2).decide(report).triggered
        assert not AlarmPolicy(min_rejections=3).decide(report).triggered

    def test_conservative_policy_still_catches_strong_leak(self, report):
        alarm = CONSERVATIVE_POLICY.decide(report)
        assert alarm.triggered
        assert alarm.rejections_by_event[HpcEvent.CACHE_MISSES] >= 1

    def test_correction_reduces_rejections(self, report):
        raw = PAPER_POLICY.decide(report).rejections_by_event
        corrected = CONSERVATIVE_POLICY.decide(report).rejections_by_event
        for event in raw:
            assert corrected[event] <= raw[event]

    def test_invalid_policy_rejected(self):
        with pytest.raises(EvaluationError):
            AlarmPolicy(min_rejections=0)
