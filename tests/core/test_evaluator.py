"""Tests for repro.core.evaluator on synthetic distributions."""

import numpy as np
import pytest

from repro.core import Evaluator
from repro.errors import EvaluationError
from repro.hpc import EventDistributions
from repro.uarch import HpcEvent


def make_distributions(shift=50.0, n=40, seed=0):
    """Three categories: 1 and 2 identical, 3 shifted on cache-misses."""
    rng = np.random.default_rng(seed)
    base = 1000.0

    def column(mean):
        return rng.normal(mean, 10.0, size=n)

    return EventDistributions({
        1: {HpcEvent.CACHE_MISSES: column(base),
            HpcEvent.BRANCHES: column(5000.0)},
        2: {HpcEvent.CACHE_MISSES: column(base),
            HpcEvent.BRANCHES: column(5000.0)},
        3: {HpcEvent.CACHE_MISSES: column(base + shift),
            HpcEvent.BRANCHES: column(5000.0)},
    })


class TestEvaluate:
    def test_detects_the_shifted_category(self):
        report = Evaluator().evaluate(make_distributions())
        assert report.alarm
        assert HpcEvent.CACHE_MISSES in report.leaking_events
        pair_12 = [r for r in report.for_event(HpcEvent.CACHE_MISSES)
                   if r.pair == (1, 2)][0]
        pair_13 = [r for r in report.for_event(HpcEvent.CACHE_MISSES)
                   if r.pair == (1, 3)][0]
        assert not pair_12.distinguishable
        assert pair_13.distinguishable
        assert abs(pair_13.ttest.statistic) > 10

    def test_no_alarm_on_identical_distributions(self):
        report = Evaluator().evaluate(make_distributions(shift=0.0))
        # With 9 tests at alpha=0.05 a false rejection is possible but this
        # seed yields none; the point is the shifted pairs are gone.
        cm = report.for_event(HpcEvent.CACHE_MISSES)
        assert sum(r.distinguishable for r in cm) <= 1

    def test_event_subset(self):
        report = Evaluator().evaluate(make_distributions(),
                                      events=[HpcEvent.BRANCHES])
        assert report.events == [HpcEvent.BRANCHES]
        assert len(report.results) == 3

    def test_unmeasured_event_rejected(self):
        with pytest.raises(EvaluationError):
            Evaluator().evaluate(make_distributions(),
                                 events=[HpcEvent.CYCLES])

    def test_needs_two_categories(self):
        dists = make_distributions().subset([1])
        with pytest.raises(EvaluationError):
            Evaluator().evaluate(dists)

    def test_pair_count(self):
        report = Evaluator().evaluate(make_distributions())
        # 3 categories -> 3 pairs, 2 events.
        assert len(report.results) == 6

    def test_effect_sizes_recorded(self):
        report = Evaluator().evaluate(make_distributions())
        pair_13 = [r for r in report.for_event(HpcEvent.CACHE_MISSES)
                   if r.pair == (1, 3)][0]
        assert abs(pair_13.effect_size) > 2.0

    def test_rank_test_option(self):
        report = Evaluator(rank_test=True).evaluate(make_distributions())
        for result in report.results:
            assert result.rank_test is not None
        pair_13 = [r for r in report.for_event(HpcEvent.CACHE_MISSES)
                   if r.pair == (1, 3)][0]
        assert pair_13.rank_test.rejects_null()

    def test_student_method(self):
        report = Evaluator(method="student").evaluate(make_distributions())
        assert report.method == "student"
        assert all(r.ttest.method == "student" for r in report.results)

    def test_confidence_threshold_matters(self):
        borderline = make_distributions(shift=5.0, seed=3)
        strict = Evaluator(confidence=0.999).evaluate(borderline)
        lax = Evaluator(confidence=0.6).evaluate(borderline)
        strict_count = sum(r.distinguishable for r in strict.results)
        lax_count = sum(r.distinguishable for r in lax.results)
        assert strict_count <= lax_count

    def test_invalid_configuration_rejected(self):
        with pytest.raises(EvaluationError):
            Evaluator(confidence=1.5)
        with pytest.raises(EvaluationError):
            Evaluator(method="anova")
