"""Tests for repro.core.export (JSON experiment export)."""

import json

import numpy as np
import pytest

from repro.core import (
    ExperimentConfig,
    distributions_to_dict,
    experiment_to_dict,
    report_to_dict,
    run_experiment,
    save_experiment_json,
)
from repro.hpc import EventDistributions
from repro.uarch import HpcEvent


@pytest.fixture(scope="module")
def tiny_result(tmp_path_factory):
    config = ExperimentConfig(
        dataset="mnist", categories=(0, 1), samples_per_category=3,
        train_samples_per_class=6, epochs=1,
        cache_dir=str(tmp_path_factory.mktemp("cache")))
    return run_experiment(config)


class TestDistributionsExport:
    def test_summaries(self):
        dists = EventDistributions({
            1: {HpcEvent.CYCLES: np.array([10.0, 20.0, 30.0])},
        })
        doc = distributions_to_dict(dists)
        summary = doc["1"]["cycles"]
        assert summary["n"] == 3
        assert summary["mean"] == 20.0
        assert summary["min"] == 10.0
        assert summary["max"] == 30.0

    def test_single_reading_std_zero(self):
        dists = EventDistributions(
            {0: {HpcEvent.CYCLES: np.array([5.0])}})
        assert distributions_to_dict(dists)["0"]["cycles"]["std"] == 0.0


class TestReportExport:
    def test_fields(self, tiny_result):
        doc = report_to_dict(tiny_result.report)
        assert doc["confidence"] == 0.95
        assert doc["method"] == "welch"
        assert isinstance(doc["alarm"], bool)
        assert len(doc["pairwise"]) == len(tiny_result.report.results)
        assert set(doc["verdicts"]) == {"paper_policy", "holm_corrected"}


class TestExperimentExport:
    def test_dict_is_json_serializable(self, tiny_result):
        text = json.dumps(experiment_to_dict(tiny_result))
        assert "export_version" in text

    def test_round_trip_fields(self, tiny_result, tmp_path):
        path = save_experiment_json(tiny_result, tmp_path / "run.json")
        loaded = json.loads(path.read_text())
        assert loaded["export_version"] == 1
        assert loaded["config"]["dataset"] == "mnist"
        assert loaded["config"]["trace_config"]["dense_stride"] == 4
        assert loaded["model"]["parameters"] > 0
        assert 0.0 <= loaded["model"]["test_accuracy"] <= 1.0
        assert loaded["backend_fingerprint"].startswith("sim-")
        assert "0" in loaded["distributions"]
        assert "cache-misses" in loaded["distributions"]["0"]

    def test_cli_json_flag(self, tiny_result, tmp_path, monkeypatch):
        import importlib

        from repro.cli import main as cli_entry

        cli_main = importlib.import_module("repro.cli.main")
        monkeypatch.setattr(cli_main, "run_experiment",
                            lambda config: tiny_result)
        out = tmp_path / "cli.json"
        assert cli_entry(["evaluate", "--json", str(out)]) == 0
        assert json.loads(out.read_text())["report"]["pairwise"]
