"""Tests for repro.core.streaming (incremental evaluation, alarm latency).

The heart is the streaming <-> batch equivalence contract: on identical
data the :class:`StreamingEvaluator` must reproduce the batch
:class:`Evaluator`'s t statistics to 1e-9 relative and its verdicts
exactly, regardless of batch size, shard partition, or merge order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluator import Evaluator
from repro.core.streaming import (
    STREAM_STATE_SCHEMA_VERSION,
    AlarmRecord,
    StreamingEvaluator,
    replay_stream,
    streaming_report_section,
)
from repro.errors import EvaluationError
from repro.hpc.distributions import EventDistributions
from repro.uarch.events import ALL_EVENTS, EventCounts, HpcEvent

EVENTS = tuple(ALL_EVENTS[:4])


def make_rows(seed=0, categories=3, samples=40, separation=6.0,
              scale=1e5, noise=40.0):
    """Per-category ``(samples, len(EVENTS))`` readings at counter scale."""
    rng = np.random.default_rng(seed)
    rows = {}
    for rank in range(categories):
        means = [scale + separation * noise * rank + 11.0 * ei
                 for ei in range(len(EVENTS))]
        rows[rank] = np.round(rng.normal(means, noise,
                                         size=(samples, len(EVENTS))))
    return rows


def distributions_of(rows):
    return EventDistributions(
        {category: {event: mat[:, ei] for ei, event in enumerate(EVENTS)}
         for category, mat in rows.items()})


def stream_in_batches(rows, batch_size, **kwargs):
    evaluator = StreamingEvaluator(events=EVENTS, **kwargs)
    samples = max(mat.shape[0] for mat in rows.values())
    for start in range(0, samples, batch_size):
        for category, mat in rows.items():
            chunk = mat[start:start + batch_size]
            if chunk.shape[0]:
                evaluator.observe_rows(category, chunk)
        if evaluator.ready:
            evaluator.tick()
    return evaluator


def assert_reports_match(stream_report, batch_report, rel=1e-9):
    assert len(stream_report.results) == len(batch_report.results)
    for got, want in zip(stream_report.results, batch_report.results):
        assert (got.event, got.category_a, got.category_b) == \
            (want.event, want.category_a, want.category_b)
        denom = max(abs(want.ttest.statistic), 1.0)
        assert abs(got.ttest.statistic - want.ttest.statistic) <= rel * denom
        assert got.ttest.p_value == pytest.approx(want.ttest.p_value,
                                                  rel=1e-6, abs=1e-12)
        assert got.distinguishable == want.distinguishable
        assert got.effect_size == pytest.approx(want.effect_size, rel=1e-9)


class TestEquivalence:
    @pytest.mark.parametrize("samples", [5, 25, 100])
    @pytest.mark.parametrize("batch_size", [1, 7, 100])
    def test_matches_batch_across_sample_counts(self, samples, batch_size):
        rows = make_rows(seed=samples, samples=samples)
        streamed = stream_in_batches(rows, batch_size)
        batch = Evaluator().evaluate(distributions_of(rows))
        assert_reports_match(streamed.report(), batch)

    def test_student_method_matches_too(self):
        rows = make_rows(seed=2)
        streamed = stream_in_batches(rows, 9, method="student")
        batch = Evaluator(method="student").evaluate(distributions_of(rows))
        assert_reports_match(streamed.report(), batch)

    @given(st.integers(min_value=4, max_value=60),
           st.integers(min_value=1, max_value=17),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_property_equivalence(self, samples, batch_size, seed):
        rows = make_rows(seed=seed, categories=2, samples=samples)
        streamed = stream_in_batches(rows, batch_size)
        batch = Evaluator().evaluate(distributions_of(rows))
        assert_reports_match(streamed.report(), batch)

    def test_merge_order_agreement(self):
        # Shards merged in any order agree to roundoff; the canonical
        # sorted order is bitwise reproducible.
        rows = make_rows(seed=3, categories=2, samples=60)
        shards = []
        for start in range(0, 60, 15):
            shard = StreamingEvaluator(events=EVENTS)
            for category, mat in rows.items():
                shard.observe_rows(category, mat[start:start + 15])
            shards.append(shard.state())

        def merged(order):
            evaluator = StreamingEvaluator(events=EVENTS)
            for index in order:
                evaluator.merge_state(shards[index])
            return evaluator

        forward = merged(range(4))
        backward = merged(reversed(range(4)))
        assert_reports_match(backward.report(), forward.report())
        again = merged(range(4))
        for key, value in forward.state().items():
            assert np.array_equal(value, again.state()[key]), key

    def test_worker_partition_equivalence(self):
        # Different shard partitions (worker counts) agree at 1e-9 on t.
        rows = make_rows(seed=4, samples=48)
        batch = Evaluator().evaluate(distributions_of(rows))
        for workers in (1, 2, 3, 4):
            bounds = np.linspace(0, 48, workers + 1).astype(int)
            evaluator = StreamingEvaluator(events=EVENTS)
            for lo, hi in zip(bounds, bounds[1:]):
                shard = StreamingEvaluator(events=EVENTS)
                for category, mat in rows.items():
                    shard.observe_rows(category, mat[lo:hi])
                evaluator.merge_state(shard.state())
            assert_reports_match(evaluator.report(), batch)


class TestObserve:
    def test_observe_binds_insertion_order(self):
        # Event columns follow measurement insertion order — the same
        # convention EventDistributions.events uses — not sorted order.
        events = [HpcEvent.CYCLES, HpcEvent.CACHE_MISSES,
                  HpcEvent.BRANCHES]
        counts = [EventCounts({e: 10 * (i + 1) + j for j, e in
                               enumerate(events)})
                  for i in range(3)]
        evaluator = StreamingEvaluator()
        evaluator.observe(0, counts)
        assert evaluator.events == tuple(events)
        assert evaluator.samples_seen(0) == 3
        evaluator.observe(0, [])  # no-op
        assert evaluator.samples_seen(0) == 3

    def test_event_order_change_rejected(self):
        evaluator = StreamingEvaluator(events=EVENTS)
        with pytest.raises(EvaluationError, match="event order changed"):
            evaluator.observe_rows(0, np.zeros((2, 4)),
                                   events=tuple(reversed(EVENTS)))

    def test_rows_before_events_rejected(self):
        evaluator = StreamingEvaluator()
        with pytest.raises(EvaluationError, match="event order unknown"):
            evaluator.observe_rows(0, np.zeros((2, 4)))
        with pytest.raises(EvaluationError, match="event order unknown"):
            evaluator.merge_state({})

    def test_not_ready_paths(self):
        evaluator = StreamingEvaluator(events=EVENTS)
        assert not evaluator.ready
        with pytest.raises(EvaluationError):
            evaluator.tick()
        with pytest.raises(EvaluationError):
            evaluator.report()
        evaluator.observe_rows(0, np.zeros((3, 4)))
        assert not evaluator.ready  # one category is not enough
        evaluator.observe_rows(1, np.ones((1, 4)))
        assert not evaluator.ready  # second category needs n >= 2


class TestTickAndAlarm:
    def test_detections_recorded_once_with_latency(self):
        rows = make_rows(seed=5, categories=2, samples=40, separation=8.0)
        evaluator = StreamingEvaluator(events=EVENTS)
        seen = []
        for start in range(0, 40, 10):
            for category, mat in rows.items():
                evaluator.observe_rows(category, mat[start:start + 10])
            tick = evaluator.tick()
            seen.extend(tick.new_detections)
            assert tick.tick == evaluator.ticks
            assert tick.samples == {0: start + 10, 1: start + 10}
            assert tick.statistic.shape == (1, len(EVENTS))
        # Well-separated categories: everything detected on tick 1, never
        # re-reported.
        assert evaluator.alarm
        records = evaluator.alarm_latency()
        assert records == sorted(
            records, key=lambda r: (r.event.value, r.category_a,
                                    r.category_b))
        assert seen == records or set(seen) == set(records)
        assert all(r.detection_n == 10 and r.tick == 1 for r in records)
        assert len(seen) == len(set((r.event, r.category_a, r.category_b)
                                    for r in seen))

    def test_indistinguishable_stream_never_alarms(self):
        # High confidence keeps the 16 (cell, tick) chances of a false
        # positive on identical distributions comfortably improbable.
        rng = np.random.default_rng(6)
        evaluator = StreamingEvaluator(events=EVENTS, confidence=0.9999)
        for _ in range(4):
            for category in (0, 1):
                evaluator.observe_rows(
                    category, rng.normal(1000.0, 50.0, size=(25, 4)))
            tick = evaluator.tick()
        assert not evaluator.alarm
        assert evaluator.alarm_latency() == []
        assert not tick.alarm

    def test_alarm_record_rendering(self):
        record = AlarmRecord(event=HpcEvent.CACHE_MISSES, category_a=0,
                             category_b=2, detection_n=25, tick=1)
        assert record.to_dict() == {
            "event": "cache-misses", "category_a": 0, "category_b": 2,
            "detection_n": 25, "tick": 1}
        assert "t1,3" in record.format(display={0: 1, 2: 3})
        assert "n=25" in record.format()


class TestStatePersistence:
    def test_round_trip_bit_exact_and_resumable(self):
        rows = make_rows(seed=7, samples=30, separation=8.0)
        evaluator = stream_in_batches(rows, 10)
        state = evaluator.state()
        assert int(state["meta/schema"][0]) == STREAM_STATE_SCHEMA_VERSION

        clone = StreamingEvaluator.from_state(state)
        assert clone.ticks == evaluator.ticks
        assert clone.events == evaluator.events
        assert clone.alarm_latency() == evaluator.alarm_latency()
        for key, value in evaluator.state().items():
            assert np.array_equal(value, clone.state()[key]), key

        # Resuming does not re-report already-detected cells.
        more = make_rows(seed=8, samples=10, separation=8.0)
        for category, mat in more.items():
            clone.observe_rows(category, mat)
        tick = clone.tick()
        assert tick.new_detections == []

    def test_npz_round_trip(self, tmp_path):
        rows = make_rows(seed=9, samples=20)
        evaluator = stream_in_batches(rows, 10)
        path = tmp_path / "state.npz"
        np.savez(path, **evaluator.state())
        with np.load(path, allow_pickle=False) as data:
            clone = StreamingEvaluator.from_state(dict(data.items()))
        assert_reports_match(clone.report(), evaluator.report(), rel=0.0)

    def test_from_state_validation(self):
        rows = make_rows(seed=10, samples=10)
        state = stream_in_batches(rows, 5).state()
        missing = {k: v for k, v in state.items() if k != "meta/events"}
        with pytest.raises(EvaluationError, match="missing"):
            StreamingEvaluator.from_state(missing)
        bad_schema = dict(state)
        bad_schema["meta/schema"] = np.asarray([99])
        with pytest.raises(EvaluationError, match="schema"):
            StreamingEvaluator.from_state(bad_schema)

    def test_state_before_data_rejected(self):
        with pytest.raises(EvaluationError):
            StreamingEvaluator().state()

    def test_memory_flat_in_stream_length(self):
        short = stream_in_batches(make_rows(seed=11, samples=10), 5)
        long = stream_in_batches(make_rows(seed=11, samples=500), 5)
        assert long.memory_bytes() == short.memory_bytes()


class TestReplayAndReportSection:
    def test_replay_matches_batch(self):
        rows = make_rows(seed=12, samples=50)
        distributions = distributions_of(rows)
        streamed = replay_stream(distributions, batch_size=10)
        assert streamed.ticks == 5
        assert_reports_match(streamed.report(),
                             Evaluator().evaluate(distributions))

    def test_replay_validates_batch_size(self):
        rows = make_rows(seed=13, samples=10)
        with pytest.raises(EvaluationError):
            replay_stream(distributions_of(rows), batch_size=0)

    def test_report_section_shape(self):
        rows = make_rows(seed=14, samples=30, separation=8.0)
        evaluator = stream_in_batches(rows, 10)
        section = streaming_report_section(evaluator, batch_size=10)
        assert list(section) == ["stream_schema", "batch_size", "ticks",
                                 "alarm", "detections", "memory_bytes"]
        assert section["stream_schema"] == STREAM_STATE_SCHEMA_VERSION
        assert section["ticks"] == evaluator.ticks
        assert section["alarm"] is True
        assert section["detections"] == evaluator.alarm_latency_rows()
        assert all(isinstance(row["event"], str)
                   for row in section["detections"])
