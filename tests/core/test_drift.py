"""Tests for the drift alarm (DriftMonitor) and alpha spending."""

import numpy as np
import pytest

from repro.core.drift import DriftAlarm, DriftMonitor
from repro.core.sequential import SPENDING_SCHEMES, spend_alpha
from repro.core.streaming import StreamingEvaluator
from repro.errors import EvaluationError
from repro.stats.streaming import StreamingMoments
from repro.uarch.events import ALL_EVENTS


def feed(monitor, baseline, category, rows):
    rows = np.asarray(rows, dtype=np.float64)
    monitor.observe(category, rows)
    baseline.observe(category, rows)


class TestDriftMonitor:
    def test_stable_stream_never_alarms(self):
        rng = np.random.default_rng(0)
        monitor = DriftMonitor(window=16, threshold=4.0)
        baseline = StreamingMoments(columns=2)
        for _ in range(30):
            feed(monitor, baseline, 0, rng.normal(100.0, 5.0, size=(4, 2)))
            monitor.check(baseline, ALL_EVENTS[:2], tick=1)
        assert not monitor.alarm
        assert monitor.alarms() == []

    def test_injected_shift_raises_alarm(self):
        rng = np.random.default_rng(1)
        monitor = DriftMonitor(window=16, threshold=4.0)
        baseline = StreamingMoments(columns=2)
        tick = 0
        for _ in range(40):
            tick += 1
            feed(monitor, baseline, 0, rng.normal(100.0, 5.0, size=(4, 2)))
            assert monitor.check(baseline, ALL_EVENTS[:2], tick) == []
        # Shift the mean by 10 sigma: the trailing window's mean moves,
        # the long-run baseline barely does.
        alarm_tick = None
        for _ in range(16):
            tick += 1
            feed(monitor, baseline, 0, rng.normal(150.0, 5.0, size=(4, 2)))
            if monitor.check(baseline, ALL_EVENTS[:2], tick):
                alarm_tick = tick
                break
        assert alarm_tick is not None
        assert monitor.alarm
        alarms = monitor.alarms()
        assert {a.event for a in alarms} <= set(ALL_EVENTS[:2])
        assert all(abs(a.z_score) >= 4.0 for a in alarms)
        assert all(a.tick == alarm_tick for a in alarms)

    def test_first_detection_is_recorded_once(self):
        rng = np.random.default_rng(2)
        monitor = DriftMonitor(window=8, threshold=3.0)
        baseline = StreamingMoments(columns=1)
        for _ in range(20):
            feed(monitor, baseline, 0, rng.normal(10.0, 1.0, size=(4, 1)))
        tick = 1
        first = []
        while not first:
            tick += 1
            feed(monitor, baseline, 0, rng.normal(30.0, 1.0, size=(4, 1)))
            first = monitor.check(baseline, ALL_EVENTS[:1], tick)
        # Keep drifting: the cell must not re-alarm.
        for _ in range(5):
            tick += 1
            feed(monitor, baseline, 0, rng.normal(30.0, 1.0, size=(4, 1)))
            assert monitor.check(baseline, ALL_EVENTS[:1], tick) == []
        assert monitor.alarms() == first

    def test_per_category_independence(self):
        rng = np.random.default_rng(3)
        monitor = DriftMonitor(window=8, threshold=4.0)
        baseline = StreamingMoments(columns=1)
        for _ in range(25):
            feed(monitor, baseline, 0, rng.normal(10.0, 1.0, size=(4, 1)))
            feed(monitor, baseline, 1, rng.normal(10.0, 1.0, size=(4, 1)))
        for tick in range(1, 10):
            feed(monitor, baseline, 0, rng.normal(10.0, 1.0, size=(4, 1)))
            feed(monitor, baseline, 1, rng.normal(40.0, 1.0, size=(4, 1)))
            monitor.check(baseline, ALL_EVENTS[:1], tick)
        categories = {a.category for a in monitor.alarms()}
        assert categories == {1}

    def test_alarm_rows_and_format(self):
        alarm = DriftAlarm(category=2, event=ALL_EVENTS[0], z_score=-5.5,
                           window=16, baseline_n=200, tick=7)
        row = alarm.to_dict()
        assert row["category"] == 2 and row["tick"] == 7
        text = alarm.format({2: 9})
        assert "t9" in text and "z=-5.5" in text

    def test_event_label_mismatch_is_an_error(self):
        monitor = DriftMonitor(window=4)
        baseline = StreamingMoments(columns=2)
        rows = np.ones((4, 2))
        feed(monitor, baseline, 0, rows + np.arange(4)[:, None])
        with pytest.raises(EvaluationError, match="event labels"):
            monitor.check(baseline, ALL_EVENTS[:1], tick=1)

    def test_validation(self):
        with pytest.raises(EvaluationError):
            DriftMonitor(window=1)
        with pytest.raises(EvaluationError):
            DriftMonitor(threshold=0.0)

    def test_memory_is_flat_in_stream_length(self):
        rng = np.random.default_rng(4)
        monitor = DriftMonitor(window=8, threshold=4.0)
        monitor.observe(0, rng.normal(size=(4, 3)))
        early = monitor.memory_bytes()
        for _ in range(100):
            monitor.observe(0, rng.normal(size=(4, 3)))
        assert monitor.memory_bytes() == early

    def test_state_round_trip(self):
        rng = np.random.default_rng(5)
        monitor = DriftMonitor(window=8, threshold=3.0)
        for category in (0, 1):
            monitor.observe(category, rng.normal(size=(12, 2)))
        restored = DriftMonitor.from_state(monitor.state(), window=8,
                                           threshold=3.0)
        baseline = StreamingMoments(columns=2)
        baseline.observe(0, rng.normal(size=(50, 2)))
        baseline.observe(1, rng.normal(size=(50, 2)))
        for category in (0, 1):
            want = monitor._windows[category].window()
            got = restored._windows[category].window()
            assert np.array_equal(want, got)


class TestDriftThroughStreamingEvaluator:
    def test_check_against_evaluator_moments(self):
        # The operational wiring: the evaluator's own accumulators are
        # the drift baseline.
        rng = np.random.default_rng(6)
        events = ALL_EVENTS[:3]
        evaluator = StreamingEvaluator(events=events)
        monitor = DriftMonitor(window=8, threshold=4.0)
        for tick in range(1, 16):
            for category in (0, 1):
                shift = 60.0 if category == 1 and tick > 10 else 0.0
                rows = rng.normal(100.0 + shift, 5.0, size=(5, 3))
                evaluator.observe_rows(category, rows, events=events)
                monitor.observe(category, rows)
            evaluator.tick()
            monitor.check(evaluator.moments, evaluator.events,
                          evaluator.ticks)
        assert monitor.alarm
        assert {a.category for a in monitor.alarms()} == {1}


class TestSpendAlpha:
    def test_geometric_series_sums_below_alpha(self):
        total = sum(spend_alpha(0.05, t) for t in range(1, 200))
        assert total <= 0.05 + 1e-12

    def test_harmonic_series_sums_below_alpha(self):
        total = sum(spend_alpha(0.05, t, scheme="harmonic")
                    for t in range(1, 100000))
        assert total <= 0.05 + 1e-12

    def test_geometric_underflow_is_exactly_zero(self):
        assert spend_alpha(0.05, 5000) == 0.0

    def test_geometric_deep_ticks_never_overflow(self):
        # Regression: `alpha / 2.0**tick` raised OverflowError for ticks
        # 1024-1074, crashing the resident daemon's consumer at tick 1024
        # deterministically.  The negative-exponent form underflows
        # gracefully instead.
        values = [spend_alpha(0.05, t) for t in range(1020, 1080)]
        assert all(v >= 0.0 for v in values)
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert spend_alpha(0.05, 1024) > 0.0
        assert spend_alpha(0.05, 1100) == 0.0

    def test_schemes_are_monotone_decreasing(self):
        for scheme in SPENDING_SCHEMES:
            values = [spend_alpha(0.05, t, scheme=scheme)
                      for t in range(1, 50)]
            assert all(a > b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(EvaluationError):
            spend_alpha(0.0, 1)
        with pytest.raises(EvaluationError):
            spend_alpha(0.05, 0)
        with pytest.raises(EvaluationError):
            spend_alpha(0.05, 1, scheme="bogus")
