"""Tests for repro.core.experiment (orchestration + caching)."""

import dataclasses

import numpy as np
import pytest

from repro.core import (
    BACKENDS,
    ExperimentConfig,
    build_model,
    cifar_experiment,
    mnist_experiment,
    prepare_model,
    resolve_backend_choice,
    run_experiment,
)
from repro.errors import ConfigError


def tiny_config(tmp_path, **overrides):
    defaults = dict(
        dataset="mnist",
        categories=(0, 1),
        samples_per_category=3,
        train_samples_per_class=6,
        epochs=1,
        cache_dir=str(tmp_path),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestConfig:
    def test_dataset_validation(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(dataset="imagenet")

    def test_needs_two_categories(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(categories=(1,))

    def test_display_map_is_one_based(self):
        config = ExperimentConfig(categories=(4, 2, 9))
        assert config.display_map() == {2: 1, 4: 2, 9: 3}

    def test_model_key_stable_and_sensitive(self, tmp_path):
        a = tiny_config(tmp_path)
        b = tiny_config(tmp_path)
        assert a.model_key() == b.model_key()
        c = tiny_config(tmp_path, epochs=2)
        assert c.model_key() != a.model_key()

    def test_generators(self):
        assert mnist_experiment().generator().name == "synthetic-mnist"
        assert cifar_experiment().generator().name == "synthetic-cifar"

    def test_engine_validation(self):
        assert ExperimentConfig().engine == "compiled"
        assert ExperimentConfig(engine="layers").engine == "layers"
        with pytest.raises(ConfigError):
            ExperimentConfig(engine="turbo")

    def test_engine_does_not_change_model_key(self, tmp_path):
        # The engine never changes values, so cached models stay shared.
        assert (tiny_config(tmp_path, engine="layers").model_key()
                == tiny_config(tmp_path, engine="compiled").model_key())

    def test_backend_validation(self):
        assert ExperimentConfig().backend == "sim"
        for name in BACKENDS:
            assert ExperimentConfig(backend=name).backend == name
        with pytest.raises(ConfigError):
            ExperimentConfig(backend="oscilloscope")

    def test_retries_validation(self):
        assert ExperimentConfig(retries=1).retries == 1
        with pytest.raises(ConfigError):
            ExperimentConfig(retries=0)

    def test_retry_policy_derivation(self):
        policy = ExperimentConfig(retries=4, noise_seed=9).retry_policy()
        assert policy.max_attempts == 4
        assert policy.seed == 9
        assert ExperimentConfig(retries=1).retry_policy() is None


class TestBackendResolution:
    def test_explicit_backends_pass_through(self, tmp_path):
        assert resolve_backend_choice(tiny_config(tmp_path)) == "sim"
        assert resolve_backend_choice(
            tiny_config(tmp_path, backend="perf")) == "perf"

    def test_auto_prefers_perf_when_available(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.core.experiment.perf_available",
                            lambda *a, **k: True)
        config = tiny_config(tmp_path, backend="auto")
        assert resolve_backend_choice(config) == "perf"

    def test_auto_degrades_to_sim_with_warning(self, tmp_path, monkeypatch):
        from repro import obs
        monkeypatch.setattr("repro.core.experiment.perf_available",
                            lambda *a, **k: False)
        obs.configure(obs.TelemetryConfig(enabled=True, console=False))
        try:
            config = tiny_config(tmp_path, backend="auto")
            with pytest.warns(RuntimeWarning, match="falling back"):
                assert resolve_backend_choice(config) == "sim"
            snapshot = obs.active().snapshot()
            assert snapshot.counter_value("backend.fallback",
                                          requested="auto", used="sim") == 1.0
        finally:
            obs.reset()

    def test_auto_end_to_end_runs_on_sim_fallback(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr("repro.core.experiment.perf_available",
                            lambda *a, **k: False)
        with pytest.warns(RuntimeWarning):
            result = run_experiment(tiny_config(tmp_path, backend="auto"))
        assert result.backend.name == "sim"
        assert result.distributions.sample_count(0) == 3


class TestBuildModel:
    def test_mnist_architecture(self):
        model = build_model("mnist")
        assert model.input_shape == (1, 28, 28)
        assert model.output_shape == (10,)

    def test_cifar_architecture(self):
        model = build_model("cifar10")
        assert model.input_shape == (3, 32, 32)
        assert model.output_shape == (10,)

    def test_unknown_dataset(self):
        with pytest.raises(ConfigError):
            build_model("svhn")


class TestPrepareModel:
    def test_trains_and_caches(self, tmp_path):
        config = tiny_config(tmp_path)
        model, accuracy = prepare_model(config)
        assert 0.0 <= accuracy <= 1.0
        cached = list(tmp_path.glob("model-*.npz"))
        assert len(cached) == 1
        # Second call loads the exact same weights.
        reloaded, _ = prepare_model(config)
        assert reloaded.weights_fingerprint() == model.weights_fingerprint()

    def test_no_cache_dir_disables_caching(self, tmp_path):
        config = tiny_config(tmp_path, cache_dir="")
        prepare_model(config)
        assert list(tmp_path.glob("model-*.npz")) == []

    def test_corrupt_cached_model_is_evicted_and_retrained(self, tmp_path):
        # A torn archive (interrupted run, hard container stop) must read
        # as a miss, not crash the pipeline or poison later runs.
        config = tiny_config(tmp_path)
        model, _ = prepare_model(config)
        cached = list(tmp_path.glob("model-*.npz"))
        assert len(cached) == 1
        payload = cached[0].read_bytes()
        cached[0].write_bytes(payload[:-3])  # truncate, like a torn write
        retrained, _ = prepare_model(config)
        assert retrained.weights_fingerprint() == model.weights_fingerprint()
        # The repaired entry loads cleanly on the next run.
        reloaded, _ = prepare_model(config)
        assert reloaded.weights_fingerprint() == model.weights_fingerprint()

    def test_save_model_leaves_no_temp_files(self, tmp_path):
        config = tiny_config(tmp_path)
        prepare_model(config)
        assert list(tmp_path.glob("*.tmp-*")) == []


class TestRunExperiment:
    def test_end_to_end_tiny(self, tmp_path):
        result = run_experiment(tiny_config(tmp_path))
        assert result.distributions.categories == [0, 1]
        assert result.distributions.sample_count(0) == 3
        assert len(result.report.results) == 8  # 1 pair x 8 events
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_measurements_cached_across_runs(self, tmp_path):
        config = tiny_config(tmp_path)
        first = run_experiment(config)
        second = run_experiment(config)
        for event in first.distributions.events:
            np.testing.assert_array_equal(
                first.distributions.values(0, event),
                second.distributions.values(0, event))

    def test_noise_seed_changes_measurements(self, tmp_path):
        base = run_experiment(tiny_config(tmp_path))
        other = run_experiment(tiny_config(tmp_path, noise_seed=99))
        differs = any(
            not np.array_equal(base.distributions.values(0, event),
                               other.distributions.values(0, event))
            for event in base.distributions.events)
        assert differs
