"""Tests for repro.core.sequential (group-sequential detection)."""

import numpy as np
import pytest

from repro.core import (
    SequentialEvaluator,
    default_checkpoints,
    detection_latency_curve,
)
from repro.errors import EvaluationError
from repro.hpc import EventDistributions
from repro.uarch import HpcEvent


def streaming_distributions(gap, n=160, seed=0):
    rng = np.random.default_rng(seed)
    return EventDistributions({
        1: {HpcEvent.CACHE_MISSES: rng.normal(1000.0, 10.0, n)},
        2: {HpcEvent.CACHE_MISSES: rng.normal(1000.0 + gap, 10.0, n)},
    })


class TestCheckpointSchedule:
    def test_doubling_schedule(self):
        assert default_checkpoints(100) == (5, 10, 20, 40, 80, 100)

    def test_exact_power_of_two_end(self):
        assert default_checkpoints(40) == (5, 10, 20, 40)

    def test_tiny_budget_degrades_to_single_checkpoint(self):
        assert default_checkpoints(3) == (3,)

    def test_rejects_budget_below_two(self):
        with pytest.raises(EvaluationError):
            default_checkpoints(1)


class TestSequentialEvaluator:
    def test_strong_leak_detected_early(self):
        result = SequentialEvaluator().run(
            streaming_distributions(gap=50.0), HpcEvent.CACHE_MISSES)
        assert result.detected
        assert result.detection_n <= 10
        assert result.first_pair == (1, 2)
        assert "detected at n=" in result.format()

    def test_weak_leak_detected_late(self):
        strong = SequentialEvaluator().run(
            streaming_distributions(gap=50.0), HpcEvent.CACHE_MISSES)
        weak = SequentialEvaluator().run(
            streaming_distributions(gap=5.0), HpcEvent.CACHE_MISSES)
        assert weak.detected
        assert weak.detection_n > strong.detection_n

    def test_no_leak_not_detected(self):
        result = SequentialEvaluator(alpha=0.05).run(
            streaming_distributions(gap=0.0), HpcEvent.CACHE_MISSES)
        assert not result.detected
        assert result.detection_n is None
        assert "not detected" in result.format()

    def test_false_alarm_rate_respects_alpha(self):
        # 60 independent no-leak streams: expect about alpha*60 false alarms.
        alarms = 0
        for seed in range(60):
            result = SequentialEvaluator(alpha=0.05).run(
                streaming_distributions(gap=0.0, n=80, seed=seed),
                HpcEvent.CACHE_MISSES)
            alarms += result.detected
        assert alarms <= 8  # generous binomial bound for p<=0.05

    def test_custom_checkpoints(self):
        evaluator = SequentialEvaluator(checkpoints=(20, 40))
        result = evaluator.run(streaming_distributions(gap=50.0),
                               HpcEvent.CACHE_MISSES)
        assert result.checkpoints == (20, 40)
        assert result.detection_n == 20

    def test_checkpoints_clipped_to_available_data(self):
        evaluator = SequentialEvaluator(checkpoints=(20, 10_000))
        result = evaluator.run(streaming_distributions(gap=50.0, n=50),
                               HpcEvent.CACHE_MISSES)
        assert result.checkpoints == (20,)

    def test_unusable_checkpoints_rejected(self):
        evaluator = SequentialEvaluator(checkpoints=(10_000,))
        with pytest.raises(EvaluationError):
            evaluator.run(streaming_distributions(gap=1.0, n=50),
                          HpcEvent.CACHE_MISSES)

    def test_run_all(self):
        results = SequentialEvaluator().run_all(
            streaming_distributions(gap=30.0))
        assert set(results) == {HpcEvent.CACHE_MISSES}

    def test_rejects_bad_alpha(self):
        with pytest.raises(EvaluationError):
            SequentialEvaluator(alpha=1.5)


class TestLatencyCurve:
    def test_monotone_power_growth(self):
        curve = detection_latency_curve(
            streaming_distributions(gap=6.0), HpcEvent.CACHE_MISSES,
            checkpoints=(5, 20, 80, 160))
        budgets = [point[0] for point in curve]
        rejections = [point[1] for point in curve]
        assert budgets == [5, 20, 80, 160]
        assert rejections[-1] >= rejections[0]
        assert rejections[-1] == 1  # eventually detected

    def test_no_leak_flat_curve(self):
        curve = detection_latency_curve(
            streaming_distributions(gap=0.0, seed=4),
            HpcEvent.CACHE_MISSES, checkpoints=(10, 40, 160))
        assert sum(point[1] for point in curve) <= 1
