"""Tests for repro.core.reporting (paper-style renderings)."""

import numpy as np
import pytest

from repro.core import (
    Evaluator,
    format_category_means,
    format_distribution_figure,
    format_event_readout,
    format_full_report,
    format_paper_table,
)
from repro.errors import EvaluationError
from repro.uarch import ALL_EVENTS, EventCounts, HpcEvent

from .test_evaluator import make_distributions


@pytest.fixture(scope="module")
def dists():
    return make_distributions()


@pytest.fixture(scope="module")
def report(dists):
    return Evaluator().evaluate(dists)


class TestEventReadout:
    def test_figure2_style(self):
        counts = EventCounts({event: 1000 + i
                              for i, event in enumerate(ALL_EVENTS)})
        text = format_event_readout(counts, title="one classification:")
        assert text.startswith("one classification:")
        for event in ALL_EVENTS:
            assert event.value in text
        assert "1,000" in text  # thousands grouping like the paper


class TestCategoryMeans:
    def test_figure1_style(self, dists):
        text = format_category_means(dists, HpcEvent.CACHE_MISSES)
        assert "cache-misses" in text
        assert text.count("\n  category") == 3
        assert "#" in text

    def test_bars_reflect_ordering(self, dists):
        text = format_category_means(dists, HpcEvent.CACHE_MISSES, width=30)
        lines = [l for l in text.splitlines() if "category" in l]
        bar_lengths = {line.split(":")[0].strip(): line.count("#")
                       for line in lines}
        # Category 3 has the shifted (larger) mean -> longest bar.
        assert bar_lengths["category 3"] == max(bar_lengths.values())

    def test_display_mapping(self, dists):
        text = format_category_means(dists, HpcEvent.CACHE_MISSES,
                                     display={1: 7, 2: 8, 3: 9})
        assert "category 7" in text


class TestDistributionFigure:
    def test_figure3_style(self, dists):
        text = format_distribution_figure(dists, HpcEvent.CACHE_MISSES,
                                          bins=10)
        assert text.count("-- category") == 3
        assert "shared range" in text

    def test_histograms_share_range(self, dists):
        text = format_distribution_figure(dists, HpcEvent.CACHE_MISSES,
                                          bins=8)
        # Every block renders the same number of bins.
        blocks = text.split("\n\n")[1:]
        bin_counts = [sum(1 for line in block.splitlines() if "[" in line)
                      for block in blocks]
        assert len(set(bin_counts)) == 1


class TestPaperTable:
    def test_table_rows_and_columns(self, report):
        text = format_paper_table(report,
                                  events=[HpcEvent.CACHE_MISSES,
                                          HpcEvent.BRANCHES])
        assert "t1,2" in text and "t2,3" in text
        assert "cache-misses t" in text
        assert "branches p" in text
        assert "95% confidence" in text

    def test_significance_stars(self, report):
        text = format_paper_table(report,
                                  events=[HpcEvent.CACHE_MISSES])
        starred = [line for line in text.splitlines() if "*" in line
                   and line.strip().startswith("t")]
        assert len(starred) == 2  # pairs (1,3) and (2,3)

    def test_missing_event_rejected(self, report):
        with pytest.raises(EvaluationError):
            format_paper_table(report, events=[HpcEvent.CYCLES])

    def test_display_remap(self, report):
        text = format_paper_table(report, events=[HpcEvent.CACHE_MISSES],
                                  display={1: 1, 2: 2, 3: 4})
        assert "t1,4" in text


class TestLeakageBits:
    def test_table_lists_every_event(self, dists):
        from repro.core import format_leakage_bits
        text = format_leakage_bits(dists)
        assert "max 1.58 bits" in text  # log2(3) categories
        assert "cache-misses" in text and "branches" in text

    def test_leaky_event_gets_longer_bar(self, dists):
        from repro.core import format_leakage_bits
        lines = format_leakage_bits(dists).splitlines()
        by_event = {line.split()[0]: line.count("#") for line in lines[1:]}
        # cache-misses separates category 3; branches are identical noise.
        assert by_event["cache-misses"] > by_event["branches"]


class TestFullReport:
    def test_contains_summary_and_table(self, report):
        text = format_full_report(report)
        assert "leakage evaluation" in text
        assert "ALARM" in text
        assert "t1,2" in text
