"""Tests for repro.uarch.branch predictors."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.uarch import (
    BimodalPredictor,
    GsharePredictor,
    StaticTakenPredictor,
    TournamentPredictor,
    make_predictor,
)


class TestStatic:
    def test_always_taken(self):
        predictor = StaticTakenPredictor()
        assert not predictor.execute(0, True)
        assert predictor.execute(0, False)
        assert predictor.stats.branches == 2
        assert predictor.stats.mispredictions == 1


class TestBimodal:
    def test_learns_strong_bias(self):
        predictor = BimodalPredictor()
        misses = predictor.execute_stream([7] * 100, [True] * 100)
        # Initialized weakly-taken: a taken-biased branch never mispredicts.
        assert misses == 0

    def test_learns_not_taken_bias(self):
        predictor = BimodalPredictor()
        misses = predictor.execute_stream([7] * 100, [False] * 100)
        assert misses <= 2  # at most the training transient

    def test_alternating_pattern_defeats_bimodal(self):
        predictor = BimodalPredictor()
        outcomes = [bool(i % 2) for i in range(200)]
        misses = predictor.execute_stream([3] * 200, outcomes)
        assert misses > 60  # 2-bit counters thrash on alternation

    def test_independent_pcs(self):
        predictor = BimodalPredictor()
        predictor.execute_stream([1] * 50, [True] * 50)
        misses = predictor.execute_stream([2] * 50, [False] * 50)
        assert misses <= 2

    def test_reset_clears_training(self):
        predictor = BimodalPredictor()
        predictor.execute_stream([5] * 50, [False] * 50)
        predictor.reset()
        assert predictor.stats.branches == 0
        # After reset the table is weakly-taken again: first prediction True.
        assert predictor._predict_update(5, False)

    def test_rejects_bad_table_bits(self):
        with pytest.raises(ConfigError):
            BimodalPredictor(table_bits=0)


class TestGshare:
    def test_learns_alternation_via_history(self):
        predictor = GsharePredictor(table_bits=10, history_bits=8)
        outcomes = [bool(i % 2) for i in range(600)]
        misses = predictor.execute_stream([3] * 600, outcomes)
        # After warm-up the alternating pattern is perfectly predictable.
        assert misses < 60

    def test_beats_bimodal_on_periodic_pattern(self):
        pattern = ([True, True, False, False] * 200)
        pcs = [9] * len(pattern)
        bimodal = BimodalPredictor()
        gshare = GsharePredictor()
        bimodal_misses = bimodal.execute_stream(pcs, pattern)
        gshare_misses = gshare.execute_stream(pcs, pattern)
        assert gshare_misses < bimodal_misses

    def test_rejects_history_longer_than_table(self):
        with pytest.raises(ConfigError):
            GsharePredictor(table_bits=4, history_bits=8)


class TestTournament:
    def test_tracks_best_component_on_biased_stream(self):
        predictor = TournamentPredictor()
        misses = predictor.execute_stream([4] * 300, [True] * 300)
        assert misses <= 2

    def test_periodic_stream_close_to_gshare(self):
        pattern = [bool(i % 2) for i in range(600)]
        tournament = TournamentPredictor()
        misses = tournament.execute_stream([2] * 600, pattern)
        assert misses < 120


class TestBulkAccounting:
    def test_bulk_counts(self):
        predictor = BimodalPredictor()
        missed = predictor.record_bulk(10_000, miss_rate=0.001)
        assert missed == 10
        assert predictor.stats.total_branches == 10_000
        assert predictor.stats.total_mispredictions == 10

    def test_bulk_combines_with_dynamic(self):
        predictor = BimodalPredictor()
        predictor.record_bulk(100, miss_rate=0.0)
        predictor.execute_stream([1] * 10, [True] * 10)
        assert predictor.stats.total_branches == 110

    def test_bulk_rejects_bad_arguments(self):
        predictor = BimodalPredictor()
        with pytest.raises(ConfigError):
            predictor.record_bulk(-1)
        with pytest.raises(ConfigError):
            predictor.record_bulk(10, miss_rate=2.0)

    def test_miss_rate_property(self):
        predictor = StaticTakenPredictor()
        predictor.execute_stream([0, 0], [True, False])
        assert predictor.stats.miss_rate == pytest.approx(0.5)


class TestStreamApi:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            BimodalPredictor().execute_stream([1, 2], [True])

    def test_numpy_arrays_accepted(self):
        predictor = BimodalPredictor()
        misses = predictor.execute_stream(np.array([1, 1, 1]),
                                          np.array([True, True, True]))
        assert misses == 0

    def test_factory(self):
        for name in ("static-taken", "bimodal", "gshare", "tournament"):
            assert make_predictor(name).name == name
        with pytest.raises(ConfigError):
            make_predictor("perceptron")
