"""Tests for repro.uarch.tlb and repro.uarch.prefetch."""

import pytest

from repro.errors import ConfigError
from repro.uarch import (
    NextLinePrefetcher,
    NullPrefetcher,
    StridePrefetcher,
    Tlb,
    TlbConfig,
    make_prefetcher,
)


class TestTlb:
    def test_same_page_hits(self):
        tlb = Tlb(TlbConfig(entries=4, page_bytes=4096, walk_latency=50),
                  line_bytes=64)
        # 64 lines per page: lines 0..63 are one page.
        cycles = tlb.translate_lines([0, 1, 63])
        assert cycles == 50  # one walk
        assert tlb.stats.hits == 2
        assert tlb.stats.misses == 1

    def test_distinct_pages_walk_each(self):
        tlb = Tlb(TlbConfig(entries=8), line_bytes=64)
        cycles = tlb.translate_lines([0, 64, 128])
        assert tlb.stats.misses == 3
        assert cycles == 3 * 50

    def test_lru_capacity_eviction(self):
        tlb = Tlb(TlbConfig(entries=2), line_bytes=64)
        tlb.translate_lines([0, 64, 128])   # pages 0,1,2 -> 0 evicted
        tlb.translate_lines([0])
        assert tlb.stats.misses == 4

    def test_recency_refresh(self):
        tlb = Tlb(TlbConfig(entries=2), line_bytes=64)
        tlb.translate_lines([0, 64, 0, 128])  # page 0 refreshed; 1 evicted
        assert tlb.resident_pages() == [0, 2]

    def test_reset(self):
        tlb = Tlb()
        tlb.translate_lines([0])
        tlb.reset()
        assert tlb.stats.accesses == 0
        assert tlb.resident_pages() == []

    def test_miss_rate(self):
        tlb = Tlb()
        tlb.translate_lines([0, 0, 0, 64])
        assert tlb.stats.miss_rate == pytest.approx(0.5)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            TlbConfig(entries=0)
        with pytest.raises(ConfigError):
            TlbConfig(page_bytes=1000)
        with pytest.raises(ConfigError):
            Tlb(TlbConfig(page_bytes=64), line_bytes=128)


class TestPrefetchers:
    def test_null_is_passthrough(self):
        prefetcher = NullPrefetcher()
        assert prefetcher.expand_stream([1, 2, 3]) == [1, 2, 3]
        assert prefetcher.stats.issued == 0

    def test_next_line_inserts_after_demand(self):
        prefetcher = NextLinePrefetcher(degree=1)
        assert prefetcher.expand_stream([10, 20]) == [10, 11, 20, 21]
        assert prefetcher.stats.issued == 2

    def test_next_line_degree(self):
        prefetcher = NextLinePrefetcher(degree=3)
        assert prefetcher.expand_stream([5]) == [5, 6, 7, 8]

    def test_stride_detects_constant_stride(self):
        prefetcher = StridePrefetcher(degree=1, confidence_threshold=2)
        out = prefetcher.expand_stream([0, 4, 8, 12])
        # Stride 4 confirmed at the third access; prefetch from then on.
        assert 16 in out
        assert prefetcher.stats.issued >= 1

    def test_stride_resets_on_pattern_break(self):
        prefetcher = StridePrefetcher(degree=1, confidence_threshold=2)
        prefetcher.expand_stream([0, 4, 8])
        issued_before = prefetcher.stats.issued
        prefetcher.expand_stream([100])  # break
        assert prefetcher.stats.issued == issued_before
        # Needs to re-earn confidence before prefetching again.
        prefetcher.expand_stream([104])
        assert prefetcher.stats.issued == issued_before

    def test_stride_ignores_zero_stride(self):
        prefetcher = StridePrefetcher()
        prefetcher.expand_stream([7, 7, 7, 7, 7])
        assert prefetcher.stats.issued == 0

    def test_factory(self):
        for name in ("none", "next-line", "stride"):
            assert make_prefetcher(name).name == name
        with pytest.raises(ConfigError):
            make_prefetcher("ghost")

    def test_rejects_bad_degree(self):
        with pytest.raises(ConfigError):
            NextLinePrefetcher(degree=0)
        with pytest.raises(ConfigError):
            StridePrefetcher(confidence_threshold=0)
