"""Tests for repro.uarch.vectorized — exactness of the batched kernels.

Every kernel here must be *bit-exact* against a straightforward
per-access reference simulation; closeness is not good enough, because
the measurement engine built on top of them advertises distributions
identical to the naive replay path.
"""

import numpy as np
import pytest

from repro.uarch.vectorized import (
    counter_states_before,
    lru_hits_grouped,
    lru_level_hits,
    lru_level_misses,
    strip_periodic_middles,
    tlb_hits,
)


def ref_lru_hits(values, group_ids, assoc):
    """Per-access dict-and-list LRU simulation (the obviously-correct one)."""
    hits = np.zeros(values.size, dtype=bool)
    state = {}
    for i, (value, group) in enumerate(zip(values.tolist(),
                                           group_ids.tolist())):
        lst = state.setdefault(group, [])
        if value in lst:
            lst.remove(value)
            lst.append(value)
            hits[i] = True
        else:
            lst.append(value)
            if len(lst) > assoc:
                lst.pop(0)
    return hits


def collapse_dups(values, groups):
    """Drop consecutive duplicates within a group (kernel precondition)."""
    keep = np.ones(values.size, dtype=bool)
    keep[1:] = (values[1:] != values[:-1]) | (groups[1:] != groups[:-1])
    return values[keep], groups[keep]


class TestLruHitsGrouped:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_streams(self, seed):
        rng = np.random.default_rng(seed)
        for trial in range(10):
            assoc = int(rng.integers(1, 17))
            ngroups = int(rng.integers(1, 5))
            n = int(rng.integers(1, 400))
            nvals = int(rng.integers(2, 8))
            if trial % 3 == 0:
                # Periodic tiling: the pattern real conv traces produce.
                period = int(rng.integers(2, 7))
                base = rng.integers(0, nvals, period)
                vals = np.tile(base, n // period + 1)[:n].astype(np.int64)
            else:
                vals = rng.integers(0, nvals, n).astype(np.int64)
            grp = np.sort(rng.integers(0, ngroups, n)).astype(np.int64)
            vals, grp = collapse_dups(vals, grp)
            got = lru_hits_grouped(vals, grp, assoc)
            want = ref_lru_hits(vals, grp, assoc)
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("period,assoc",
                             [(2, 4), (3, 8), (4, 8), (4, 16), (6, 16),
                              (5, 8)])
    def test_long_periodic_streams(self, period, assoc):
        # Long periodic runs with occasional splices exercise the
        # strip/walker interplay that plain random streams never reach.
        base = np.arange(period, dtype=np.int64) * 16
        vals = np.tile(base, 3000)
        vals[::97] = 999
        keep = np.ones(vals.size, dtype=bool)
        keep[1:] = vals[1:] != vals[:-1]
        vals = vals[keep]
        groups = np.zeros(vals.size, dtype=np.int64)
        np.testing.assert_array_equal(
            lru_hits_grouped(vals, groups, assoc),
            ref_lru_hits(vals, groups, assoc))

    def test_deep_sets_hit_bitset_kernel(self):
        # assoc >= 6 with a large stream takes the bitset kernel; feed a
        # group that overflows 64 distinct values to force the walker
        # fallback path inside it as well.
        rng = np.random.default_rng(7)
        vals = rng.integers(0, 200, 5000).astype(np.int64)
        groups = np.sort(rng.integers(0, 3, 5000)).astype(np.int64)
        vals, groups = collapse_dups(vals, groups)
        np.testing.assert_array_equal(
            lru_hits_grouped(vals, groups, 8),
            ref_lru_hits(vals, groups, 8))


class TestStripPeriodicMiddles:
    def test_removed_positions_are_unconditional_hits(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            assoc = int(rng.integers(6, 17))
            period = int(rng.integers(2, min(assoc, 8)))
            base = rng.integers(0, 50, period) * 64
            vals = np.tile(base, 400).astype(np.int64)
            vals[::53] = int(rng.integers(1000, 2000))
            groups = np.zeros(vals.size, dtype=np.int64)
            vals, groups = collapse_dups(vals, groups)
            starts = np.zeros(vals.size, dtype=bool)
            starts[0] = True
            core = strip_periodic_middles(vals, starts, assoc)
            want = ref_lru_hits(vals, groups, assoc)
            # Everything the strip removes must be a hit...
            assert want[~core].all()
            # ...and the surviving core must replay identically on its own.
            np.testing.assert_array_equal(
                lru_hits_grouped(vals[core], groups[core], assoc),
                ref_lru_hits(vals[core], groups[core], assoc))


class TestLevelKernels:
    def _reference_level(self, stream, sample_of, num_sets, assoc):
        hits = np.zeros(stream.size, dtype=bool)
        state = {}
        for i, (line, sample) in enumerate(zip(stream.tolist(),
                                               sample_of.tolist())):
            key = (sample, line & (num_sets - 1))
            lst = state.setdefault(key, [])
            if line in lst:
                lst.remove(line)
                lst.append(line)
                hits[i] = True
            else:
                lst.append(line)
                if len(lst) > assoc:
                    lst.pop(0)
        return hits

    def test_lru_level_hits_matches_reference(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 512, 4000).astype(np.int64)
        sample_of = np.sort(rng.integers(0, 5, 4000)).astype(np.int64)
        for num_sets, assoc in ((16, 4), (64, 8), (128, 16)):
            np.testing.assert_array_equal(
                lru_level_hits(stream, sample_of, num_sets, assoc),
                self._reference_level(stream, sample_of, num_sets, assoc))

    def test_lru_level_misses_counts_and_feed(self):
        rng = np.random.default_rng(4)
        stream = rng.integers(0, 256, 3000).astype(np.int64)
        sample_of = np.sort(rng.integers(0, 4, 3000)).astype(np.int64)
        num_sets, assoc = 16, 4
        want_hits = self._reference_level(stream, sample_of, num_sets, assoc)
        misses, feed, feed_sample = lru_level_misses(
            stream, sample_of, num_sets, assoc, 4)
        want_misses = np.bincount(sample_of[~want_hits], minlength=4)
        np.testing.assert_array_equal(misses, want_misses)
        # The feed must contain exactly the missed lines; its order is a
        # level-specific (set, sample) order, so compare as multisets per
        # sample.
        for s in range(4):
            got = np.sort(feed[feed_sample == s])
            want = np.sort(stream[(sample_of == s) & ~want_hits])
            np.testing.assert_array_equal(got, want)


class TestTlbHits:
    def _reference(self, pages, capacity, resident=()):
        lst = list(resident)
        hits = np.zeros(pages.size, dtype=bool)
        for i, page in enumerate(pages.tolist()):
            if page in lst:
                lst.remove(page)
                hits[i] = True
            elif len(lst) >= capacity:
                lst.pop(0)
            lst.append(page)
        return hits

    @pytest.mark.parametrize("npages", [8, 50, 200])
    def test_cold_stream(self, npages):
        rng = np.random.default_rng(5)
        pages = rng.integers(0, npages, 3000).astype(np.int64)
        np.testing.assert_array_equal(
            tlb_hits(pages, 32), self._reference(pages, 32))

    def test_warm_resident_prefix(self):
        rng = np.random.default_rng(6)
        pages = rng.integers(0, 40, 1500).astype(np.int64)
        resident = np.arange(100, 124, dtype=np.int64)  # LRU-first order
        np.testing.assert_array_equal(
            tlb_hits(pages, 32, resident=resident),
            self._reference(pages, 32, resident.tolist()))


class TestCounterStatesBefore:
    def _reference(self, group_ids, directions, init, lo, hi):
        states = np.empty(group_ids.size, dtype=np.int64)
        current = {}
        for i, (group, direction) in enumerate(zip(group_ids.tolist(),
                                                   directions.tolist())):
            state = current.get(group)
            if state is None:
                state = int(init[i])
            states[i] = state
            current[group] = min(hi, max(lo, state + direction))
        return states

    @pytest.mark.parametrize("seed", range(4))
    def test_two_bit_counters(self, seed):
        rng = np.random.default_rng(seed)
        n = 2000
        group_ids = rng.integers(0, 17, n).astype(np.uint16)
        directions = rng.choice(np.array([-1, 0, 1]), n)
        table = rng.integers(0, 4, 17)
        init = table[group_ids]
        got = counter_states_before(group_ids, directions, init)
        np.testing.assert_array_equal(
            got, self._reference(group_ids, directions, init, 0, 3))
