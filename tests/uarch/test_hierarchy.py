"""Tests for repro.uarch.hierarchy."""

import pytest

from repro.errors import ConfigError
from repro.uarch import CacheGeometry, CacheHierarchy, HierarchyConfig


def small_hierarchy():
    return CacheHierarchy(HierarchyConfig(
        l1=CacheGeometry(2 * 64, 64, 2),      # 2 lines
        l2=CacheGeometry(8 * 64, 64, 2),      # 8 lines
        llc=CacheGeometry(32 * 64, 64, 4),    # 32 lines
        l1_latency=4, l2_latency=12, llc_latency=40, memory_latency=200,
    ))


class TestConfig:
    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ConfigError):
            HierarchyConfig(l1=CacheGeometry(1024, 32, 2))

    def test_rejects_shrinking_levels(self):
        with pytest.raises(ConfigError):
            HierarchyConfig(
                l1=CacheGeometry(64 * 1024, 64, 8),
                l2=CacheGeometry(32 * 1024, 64, 8),
            )

    def test_rejects_bad_latency(self):
        with pytest.raises(ConfigError):
            HierarchyConfig(l1_latency=0)


class TestMissForwarding:
    def test_cold_stream_misses_all_levels(self):
        h = small_hierarchy()
        summary = h.access_stream(list(range(10)))
        assert summary.accesses == 10
        assert summary.l1_misses == 10
        assert summary.l2_misses == 10
        assert summary.llc_misses == 10

    def test_l1_hit_never_reaches_l2(self):
        h = small_hierarchy()
        h.access_stream([0])
        summary = h.access_stream([0])
        assert summary.l1_misses == 0
        assert summary.l2_misses == 0
        assert summary.llc_misses == 0

    def test_l1_victim_found_in_l2(self):
        h = small_hierarchy()
        # Lines 0..4 map to different L1 sets? L1 has 1 set x 2 ways? No:
        # 2 lines / 2 ways = 1 set, so any 3 distinct lines overflow L1 but
        # fit L2 (8 lines).
        h.access_stream([0, 1, 2])
        summary = h.access_stream([0])
        assert summary.l1_misses == 1
        assert summary.l2_misses == 0  # still in L2

    def test_monotone_miss_counts(self):
        h = small_hierarchy()
        summary = h.access_stream(list(range(50)) * 2)
        assert (summary.accesses >= summary.l1_misses >= summary.l2_misses
                >= summary.llc_misses)

    def test_stall_cycles_formula(self):
        h = small_hierarchy()
        summary = h.access_stream([0])
        expected = (12 - 4) + (40 - 12) + (200 - 40)
        assert summary.stall_cycles == expected

    def test_totals_accumulate(self):
        h = small_hierarchy()
        h.access_stream([0, 1])
        h.access_stream([2])
        assert h.totals.accesses == 3
        assert h.totals.llc_misses == 3

    def test_reset(self):
        h = small_hierarchy()
        h.access_stream([0, 1, 2])
        h.reset()
        assert h.totals.accesses == 0
        assert h.access_stream([0]).l1_misses == 1

    def test_miss_breakdown_and_describe(self):
        h = small_hierarchy()
        h.access_stream([0, 1])
        breakdown = h.miss_breakdown()
        assert set(breakdown) == {"L1D", "L2", "LLC"}
        text = h.describe()
        assert "L1D" in text and "DRAM" in text

    def test_touch_single_line(self):
        h = small_hierarchy()
        summary = h.touch(5)
        assert summary.accesses == 1
        assert h.touch(5).l1_misses == 0
