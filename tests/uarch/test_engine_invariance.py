"""Invariance suite: the batched measurement engine vs naive replay.

The engine's contract is *bit-identity*: for every supported
configuration, `MeasurementPlan.replay_batch` must produce exactly the
event counts the naive per-sample `CpuModel` replay produces, and
`SimBackend.measure_batch` must produce exactly the measurements of the
per-sample `measure` loop — across replacement policies, noise schemes
and cold/warm caches.  Configurations the plan does not support must
fall back to the per-sample path (and say so via `supports`).
"""

import numpy as np
import pytest

from repro.hpc.sim_backend import SimBackend
from repro.uarch.cpu import CpuConfig, CpuModel
from repro.uarch.engine import MeasurementPlan
from repro.uarch.hierarchy import HierarchyConfig

BATCH = 10  # crosses the engine's internal REPLAY_CHUNK boundary


@pytest.fixture(scope="module")
def traced_samples(tiny_trained_model, digits_dataset):
    backend = SimBackend(tiny_trained_model)
    samples = [image for image in digits_dataset.category(0).images[:BATCH]]
    traces = [backend.traced.trace_sample(sample)[1] for sample in samples]
    return samples, traces


def naive_counts(config, trace):
    cpu = CpuModel(config, seed=0, cold_start=True)
    cpu.begin_task()
    trace.replay(cpu)
    return cpu.ground_truth()


class TestReplayBatchBitIdentity:
    @pytest.mark.parametrize("predictor",
                             ["gshare", "bimodal", "static-taken",
                              "tournament"])
    def test_matches_naive_replay(self, traced_samples, predictor):
        _, traces = traced_samples
        config = CpuConfig(predictor=predictor)
        plan = MeasurementPlan(config)
        got = plan.replay_batch(traces)
        for index, trace in enumerate(traces):
            want = naive_counts(config, trace)
            assert list(got[index].keys()) == list(want.keys())
            assert got[index] == want

    def test_chunking_is_invisible(self, traced_samples):
        # Any internal chunk size must yield the same counts: each sample
        # is replayed independently against the memoized prefix.
        _, traces = traced_samples
        plan = MeasurementPlan(CpuConfig())
        whole = plan.replay_batch(traces)
        one_by_one = [plan.replay_batch([trace])[0] for trace in traces]
        assert whole == one_by_one


class TestSupportGating:
    def test_supported_configuration(self):
        assert MeasurementPlan.supports(CpuConfig(), cold_start=True)

    @pytest.mark.parametrize("config,cold", [
        (CpuConfig(), False),                                    # warm
        (CpuConfig(hierarchy=HierarchyConfig(policy="tree-plru")), True),
        (CpuConfig(hierarchy=HierarchyConfig(policy="random")), True),
        (CpuConfig(hierarchy=HierarchyConfig(policy="fifo")), True),
    ])
    def test_unsupported_configurations(self, config, cold):
        assert not MeasurementPlan.supports(config, cold_start=cold)


class TestMeasureBatchInvariance:
    """measure_batch == per-sample measure, whatever the configuration.

    Supported configurations take the vectorized engine; unsupported ones
    fall back to the per-sample loop — either way the measurements must be
    indistinguishable from calling ``measure`` in a loop on a fresh
    backend.
    """

    POLICIES = ["lru", "tree-plru", "random"]
    SCHEMES = ["per-sample", "stream"]

    def _backend(self, model, policy, scheme, cold):
        config = CpuConfig(hierarchy=HierarchyConfig(policy=policy))
        backend = SimBackend(model, cpu_config=config, noise_scheme=scheme)
        backend.cpu.cold_start = cold
        return backend

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("cold", [True, False])
    def test_bit_identical_measurements(self, tiny_trained_model,
                                        traced_samples, policy, scheme, cold):
        samples, _ = traced_samples
        samples = samples[:3]
        reference = self._backend(tiny_trained_model, policy, scheme, cold)
        batched = self._backend(tiny_trained_model, policy, scheme, cold)
        if scheme == "per-sample":
            keys = [(0, index) for index in range(len(samples))]
            want = [reference.measure(sample, noise_key=key)
                    for sample, key in zip(samples, keys)]
            got = batched.measure_batch(samples, noise_keys=keys)
        else:
            want = [reference.measure(sample) for sample in samples]
            got = batched.measure_batch(samples)
        for a, b in zip(want, got):
            assert a.prediction == b.prediction
            assert all(a.counts[event] == b.counts[event]
                       for event in a.counts)
        engaged = MeasurementPlan.supports(batched.cpu_config,
                                           cold_start=cold)
        assert (batched._plan is not None) == engaged

    def test_engine_actually_engages_on_default_config(self,
                                                       tiny_trained_model,
                                                       traced_samples):
        samples, _ = traced_samples
        backend = SimBackend(tiny_trained_model)
        assert backend._plan is None
        backend.measure_batch(samples[:2])
        assert backend._plan is not None
