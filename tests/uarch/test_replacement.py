"""Tests for repro.uarch.replacement policies in isolation."""

import pytest

from repro.errors import ConfigError
from repro.uarch.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    TreePlruPolicy,
    make_policy,
)


class TestLru:
    def test_hit_refreshes_recency(self):
        policy = LruPolicy(2)
        state = policy.new_set()
        assert policy.access(state, 1) == (False, None)
        assert policy.access(state, 2) == (False, None)
        assert policy.access(state, 1) == (True, None)
        hit, evicted = policy.access(state, 3)
        assert not hit
        assert evicted == 2  # 1 was refreshed, 2 was LRU


class TestFifo:
    def test_hit_does_not_refresh(self):
        policy = FifoPolicy(2)
        state = policy.new_set()
        policy.access(state, 1)
        policy.access(state, 2)
        assert policy.access(state, 1) == (True, None)
        hit, evicted = policy.access(state, 3)
        assert evicted == 1  # oldest insertion despite the recent hit


class TestRandom:
    def test_seeded_determinism(self):
        def run(seed):
            policy = RandomPolicy(2, seed=seed)
            state = policy.new_set()
            out = []
            for line in (1, 2, 3, 4, 1, 2):
                out.append(policy.access(state, line))
            return out

        assert run(7) == run(7)

    def test_fills_before_evicting(self):
        policy = RandomPolicy(3, seed=0)
        state = policy.new_set()
        for line in (1, 2, 3):
            hit, evicted = policy.access(state, line)
            assert evicted is None
        hit, evicted = policy.access(state, 4)
        assert evicted in (1, 2, 3)


class TestTreePlru:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigError):
            TreePlruPolicy(3)

    def test_single_way_degenerates_to_direct(self):
        policy = TreePlruPolicy(1)
        state = policy.new_set()
        assert policy.access(state, 1) == (False, None)
        assert policy.access(state, 1) == (True, None)
        hit, evicted = policy.access(state, 2)
        assert evicted == 1

    def test_victim_avoids_most_recent(self):
        policy = TreePlruPolicy(4)
        state = policy.new_set()
        for line in (1, 2, 3, 4):
            policy.access(state, line)
        policy.access(state, 1)       # make 1 most recently touched
        hit, evicted = policy.access(state, 5)
        assert not hit
        assert evicted != 1

    def test_hits_track_contents(self):
        policy = TreePlruPolicy(2)
        state = policy.new_set()
        policy.access(state, 10)
        policy.access(state, 20)
        assert policy.access(state, 10)[0]
        assert policy.access(state, 20)[0]


class TestFactory:
    def test_all_names_construct(self):
        for name in ("lru", "fifo", "random", "tree-plru"):
            policy = make_policy(name, 4)
            assert policy.associativity == 4
            assert policy.name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_policy("belady", 4)

    def test_rejects_zero_associativity(self):
        with pytest.raises(ConfigError):
            make_policy("lru", 0)
