"""Tests for repro.uarch.cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.uarch import Cache, CacheGeometry


def tiny_cache(sets=2, ways=2, policy="lru"):
    geometry = CacheGeometry(total_bytes=sets * ways * 64, line_bytes=64,
                             associativity=ways)
    return Cache(geometry, policy=policy, name="test")


class TestGeometry:
    def test_derived_quantities(self):
        g = CacheGeometry(32 * 1024, 64, 8)
        assert g.num_lines == 512
        assert g.num_sets == 64
        assert "32KiB" in g.describe()

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1024, 48, 4)

    def test_rejects_indivisible_capacity(self):
        with pytest.raises(ConfigError):
            CacheGeometry(1000, 64, 4)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheGeometry(3 * 64 * 4, 64, 4)


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = tiny_cache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_set_mapping_isolates_conflicts(self):
        cache = tiny_cache(sets=2, ways=1)
        cache.access(0)   # set 0
        cache.access(1)   # set 1
        assert cache.access(0)
        assert cache.access(1)

    def test_lru_eviction_order(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.access_many([0, 1])     # fill: LRU=0
        cache.access(0)               # touch 0: LRU=1
        cache.access(2)               # evicts 1
        assert cache.contains(0)
        assert cache.contains(2)
        assert not cache.contains(1)

    def test_eviction_counted(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.access_many([0, 1, 2, 3])
        assert cache.stats.evictions == 2

    def test_writeback_of_dirty_lines(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.access(0, write=True)
        cache.access_many([1, 2])  # 0 evicted dirty
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.access_many([0, 1, 2])
        assert cache.stats.writebacks == 0

    def test_access_many_returns_missed_lines_in_order(self):
        cache = tiny_cache(sets=1, ways=4)
        missed = cache.access_many([5, 6, 5, 7])
        assert missed == [5, 6, 7]

    def test_reset_restores_cold_state(self):
        cache = tiny_cache()
        cache.access_many([0, 1, 2])
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.contains(0)

    def test_warm_preloads_without_stats(self):
        cache = tiny_cache()
        cache.warm([0, 1])
        assert cache.stats.accesses == 0
        assert cache.access(0)

    def test_numpy_input_accepted(self):
        cache = tiny_cache()
        missed = cache.access_many(np.array([0, 1, 0], dtype=np.int64))
        assert missed == [0, 1]

    def test_miss_rate(self):
        cache = tiny_cache()
        cache.access_many([0, 0, 0, 1])
        assert cache.stats.miss_rate == pytest.approx(0.5)


class TestPolicyIntegration:
    def test_fifo_ignores_recency(self):
        cache = tiny_cache(sets=1, ways=2, policy="fifo")
        cache.access_many([0, 1])
        cache.access(0)     # hit but does not refresh
        cache.access(2)     # FIFO evicts 0 (oldest insertion)
        assert not cache.contains(0)
        assert cache.contains(1)

    def test_policy_mismatch_rejected(self):
        from repro.uarch import LruPolicy
        geometry = CacheGeometry(4 * 64, 64, 2)
        with pytest.raises(ConfigError):
            Cache(geometry, policy=LruPolicy(4))

    def test_plru_behaves_as_cache(self):
        cache = tiny_cache(sets=1, ways=4, policy="tree-plru")
        assert cache.access_many([0, 1, 2, 3]) == [0, 1, 2, 3]
        assert cache.access(0)
        cache.access(4)
        assert cache.stats.evictions == 1

    def test_random_policy_deterministic_with_seed(self):
        a = tiny_cache(sets=1, ways=2, policy="random")
        b = tiny_cache(sets=1, ways=2, policy="random")
        stream = [0, 1, 2, 3, 0, 2, 4, 1]
        assert a.access_many(stream) == b.access_many(stream)


line_streams = st.lists(st.integers(min_value=0, max_value=63),
                        min_size=1, max_size=200)


class TestProperties:
    @given(line_streams)
    @settings(max_examples=60)
    def test_misses_bounded_by_accesses_and_distinct_lines(self, stream):
        cache = tiny_cache(sets=4, ways=2)
        missed = cache.access_many(stream)
        assert len(missed) <= len(stream)
        assert len(missed) >= len(set(stream)) - cache.geometry.num_lines
        assert cache.stats.hits + cache.stats.misses == len(stream)

    @given(line_streams)
    @settings(max_examples=60)
    def test_most_recent_line_always_resident(self, stream):
        cache = tiny_cache(sets=4, ways=2)
        cache.access_many(stream)
        assert cache.contains(stream[-1])

    @given(line_streams)
    @settings(max_examples=40)
    def test_large_enough_cache_only_cold_misses(self, stream):
        cache = tiny_cache(sets=16, ways=8)  # 128 lines >= domain size
        missed = cache.access_many(stream)
        assert len(missed) == len(set(stream))

    @given(line_streams)
    @settings(max_examples=40)
    def test_resident_lines_unique_and_bounded(self, stream):
        cache = tiny_cache(sets=2, ways=2)
        cache.access_many(stream)
        resident = cache.resident_lines()
        assert len(resident) == len(set(resident))
        assert len(resident) <= cache.geometry.num_lines


class TestScalarFastPath:
    """`access` / `contains` must behave exactly like `access_many`."""

    @given(line_streams, st.sampled_from(["lru", "fifo", "tree-plru"]))
    @settings(max_examples=40)
    def test_access_equals_access_many(self, stream, policy):
        scalar = tiny_cache(sets=4, ways=2, policy=policy)
        bulk = tiny_cache(sets=4, ways=2, policy=policy)
        for line in stream:
            hit = scalar.access(line, write=line % 3 == 0)
            missed = bulk.access_many([line], write=line % 3 == 0)
            assert hit == (not missed)
        assert scalar.stats.hits == bulk.stats.hits
        assert scalar.stats.misses == bulk.stats.misses
        assert scalar.stats.evictions == bulk.stats.evictions
        assert scalar.stats.writebacks == bulk.stats.writebacks
        assert sorted(scalar.resident_lines()) == sorted(bulk.resident_lines())

    def test_contains_tree_plru_set_layout(self):
        # Regression: tree-PLRU sets are ``[lines, bits]`` pairs, so a
        # naive ``line in set_state`` would always be False.  `contains`
        # must look inside the lines list — without mutating any state.
        cache = tiny_cache(sets=2, ways=4, policy="tree-plru")
        cache.access_many([0, 2, 4, 1])
        assert cache.contains(0)
        assert cache.contains(1)
        assert not cache.contains(6)
        before = cache.stats.hits, cache.stats.misses
        cache.contains(0)
        assert (cache.stats.hits, cache.stats.misses) == before

    def test_contains_lru(self):
        cache = tiny_cache(sets=2, ways=2, policy="lru")
        cache.access_many([0, 2, 4])  # set 0: 0 evicted by 4
        assert not cache.contains(0)
        assert cache.contains(2)
        assert cache.contains(4)
