"""Tests for repro.uarch.events and repro.uarch.pmu."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.uarch import (
    ALL_EVENTS,
    EventCounts,
    HpcEvent,
    Pmu,
    PmuConfig,
    sum_counts,
)
from repro.uarch.pmu import FIXED_EVENTS


class TestHpcEvent:
    def test_from_name_variants(self):
        assert HpcEvent.from_name("cache-misses") is HpcEvent.CACHE_MISSES
        assert HpcEvent.from_name("CACHE_MISSES") is HpcEvent.CACHE_MISSES
        assert HpcEvent.from_name(" branches ") is HpcEvent.BRANCHES

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            HpcEvent.from_name("flux-capacitor")

    def test_all_events_matches_paper_figure(self):
        assert [e.value for e in ALL_EVENTS] == [
            "branches", "branch-misses", "bus-cycles", "cache-misses",
            "cache-references", "cycles", "instructions", "ref-cycles",
        ]


class TestEventCounts:
    def test_mapping_interface(self):
        counts = EventCounts({HpcEvent.CYCLES: 100, HpcEvent.BRANCHES: 10})
        assert counts[HpcEvent.CYCLES] == 100
        assert counts.get(HpcEvent.CACHE_MISSES, 7) == 7
        assert HpcEvent.BRANCHES in counts
        assert len(counts) == 2

    def test_string_keys_accepted(self):
        counts = EventCounts({"cycles": 5})
        assert counts["cycles"] == 5

    def test_rounds_and_rejects_negative(self):
        counts = EventCounts({HpcEvent.CYCLES: 99.6})
        assert counts[HpcEvent.CYCLES] == 100
        with pytest.raises(ConfigError):
            EventCounts({HpcEvent.CYCLES: -1})

    def test_dict_round_trip(self):
        counts = EventCounts({HpcEvent.CYCLES: 3, HpcEvent.BRANCHES: 4})
        assert EventCounts.from_dict(counts.as_dict()) == counts

    def test_subset(self):
        counts = EventCounts({HpcEvent.CYCLES: 3, HpcEvent.BRANCHES: 4})
        sub = counts.subset([HpcEvent.CYCLES])
        assert len(sub) == 1

    def test_format_uses_figure_order(self):
        counts = EventCounts({e: i for i, e in enumerate(ALL_EVENTS)})
        lines = counts.format().splitlines()
        assert "branches" in lines[0]
        assert "ref-cycles" in lines[-1]
        assert "," in counts.format() or True  # thousands grouping present

    def test_sum_counts(self):
        a = EventCounts({HpcEvent.CYCLES: 10})
        b = EventCounts({HpcEvent.CYCLES: 5, HpcEvent.BRANCHES: 1})
        total = sum_counts([a, b])
        assert total[HpcEvent.CYCLES] == 15
        assert total[HpcEvent.BRANCHES] == 1

    def test_sum_counts_rejects_empty(self):
        with pytest.raises(ConfigError):
            sum_counts([])


class TestPmu:
    def ground_truth(self):
        return {event: 1000 + i for i, event in enumerate(ALL_EVENTS)}

    def test_fixed_plus_programmable_fit(self):
        pmu = Pmu(PmuConfig(programmable_counters=5))
        pmu.program(ALL_EVENTS)  # 3 fixed + 5 programmable
        counts = pmu.read(self.ground_truth())
        for event in ALL_EVENTS:
            assert counts[event] == self.ground_truth()[event]

    def test_overcommit_without_multiplexing_rejected(self):
        pmu = Pmu(PmuConfig(programmable_counters=2,
                            allow_multiplexing=False))
        with pytest.raises(SimulationError):
            pmu.program(ALL_EVENTS)

    def test_multiplexing_shares(self):
        pmu = Pmu(PmuConfig(programmable_counters=2))
        pmu.program(ALL_EVENTS)  # 5 programmable over 2 counters
        shares = pmu.multiplex_share()
        for event in FIXED_EVENTS:
            assert shares[event] == 1.0
        programmable = [e for e in ALL_EVENTS if e not in FIXED_EVENTS]
        for event in programmable:
            assert shares[event] == pytest.approx(2 / 5)

    def test_multiplexed_estimates_close_to_truth(self):
        pmu = Pmu(PmuConfig(programmable_counters=2))
        pmu.program(ALL_EVENTS)
        counts = pmu.read(self.ground_truth())
        for event in ALL_EVENTS:
            truth = self.ground_truth()[event]
            assert abs(counts[event] - truth) <= max(3, truth * 0.01)

    def test_unprogrammed_read_rejected(self):
        with pytest.raises(SimulationError):
            Pmu().read(self.ground_truth())

    def test_read_requires_ground_truth_for_event(self):
        pmu = Pmu()
        pmu.program([HpcEvent.CYCLES])
        with pytest.raises(SimulationError):
            pmu.read({HpcEvent.BRANCHES: 1})

    def test_only_programmed_events_visible(self):
        pmu = Pmu()
        pmu.program([HpcEvent.CYCLES, HpcEvent.CACHE_MISSES])
        counts = pmu.read(self.ground_truth())
        assert HpcEvent.BRANCHES not in counts
        assert len(counts) == 2

    def test_duplicate_programming_deduplicated(self):
        pmu = Pmu()
        pmu.program([HpcEvent.CYCLES, HpcEvent.CYCLES])
        assert pmu.programmed_events == [HpcEvent.CYCLES]

    def test_rejects_zero_counters(self):
        with pytest.raises(ConfigError):
            PmuConfig(programmable_counters=0)
