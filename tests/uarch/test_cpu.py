"""Tests for repro.uarch.cpu (the top-level CPU model)."""

import pytest

from repro.errors import ConfigError
from repro.uarch import (
    CacheGeometry,
    CpuConfig,
    CpuModel,
    HierarchyConfig,
    HpcEvent,
)


def small_cpu(**kwargs):
    hierarchy = HierarchyConfig(
        l1=CacheGeometry(2 * 64, 64, 2),
        l2=CacheGeometry(8 * 64, 64, 2),
        llc=CacheGeometry(32 * 64, 64, 4),
    )
    return CpuModel(CpuConfig(hierarchy=hierarchy, **kwargs), seed=0)


class TestCycleModel:
    def test_pure_compute_cycles(self):
        cpu = small_cpu(base_cpi=1500)
        cpu.begin_task()
        cpu.retire_instructions(1000)
        assert cpu.cycles() == 1500

    def test_memory_stalls_added(self):
        cpu = small_cpu()
        cpu.begin_task()
        cpu.load_store([0])
        cfg = cpu.config.hierarchy
        # One TLB walk + full miss chain.
        expected = ((cfg.l2_latency - cfg.l1_latency)
                    + (cfg.llc_latency - cfg.l2_latency)
                    + (cfg.memory_latency - cfg.llc_latency)
                    + cpu.config.tlb.walk_latency)
        assert cpu.cycles() == expected

    def test_branch_miss_penalty(self):
        cpu = small_cpu(branch_miss_penalty=20)
        cpu.begin_task()
        # Static mispredict: alternate a single PC to force misses.
        cpu.dynamic_branches([1] * 4, [True, False, True, False])
        misses = cpu.predictor.stats.mispredictions
        assert cpu.cycles() == misses * 20

    def test_extra_cycles(self):
        cpu = small_cpu()
        cpu.begin_task()
        cpu.add_cycles(123)
        assert cpu.cycles() == 123
        with pytest.raises(ConfigError):
            cpu.add_cycles(-1)


class TestEvents:
    def test_ground_truth_consistency(self):
        cpu = small_cpu()
        cpu.begin_task()
        cpu.load_store(list(range(40)))
        cpu.retire_instructions(5000)
        cpu.bulk_branches(100, miss_rate=0.0)
        truth = cpu.ground_truth()
        assert truth[HpcEvent.INSTRUCTIONS] == 5000
        assert truth[HpcEvent.BRANCHES] == 100
        assert truth[HpcEvent.CACHE_REFERENCES] >= truth[HpcEvent.CACHE_MISSES]
        assert truth[HpcEvent.CYCLES] > 0
        assert truth[HpcEvent.BUS_CYCLES] == (
            truth[HpcEvent.CYCLES] // cpu.config.bus_divisor)
        assert truth[HpcEvent.REF_CYCLES] == (
            truth[HpcEvent.CYCLES] * cpu.config.ref_cycles_per_mille // 1000)

    def test_read_counters_has_all_eight(self):
        cpu = small_cpu()
        cpu.begin_task()
        cpu.retire_instructions(10)
        counts = cpu.read_counters()
        assert len(counts) == 8

    def test_cold_start_resets_state(self):
        cpu = small_cpu()
        cpu.begin_task()
        cpu.load_store([0, 1, 2])
        first = cpu.read_counters()
        cpu.begin_task()
        cpu.load_store([0, 1, 2])
        second = cpu.read_counters()
        assert first == second

    def test_warm_start_keeps_cache_contents(self):
        cpu = CpuModel(seed=0, cold_start=False)
        cpu.begin_task()
        cpu.load_store([0, 1, 2])
        first_misses = cpu.read_counters()[HpcEvent.CACHE_MISSES]
        cpu.begin_task()
        cpu.load_store([0, 1, 2])
        second_misses = cpu.read_counters()[HpcEvent.CACHE_MISSES]
        assert first_misses > 0
        assert second_misses == 0

    def test_identical_tasks_are_deterministic(self):
        def run():
            cpu = small_cpu()
            cpu.begin_task()
            cpu.load_store(list(range(100)))
            cpu.dynamic_branches([3] * 50, [i % 3 == 0 for i in range(50)])
            cpu.retire_instructions(777)
            return cpu.read_counters()

        assert run() == run()

    def test_rejects_negative_instructions(self):
        cpu = small_cpu()
        cpu.begin_task()
        with pytest.raises(ConfigError):
            cpu.retire_instructions(-5)

    def test_describe_mentions_components(self):
        text = small_cpu().describe()
        for token in ("L1D", "TLB", "predictor", "CPI"):
            assert token in text


class TestConfigValidation:
    def test_rejects_bad_cpi(self):
        with pytest.raises(ConfigError):
            CpuConfig(base_cpi=0)

    def test_rejects_bad_divisor(self):
        with pytest.raises(ConfigError):
            CpuConfig(bus_divisor=0)

    def test_rejects_negative_penalty(self):
        with pytest.raises(ConfigError):
            CpuConfig(branch_miss_penalty=-1)

    def test_prefetcher_integration(self):
        cpu = CpuModel(CpuConfig(prefetcher="next-line"), seed=0)
        cpu.begin_task()
        cpu.load_store([0])
        # Demand line 0 plus prefetched line 1 both fetched.
        assert cpu.hierarchy.totals.accesses == 2
