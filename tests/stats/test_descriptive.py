"""Tests for repro.stats.descriptive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.stats.descriptive import (
    Histogram,
    Summary,
    _as_float_array,
    coefficient_of_variation,
    mean,
    median,
    quantile,
    shared_histogram_range,
    standard_error,
    std,
    variance,
)

values_strategy = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False,
              allow_infinity=False),
    min_size=2, max_size=50)


class TestMoments:
    def test_mean_median(self):
        assert mean([1, 2, 3, 4]) == 2.5
        assert median([1, 2, 3, 4, 100]) == 3.0

    def test_variance_matches_numpy(self, rng):
        data = rng.normal(1e9, 3.0, size=100)  # large offset stresses naive sums
        assert variance(data) == pytest.approx(float(np.var(data, ddof=1)),
                                               rel=1e-7)
        assert std(data) == pytest.approx(float(np.std(data, ddof=1)),
                                          rel=1e-7)

    @given(values_strategy)
    @settings(max_examples=60)
    def test_property_variance_non_negative_and_matches_numpy(self, data):
        v = variance(data)
        assert v >= 0.0
        assert v == pytest.approx(float(np.var(data, ddof=1)), rel=1e-6,
                                  abs=1e-6)

    def test_variance_needs_enough_data(self):
        with pytest.raises(StatisticsError):
            variance([1.0])

    def test_rejects_empty_and_nan(self):
        with pytest.raises(StatisticsError):
            mean([])
        with pytest.raises(StatisticsError):
            mean([1.0, float("nan")])

    def test_standard_error(self):
        data = [2.0, 4.0, 6.0, 8.0]
        assert standard_error(data) == pytest.approx(
            float(np.std(data, ddof=1)) / 2.0)

    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([10.0, 12.0, 8.0]) == pytest.approx(
            float(np.std([10, 12, 8], ddof=1)) / 10.0)
        with pytest.raises(StatisticsError):
            coefficient_of_variation([-1.0, 1.0])

    def test_quantile_bounds(self):
        assert quantile([1, 2, 3], 0.0) == 1.0
        assert quantile([1, 2, 3], 1.0) == 3.0
        with pytest.raises(StatisticsError):
            quantile([1, 2, 3], 1.5)


class TestSummary:
    def test_fields(self):
        s = Summary.of([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == 2.5

    def test_single_observation(self):
        s = Summary.of([7.0])
        assert s.n == 1
        assert s.std == 0.0

    def test_format_mentions_everything(self):
        text = Summary.of([1.0, 2.0]).format()
        for token in ("n=", "mean=", "std=", "min=", "max="):
            assert token in text


class TestHistogram:
    def test_counts_sum_to_n(self, rng):
        data = rng.normal(size=200)
        hist = Histogram.of(data, bins=16)
        assert hist.total == 200
        assert len(hist.counts) == 16
        assert len(hist.edges) == 17

    def test_densities_integrate_to_one(self, rng):
        data = rng.normal(size=500)
        hist = Histogram.of(data, bins=20)
        widths = np.diff(hist.edges)
        assert float(np.sum(np.asarray(hist.densities()) * widths)) == (
            pytest.approx(1.0, rel=1e-9))

    def test_fixed_range(self):
        hist = Histogram.of([0.5, 1.5, 2.5], bins=3, value_range=(0.0, 3.0))
        assert hist.counts == (1, 1, 1)

    def test_render_has_one_line_per_bin(self):
        hist = Histogram.of([1, 2, 3, 4], bins=4)
        lines = hist.render(label="demo").splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 5

    def test_rejects_zero_bins(self):
        with pytest.raises(StatisticsError):
            Histogram.of([1.0], bins=0)

    @given(values_strategy, st.integers(min_value=1, max_value=30))
    @settings(max_examples=40)
    def test_property_total_preserved(self, data, bins):
        assert Histogram.of(data, bins=bins).total == len(data)


class TestSharedRange:
    def test_covers_all_groups(self):
        lo, hi = shared_histogram_range([[1.0, 2.0], [10.0, 20.0]])
        assert lo < 1.0
        assert hi > 20.0

    def test_rejects_empty(self):
        with pytest.raises(StatisticsError):
            shared_histogram_range([])


class TestAsFloatArrayInputs:
    """Regression: every accepted input kind, after the list-copy removal."""

    def test_ndarray_is_copy_free(self):
        arr = np.asarray([1.0, 2.0, 3.0])
        out = _as_float_array(arr)
        assert out is arr  # float64 1-D input passes through untouched

    def test_list_tuple_and_generator(self):
        for values in ([1, 2, 3], (1.5, 2.5), (float(v) for v in range(3))):
            out = _as_float_array(values)
            assert out.dtype == np.float64
            assert out.ndim == 1
            assert out.size == 3 or out.size == 2

    def test_generator_values_preserved(self):
        out = _as_float_array(v * 0.5 for v in range(4))
        np.testing.assert_array_equal(out, [0.0, 0.5, 1.0, 1.5])

    def test_2d_input_flattened(self):
        out = _as_float_array(np.ones((2, 3)))
        assert out.shape == (6,)

    def test_empty_and_non_finite_rejected(self):
        with pytest.raises(StatisticsError):
            _as_float_array([])
        with pytest.raises(StatisticsError):
            _as_float_array(iter([]))
        with pytest.raises(StatisticsError):
            _as_float_array([1.0, float("nan")])
