"""Tests for repro.stats.distributions (Normal, StudentT)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.stats.distributions import Normal, StudentT

scipy_stats = pytest.importorskip("scipy.stats")


class TestNormal:
    def test_standard_cdf_values(self):
        n = Normal()
        assert n.cdf(0.0) == pytest.approx(0.5, abs=1e-15)
        assert n.cdf(1.959963984540054) == pytest.approx(0.975, abs=1e-9)
        assert n.sf(1.959963984540054) == pytest.approx(0.025, abs=1e-9)

    def test_location_scale(self):
        n = Normal(mu=10.0, sigma=2.0)
        assert n.cdf(10.0) == pytest.approx(0.5)
        assert n.cdf(12.0) == pytest.approx(Normal().cdf(1.0))

    def test_pdf_matches_scipy(self):
        n = Normal(1.0, 3.0)
        for x in (-5.0, 0.0, 1.0, 4.0):
            assert n.pdf(x) == pytest.approx(
                float(scipy_stats.norm.pdf(x, 1.0, 3.0)), rel=1e-12)

    def test_ppf_inverts_cdf(self):
        n = Normal(2.0, 0.5)
        for q in (0.001, 0.025, 0.3, 0.5, 0.84, 0.999):
            assert n.cdf(n.ppf(q)) == pytest.approx(q, abs=1e-9)

    @given(st.floats(min_value=0.0005, max_value=0.9995))
    @settings(max_examples=60)
    def test_property_ppf_matches_scipy(self, q):
        assert Normal().ppf(q) == pytest.approx(
            float(scipy_stats.norm.ppf(q)), rel=1e-6, abs=1e-8)

    def test_rejects_bad_sigma_and_quantiles(self):
        with pytest.raises(StatisticsError):
            Normal(sigma=0.0)
        with pytest.raises(StatisticsError):
            Normal().ppf(0.0)
        with pytest.raises(StatisticsError):
            Normal().ppf(1.0)


class TestStudentT:
    def test_cdf_symmetry(self):
        t = StudentT(7.0)
        assert t.cdf(0.0) == pytest.approx(0.5)
        assert t.cdf(1.3) == pytest.approx(1.0 - t.cdf(-1.3), abs=1e-12)

    def test_cdf_matches_scipy(self):
        for df in (1.0, 2.5, 10.0, 38.7, 200.0):
            dist = StudentT(df)
            for x in (-4.0, -1.0, 0.5, 2.0, 6.0):
                assert dist.cdf(x) == pytest.approx(
                    float(scipy_stats.t.cdf(x, df)), rel=1e-9, abs=1e-12)

    def test_pdf_matches_scipy(self):
        dist = StudentT(9.0)
        for x in (-2.0, 0.0, 1.5):
            assert dist.pdf(x) == pytest.approx(
                float(scipy_stats.t.pdf(x, 9.0)), rel=1e-10)

    def test_two_sided_p_value(self):
        dist = StudentT(20.0)
        t = 2.5
        expected = 2.0 * float(scipy_stats.t.sf(t, 20.0))
        assert dist.two_sided_p_value(t) == pytest.approx(expected, rel=1e-9)
        assert dist.two_sided_p_value(-t) == pytest.approx(expected, rel=1e-9)
        assert dist.two_sided_p_value(0.0) == 1.0

    def test_known_critical_values(self):
        # Standard table: two-sided 95% critical values.
        assert StudentT(10).critical_value(0.95) == pytest.approx(2.228,
                                                                  abs=2e-3)
        assert StudentT(30).critical_value(0.95) == pytest.approx(2.042,
                                                                  abs=2e-3)
        assert StudentT(120).critical_value(0.95) == pytest.approx(1.980,
                                                                   abs=2e-3)

    def test_ppf_inverts_cdf(self):
        dist = StudentT(6.3)
        for q in (0.01, 0.2, 0.5, 0.77, 0.99):
            assert dist.cdf(dist.ppf(q)) == pytest.approx(q, abs=1e-9)

    @given(st.floats(min_value=1.0, max_value=300.0),
           st.floats(min_value=-8.0, max_value=8.0))
    @settings(max_examples=80)
    def test_property_cdf_matches_scipy(self, df, x):
        assert StudentT(df).cdf(x) == pytest.approx(
            float(scipy_stats.t.cdf(x, df)), rel=1e-7, abs=1e-10)

    def test_rejects_bad_df(self):
        with pytest.raises(StatisticsError):
            StudentT(0.0)
        with pytest.raises(StatisticsError):
            StudentT(-3.0)

    def test_rejects_bad_confidence(self):
        with pytest.raises(StatisticsError):
            StudentT(5.0).critical_value(1.0)
