"""Tests for repro.stats.streaming (Welford accumulators, Chan merge)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.stats.streaming import (
    MomentAccumulator,
    MomentColumns,
    SlidingWindowMoments,
    StreamingMoments,
)
from repro.stats.vectorized import batch_pairwise_tests

values_strategy = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False,
              allow_infinity=False),
    min_size=2, max_size=60)


class TestMomentAccumulator:
    def test_push_matches_numpy(self, rng=None):
        rng = np.random.default_rng(7)
        values = rng.normal(100.0, 5.0, size=123)
        acc = MomentAccumulator()
        for value in values:
            acc.push(value)
        assert acc.count == values.size
        assert acc.mean == pytest.approx(values.mean(), rel=1e-12)
        assert acc.variance == pytest.approx(values.var(ddof=1), rel=1e-12)
        assert acc.std == pytest.approx(values.std(ddof=1), rel=1e-12)

    def test_extend_matches_push(self):
        rng = np.random.default_rng(8)
        values = rng.normal(0.0, 1.0, size=50)
        pushed = MomentAccumulator()
        for value in values:
            pushed.push(value)
        extended = MomentAccumulator()
        extended.extend(values[:20])
        extended.extend(values[20:])
        assert extended.count == pushed.count
        assert extended.mean == pytest.approx(pushed.mean, rel=1e-12)
        assert extended.variance == pytest.approx(pushed.variance, rel=1e-12)

    def test_extend_accepts_generator_and_empty(self):
        acc = MomentAccumulator()
        acc.extend(float(v) for v in range(5))
        acc.extend([])
        assert acc.count == 5
        assert acc.mean == pytest.approx(2.0)

    def test_merge_equals_concatenation(self):
        rng = np.random.default_rng(9)
        a, b = rng.normal(3.0, 2.0, size=(2, 40))
        left = MomentAccumulator()
        left.extend(a)
        right = MomentAccumulator()
        right.extend(b)
        left.merge(right)
        both = np.concatenate([a, b])
        assert left.count == both.size
        assert left.mean == pytest.approx(both.mean(), rel=1e-12)
        assert left.variance == pytest.approx(both.var(ddof=1), rel=1e-12)

    def test_merge_with_empty_is_identity(self):
        acc = MomentAccumulator()
        acc.extend([1.0, 2.0, 3.0])
        state = acc.state()
        acc.merge(MomentAccumulator())
        assert acc.state() == state
        empty = MomentAccumulator()
        empty.merge(acc)
        assert empty.state() == state

    def test_state_round_trip(self):
        acc = MomentAccumulator()
        acc.extend([4.0, 5.0, 9.0])
        clone = MomentAccumulator.from_state(acc.state())
        assert clone.state() == acc.state()

    def test_variance_needs_two(self):
        acc = MomentAccumulator()
        acc.push(1.0)
        with pytest.raises(StatisticsError):
            _ = acc.variance

    def test_rejects_invalid_state(self):
        with pytest.raises(StatisticsError):
            MomentAccumulator(count=-1)
        with pytest.raises(StatisticsError):
            MomentAccumulator(count=2, mean=0.0, m2=-1e-9)

    @given(values_strategy)
    @settings(max_examples=40, deadline=None)
    def test_property_matches_numpy(self, data):
        arr = np.asarray(data, dtype=np.float64)
        acc = MomentAccumulator()
        acc.extend(arr)
        assert acc.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        assert acc.variance == pytest.approx(arr.var(ddof=1),
                                             rel=1e-9, abs=1e-6)

    def test_catastrophic_cancellation_regime(self):
        # 1e12-scale means with unit-scale deviations: a naive
        # sum-of-squares accumulator loses every significant digit of the
        # variance here (sum(x^2) ~ 1e24; float64 carries ~16 digits).
        # Welford + Chan keep full precision.  Offsets are multiples of
        # 2^-10 so ``1e12 + offset`` is exactly representable and the
        # small-scale variance is exact ground truth.
        # Any float64 two-pass method (numpy's included) carries a ~1e-5
        # relative error against exact truth here, from rounding the
        # 1e12-scale mean itself; the accumulator must stay in that class
        # rather than join the naive accumulator's total collapse.
        rng = np.random.default_rng(10)
        offsets = np.round(rng.normal(0.0, 1.0, size=500) * 1024) / 1024
        values = 1e12 + offsets
        truth = offsets.var(ddof=1)

        acc = MomentAccumulator()
        acc.extend(values[:250])
        other = MomentAccumulator()
        other.extend(values[250:])
        acc.merge(other)
        assert acc.variance == pytest.approx(truth, rel=1e-4)
        assert acc.variance == pytest.approx(values.var(ddof=1), rel=1e-4)

        # The accumulator this module exists to replace: variance from
        # running (sum, sum of squares) loses *every* digit in the same
        # regime — here it rounds all the way to zero.
        count = values.size
        naive = ((values ** 2).sum() - count * values.mean() ** 2) / (count - 1)
        assert abs(naive / truth - 1.0) > 1e-1


class TestMomentColumns:
    def test_observe_matches_numpy_columns(self):
        rng = np.random.default_rng(11)
        rows = rng.normal(50.0, 4.0, size=(60, 5))
        cols = MomentColumns(5)
        cols.observe(rows[:17])
        cols.observe(rows[17:])
        np.testing.assert_allclose(cols.mean, rows.mean(axis=0), rtol=1e-12)
        np.testing.assert_allclose(cols.variance(), rows.var(axis=0, ddof=1),
                                   rtol=1e-12)

    def test_single_row_and_shape_checks(self):
        cols = MomentColumns(3)
        cols.observe(np.asarray([1.0, 2.0, 3.0]))  # 1-D row promoted
        assert cols.count == 1
        with pytest.raises(StatisticsError):
            cols.observe(np.zeros((2, 4)))
        with pytest.raises(StatisticsError):
            MomentColumns(0)

    def test_first_batch_adopted_bit_exactly(self):
        rows = np.asarray([[1.0, 10.0], [3.0, 14.0], [8.0, 30.0]])
        cols = MomentColumns(2)
        cols.observe(rows)
        mean = rows.mean(axis=0)
        centered = rows - mean
        m2 = np.einsum("ij,ij->j", centered, centered)
        assert np.array_equal(cols.mean, mean)
        assert np.array_equal(cols.m2, m2)

    def test_merge_column_mismatch(self):
        cols = MomentColumns(2)
        with pytest.raises(StatisticsError):
            cols.merge(MomentColumns(3))


class TestStreamingMoments:
    def _filled(self, rng, categories=3, columns=4, samples=30):
        moments = StreamingMoments(columns)
        data = {}
        for category in range(categories):
            rows = rng.normal(100.0 * (category + 1), 7.0,
                              size=(samples, columns))
            data[category] = rows
            moments.observe(category, rows)
        return moments, data

    def test_counts_and_categories(self):
        moments, data = self._filled(np.random.default_rng(12))
        assert moments.categories == [0, 1, 2]
        assert all(moments.count(c) == 30 for c in range(3))
        assert moments.count(99) == 0

    def test_merge_partition_invariance(self):
        # Any shard partition agrees with single-stream accumulation to
        # roundoff; identical partitions agree bitwise.
        rng = np.random.default_rng(13)
        rows = rng.normal(1000.0, 20.0, size=(100, 4))
        whole = StreamingMoments(4)
        whole.observe(0, rows)
        for cut in (1, 13, 50, 99):
            left = StreamingMoments(4)
            left.observe(0, rows[:cut])
            right = StreamingMoments(4)
            right.observe(0, rows[cut:])
            left.merge(right)
            assert left.count(0) == 100
            np.testing.assert_allclose(
                left.state()["cat0/mean"], whole.state()["cat0/mean"],
                rtol=1e-12)
            np.testing.assert_allclose(
                left.state()["cat0/m2"], whole.state()["cat0/m2"],
                rtol=1e-9)

    def test_same_partition_merge_is_bitwise_deterministic(self):
        rng = np.random.default_rng(14)
        shards = [rng.normal(5.0, 1.0, size=(10, 3)) for _ in range(4)]
        runs = []
        for _ in range(2):
            merged = StreamingMoments(3)
            for shard_rows in shards:
                shard = StreamingMoments(3)
                shard.observe(0, shard_rows)
                merged.merge(shard)
            runs.append(merged.state())
        for key in runs[0]:
            assert np.array_equal(runs[0][key], runs[1][key]), key

    def test_state_round_trip_bit_exact(self):
        moments, _ = self._filled(np.random.default_rng(15))
        state = moments.state()
        clone = StreamingMoments.from_state(state)
        assert clone.columns == moments.columns
        clone_state = clone.state()
        assert set(clone_state) == set(state)
        for key in state:
            assert np.array_equal(clone_state[key], state[key]), key

    def test_from_state_validation(self):
        with pytest.raises(StatisticsError):
            StreamingMoments.from_state({})
        with pytest.raises(StatisticsError):
            StreamingMoments.from_state(
                {"cat0/count": np.asarray([3])}, columns=2)
        bad = {"cat0/count": np.asarray([-1]),
               "cat0/mean": np.zeros(2), "cat0/m2": np.zeros(2)}
        with pytest.raises(StatisticsError):
            StreamingMoments.from_state(bad)

    def test_sufficient_stats_feed_pairwise_tests(self):
        rng = np.random.default_rng(16)
        moments, data = self._filled(rng)
        events = ("e0", "e1", "e2", "e3")
        stats = moments.to_sufficient_stats(events)
        arrays = batch_pairwise_tests(stats, method="welch")
        # Against numpy-on-raw-samples ground truth for pair (0, 1).
        for column in range(4):
            a = data[0][:, column]
            b = data[1][:, column]
            va, vb = a.var(ddof=1), b.var(ddof=1)
            t = (a.mean() - b.mean()) / np.sqrt(va / a.size + vb / b.size)
            assert arrays.statistic[0, column] == pytest.approx(t, rel=1e-9)

    def test_sufficient_stats_needs_two_observations(self):
        moments = StreamingMoments(2)
        moments.observe(0, np.zeros((1, 2)))
        with pytest.raises(StatisticsError):
            moments.to_sufficient_stats(("a", "b"))
        with pytest.raises(StatisticsError):
            StreamingMoments(2).to_sufficient_stats(("a", "b"))

    def test_sufficient_stats_label_count_checked(self):
        moments, _ = self._filled(np.random.default_rng(17))
        with pytest.raises(StatisticsError):
            moments.to_sufficient_stats(("only", "three", "labels"))

    def test_memory_is_flat_in_sample_count(self):
        small = StreamingMoments(6)
        big = StreamingMoments(6)
        rng = np.random.default_rng(18)
        small.observe(0, rng.normal(size=(10, 6)))
        big.observe(0, rng.normal(size=(5000, 6)))
        assert big.memory_bytes() == small.memory_bytes()


class TestSlidingWindowMoments:
    def test_eviction_keeps_last_capacity_rows(self):
        window = SlidingWindowMoments(capacity=5, columns=2)
        rows = np.arange(16, dtype=np.float64).reshape(8, 2)
        window.observe(rows[:3])
        window.observe(rows[3:])
        assert window.count == 5
        assert window.total_seen == 8
        np.testing.assert_array_equal(window.window(), rows[-5:])
        np.testing.assert_allclose(window.mean(), rows[-5:].mean(axis=0))
        np.testing.assert_allclose(window.variance(),
                                   rows[-5:].var(axis=0, ddof=1))

    def test_oversized_batch_overwrites_window(self):
        window = SlidingWindowMoments(capacity=3, columns=1)
        window.observe(np.arange(10, dtype=np.float64)[:, None])
        np.testing.assert_array_equal(window.window().ravel(),
                                      [7.0, 8.0, 9.0])

    def test_drift_z_scores(self):
        baseline = MomentColumns(2)
        rng = np.random.default_rng(19)
        baseline.observe(rng.normal(100.0, 4.0, size=(500, 2)))
        window = SlidingWindowMoments(capacity=25, columns=2)
        window.observe(rng.normal([100.0, 140.0], 4.0, size=(25, 2)))
        z = window.drift_z_scores(baseline)
        assert abs(z[0]) < 5.0       # undrifted column stays near zero
        assert z[1] > 10.0           # 10-sigma mean shift is unmissable

    def test_validation(self):
        with pytest.raises(StatisticsError):
            SlidingWindowMoments(capacity=1, columns=2)
        window = SlidingWindowMoments(capacity=4, columns=2)
        with pytest.raises(StatisticsError):
            window.mean()
        with pytest.raises(StatisticsError):
            window.observe(np.zeros((2, 3)))
        with pytest.raises(StatisticsError):
            window.drift_z_scores(MomentColumns(3))
