"""Tests for repro.stats.equivalence (TOST)."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats.equivalence import relative_margin, tost_equivalence


class TestTost:
    def test_identical_distributions_are_equivalent(self, rng):
        a = rng.normal(1000.0, 5.0, size=200)
        b = rng.normal(1000.0, 5.0, size=200)
        result = tost_equivalence(a, b, margin=5.0)
        assert result.equivalent(0.05)
        assert result.p_value < 0.05

    def test_shifted_distributions_are_not_equivalent(self, rng):
        a = rng.normal(1000.0, 5.0, size=200)
        b = rng.normal(1020.0, 5.0, size=200)
        result = tost_equivalence(a, b, margin=5.0)
        assert not result.equivalent(0.05)

    def test_shift_inside_margin_is_equivalent(self, rng):
        a = rng.normal(1000.0, 2.0, size=300)
        b = rng.normal(1001.0, 2.0, size=300)
        result = tost_equivalence(a, b, margin=5.0)
        assert result.equivalent(0.05)
        assert result.mean_difference == pytest.approx(-1.0, abs=0.6)

    def test_low_power_fails_to_certify(self, rng):
        # Tiny samples with wide spread: failure to reject difference is NOT
        # equivalence — TOST correctly refuses to certify.
        a = rng.normal(0.0, 50.0, size=4)
        b = rng.normal(0.0, 50.0, size=4)
        result = tost_equivalence(a, b, margin=1.0)
        assert not result.equivalent(0.05)

    def test_p_value_is_max_of_one_sided(self, rng):
        a = rng.normal(size=40)
        b = rng.normal(size=40)
        result = tost_equivalence(a, b, margin=0.5)
        assert result.p_value == max(result.p_lower, result.p_upper)

    def test_constant_samples(self):
        inside = tost_equivalence([5.0, 5.0, 5.0], [5.0, 5.0], margin=1.0)
        assert inside.equivalent(0.05)
        outside = tost_equivalence([5.0, 5.0, 5.0], [9.0, 9.0], margin=1.0)
        assert not outside.equivalent(0.05)

    def test_rejects_bad_margin(self):
        with pytest.raises(StatisticsError):
            tost_equivalence([1.0, 2.0], [1.0, 2.0], margin=0.0)

    def test_rejects_tiny_samples(self):
        with pytest.raises(StatisticsError):
            tost_equivalence([1.0], [1.0, 2.0], margin=1.0)

    def test_rejects_bad_alpha(self, rng):
        result = tost_equivalence(rng.normal(size=10), rng.normal(size=10),
                                  margin=1.0)
        with pytest.raises(StatisticsError):
            result.equivalent(1.0)


class TestRelativeMargin:
    def test_fraction_of_mean(self):
        assert relative_margin([100.0, 100.0, 100.0], 0.01) == pytest.approx(1.0)

    def test_uses_absolute_mean(self):
        assert relative_margin([-100.0, -100.0], 0.05) == pytest.approx(5.0)

    def test_rejects_zero_mean(self):
        with pytest.raises(StatisticsError):
            relative_margin([-1.0, 1.0], 0.01)

    def test_rejects_bad_fraction(self):
        with pytest.raises(StatisticsError):
            relative_margin([1.0, 2.0], 0.0)
