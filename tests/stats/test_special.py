"""Tests for repro.stats.special (log-gamma, incomplete beta)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.stats.special import (
    binomial_coefficient,
    log_beta,
    log_factorial,
    log_gamma,
    regularized_incomplete_beta,
)

scipy_special = pytest.importorskip("scipy.special")


class TestLogGamma:
    def test_matches_math_lgamma_on_positives(self):
        for x in (0.1, 0.5, 1.0, 1.5, 2.0, 3.7, 10.0, 100.5, 1e4):
            assert log_gamma(x) == pytest.approx(math.lgamma(x), rel=1e-12)

    def test_reflection_for_negative_non_integers(self):
        for x in (-0.5, -1.5, -2.3, -10.7):
            assert log_gamma(x) == pytest.approx(math.lgamma(x), rel=1e-9)

    def test_integer_factorial_identity(self):
        # Gamma(n) = (n-1)!
        assert math.exp(log_gamma(6)) == pytest.approx(120.0, rel=1e-12)

    @pytest.mark.parametrize("bad", [0.0, -1.0, -5.0])
    def test_rejects_non_positive_integers(self, bad):
        with pytest.raises(StatisticsError):
            log_gamma(bad)

    @given(st.floats(min_value=0.01, max_value=500.0))
    @settings(max_examples=60)
    def test_property_matches_lgamma(self, x):
        assert log_gamma(x) == pytest.approx(math.lgamma(x), rel=1e-10,
                                             abs=1e-10)


class TestLogBeta:
    def test_matches_scipy(self):
        for a, b in ((0.5, 0.5), (1.0, 2.0), (3.5, 7.2), (100.0, 0.1)):
            assert log_beta(a, b) == pytest.approx(
                float(scipy_special.betaln(a, b)), rel=1e-12)

    def test_rejects_non_positive(self):
        with pytest.raises(StatisticsError):
            log_beta(0.0, 1.0)
        with pytest.raises(StatisticsError):
            log_beta(1.0, -2.0)


class TestIncompleteBeta:
    def test_boundary_values(self):
        assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0

    def test_symmetry_relation(self):
        # I_x(a, b) = 1 - I_{1-x}(b, a)
        value = regularized_incomplete_beta(2.5, 4.0, 0.3)
        mirror = regularized_incomplete_beta(4.0, 2.5, 0.7)
        assert value == pytest.approx(1.0 - mirror, abs=1e-12)

    def test_matches_scipy_betainc(self):
        cases = [(0.5, 0.5, 0.5), (2.0, 3.0, 0.25), (10.0, 10.0, 0.5),
                 (1.0, 1.0, 0.123), (50.0, 0.5, 0.99), (0.5, 20.0, 0.01)]
        for a, b, x in cases:
            assert regularized_incomplete_beta(a, b, x) == pytest.approx(
                float(scipy_special.betainc(a, b, x)), rel=1e-9, abs=1e-12)

    @given(st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=0.1, max_value=50.0),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80)
    def test_property_matches_scipy(self, a, b, x):
        ours = regularized_incomplete_beta(a, b, x)
        theirs = float(scipy_special.betainc(a, b, x))
        assert ours == pytest.approx(theirs, rel=1e-7, abs=1e-9)

    @given(st.floats(min_value=0.2, max_value=20.0),
           st.floats(min_value=0.2, max_value=20.0))
    @settings(max_examples=40)
    def test_property_monotone_in_x(self, a, b):
        values = [regularized_incomplete_beta(a, b, x)
                  for x in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(v1 <= v2 + 1e-12 for v1, v2 in zip(values, values[1:]))

    def test_rejects_bad_arguments(self):
        with pytest.raises(StatisticsError):
            regularized_incomplete_beta(-1.0, 2.0, 0.5)
        with pytest.raises(StatisticsError):
            regularized_incomplete_beta(1.0, 2.0, 1.5)


class TestCombinatorics:
    def test_log_factorial(self):
        assert math.exp(log_factorial(5)) == pytest.approx(120.0, rel=1e-12)
        assert log_factorial(0) == pytest.approx(0.0, abs=1e-12)

    def test_log_factorial_rejects_negative(self):
        with pytest.raises(StatisticsError):
            log_factorial(-1)

    def test_binomial_coefficient(self):
        assert binomial_coefficient(10, 3) == pytest.approx(120.0, rel=1e-10)
        assert binomial_coefficient(5, 0) == pytest.approx(1.0, rel=1e-12)
        assert binomial_coefficient(5, 6) == 0.0
        assert binomial_coefficient(5, -1) == 0.0
