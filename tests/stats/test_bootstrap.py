"""Tests for repro.stats.bootstrap."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats.bootstrap import (
    bootstrap_mean_difference,
    bootstrap_statistic,
)


class TestMeanDifference:
    def test_interval_brackets_true_difference(self, rng):
        a = rng.normal(10.0, 2.0, 200)
        b = rng.normal(7.0, 2.0, 200)
        interval = bootstrap_mean_difference(a, b, seed=1)
        assert interval.contains(3.0)
        assert interval.low < interval.estimate < interval.high

    def test_no_difference_interval_contains_zero(self, rng):
        a = rng.normal(5.0, 1.0, 150)
        b = rng.normal(5.0, 1.0, 150)
        interval = bootstrap_mean_difference(a, b, seed=2)
        assert interval.contains(0.0)

    def test_deterministic_given_seed(self, rng):
        a = rng.normal(size=50)
        b = rng.normal(size=50)
        first = bootstrap_mean_difference(a, b, seed=7)
        second = bootstrap_mean_difference(a, b, seed=7)
        assert (first.low, first.high) == (second.low, second.high)

    def test_higher_confidence_wider_interval(self, rng):
        a = rng.normal(size=60)
        b = rng.normal(size=60)
        narrow = bootstrap_mean_difference(a, b, confidence=0.80, seed=3)
        wide = bootstrap_mean_difference(a, b, confidence=0.99, seed=3)
        assert (wide.high - wide.low) > (narrow.high - narrow.low)

    def test_coverage_calibration(self):
        # ~95% of intervals from null data should contain 0.
        hits = 0
        for seed in range(60):
            local = np.random.default_rng(seed)
            a = local.normal(0.0, 1.0, 40)
            b = local.normal(0.0, 1.0, 40)
            interval = bootstrap_mean_difference(a, b, resamples=500,
                                                 seed=seed)
            hits += interval.contains(0.0)
        assert hits >= 50

    def test_validation(self, rng):
        with pytest.raises(StatisticsError):
            bootstrap_mean_difference([1.0, 2.0], [3.0], confidence=1.5)
        with pytest.raises(StatisticsError):
            bootstrap_mean_difference([1.0, 2.0], [3.0, 4.0], resamples=10)


class TestGenericStatistic:
    def test_median_interval(self, rng):
        values = rng.normal(100.0, 5.0, 300)
        interval = bootstrap_statistic(values, np.median, seed=4)
        assert interval.contains(100.0)
        assert interval.method == "percentile"

    def test_bca_on_skewed_statistic(self, rng):
        values = rng.exponential(2.0, 300)
        percentile = bootstrap_statistic(values, np.mean, seed=5,
                                         method="percentile")
        bca = bootstrap_statistic(values, np.mean, seed=5, method="bca")
        # Both should bracket the true mean of 2 on a large sample.
        assert percentile.contains(2.0)
        assert bca.contains(2.0)
        assert bca.method == "bca"

    def test_format_mentions_bounds(self, rng):
        interval = bootstrap_statistic(rng.normal(size=50), np.mean, seed=6)
        text = interval.format()
        assert "[" in text and "95%" in text

    def test_rejects_tiny_sample_and_bad_method(self, rng):
        with pytest.raises(StatisticsError):
            bootstrap_statistic([1.0], np.mean)
        with pytest.raises(StatisticsError):
            bootstrap_statistic(rng.normal(size=20), np.mean,
                                method="studentized")
