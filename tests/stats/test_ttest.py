"""Tests for repro.stats.ttest against SciPy and known behaviour."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.stats.ttest import (
    format_p_value,
    one_sample_t_test,
    student_t_test,
    welch_t_test,
)

scipy_stats = pytest.importorskip("scipy.stats")

samples = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                             allow_nan=False, allow_infinity=False),
                   min_size=3, max_size=40)


class TestWelch:
    def test_matches_scipy(self, rng):
        a = rng.normal(10.0, 2.0, size=25)
        b = rng.normal(11.0, 5.0, size=40)
        ours = welch_t_test(a, b)
        theirs = scipy_stats.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-12)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)
        assert ours.df == pytest.approx(float(theirs.df), rel=1e-12)

    def test_sign_follows_mean_difference(self):
        low = [1.0, 2.0, 3.0]
        high = [11.0, 12.0, 13.0]
        assert welch_t_test(high, low).statistic > 0
        assert welch_t_test(low, high).statistic < 0

    @given(samples, samples)
    @settings(max_examples=50)
    def test_property_antisymmetric_and_bounded_p(self, a, b):
        r_ab = welch_t_test(a, b)
        r_ba = welch_t_test(b, a)
        if math.isfinite(r_ab.statistic):
            assert r_ab.statistic == pytest.approx(-r_ba.statistic, rel=1e-9,
                                                   abs=1e-9)
        assert 0.0 <= r_ab.p_value <= 1.0
        assert r_ab.p_value == pytest.approx(r_ba.p_value, rel=1e-9, abs=1e-12)

    def test_identical_constant_samples(self):
        result = welch_t_test([5.0, 5.0, 5.0], [5.0, 5.0])
        assert result.statistic == 0.0
        assert result.p_value == 1.0

    def test_distinct_constant_samples(self):
        result = welch_t_test([5.0, 5.0, 5.0], [7.0, 7.0])
        assert result.statistic == -math.inf
        assert result.p_value == 0.0
        assert result.rejects_null()

    def test_rejects_null_threshold(self, rng):
        a = rng.normal(0.0, 1.0, 50)
        b = rng.normal(5.0, 1.0, 50)
        assert welch_t_test(a, b).rejects_null(0.95)
        same = welch_t_test(a, a + 0.0)
        assert not same.rejects_null(0.95)

    def test_requires_two_observations(self):
        with pytest.raises(StatisticsError):
            welch_t_test([1.0], [2.0, 3.0])

    def test_rejects_bad_confidence(self, rng):
        result = welch_t_test(rng.normal(size=5), rng.normal(size=5))
        with pytest.raises(StatisticsError):
            result.rejects_null(0.0)


class TestStudent:
    def test_matches_scipy(self, rng):
        a = rng.normal(3.0, 1.0, size=12)
        b = rng.normal(3.5, 1.0, size=18)
        ours = student_t_test(a, b)
        theirs = scipy_stats.ttest_ind(a, b, equal_var=True)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-12)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)
        assert ours.df == 28.0

    def test_equal_variance_agrees_with_welch_on_balanced_data(self, rng):
        a = rng.normal(0.0, 1.0, size=30)
        b = rng.normal(0.3, 1.0, size=30)
        # Equal n and similar variance: the two tests nearly coincide.
        assert student_t_test(a, b).statistic == pytest.approx(
            welch_t_test(a, b).statistic, rel=1e-9)


class TestOneSample:
    def test_matches_scipy(self, rng):
        values = rng.normal(7.0, 2.0, size=20)
        ours = one_sample_t_test(values, 6.5)
        theirs = scipy_stats.ttest_1samp(values, 6.5)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-12)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    def test_constant_sample(self):
        hit = one_sample_t_test([4.0, 4.0, 4.0], 4.0)
        assert hit.p_value == 1.0
        miss = one_sample_t_test([4.0, 4.0, 4.0], 5.0)
        assert miss.p_value == 0.0


class TestFormatting:
    def test_format_p_value_paper_style(self):
        assert format_p_value(1e-7) == "~0"
        assert format_p_value(0.0449) == "0.0449"
        assert format_p_value(0.6669) == "0.6669"

    def test_result_format_contains_stats(self, rng):
        result = welch_t_test(rng.normal(size=10), rng.normal(size=10))
        text = result.format()
        assert "t=" in text and "p=" in text and "df=" in text
