"""Tests for repro.stats.mutual_information."""

import math

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats.mutual_information import (
    binned_mutual_information,
    entropy_bits,
    leakage_fraction,
    max_leakage_bits,
)


class TestEntropy:
    def test_uniform(self):
        assert entropy_bits([0.25] * 4) == pytest.approx(2.0)

    def test_degenerate(self):
        assert entropy_bits([1.0, 0.0, 0.0]) == 0.0

    def test_unnormalized_input_normalized(self):
        assert entropy_bits([2, 2]) == pytest.approx(1.0)

    def test_rejects_zero_mass(self):
        with pytest.raises(StatisticsError):
            entropy_bits([0.0, 0.0])


class TestBinnedMi:
    def test_perfectly_separated_classes_reach_label_entropy(self, rng):
        values = {
            0: rng.normal(0.0, 0.5, 600),
            1: rng.normal(100.0, 0.5, 600),
        }
        mi = binned_mutual_information(values, bins=16)
        assert mi == pytest.approx(1.0, abs=0.05)

    def test_identical_distributions_near_zero(self, rng):
        values = {
            0: rng.normal(0.0, 1.0, 800),
            1: rng.normal(0.0, 1.0, 800),
        }
        assert binned_mutual_information(values, bins=12) < 0.05

    def test_partial_overlap_in_between(self, rng):
        values = {
            0: rng.normal(0.0, 1.0, 800),
            1: rng.normal(1.5, 1.0, 800),
        }
        mi = binned_mutual_information(values)
        assert 0.15 < mi < 0.85

    def test_constant_observable_zero(self):
        values = {0: np.full(50, 7.0), 1: np.full(50, 7.0)}
        assert binned_mutual_information(values) == 0.0

    def test_four_classes_bounded_by_two_bits(self, rng):
        values = {i: rng.normal(i * 50.0, 0.5, 300) for i in range(4)}
        mi = binned_mutual_information(values, bins=32)
        assert 1.8 < mi <= 2.0 + 0.05

    def test_never_negative(self, rng):
        values = {0: rng.normal(size=10), 1: rng.normal(size=10)}
        assert binned_mutual_information(values) >= 0.0

    def test_rejects_degenerate_input(self, rng):
        with pytest.raises(StatisticsError):
            binned_mutual_information({0: rng.normal(size=5)})
        with pytest.raises(StatisticsError):
            binned_mutual_information({0: np.array([]), 1: np.ones(3)})
        with pytest.raises(StatisticsError):
            binned_mutual_information({0: np.ones(3), 1: np.ones(3)}, bins=1)


class TestLeakageFraction:
    def test_max_leakage(self):
        assert max_leakage_bits(4) == 2.0
        with pytest.raises(StatisticsError):
            max_leakage_bits(1)

    def test_fraction_in_unit_interval(self, rng):
        values = {i: rng.normal(i * 3.0, 1.0, 200) for i in range(3)}
        fraction = leakage_fraction(values)
        assert 0.0 <= fraction <= 1.0
        assert fraction > 0.3  # partially separated
