"""Tests for repro.stats.power."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats.power import (
    detectable_effect_size,
    required_samples_per_group,
    ttest_power,
)
from repro.stats.ttest import welch_t_test


class TestTtestPower:
    def test_known_reference_value(self):
        # Classic benchmark: d=0.5, n=64/group, alpha=0.05 -> power ~ 0.80.
        assert ttest_power(0.5, 64) == pytest.approx(0.80, abs=0.02)

    def test_monotone_in_n(self):
        powers = [ttest_power(0.5, n) for n in (10, 20, 40, 80, 160)]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_monotone_in_effect(self):
        powers = [ttest_power(d, 30) for d in (0.1, 0.3, 0.6, 1.0, 2.0)]
        assert all(a < b for a, b in zip(powers, powers[1:]))

    def test_zero_effect_gives_alpha(self):
        assert ttest_power(0.0, 50, alpha=0.05) == pytest.approx(0.05,
                                                                 abs=0.01)

    def test_sign_symmetric(self):
        assert ttest_power(0.7, 25) == ttest_power(-0.7, 25)

    def test_agrees_with_simulation(self, rng):
        d, n = 0.8, 25
        rejections = 0
        trials = 400
        for _ in range(trials):
            a = rng.normal(0.0, 1.0, n)
            b = rng.normal(d, 1.0, n)
            rejections += welch_t_test(a, b).p_value < 0.05
        simulated = rejections / trials
        assert ttest_power(d, n) == pytest.approx(simulated, abs=0.06)

    def test_rejects_bad_arguments(self):
        with pytest.raises(StatisticsError):
            ttest_power(0.5, 1)
        with pytest.raises(StatisticsError):
            ttest_power(0.5, 10, alpha=0.0)


class TestRequiredSamples:
    def test_known_reference_value(self):
        # d=0.5, power 0.8 -> n ~ 64 per group (standard tables).
        assert required_samples_per_group(0.5, 0.8) == pytest.approx(64,
                                                                     abs=2)

    def test_achieves_requested_power(self):
        for d in (0.3, 0.8, 1.5):
            n = required_samples_per_group(d, 0.9)
            assert ttest_power(d, n) >= 0.9
            if n > 2:
                assert ttest_power(d, n - 1) < 0.9

    def test_small_effects_need_more_samples(self):
        assert (required_samples_per_group(0.2, 0.8)
                > required_samples_per_group(0.8, 0.8))

    def test_rejects_zero_effect(self):
        with pytest.raises(StatisticsError):
            required_samples_per_group(0.0)

    def test_cap_enforced(self):
        with pytest.raises(StatisticsError):
            required_samples_per_group(1e-6, 0.99, max_n=1000)


class TestDetectableEffect:
    def test_round_trip_with_required_samples(self):
        d = detectable_effect_size(64, power=0.8)
        assert d == pytest.approx(0.5, abs=0.02)

    def test_more_samples_detect_smaller_effects(self):
        assert detectable_effect_size(400) < detectable_effect_size(20)

    def test_rejects_bad_arguments(self):
        with pytest.raises(StatisticsError):
            detectable_effect_size(1)
