"""Tests for repro.stats.effect_size."""

import math

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats.effect_size import (
    cohens_d,
    glass_delta,
    hedges_g,
    interpret_cohens_d,
    overlap_coefficient,
)


class TestCohensD:
    def test_hand_computed_value(self):
        a = [2.0, 4.0, 6.0]   # mean 4, var 4
        b = [1.0, 3.0, 5.0]   # mean 3, var 4
        assert cohens_d(a, b) == pytest.approx(0.5)

    def test_sign(self):
        assert cohens_d([10, 11, 12], [1, 2, 3]) > 0
        assert cohens_d([1, 2, 3], [10, 11, 12]) < 0

    def test_scale_invariance(self, rng):
        a = rng.normal(5, 2, size=30)
        b = rng.normal(6, 2, size=30)
        assert cohens_d(a * 10, b * 10) == pytest.approx(cohens_d(a, b),
                                                         rel=1e-12)

    def test_constant_groups(self):
        assert cohens_d([3.0, 3.0], [3.0, 3.0]) == 0.0
        assert cohens_d([4.0, 4.0], [3.0, 3.0]) == math.inf
        assert cohens_d([2.0, 2.0], [3.0, 3.0]) == -math.inf

    def test_requires_two_observations(self):
        with pytest.raises(StatisticsError):
            cohens_d([1.0], [2.0, 3.0])


class TestHedgesG:
    def test_smaller_magnitude_than_d(self, rng):
        a = rng.normal(0, 1, size=8)
        b = rng.normal(1, 1, size=8)
        d = cohens_d(a, b)
        g = hedges_g(a, b)
        assert abs(g) < abs(d)
        assert math.copysign(1, g) == math.copysign(1, d)

    def test_correction_converges_with_n(self, rng):
        a = rng.normal(0, 1, size=500)
        b = rng.normal(0.5, 1, size=500)
        assert hedges_g(a, b) == pytest.approx(cohens_d(a, b), rel=1e-2)


class TestGlassDelta:
    def test_uses_control_std(self):
        a = [10.0, 10.0, 10.0]
        b = [0.0, 2.0, 4.0]  # std = 2
        assert glass_delta(a, b) == pytest.approx((10.0 - 2.0) / 2.0)

    def test_constant_control(self):
        assert glass_delta([5.0, 6.0], [3.0, 3.0]) == math.inf


class TestOverlap:
    def test_identical_data_full_overlap(self, rng):
        a = rng.normal(size=300)
        assert overlap_coefficient(a, a.copy()) == pytest.approx(1.0)

    def test_disjoint_data_no_overlap(self):
        assert overlap_coefficient([0.0, 1.0, 2.0],
                                   [100.0, 101.0, 102.0]) == 0.0

    def test_partial_overlap_between_zero_and_one(self, rng):
        a = rng.normal(0.0, 1.0, size=400)
        b = rng.normal(1.0, 1.0, size=400)
        value = overlap_coefficient(a, b)
        assert 0.2 < value < 0.9


class TestInterpretation:
    @pytest.mark.parametrize("d,label", [
        (0.05, "negligible"), (-0.3, "small"), (0.6, "medium"),
        (-1.5, "large"), (0.2, "small"), (0.8, "large"),
    ])
    def test_thresholds(self, d, label):
        assert interpret_cohens_d(d) == label
