"""Tests for repro.stats.vectorized (batched t-tests on the fast path)."""

import itertools

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.hpc import EventDistributions
from repro.stats import (
    SufficientStats,
    batch_pairwise_tests,
    cohens_d,
    regularized_incomplete_beta,
    regularized_incomplete_beta_array,
    student_t_test,
    two_sided_p_values,
    welch_t_test,
)
from repro.stats.distributions import StudentT
from repro.uarch import ALL_EVENTS, HpcEvent

TOL = 1e-12


def _random_distributions(rng, categories=6, events=4, samples=40,
                          scale=1000.0):
    data = {}
    event_list = list(ALL_EVENTS[:events])
    for cat in range(categories):
        offset = rng.uniform(-2.0, 2.0)
        data[cat] = {
            event: scale + offset + rng.normal(0.0, 3.0, size=samples)
            for event in event_list
        }
    return EventDistributions(data)


class TestIncompleteBetaArray:
    def test_matches_scalar_across_grid(self):
        a_values = [0.5, 1.0, 3.5, 17.0, 250.0]
        x_values = [0.0, 1e-9, 0.1, 0.4999, 0.5, 0.73, 1.0 - 1e-9, 1.0]
        a, x = np.meshgrid(a_values, x_values, indexing="ij")
        b = np.full_like(a, 0.5)
        result = regularized_incomplete_beta_array(a, b, x)
        for (i, j), value in np.ndenumerate(result):
            expected = regularized_incomplete_beta(a[i, j], b[i, j], x[i, j])
            assert value == pytest.approx(expected, abs=TOL)

    def test_rejects_bad_arguments(self):
        with pytest.raises(StatisticsError):
            regularized_incomplete_beta_array(
                np.array([-1.0]), np.array([0.5]), np.array([0.5]))
        with pytest.raises(StatisticsError):
            regularized_incomplete_beta_array(
                np.array([1.0]), np.array([0.5]), np.array([1.5]))

    def test_two_sided_p_matches_student_t(self):
        t = np.array([0.0, 0.3, -2.5, 11.0, -44.0])
        df = np.array([3.0, 17.4, 98.0, 2.2, 600.0])
        p = two_sided_p_values(t, df)
        for ti, dfi, pi in zip(t, df, p):
            assert pi == pytest.approx(
                StudentT(dfi).two_sided_p_value(ti), abs=TOL)


class TestBatchAgainstScalar:
    @pytest.mark.parametrize("method", ["welch", "student"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_distributions_match_exactly(self, method, seed):
        rng = np.random.default_rng(seed)
        dists = _random_distributions(rng)
        stats = SufficientStats.from_distributions(dists)
        arrays = batch_pairwise_tests(stats, method=method)
        scalar = welch_t_test if method == "welch" else student_t_test
        pairs = list(itertools.combinations(dists.categories, 2))
        for ei, event in enumerate(stats.events):
            for pi, (cat_a, cat_b) in enumerate(pairs):
                a = dists.values(cat_a, event)
                b = dists.values(cat_b, event)
                expected = scalar(a, b)
                assert arrays.statistic[pi, ei] == pytest.approx(
                    expected.statistic, abs=TOL, rel=TOL)
                assert arrays.p_value[pi, ei] == pytest.approx(
                    expected.p_value, abs=TOL)
                assert arrays.df[pi, ei] == pytest.approx(
                    expected.df, abs=TOL, rel=TOL)
                assert arrays.effect_size[pi, ei] == pytest.approx(
                    cohens_d(a, b), abs=TOL, rel=TOL)

    @pytest.mark.parametrize("method", ["welch", "student"])
    def test_unequal_sample_sizes(self, method):
        rng = np.random.default_rng(7)
        dists = EventDistributions({
            0: {HpcEvent.CYCLES: rng.normal(10.0, 2.0, size=31)},
            1: {HpcEvent.CYCLES: rng.normal(10.5, 4.0, size=97)},
            2: {HpcEvent.CYCLES: rng.normal(12.0, 1.0, size=8)},
        })
        stats = SufficientStats.from_distributions(dists)
        arrays = batch_pairwise_tests(stats, method=method)
        scalar = welch_t_test if method == "welch" else student_t_test
        for pi, (cat_a, cat_b) in enumerate(
                itertools.combinations([0, 1, 2], 2)):
            expected = scalar(dists.values(cat_a, HpcEvent.CYCLES),
                              dists.values(cat_b, HpcEvent.CYCLES))
            assert arrays.statistic[pi, 0] == pytest.approx(
                expected.statistic, abs=TOL, rel=TOL)
            assert arrays.p_value[pi, 0] == pytest.approx(
                expected.p_value, abs=TOL)
            assert arrays.df[pi, 0] == pytest.approx(
                expected.df, abs=TOL, rel=TOL)

    @pytest.mark.parametrize("method", ["welch", "student"])
    def test_degenerate_constant_distributions(self, method):
        dists = EventDistributions({
            0: {HpcEvent.CYCLES: np.full(5, 100.0)},
            1: {HpcEvent.CYCLES: np.full(5, 100.0)},
            2: {HpcEvent.CYCLES: np.full(5, 250.0)},
        })
        stats = SufficientStats.from_distributions(dists)
        arrays = batch_pairwise_tests(stats, method=method)
        scalar = welch_t_test if method == "welch" else student_t_test
        for pi, (cat_a, cat_b) in enumerate(
                itertools.combinations([0, 1, 2], 2)):
            expected = scalar(dists.values(cat_a, HpcEvent.CYCLES),
                              dists.values(cat_b, HpcEvent.CYCLES))
            assert arrays.statistic[pi, 0] == expected.statistic
            assert arrays.p_value[pi, 0] == expected.p_value
            assert arrays.df[pi, 0] == expected.df
            assert arrays.effect_size[pi, 0] == cohens_d(
                dists.values(cat_a, HpcEvent.CYCLES),
                dists.values(cat_b, HpcEvent.CYCLES))

    def test_rejects_unknown_method(self):
        rng = np.random.default_rng(3)
        stats = SufficientStats.from_distributions(
            _random_distributions(rng, categories=2, events=1))
        with pytest.raises(StatisticsError):
            batch_pairwise_tests(stats, method="bogus")

    def test_rejects_single_category(self):
        stats = SufficientStats(
            categories=(0,), events=(HpcEvent.CYCLES,),
            n=np.array([4.0]), mean=np.zeros((1, 1)), var=np.ones((1, 1)))
        with pytest.raises(StatisticsError):
            batch_pairwise_tests(stats)

    def test_sufficient_stats_rejects_tiny_samples(self):
        dists = EventDistributions(
            {0: {HpcEvent.CYCLES: np.array([1.0])},
             1: {HpcEvent.CYCLES: np.array([2.0])}})
        with pytest.raises(StatisticsError):
            SufficientStats.from_distributions(dists)


class TestPairwiseIndices:
    def test_matches_combinations(self):
        from repro.stats.vectorized import pairwise_indices
        ia, ib = pairwise_indices(5)
        assert list(zip(ia.tolist(), ib.tolist())) == list(
            itertools.combinations(range(5), 2))

    def test_cached_and_read_only(self):
        from repro.stats.vectorized import pairwise_indices
        first = pairwise_indices(4)
        second = pairwise_indices(4)
        assert first[0] is second[0] and first[1] is second[1]
        with pytest.raises(ValueError):
            first[0][0] = 99

    def test_rejects_single_category(self):
        from repro.stats.vectorized import pairwise_indices
        with pytest.raises(StatisticsError):
            pairwise_indices(1)
