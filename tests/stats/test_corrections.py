"""Tests for repro.stats.corrections."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.stats.corrections import (
    adjust_p_values,
    benjamini_hochberg,
    bonferroni,
    holm_bonferroni,
    significant_after_correction,
)

p_values_strategy = st.lists(st.floats(min_value=0.0, max_value=1.0),
                             min_size=1, max_size=25)


class TestBonferroni:
    def test_simple_scaling(self):
        assert bonferroni([0.01, 0.2]) == [0.02, 0.4]

    def test_caps_at_one(self):
        assert bonferroni([0.6, 0.9]) == [1.0, 1.0]

    @given(p_values_strategy)
    @settings(max_examples=50)
    def test_property_dominates_raw(self, ps):
        adjusted = bonferroni(ps)
        assert all(adj >= raw - 1e-15 for adj, raw in zip(adjusted, ps))
        assert all(0.0 <= adj <= 1.0 for adj in adjusted)


class TestHolm:
    def test_known_example(self):
        # Classic example: sorted p = (0.01, 0.02, 0.03, 0.04) with m=4.
        adjusted = holm_bonferroni([0.01, 0.04, 0.03, 0.02])
        assert adjusted[0] == pytest.approx(0.04)
        assert adjusted[1] == pytest.approx(0.06)
        assert adjusted[2] == pytest.approx(0.06)
        assert adjusted[3] == pytest.approx(0.06)

    def test_never_more_conservative_than_bonferroni(self):
        ps = [0.001, 0.01, 0.02, 0.5]
        holm = holm_bonferroni(ps)
        bonf = bonferroni(ps)
        assert all(h <= b + 1e-15 for h, b in zip(holm, bonf))

    @given(p_values_strategy)
    @settings(max_examples=50)
    def test_property_monotone_in_raw_order(self, ps):
        adjusted = holm_bonferroni(ps)
        order = sorted(range(len(ps)), key=lambda i: ps[i])
        sorted_adjusted = [adjusted[i] for i in order]
        assert all(x <= y + 1e-15
                   for x, y in zip(sorted_adjusted, sorted_adjusted[1:]))


class TestBenjaminiHochberg:
    def test_known_example(self):
        adjusted = benjamini_hochberg([0.01, 0.04, 0.03, 0.005])
        # q_i = p_i * m / rank, then running minimum from the top.
        assert adjusted[3] == pytest.approx(0.02)
        assert adjusted[0] == pytest.approx(0.02)
        assert adjusted[2] == pytest.approx(0.04)
        assert adjusted[1] == pytest.approx(0.04)

    @given(p_values_strategy)
    @settings(max_examples=50)
    def test_property_less_conservative_than_holm(self, ps):
        bh = benjamini_hochberg(ps)
        holm = holm_bonferroni(ps)
        assert all(q <= h + 1e-12 for q, h in zip(bh, holm))


class TestDispatch:
    def test_none_passthrough(self):
        assert adjust_p_values([0.3, 0.1], method="none") == [0.3, 0.1]

    def test_unknown_method(self):
        with pytest.raises(StatisticsError):
            adjust_p_values([0.5], method="sidak")

    def test_rejects_invalid_p(self):
        with pytest.raises(StatisticsError):
            adjust_p_values([1.5])
        with pytest.raises(StatisticsError):
            adjust_p_values([])

    def test_significance_vector(self):
        flags = significant_after_correction([0.001, 0.04, 0.8], alpha=0.05,
                                             method="holm")
        assert flags == [True, False, False]

    def test_significance_rejects_bad_alpha(self):
        with pytest.raises(StatisticsError):
            significant_after_correction([0.5], alpha=0.0)
