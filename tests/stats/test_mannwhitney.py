"""Tests for repro.stats.mannwhitney."""

import numpy as np
import pytest

from repro.errors import StatisticsError
from repro.stats.mannwhitney import (
    mann_whitney_u,
    rank_biserial_correlation,
)

scipy_stats = pytest.importorskip("scipy.stats")


class TestMannWhitney:
    def test_matches_scipy_normal_approximation(self, rng):
        a = rng.normal(0.0, 1.0, size=30)
        b = rng.normal(0.8, 1.0, size=35)
        ours = mann_whitney_u(a, b)
        theirs = scipy_stats.mannwhitneyu(a, b, alternative="two-sided",
                                          method="asymptotic")
        assert ours.u_statistic == pytest.approx(theirs.statistic, rel=1e-12)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_with_heavy_ties(self):
        a = [1, 1, 2, 2, 3, 3, 3]
        b = [2, 2, 3, 3, 4, 4, 4]
        ours = mann_whitney_u(a, b)
        theirs = scipy_stats.mannwhitneyu(a, b, alternative="two-sided",
                                          method="asymptotic")
        assert ours.u_statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_identical_pooled_values(self):
        result = mann_whitney_u([3.0, 3.0, 3.0], [3.0, 3.0])
        assert result.p_value == 1.0
        assert not result.rejects_null()

    def test_separated_samples_reject(self):
        result = mann_whitney_u(list(range(20)), list(range(100, 120)))
        assert result.rejects_null(0.95)
        assert result.p_value < 1e-4

    def test_requires_two_per_group(self):
        with pytest.raises(StatisticsError):
            mann_whitney_u([1.0], [2.0, 3.0])

    def test_symmetry_of_p(self, rng):
        a = rng.normal(size=15)
        b = rng.normal(0.4, 1.0, size=12)
        assert mann_whitney_u(a, b).p_value == pytest.approx(
            mann_whitney_u(b, a).p_value, rel=1e-9)


class TestRankBiserial:
    def test_range_and_direction(self):
        high_first = rank_biserial_correlation([10, 11, 12], [1, 2, 3])
        low_first = rank_biserial_correlation([1, 2, 3], [10, 11, 12])
        assert high_first == pytest.approx(1.0)
        assert low_first == pytest.approx(-1.0)

    def test_balanced_overlap_is_near_zero(self, rng):
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        assert abs(rank_biserial_correlation(a, b)) < 0.2
