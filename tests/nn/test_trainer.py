"""Tests for repro.nn.trainer."""

import numpy as np
import pytest

from repro.errors import ConfigError, TrainingError
from repro.nn import (
    Adam,
    Dense,
    Flatten,
    ReLU,
    SGD,
    Sequential,
    Trainer,
)


def separable_problem(rng, n=120):
    """Two Gaussian blobs, linearly separable."""
    half = n // 2
    x = np.concatenate([rng.normal(-2.0, 0.5, size=(half, 4)),
                        rng.normal(+2.0, 0.5, size=(half, 4))])
    y = np.concatenate([np.zeros(half, dtype=int), np.ones(half, dtype=int)])
    return x, y


def mlp(seed=0):
    return Sequential([Dense(8), ReLU(), Dense(2)]).build((4,), seed=seed)


class TestTraining:
    def test_learns_separable_problem(self, rng):
        x, y = separable_problem(rng)
        trainer = Trainer(mlp(), optimizer=Adam(0.01), batch_size=16)
        history = trainer.fit(x, y, epochs=10)
        assert history.train_accuracy[-1] > 0.95
        assert history.loss[-1] < history.loss[0]

    def test_history_has_one_entry_per_epoch(self, rng):
        x, y = separable_problem(rng, n=40)
        trainer = Trainer(mlp(), batch_size=8)
        history = trainer.fit(x, y, epochs=3)
        assert history.epochs == 3
        assert len(history.train_accuracy) == 3
        assert history.val_accuracy == []

    def test_validation_tracked(self, rng):
        x, y = separable_problem(rng, n=60)
        trainer = Trainer(mlp(), optimizer=Adam(0.01))
        history = trainer.fit(x[:40], y[:40], epochs=2,
                              validation=(x[40:], y[40:]))
        assert len(history.val_accuracy) == 2
        assert "val_accuracy" in history.final()

    @pytest.mark.filterwarnings("ignore:overflow:RuntimeWarning")
    def test_divergence_detected(self, rng):
        from repro.nn import MeanSquaredError
        from repro.nn.tensor_utils import one_hot
        x, y = separable_problem(rng, n=40)
        # MSE with an absurd learning rate overflows the weights to inf.
        trainer = Trainer(mlp(), loss=MeanSquaredError(),
                          optimizer=SGD(learning_rate=1e9))
        with pytest.raises(TrainingError):
            for _ in range(200):
                trainer.train_step(x * 1e3, one_hot(y, 2))

    def test_deterministic_given_seeds(self, rng):
        x, y = separable_problem(rng, n=40)
        h1 = Trainer(mlp(seed=1), optimizer=Adam(0.01),
                     shuffle_seed=9).fit(x, y, epochs=2)
        h2 = Trainer(mlp(seed=1), optimizer=Adam(0.01),
                     shuffle_seed=9).fit(x, y, epochs=2)
        assert h1.loss == h2.loss


class TestValidation:
    def test_requires_built_model(self):
        with pytest.raises(TrainingError):
            Trainer(Sequential([Dense(2)]))

    def test_rejects_mismatched_lengths(self, rng):
        trainer = Trainer(mlp())
        with pytest.raises(TrainingError):
            trainer.fit(rng.normal(size=(5, 4)), np.zeros(4, dtype=int))

    def test_rejects_empty_dataset(self):
        trainer = Trainer(mlp())
        with pytest.raises(TrainingError):
            trainer.fit(np.empty((0, 4)), np.empty(0, dtype=int))

    def test_rejects_bad_epochs_and_batch(self, rng):
        with pytest.raises(ConfigError):
            Trainer(mlp(), batch_size=0)
        x, y = separable_problem(rng, n=10)
        with pytest.raises(ConfigError):
            Trainer(mlp()).fit(x, y, epochs=0)

    def test_final_requires_training(self):
        from repro.nn.trainer import TrainingHistory
        with pytest.raises(TrainingError):
            TrainingHistory().final()

    def test_evaluate_batches_cover_everything(self, rng):
        x, y = separable_problem(rng, n=30)
        trainer = Trainer(mlp(), optimizer=Adam(0.01))
        trainer.fit(x, y, epochs=5)
        full = trainer.evaluate(x, y, batch_size=7)
        assert full == pytest.approx(
            float(np.mean(trainer.model.predict(x) == y)))


class TestEvalPlanReuse:
    def test_eval_plan_compiled_once_then_refreshed(self, rng, monkeypatch):
        x, y = separable_problem(rng, n=40)
        trainer = Trainer(mlp(), optimizer=Adam(0.01), batch_size=8,
                          engine="compiled")
        compiles = []
        original = trainer.model.compile_inference

        def counting_compile(**kwargs):
            compiles.append(kwargs)
            return original(**kwargs)
        monkeypatch.setattr(trainer.model, "compile_inference",
                            counting_compile)
        # fit evaluates after every epoch; only the first call compiles.
        trainer.fit(x, y, epochs=3)
        trainer.evaluate(x, y)
        assert len(compiles) == 1

    def test_refreshed_plan_tracks_trained_weights(self, rng):
        x, y = separable_problem(rng, n=40)
        trainer = Trainer(mlp(), optimizer=Adam(0.01), batch_size=8,
                          engine="compiled")
        trainer.evaluate(x, y)  # compile against the untrained weights
        plan = trainer._eval_plan
        trainer.fit(x, y, epochs=3)
        assert trainer._eval_plan is plan
        # The cached plan must see the post-training weights, exactly as
        # the reference path does.
        assert trainer.evaluate(x, y) == pytest.approx(
            float(np.mean(trainer.model.predict(x) == y)))

    def test_layers_engine_never_compiles_for_evaluate(self, rng):
        x, y = separable_problem(rng, n=20)
        trainer = Trainer(mlp(), optimizer=Adam(0.01), engine="layers")
        trainer.fit(x, y, epochs=1)
        assert trainer._eval_plan is None
