"""Gradient and behaviour tests for every layer type."""

import numpy as np
import pytest

from repro.errors import ConfigError, LayerError, ShapeError
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)

from .gradcheck import check_layer_gradients


def build(layer, shape, seed=0):
    layer.build(shape, np.random.default_rng(seed))
    return layer


class TestConv2D:
    def test_forward_matches_direct_convolution(self, rng):
        layer = build(Conv2D(4, 3), (2, 6, 6))
        x = rng.normal(size=(2, 2, 6, 6))
        y = layer.forward(x)
        w = layer.weight.value
        b = layer.bias.value
        for n in range(2):
            for f in range(4):
                for i in range(4):
                    for j in range(4):
                        expected = np.sum(x[n, :, i:i + 3, j:j + 3] * w[f]) + b[f]
                        assert y[n, f, i, j] == pytest.approx(expected,
                                                              rel=1e-10)

    def test_output_shape_with_stride_padding(self, rng):
        layer = build(Conv2D(5, 3, stride=2, padding=1), (3, 9, 9))
        assert layer.output_shape == (5, 5, 5)
        y = layer.forward(rng.normal(size=(1, 3, 9, 9)))
        assert y.shape == (1, 5, 5, 5)

    def test_gradients(self, rng):
        layer = build(Conv2D(3, 3, stride=1, padding=1), (2, 5, 5))
        check_layer_gradients(layer, rng.normal(size=(2, 2, 5, 5)), rng)

    def test_no_bias(self, rng):
        layer = build(Conv2D(2, 3, use_bias=False), (1, 5, 5))
        assert len(layer.parameters()) == 1

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            Conv2D(0, 3)
        with pytest.raises(ConfigError):
            Conv2D(1, 3, stride=0)

    def test_rejects_wrong_input_shape(self, rng):
        layer = build(Conv2D(2, 3), (1, 5, 5))
        with pytest.raises(ShapeError):
            layer.forward(rng.normal(size=(1, 2, 5, 5)))

    def test_backward_requires_forward(self, rng):
        layer = build(Conv2D(2, 3), (1, 5, 5))
        with pytest.raises(LayerError):
            layer.backward(rng.normal(size=(1, 2, 3, 3)))


class TestDense:
    def test_forward_affine(self, rng):
        layer = build(Dense(4), (6,))
        x = rng.normal(size=(3, 6))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.weight.value + layer.bias.value)

    def test_gradients(self, rng):
        layer = build(Dense(5), (7,))
        check_layer_gradients(layer, rng.normal(size=(4, 7)), rng)

    def test_rejects_unflattened_input(self):
        with pytest.raises(ShapeError):
            build(Dense(4), (2, 3))

    def test_gradient_accumulates_across_backwards(self, rng):
        layer = build(Dense(2), (3,))
        x = rng.normal(size=(2, 3))
        grad = rng.normal(size=(2, 2))
        layer.forward(x, training=True)
        layer.backward(grad)
        once = layer.weight.grad.copy()
        layer.forward(x, training=True)
        layer.backward(grad)
        np.testing.assert_allclose(layer.weight.grad, 2.0 * once)


class TestPooling:
    def test_maxpool_forward_matches_manual(self, rng):
        layer = build(MaxPool2D(2), (2, 4, 4))
        x = rng.normal(size=(1, 2, 4, 4))
        y = layer.forward(x)
        for c in range(2):
            for i in range(2):
                for j in range(2):
                    window = x[0, c, 2 * i:2 * i + 2, 2 * j:2 * j + 2]
                    assert y[0, c, i, j] == window.max()

    def test_maxpool_gradient_routes_to_argmax(self):
        layer = build(MaxPool2D(2), (1, 2, 2))
        x = np.array([[[[1.0, 5.0], [2.0, 3.0]]]])
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[[[7.0]]]]))
        np.testing.assert_array_equal(
            grad, [[[[0.0, 7.0], [0.0, 0.0]]]])

    def test_maxpool_gradients_numeric(self, rng):
        layer = build(MaxPool2D(2), (2, 4, 4))
        # Distinct values avoid argmax ties that break central differences.
        x = rng.permutation(np.arange(32.0)).reshape(1, 2, 4, 4) * 0.1
        check_layer_gradients(layer, x, rng)

    def test_avgpool_forward_and_gradients(self, rng):
        layer = build(AvgPool2D(2), (2, 4, 4))
        x = rng.normal(size=(1, 2, 4, 4))
        y = layer.forward(x)
        assert y[0, 0, 0, 0] == pytest.approx(x[0, 0, :2, :2].mean())
        check_layer_gradients(layer, x, rng)

    def test_global_avgpool(self, rng):
        layer = build(GlobalAvgPool2D(), (3, 4, 4))
        x = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(layer.forward(x), x.mean(axis=(2, 3)))
        check_layer_gradients(layer, x, rng)

    def test_pool_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            MaxPool2D(0)

    def test_maxpool_inference_matches_training_values(self, rng):
        # Inference skips the argmax bookkeeping but must produce the
        # same maxima, including with overlapping windows.
        for pool, stride, shape in [(2, 2, (2, 4, 4)), (3, 1, (1, 5, 5)),
                                    (2, 1, (3, 4, 4))]:
            layer = build(MaxPool2D(pool, stride=stride), shape)
            x = rng.normal(size=(2,) + shape)
            np.testing.assert_array_equal(layer.forward(x, training=False),
                                          layer.forward(x, training=True))

    def test_maxpool_inference_invalidates_stale_cache(self, rng):
        # A training forward followed by an inference forward must not
        # leave the old argmax behind for a later backward to consume.
        layer = build(MaxPool2D(2), (2, 4, 4))
        layer.forward(rng.normal(size=(1, 2, 4, 4)), training=True)
        layer.forward(rng.normal(size=(1, 2, 4, 4)), training=False)
        with pytest.raises(LayerError):
            layer.backward(np.ones((1, 2, 2, 2)))

    def test_maxpool_backward_consumes_cache_once(self, rng):
        layer = build(MaxPool2D(2), (2, 4, 4))
        layer.forward(rng.normal(size=(1, 2, 4, 4)), training=True)
        layer.backward(np.ones((1, 2, 2, 2)))
        with pytest.raises(LayerError):
            layer.backward(np.ones((1, 2, 2, 2)))


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, LeakyReLU, Sigmoid, Tanh,
                                           Softmax])
    def test_gradients(self, layer_cls, rng):
        layer = build(layer_cls(), (6,))
        check_layer_gradients(layer, rng.normal(size=(3, 6)) + 0.1, rng,
                              rtol=1e-4, atol=1e-6)

    def test_relu_zeroes_negatives(self):
        layer = build(ReLU(), (3,))
        np.testing.assert_array_equal(
            layer.forward(np.array([[-1.0, 0.0, 2.0]])), [[0.0, 0.0, 2.0]])

    def test_leaky_relu_slope(self):
        layer = build(LeakyReLU(alpha=0.1), (2,))
        np.testing.assert_allclose(
            layer.forward(np.array([[-10.0, 10.0]])), [[-1.0, 10.0]])

    def test_sigmoid_range_and_stability(self):
        layer = build(Sigmoid(), (3,))
        y = layer.forward(np.array([[-1000.0, 0.0, 1000.0]]))
        assert np.all(np.isfinite(y))
        assert y[0, 1] == pytest.approx(0.5)

    def test_softmax_rows_normalized(self, rng):
        layer = build(Softmax(), (5,))
        y = layer.forward(rng.normal(size=(4, 5)))
        np.testing.assert_allclose(y.sum(axis=1), np.ones(4), rtol=1e-12)

    def test_leaky_relu_rejects_negative_alpha(self):
        with pytest.raises(ConfigError):
            LeakyReLU(alpha=-0.1)


class TestShapeOps:
    def test_flatten_round_trip(self, rng):
        layer = build(Flatten(), (2, 3, 4))
        x = rng.normal(size=(5, 2, 3, 4))
        y = layer.forward(x, training=True)
        assert y.shape == (5, 24)
        grad = layer.backward(y)
        np.testing.assert_array_equal(grad, x)

    def test_dropout_inference_is_identity(self, rng):
        layer = build(Dropout(0.5), (10,))
        x = rng.normal(size=(4, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_dropout_training_scales_survivors(self):
        layer = build(Dropout(0.5, seed=1), (1000,))
        x = np.ones((1, 1000))
        y = layer.forward(x, training=True)
        survivors = y[y != 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert 300 < survivors.size < 700

    def test_dropout_backward_uses_same_mask(self):
        layer = build(Dropout(0.3, seed=2), (50,))
        x = np.ones((1, 50))
        y = layer.forward(x, training=True)
        grad = layer.backward(np.ones((1, 50)))
        np.testing.assert_array_equal(grad, y)

    def test_dropout_rejects_rate_one(self):
        with pytest.raises(ConfigError):
            Dropout(1.0)


class TestBatchNorm:
    def test_1d_normalizes_batch(self, rng):
        layer = build(BatchNorm1D(), (4,))
        x = rng.normal(3.0, 2.0, size=(64, 4))
        y = layer.forward(x, training=True)
        np.testing.assert_allclose(y.mean(axis=0), np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(y.std(axis=0), np.ones(4), atol=1e-3)

    def test_1d_gradients(self, rng):
        layer = build(BatchNorm1D(), (3,))
        check_layer_gradients(layer, rng.normal(size=(6, 3)), rng,
                              rtol=1e-4, atol=1e-6)

    def test_2d_normalizes_per_channel(self, rng):
        layer = build(BatchNorm2D(), (3, 5, 5))
        x = rng.normal(1.0, 4.0, size=(16, 3, 5, 5))
        y = layer.forward(x, training=True)
        np.testing.assert_allclose(y.mean(axis=(0, 2, 3)), np.zeros(3),
                                   atol=1e-10)

    def test_inference_uses_running_stats(self, rng):
        layer = build(BatchNorm1D(momentum=0.0), (2,))
        x = rng.normal(5.0, 2.0, size=(128, 2))
        layer.forward(x, training=True)  # momentum 0: running = batch stats
        y = layer.forward(x, training=False)
        np.testing.assert_allclose(y.mean(axis=0), np.zeros(2), atol=1e-6)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigError):
            BatchNorm1D(momentum=1.0)


class TestLayerLifecycle:
    def test_double_build_rejected(self, rng):
        layer = build(Dense(3), (4,))
        with pytest.raises(LayerError):
            layer.build((4,), np.random.default_rng(0))

    def test_use_before_build_rejected(self, rng):
        with pytest.raises(LayerError):
            Dense(3).forward(rng.normal(size=(1, 4)))

    def test_parameter_count(self):
        layer = build(Conv2D(4, 3), (2, 5, 5))
        assert layer.parameter_count() == 4 * 2 * 9 + 4

    def test_state_arrays_round_trip(self, rng):
        layer = build(Dense(3), (4,))
        saved = {k: v.copy() for k, v in layer.state_arrays().items()}
        layer.weight.value += 1.0
        layer.load_state_arrays(saved)
        np.testing.assert_array_equal(layer.weight.value, saved["weight"])

    def test_load_state_shape_mismatch(self, rng):
        layer = build(Dense(3), (4,))
        with pytest.raises(LayerError):
            layer.load_state_arrays({"weight": np.zeros((2, 2)),
                                     "bias": np.zeros(3)})
