"""Numeric gradient-checking helpers shared by the layer tests."""

from __future__ import annotations

import numpy as np


def numeric_gradient(fn, x: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        high = fn()
        flat[i] = original - epsilon
        low = fn()
        flat[i] = original
        grad_flat[i] = (high - low) / (2.0 * epsilon)
    return grad


def check_layer_gradients(layer, x: np.ndarray, rng: np.random.Generator,
                          rtol: float = 1e-5, atol: float = 1e-7) -> None:
    """Verify a layer's backward pass against central differences.

    Uses the scalar objective ``sum(forward(x) * weights)`` with fixed random
    weights so every output element contributes a distinct gradient.
    """
    y = layer.forward(x, training=True)
    mix = rng.normal(size=y.shape)

    def objective() -> float:
        return float(np.sum(layer.forward(x, training=True) * mix))

    # Analytic input gradient.
    layer.zero_grad()
    layer.forward(x, training=True)
    grad_x = layer.backward(mix)
    numeric_x = numeric_gradient(objective, x)
    np.testing.assert_allclose(grad_x, numeric_x, rtol=rtol, atol=atol)

    # Analytic parameter gradients.
    for param in layer.parameters():
        layer.zero_grad()
        layer.forward(x, training=True)
        layer.backward(mix)
        analytic = param.grad.copy()
        numeric = numeric_gradient(objective, param.value)
        np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol,
                                   err_msg=f"parameter {param.name}")
