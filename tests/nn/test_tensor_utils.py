"""Tests for repro.nn.tensor_utils."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn.tensor_utils import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    one_hot,
    pad_nchw,
    softmax,
)


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(28, 3, 1, 0) == 26
        assert conv_output_size(28, 3, 1, 1) == 28
        assert conv_output_size(32, 5, 2, 0) == 14

    def test_rejects_oversized_kernel(self):
        with pytest.raises(ShapeError):
            conv_output_size(4, 7, 1, 0)


class TestPad:
    def test_zero_padding_noop(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        assert pad_nchw(x, 0) is x

    def test_padding_shape_and_content(self, rng):
        x = rng.normal(size=(1, 2, 3, 3))
        padded = pad_nchw(x, 2)
        assert padded.shape == (1, 2, 7, 7)
        np.testing.assert_array_equal(padded[:, :, 2:-2, 2:-2], x)
        assert padded[0, 0, 0, 0] == 0.0

    def test_rejects_negative(self, rng):
        with pytest.raises(ShapeError):
            pad_nchw(rng.normal(size=(1, 1, 2, 2)), -1)


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 3, 1, 0)
        assert cols.shape == (2 * 6 * 6, 3 * 9)

    def test_patch_contents_match_manual_extraction(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        cols = im2col(x, 3, 3, 1, 0)
        # First row must be the top-left patch flattened channel-major.
        expected = x[0, :, 0:3, 0:3].reshape(-1)
        np.testing.assert_allclose(cols[0], expected)
        # Row for output position (1, 2).
        expected = x[0, :, 1:4, 2:5].reshape(-1)
        np.testing.assert_allclose(cols[1 * 3 + 2], expected)

    def test_stride_and_padding(self, rng):
        x = rng.normal(size=(1, 1, 6, 6))
        cols = im2col(x, 3, 3, 2, 1)
        assert cols.shape == (3 * 3, 9)

    def test_rejects_non_4d(self, rng):
        with pytest.raises(ShapeError):
            im2col(rng.normal(size=(3, 8, 8)), 3, 3, 1, 0)

    def test_pointwise_fast_path_matches_general_path(self, rng):
        # 1x1 kernel, stride 1 takes the transpose/reshape shortcut; it
        # must produce exactly the rows the strided gather would.
        x = rng.normal(size=(2, 3, 4, 5))
        cols = im2col(x, 1, 1, 1, 0)
        assert cols.shape == (2 * 4 * 5, 3)
        expected = x.transpose(0, 2, 3, 1).reshape(-1, 3)
        np.testing.assert_array_equal(cols, expected)
        assert cols.flags["C_CONTIGUOUS"]
        assert cols.flags["WRITEABLE"]

    def test_pointwise_fast_path_respects_padding(self, rng):
        x = rng.normal(size=(1, 2, 3, 3))
        cols = im2col(x, 1, 1, 1, 1)
        assert cols.shape == (5 * 5, 2)
        np.testing.assert_array_equal(cols[0], [0.0, 0.0])  # padded corner

    def test_output_is_contiguous_and_writable(self, rng):
        cols = im2col(rng.normal(size=(2, 3, 8, 8)), 3, 3, 2, 1)
        assert cols.flags["C_CONTIGUOUS"]
        assert cols.flags["WRITEABLE"]

    def test_conv_via_im2col_matches_direct_loop(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(4, 2, 3, 3))
        cols = im2col(x, 3, 3, 1, 0)
        fast = (cols @ w.reshape(4, -1).T).reshape(4, 4, 4, order="C")
        slow = np.zeros((4, 4, 4))
        for f in range(4):
            for i in range(4):
                for j in range(4):
                    slow[i, j, f] = np.sum(x[0, :, i:i + 3, j:j + 3] * w[f])
        np.testing.assert_allclose(fast.reshape(16, 4),
                                   slow.reshape(16, 4), rtol=1e-10)


class TestCol2Im:
    def test_adjoint_property(self, rng):
        # col2im is the transpose of im2col: <im2col(x), y> == <x, col2im(y)>.
        x = rng.normal(size=(2, 3, 7, 7))
        cols = im2col(x, 3, 3, 2, 1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, 3, 3, 2, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_rejects_wrong_shape(self, rng):
        with pytest.raises(ShapeError):
            col2im(rng.normal(size=(5, 5)), (1, 1, 6, 6), 3, 3, 1, 0)

    @pytest.mark.parametrize("x_shape,kernel,stride,padding", [
        ((2, 3, 8, 8), 2, 2, 0),    # pooling gradient: stride == kernel
        ((1, 2, 9, 9), 2, 3, 0),    # stride > kernel leaves untouched gaps
        ((2, 1, 10, 10), 3, 3, 1),  # non-overlapping with padding
        ((1, 4, 7, 7), 1, 2, 0),    # 1x1 kernel, strided
        ((2, 2, 6, 6), 2, 2, 2),    # padding wider than the coverage
    ])
    def test_nonoverlapping_fast_path_matches_general(self, rng, x_shape,
                                                      kernel, stride,
                                                      padding):
        # stride >= kernel takes the single-reshape scatter; it must agree
        # bit for bit with the strided-accumulation reference.
        from repro.nn.tensor_utils import (_fold_accumulate, conv_output_size)
        n, c, h, w = x_shape
        out_h = conv_output_size(h, kernel, stride, padding)
        out_w = conv_output_size(w, kernel, stride, padding)
        cols = rng.normal(size=(n * out_h * out_w, c * kernel * kernel))
        fast = col2im(cols, x_shape, kernel, kernel, stride, padding)
        patches = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(
            0, 3, 4, 5, 1, 2)
        general = _fold_accumulate(patches, x_shape, kernel, kernel, stride,
                                   padding, cols.dtype)
        if padding:
            general = general[:, :, padding:-padding, padding:-padding]
        np.testing.assert_array_equal(fast, general)

    def test_overlapping_still_accumulates(self, rng):
        # stride < kernel must keep summing overlapping contributions.
        cols = np.ones((1 * 3 * 3, 1 * 2 * 2))
        out = col2im(cols, (1, 1, 4, 4), 2, 2, 1, 0)
        # Center positions are covered by four windows.
        assert out[0, 0, 1, 1] == 4.0
        assert out[0, 0, 0, 0] == 1.0


class TestOneHot:
    def test_encoding(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([0, 3]), 3)

    def test_rejects_matrix_labels(self):
        with pytest.raises(ShapeError):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_default_dtype_is_float64(self):
        assert one_hot(np.array([0, 1]), 2).dtype == np.float64

    def test_dtype_parameter(self):
        out = one_hot(np.array([0, 2, 1]), 3, dtype=np.float32)
        assert out.dtype == np.float32
        np.testing.assert_array_equal(
            out, np.array([[1, 0, 0], [0, 0, 1], [0, 1, 0]], dtype=np.float32))


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(10, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(10), rtol=1e-12)
        assert np.all(probs >= 0)

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(4, 5))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0),
                                   rtol=1e-10)

    def test_extreme_values_stable(self):
        probs = softmax(np.array([[1000.0, 0.0, -1000.0]]))
        assert np.all(np.isfinite(probs))
        assert probs[0, 0] == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=2,
                    max_size=10))
    @settings(max_examples=50)
    def test_property_log_softmax_consistent(self, logits):
        arr = np.asarray([logits])
        np.testing.assert_allclose(np.exp(log_softmax(arr)), softmax(arr),
                                   rtol=1e-9, atol=1e-12)
