"""Tests for repro.nn.schedules and the trainer integration."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import (
    Adam,
    ConstantSchedule,
    CosineDecay,
    Dense,
    ExponentialDecay,
    ReLU,
    Sequential,
    StepDecay,
    Trainer,
    WarmupSchedule,
)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.01)
        assert schedule(0) == schedule(100) == 0.01

    def test_step_decay(self):
        schedule = StepDecay(1.0, factor=0.1, step_epochs=3)
        assert schedule(0) == 1.0
        assert schedule(2) == 1.0
        assert schedule(3) == pytest.approx(0.1)
        assert schedule(6) == pytest.approx(0.01)

    def test_exponential_decay(self):
        schedule = ExponentialDecay(0.5, rate=0.1)
        assert schedule(0) == 0.5
        assert schedule(10) == pytest.approx(0.5 * math.exp(-1.0))

    def test_cosine_endpoints(self):
        schedule = CosineDecay(1.0, total_epochs=10, floor=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(10) == pytest.approx(0.1)
        assert schedule(5) == pytest.approx(0.55)
        assert schedule(50) == pytest.approx(0.1)  # clamps past the horizon

    def test_cosine_monotone_decreasing(self):
        schedule = CosineDecay(0.3, total_epochs=20)
        values = [schedule(e) for e in range(21)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_warmup_ramps_then_delegates(self):
        schedule = WarmupSchedule(ConstantSchedule(1.0), warmup_epochs=4)
        ramp = [schedule(e) for e in range(4)]
        assert all(a < b for a, b in zip(ramp, ramp[1:]))
        assert all(v < 1.0 for v in ramp)
        assert schedule(4) == 1.0
        assert schedule(9) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ConstantSchedule(0.0)
        with pytest.raises(ConfigError):
            StepDecay(0.1, factor=0.0)
        with pytest.raises(ConfigError):
            CosineDecay(0.1, total_epochs=0)
        with pytest.raises(ConfigError):
            CosineDecay(0.1, total_epochs=5, floor=0.2)
        with pytest.raises(ConfigError):
            WarmupSchedule(ConstantSchedule(0.1), warmup_epochs=0)
        with pytest.raises(ConfigError):
            ConstantSchedule(0.1)(-1)


class TestTrainerIntegration:
    def _problem(self, rng):
        x = np.concatenate([rng.normal(-2, 0.5, (30, 4)),
                            rng.normal(2, 0.5, (30, 4))])
        y = np.concatenate([np.zeros(30, dtype=int), np.ones(30, dtype=int)])
        return x, y

    def test_schedule_applied_each_epoch(self, rng):
        x, y = self._problem(rng)
        model = Sequential([Dense(8), ReLU(), Dense(2)]).build((4,))
        seen = []

        def recording_schedule(epoch):
            rate = 0.01 * (0.5 ** epoch)
            seen.append(rate)
            return rate

        trainer = Trainer(model, optimizer=Adam(1.0),
                          schedule=recording_schedule)
        trainer.fit(x, y, epochs=3)
        assert seen == [0.01, 0.005, 0.0025]
        assert trainer.optimizer.learning_rate == 0.0025

    def test_training_with_cosine_still_learns(self, rng):
        x, y = self._problem(rng)
        model = Sequential([Dense(8), ReLU(), Dense(2)]).build((4,))
        trainer = Trainer(model, optimizer=Adam(0.05),
                          schedule=CosineDecay(0.05, total_epochs=8),
                          batch_size=16)
        history = trainer.fit(x, y, epochs=8)
        assert history.train_accuracy[-1] > 0.95
