"""Tests for repro.nn.layers.recurrent.GRU."""

import numpy as np
import pytest

from repro.errors import ConfigError, LayerError, ShapeError
from repro.nn import GRU, Adam, Dense, Sequential, Trainer

from .gradcheck import check_layer_gradients


def build(layer, shape, seed=0):
    layer.build(shape, np.random.default_rng(seed))
    return layer


class TestForward:
    def test_output_shape(self, rng):
        layer = build(GRU(6), (5, 3))
        assert layer.output_shape == (6,)
        assert layer.forward(rng.normal(size=(4, 5, 3))).shape == (4, 6)

    def test_recurrence_matches_manual_unroll(self, rng):
        layer = build(GRU(3), (2, 2))
        x = rng.normal(size=(1, 2, 2))
        y = layer.forward(x)

        def sigmoid(v):
            return 1.0 / (1.0 + np.exp(-v))

        units = 3
        w_x, w_h, b = layer.w_x.value, layer.w_h.value, layer.bias.value
        h = np.zeros(units)
        for t in range(2):
            gx = x[0, t] @ w_x + b
            gh = h @ w_h
            z = sigmoid(gx[:units] + gh[:units])
            r = sigmoid(gx[units:2 * units] + gh[units:2 * units])
            c = np.tanh(gx[2 * units:] + (r * h) @ w_h[:, 2 * units:])
            h = (1.0 - z) * h + z * c
        np.testing.assert_allclose(y[0], h, rtol=1e-12)

    def test_state_stays_bounded(self, rng):
        layer = build(GRU(8), (50, 2))
        y = layer.forward(rng.normal(size=(3, 50, 2)) * 5.0)
        assert np.all(np.abs(y) <= 1.0 + 1e-9)  # convex blend of tanh values

    def test_no_exact_zeros_in_state(self, rng):
        # The side-channel-relevant property: GRU states are never exactly
        # zero, so sparsity-aware kernels have nothing to skip.
        layer = build(GRU(12), (10, 3))
        y = layer.forward(rng.normal(size=(8, 10, 3)))
        assert np.all(y != 0.0)

    def test_rejects_bad_shapes_and_config(self, rng):
        with pytest.raises(ConfigError):
            GRU(0)
        with pytest.raises(ShapeError):
            build(GRU(4), (5,))
        layer = build(GRU(4), (5, 3))
        with pytest.raises(ShapeError):
            layer.forward(rng.normal(size=(2, 5, 4)))


class TestBackward:
    def test_gradients_numeric(self, rng):
        layer = build(GRU(3), (4, 2))
        check_layer_gradients(layer, rng.normal(size=(2, 4, 2)), rng,
                              rtol=3e-4, atol=1e-6)

    def test_backward_requires_forward(self, rng):
        layer = build(GRU(4), (5, 3))
        with pytest.raises(LayerError):
            layer.backward(rng.normal(size=(2, 4)))


class TestTrainingAndSerialization:
    def test_learns_sequence_classification(self):
        from repro.datasets import SyntheticSensorTraces
        dataset = SyntheticSensorTraces().generate(30, seed=3,
                                                   categories=[0, 2])
        model = Sequential([GRU(12), Dense(6)]).build((32, 3), seed=1)
        trainer = Trainer(model, optimizer=Adam(0.01), batch_size=16)
        history = trainer.fit(dataset.images, dataset.labels, epochs=10)
        assert history.train_accuracy[-1] > 0.9

    def test_save_load_round_trip(self, tmp_path, rng):
        from repro.nn import load_model, save_model
        model = Sequential([GRU(5), Dense(3)]).build((6, 2), seed=2)
        x = rng.normal(size=(3, 6, 2))
        expected = model.forward(x)
        loaded = load_model(save_model(model, tmp_path / "gru.npz"))
        np.testing.assert_allclose(loaded.forward(x), expected, rtol=1e-12)


class TestSideChannelProperty:
    def test_traced_footprint_is_input_independent(self, rng):
        from repro.trace import TracedInference
        from repro.uarch import CpuModel

        from repro.uarch import HpcEvent

        model = Sequential([GRU(8, name="gru"),
                            Dense(4, name="fc")]).build((10, 3), seed=0)
        traced = TracedInference(model)
        cpu = CpuModel(seed=0)
        readouts = [traced.run(rng.normal(size=(10, 3)), cpu)[1]
                    for _ in range(3)]
        # The memory footprint and work are input-independent; only the
        # final argmax's few branch *outcomes* (hence branch-misses and the
        # cycles they cost) can differ.
        for event in (HpcEvent.CACHE_MISSES, HpcEvent.CACHE_REFERENCES,
                      HpcEvent.BRANCHES, HpcEvent.INSTRUCTIONS):
            values = {counts[event] for counts in readouts}
            assert len(values) == 1
