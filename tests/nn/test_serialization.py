"""Tests for repro.nn.serialization."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.nn import (
    BatchNorm1D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    clone_model,
    load_model,
    save_model,
)


def build_rich_model(seed=3):
    return Sequential([
        Conv2D(4, 3, name="conv"), ReLU(), MaxPool2D(2), Flatten(),
        Dense(12, name="hidden"), BatchNorm1D(), ReLU(), Dropout(0.2),
        Dense(5, name="out"),
    ], name="rich").build((1, 10, 10), seed=seed)


class TestSaveLoad:
    def test_round_trip_preserves_outputs(self, tmp_path, rng):
        model = build_rich_model()
        x = rng.normal(size=(4, 1, 10, 10))
        # Exercise batch-norm running stats so they must round-trip too.
        model.forward(x, training=True)
        expected = model.forward(x)
        path = save_model(model, tmp_path / "model.npz")
        loaded = load_model(path)
        np.testing.assert_allclose(loaded.forward(x), expected, rtol=1e-12)

    def test_round_trip_preserves_architecture(self, tmp_path):
        model = build_rich_model()
        loaded = load_model(save_model(model, tmp_path / "m.npz"))
        assert loaded.name == "rich"
        assert loaded.input_shape == model.input_shape
        assert [type(l).__name__ for l in loaded.layers] == [
            type(l).__name__ for l in model.layers]

    def test_suffix_enforced(self, tmp_path):
        model = build_rich_model()
        path = save_model(model, tmp_path / "weird.bin")
        assert path.suffix == ".npz"

    def test_unbuilt_model_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save_model(Sequential([Dense(3)]), tmp_path / "m.npz")

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            load_model(tmp_path / "absent.npz")

    def test_non_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(SerializationError):
            load_model(path)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"not a zip at all")
        with pytest.raises(SerializationError):
            load_model(path)


class TestClone:
    def test_clone_is_equal_but_independent(self, rng):
        model = build_rich_model()
        x = rng.normal(size=(2, 1, 10, 10))
        clone = clone_model(model)
        np.testing.assert_allclose(clone.forward(x), model.forward(x))
        clone.parameters()[0].value += 1.0
        assert not np.allclose(clone.forward(x), model.forward(x))

    def test_clone_requires_built(self):
        with pytest.raises(SerializationError):
            clone_model(Sequential([Dense(2)]))
