"""Tests for repro.nn.initializers."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.initializers import (
    constant,
    get_initializer,
    glorot_uniform,
    he_normal,
    normal,
    ones,
    uniform,
    zeros,
)


class TestBasics:
    def test_zeros_and_ones(self, rng):
        assert np.all(zeros((3, 4), rng) == 0.0)
        assert np.all(ones((5,), rng) == 1.0)

    def test_constant(self, rng):
        assert np.all(constant(2.5)((2, 2), rng) == 2.5)

    def test_normal_scale(self, rng):
        values = normal(std=0.5)((10000,), rng)
        assert float(np.std(values)) == pytest.approx(0.5, rel=0.05)

    def test_uniform_bounds(self, rng):
        values = uniform(limit=0.1)((10000,), rng)
        assert float(values.min()) >= -0.1
        assert float(values.max()) <= 0.1

    def test_rejects_bad_scales(self):
        with pytest.raises(ConfigError):
            normal(std=0.0)
        with pytest.raises(ConfigError):
            uniform(limit=-1.0)


class TestFanScaled:
    def test_he_normal_dense_variance(self, rng):
        values = he_normal((400, 300), rng)
        assert float(np.std(values)) == pytest.approx(math.sqrt(2.0 / 400),
                                                      rel=0.05)

    def test_he_normal_conv_fan_in(self, rng):
        values = he_normal((16, 8, 3, 3), rng)
        assert float(np.std(values)) == pytest.approx(
            math.sqrt(2.0 / (8 * 9)), rel=0.05)

    def test_glorot_uniform_limit(self, rng):
        values = glorot_uniform((200, 100), rng)
        limit = math.sqrt(6.0 / 300)
        assert float(np.abs(values).max()) <= limit

    def test_rejects_weird_shapes(self, rng):
        with pytest.raises(ConfigError):
            he_normal((4, 4, 4), rng)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_initializer("he_normal") is he_normal

    def test_callable_passthrough(self):
        fn = constant(1.0)
        assert get_initializer(fn) is fn

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            get_initializer("lecun")
