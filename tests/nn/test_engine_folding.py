"""BatchNorm-folding coverage for the compiled inference engine.

Folding collapses an inference-mode BatchNorm into the preceding
Conv2D/Dense weights and bias; these tests pin the arithmetic against the
unfused reference across dtypes, non-default hyperparameters, trained
running statistics, and a serialize/reload round trip.
"""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    Trainer,
    load_model,
    save_model,
)
from repro.nn.engine import compile_model

TOLERANCE = 1e-9


def conv_bn_model(momentum=0.9, epsilon=1e-5, seed=3):
    return Sequential([
        Conv2D(6, 3, name="conv"),
        BatchNorm2D(momentum=momentum, epsilon=epsilon, name="bn2"),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(8, name="hidden"),
        BatchNorm1D(momentum=momentum, epsilon=epsilon, name="bn1"),
        ReLU(),
        Dense(4, name="out"),
    ], name="bn-mix").build((1, 12, 12), seed=seed)


def warm_up_running_stats(model, rng, batches=5):
    """Drive training-mode forwards so the running stats move off init."""
    for _ in range(batches):
        model.forward(rng.normal(loc=0.3, scale=1.7, size=(16, 1, 12, 12)),
                      training=True)


class TestFolding:
    def test_both_batchnorms_fold(self, rng):
        model = conv_bn_model()
        warm_up_running_stats(model, rng)
        plan = compile_model(model)
        assert plan.stats.folded_batchnorm == 2
        x = rng.normal(size=(4, 1, 12, 12))
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_folding_matches_across_input_dtypes(self, dtype, rng):
        model = conv_bn_model()
        warm_up_running_stats(model, rng)
        plan = compile_model(model)
        x = rng.normal(size=(3, 1, 12, 12)).astype(dtype)
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    @pytest.mark.parametrize("momentum,epsilon", [(0.8, 1e-3), (0.0, 0.5),
                                                  (0.99, 1e-7)])
    def test_non_default_hyperparameters(self, momentum, epsilon, rng):
        model = conv_bn_model(momentum=momentum, epsilon=epsilon)
        warm_up_running_stats(model, rng)
        plan = compile_model(model)
        assert plan.stats.folded_batchnorm == 2
        x = rng.normal(size=(4, 1, 12, 12))
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_folding_after_training(self, rng):
        model = conv_bn_model()
        xs = rng.normal(size=(48, 1, 12, 12))
        ys = rng.integers(0, 4, size=48)
        Trainer(model, optimizer=Adam(0.01), batch_size=16,
                shuffle_seed=1).fit(xs, ys, epochs=2)
        plan = compile_model(model)
        x = rng.normal(size=(5, 1, 12, 12))
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_serialized_then_reloaded_model_folds(self, tmp_path, rng):
        model = conv_bn_model(momentum=0.8, epsilon=1e-3)
        warm_up_running_stats(model, rng)
        path = save_model(model, tmp_path / "bn-mix.npz")
        reloaded = load_model(path)
        plan = compile_model(reloaded)
        assert plan.stats.folded_batchnorm == 2
        x = rng.normal(size=(4, 1, 12, 12))
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_conv_without_bias_still_folds(self, rng):
        model = Sequential([
            Conv2D(4, 3, use_bias=False, name="conv"),
            BatchNorm2D(name="bn"),
            ReLU(),
            Flatten(),
            Dense(3),
        ]).build((1, 8, 8), seed=9)
        warmup = rng.normal(size=(16, 1, 8, 8))
        model.forward(warmup, training=True)
        plan = compile_model(model)
        assert plan.stats.folded_batchnorm == 1
        x = rng.normal(size=(3, 1, 8, 8))
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_preserve_mode_replicates_batchnorm_bitwise(self, rng):
        model = conv_bn_model()
        warm_up_running_stats(model, rng)
        plan = compile_model(model, preserve_layers=True)
        assert plan.stats.folded_batchnorm == 0
        x = rng.normal(size=(2, 1, 12, 12))
        np.testing.assert_array_equal(plan.forward(x),
                                      model.predict_logits(x))
