"""Tests for repro.nn.model.Sequential."""

import numpy as np
import pytest

from repro.errors import LayerError, ShapeError
from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    Softmax,
)


def small_model(seed=0):
    return Sequential([
        Conv2D(4, 3), ReLU(), MaxPool2D(2), Flatten(), Dense(10),
    ]).build((1, 8, 8), seed=seed)


class TestBuild:
    def test_shapes_propagate(self):
        model = small_model()
        assert model.input_shape == (1, 8, 8)
        assert model.layers[0].output_shape == (4, 6, 6)
        assert model.layers[2].output_shape == (4, 3, 3)
        assert model.output_shape == (10,)

    def test_empty_model_rejected(self):
        with pytest.raises(LayerError):
            Sequential().build((1, 8, 8))

    def test_double_build_rejected(self):
        model = small_model()
        with pytest.raises(LayerError):
            model.build((1, 8, 8))

    def test_add_after_build_rejected(self):
        model = small_model()
        with pytest.raises(LayerError):
            model.add(Dense(2))

    def test_non_layer_rejected(self):
        with pytest.raises(LayerError):
            Sequential().add("not a layer")

    def test_duplicate_names_uniquified(self):
        model = Sequential([ReLU(name="act"), ReLU(name="act")])
        model.build((4,))
        names = [layer.name for layer in model.layers]
        assert len(set(names)) == 2

    def test_deterministic_initialization(self):
        a = small_model(seed=42)
        b = small_model(seed=42)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.value, pb.value)
        c = small_model(seed=43)
        assert any(not np.array_equal(pa.value, pc.value)
                   for pa, pc in zip(a.parameters(), c.parameters()))


class TestInference:
    def test_forward_shape(self, rng):
        model = small_model()
        y = model.forward(rng.normal(size=(5, 1, 8, 8)))
        assert y.shape == (5, 10)

    def test_predict_returns_labels(self, rng):
        model = small_model()
        labels = model.predict(rng.normal(size=(7, 1, 8, 8)))
        assert labels.shape == (7,)
        assert labels.dtype.kind == "i"
        assert np.all((labels >= 0) & (labels < 10))

    def test_predict_proba_rows_sum_to_one(self, rng):
        model = small_model()
        probs = model.predict_proba(rng.normal(size=(3, 1, 8, 8)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(3), rtol=1e-10)

    def test_predict_proba_respects_terminal_softmax(self, rng):
        model = Sequential([Flatten(), Dense(5), Softmax()]).build((2, 2))
        probs = model.predict_proba(rng.normal(size=(3, 2, 2)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(3), rtol=1e-10)

    def test_classify_one(self, rng):
        model = small_model()
        sample = rng.normal(size=(1, 8, 8))
        assert model.classify_one(sample) == model.predict(sample[None])[0]

    def test_classify_one_rejects_batched(self, rng):
        model = small_model()
        with pytest.raises(ShapeError):
            model.classify_one(rng.normal(size=(2, 1, 8, 8)))

    def test_forward_rejects_wrong_shape(self, rng):
        model = small_model()
        with pytest.raises(ShapeError):
            model.forward(rng.normal(size=(1, 1, 9, 9)))

    def test_unbuilt_model_rejected(self, rng):
        model = Sequential([Dense(3)])
        with pytest.raises(LayerError):
            model.forward(rng.normal(size=(1, 4)))


class TestIntrospection:
    def test_parameter_count(self):
        model = small_model()
        conv = 4 * 1 * 9 + 4
        dense = 36 * 10 + 10
        assert model.parameter_count() == conv + dense

    def test_zero_grad(self, rng):
        model = small_model()
        model.forward(rng.normal(size=(2, 1, 8, 8)), training=True)
        model.backward(rng.normal(size=(2, 10)))
        assert any(np.any(p.grad != 0) for p in model.parameters())
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())

    def test_summary_lists_layers(self):
        model = small_model()
        text = model.summary()
        for token in ("Conv2D", "Dense", "total parameters"):
            assert token in text

    def test_fingerprint_changes_with_weights(self):
        model = small_model()
        before = model.weights_fingerprint()
        model.parameters()[0].value += 1.0
        assert model.weights_fingerprint() != before

    def test_fingerprint_stable(self):
        assert (small_model(seed=5).weights_fingerprint()
                == small_model(seed=5).weights_fingerprint())
