"""Tests for repro.nn.metrics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.metrics import (
    accuracy,
    classification_report,
    confusion_matrix,
    per_class_accuracy,
    top_k_accuracy,
)


class TestAccuracy:
    def test_exact(self):
        assert accuracy([0, 1, 2, 1], [0, 1, 1, 1]) == 0.75

    def test_rejects_mismatch(self):
        with pytest.raises(ShapeError):
            accuracy([0, 1], [0])

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            accuracy([], [])


class TestConfusionMatrix:
    def test_layout_true_rows_pred_columns(self):
        matrix = confusion_matrix([0, 0, 1], [0, 1, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 1]])

    def test_explicit_class_count(self):
        matrix = confusion_matrix([0], [0], num_classes=4)
        assert matrix.shape == (4, 4)
        assert matrix.sum() == 1

    def test_trace_equals_correct_count(self, rng):
        y_true = rng.integers(0, 5, size=50)
        y_pred = rng.integers(0, 5, size=50)
        matrix = confusion_matrix(y_true, y_pred, num_classes=5)
        assert np.trace(matrix) == int(np.sum(y_true == y_pred))


class TestPerClass:
    def test_recall_per_class(self):
        recalls = per_class_accuracy([0, 0, 1, 1], [0, 1, 1, 1])
        assert recalls == [0.5, 1.0]

    def test_absent_class_reports_zero(self):
        recalls = per_class_accuracy([0, 0], [0, 0], num_classes=3)
        assert recalls[2] == 0.0


class TestTopK:
    def test_top1_equals_accuracy(self, rng):
        probs = rng.random((20, 4))
        labels = rng.integers(0, 4, size=20)
        top1 = top_k_accuracy(labels, probs, k=1)
        assert top1 == accuracy(labels, np.argmax(probs, axis=1))

    def test_topk_monotone_in_k(self, rng):
        probs = rng.random((30, 5))
        labels = rng.integers(0, 5, size=30)
        values = [top_k_accuracy(labels, probs, k=k) for k in (1, 2, 5)]
        assert values[0] <= values[1] <= values[2] == 1.0

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ShapeError):
            top_k_accuracy([0], rng.random((1, 3)), k=4)


class TestReport:
    def test_contains_all_pieces(self):
        report = classification_report([0, 1, 1], [0, 1, 0])
        assert report["accuracy"] == pytest.approx(2 / 3)
        assert report["support"] == [1, 2]
        assert report["confusion_matrix"].shape == (2, 2)
        assert len(report["per_class_accuracy"]) == 2
