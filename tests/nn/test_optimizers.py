"""Tests for repro.nn.optimizers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.layers.base import Parameter
from repro.nn.optimizers import SGD, Adam, RMSProp


def quadratic_parameter(start=5.0):
    """A parameter minimizing f(w) = w^2 (gradient 2w)."""
    return Parameter("w", np.array([start]))


def descend(optimizer, param, steps):
    for _ in range(steps):
        param.grad = 2.0 * param.value
        optimizer.step([param])
    return float(param.value[0])


class TestSGD:
    def test_plain_step_math(self):
        param = Parameter("w", np.array([1.0, 2.0]))
        param.grad = np.array([0.5, -0.5])
        SGD(learning_rate=0.1).step([param])
        np.testing.assert_allclose(param.value, [0.95, 2.05])

    def test_converges_on_quadratic(self):
        assert abs(descend(SGD(0.1), quadratic_parameter(), 100)) < 1e-6

    def test_momentum_accelerates(self):
        plain = abs(descend(SGD(0.01), quadratic_parameter(), 30))
        momentum = abs(descend(SGD(0.01, momentum=0.9),
                               quadratic_parameter(), 30))
        assert momentum < plain

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ConfigError):
            SGD(0.1, nesterov=True)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter("w", np.array([10.0]))
        param.grad = np.array([0.0])
        SGD(0.1, weight_decay=0.5).step([param])
        assert param.value[0] < 10.0

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ConfigError):
            SGD(0.0)
        with pytest.raises(ConfigError):
            SGD(0.1, momentum=1.0)
        with pytest.raises(ConfigError):
            SGD(0.1, weight_decay=-1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert abs(descend(Adam(0.2), quadratic_parameter(), 200)) < 1e-3

    def test_first_step_magnitude_is_learning_rate(self):
        # With bias correction, the first Adam step is ~lr in the gradient
        # direction regardless of gradient scale.
        param = Parameter("w", np.array([0.0]))
        param.grad = np.array([1234.5])
        Adam(learning_rate=0.01).step([param])
        assert param.value[0] == pytest.approx(-0.01, rel=1e-6)

    def test_per_parameter_state_is_independent(self):
        a = Parameter("a", np.array([1.0]))
        b = Parameter("b", np.array([1.0]))
        opt = Adam(0.1)
        a.grad = np.array([1.0])
        b.grad = np.array([0.0])
        opt.step([a, b])
        assert a.value[0] != 1.0
        assert b.value[0] == 1.0

    def test_rejects_bad_betas(self):
        with pytest.raises(ConfigError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigError):
            Adam(beta2=-0.1)
        with pytest.raises(ConfigError):
            Adam(epsilon=0.0)


class TestRMSProp:
    def test_converges_on_quadratic(self):
        assert abs(descend(RMSProp(0.05), quadratic_parameter(), 300)) < 0.05

    def test_momentum_variant_converges(self):
        final = descend(RMSProp(0.01, momentum=0.5), quadratic_parameter(),
                        300)
        assert abs(final) < 0.5

    def test_rejects_bad_rho(self):
        with pytest.raises(ConfigError):
            RMSProp(rho=1.0)


# ----------------------------------------------------------------------
# In-place updates vs the textbook allocating formulations.
#
# The compiled training engine aliases parameter storage and relies on
# every optimizer being (a) strictly in-place and (b) bitwise identical
# to the allocating math it replaced.  The references below spell out
# that math with the same operation order and associativity.
# ----------------------------------------------------------------------


def reference_sgd(opt, value, grad, state):
    if opt.weight_decay:
        grad = grad + value * opt.weight_decay
    if opt.momentum:
        velocity = state.setdefault("velocity", np.zeros_like(value))
        work = grad * opt.learning_rate
        velocity[...] = velocity * opt.momentum - work
        if opt.nesterov:
            return value + (velocity * opt.momentum - work)
        return value + velocity
    return value - grad * opt.learning_rate


def reference_adam(opt, value, grad, state, t):
    m = state.setdefault("m", np.zeros_like(value))
    v = state.setdefault("v", np.zeros_like(value))
    m[...] = m * opt.beta1 + grad * (1.0 - opt.beta1)
    v[...] = v * opt.beta2 + (grad * (1.0 - opt.beta2)) * grad
    update = ((m / (1.0 - opt.beta1 ** t)) * opt.learning_rate
              / (np.sqrt(v / (1.0 - opt.beta2 ** t)) + opt.epsilon))
    if opt.weight_decay:
        value = value - value * (opt.learning_rate * opt.weight_decay)
    return value - update


def reference_rmsprop(opt, value, grad, state):
    avg = state.setdefault("avg", np.zeros_like(value))
    avg[...] = avg * opt.rho + (grad * grad) * (1.0 - opt.rho)
    update = (grad * opt.learning_rate) / (np.sqrt(avg) + opt.epsilon)
    if opt.momentum:
        velocity = state.setdefault("velocity", np.zeros_like(value))
        velocity[...] = velocity * opt.momentum + update
        return value - velocity
    return value - update


OPTIMIZER_CASES = [
    ("sgd-plain", lambda: SGD(0.05), reference_sgd),
    ("sgd-momentum", lambda: SGD(0.05, momentum=0.9), reference_sgd),
    ("sgd-nesterov",
     lambda: SGD(0.05, momentum=0.9, nesterov=True), reference_sgd),
    ("sgd-decay",
     lambda: SGD(0.05, momentum=0.9, weight_decay=1e-3), reference_sgd),
    ("adam", lambda: Adam(0.002), reference_adam),
    ("adam-decay", lambda: Adam(0.002, weight_decay=1e-2), reference_adam),
    ("rmsprop", lambda: RMSProp(0.003), reference_rmsprop),
    ("rmsprop-momentum",
     lambda: RMSProp(0.003, momentum=0.5), reference_rmsprop),
]


class TestInPlaceEquivalence:
    @pytest.mark.parametrize("name,factory,reference",
                             OPTIMIZER_CASES,
                             ids=[case[0] for case in OPTIMIZER_CASES])
    def test_matches_allocating_reference_bitwise(self, name, factory,
                                                  reference, rng):
        params = [Parameter("w", rng.normal(size=(7, 5))),
                  Parameter("b", rng.normal(size=5))]
        expected = [p.value.copy() for p in params]
        states = [{} for _ in params]
        optimizer = factory()
        for t in range(1, 13):
            grads = [rng.normal(size=p.value.shape) for p in params]
            for p, g in zip(params, grads):
                p.grad = g
            optimizer.step(params)
            for i, (value, grad) in enumerate(zip(expected, grads)):
                if reference is reference_adam:
                    expected[i] = reference(optimizer, value, grad,
                                            states[i], t)
                else:
                    expected[i] = reference(optimizer, value, grad,
                                            states[i])
        for p, value in zip(params, expected):
            np.testing.assert_array_equal(p.value, value, err_msg=name)

    @pytest.mark.parametrize("factory", [lambda: SGD(0.05, momentum=0.9),
                                         lambda: Adam(0.002),
                                         lambda: RMSProp(0.003)])
    def test_updates_never_rebind_storage(self, factory, rng):
        # The compiled train plan aliases param.value; a step that swaps
        # the underlying array would silently detach the model.
        param = Parameter("w", rng.normal(size=(4, 3)))
        storage = param.value
        optimizer = factory()
        for _ in range(3):
            param.grad = rng.normal(size=(4, 3))
            optimizer.step([param])
        assert param.value is storage


class TestStateDict:
    def run_steps(self, optimizer, params, grads):
        for step_grads in grads:
            for p, g in zip(params, step_grads):
                p.grad = g
            optimizer.step(params)

    @pytest.mark.parametrize("factory",
                             [lambda: SGD(0.05, momentum=0.9, nesterov=True),
                              lambda: Adam(0.002),
                              lambda: RMSProp(0.003, momentum=0.5)],
                             ids=["sgd", "adam", "rmsprop"])
    def test_round_trip_resumes_bitwise(self, factory, rng):
        params = [Parameter("w", rng.normal(size=(6, 4)))]
        grads = [[rng.normal(size=(6, 4))] for _ in range(8)]
        optimizer = factory()
        self.run_steps(optimizer, params, grads[:4])
        snapshot = optimizer.state_dict(params)
        midpoint = params[0].value.copy()
        assert snapshot["iterations"] == 4

        self.run_steps(optimizer, params, grads[4:])
        final = params[0].value.copy()

        # A fresh optimizer restored from the snapshot must replay the
        # remaining steps onto the exact same trajectory.  The
        # ``iterations`` restore matters for Adam's bias correction.
        resumed = [Parameter("w", midpoint.copy())]
        restored = factory()
        restored.load_state_dict(resumed, snapshot)
        assert restored.iterations == 4
        self.run_steps(restored, resumed, grads[4:])
        np.testing.assert_array_equal(resumed[0].value, final)

    def test_load_rejects_wrong_parameter_count(self):
        param = Parameter("w", np.zeros(3))
        optimizer = SGD(0.05, momentum=0.9)
        param.grad = np.ones(3)
        optimizer.step([param])
        snapshot = optimizer.state_dict([param])
        with pytest.raises(ConfigError):
            SGD(0.05, momentum=0.9).load_state_dict([], snapshot)

    def test_load_rejects_wrong_shapes(self):
        param = Parameter("w", np.zeros(3))
        optimizer = Adam(0.002)
        param.grad = np.ones(3)
        optimizer.step([param])
        snapshot = optimizer.state_dict([param])
        other = Parameter("w", np.zeros(4))
        with pytest.raises(ConfigError):
            Adam(0.002).load_state_dict([other], snapshot)

    def test_state_dict_copies_are_independent(self):
        param = Parameter("w", np.zeros(2))
        optimizer = Adam(0.002)
        param.grad = np.ones(2)
        optimizer.step([param])
        snapshot = optimizer.state_dict([param])
        param.grad = np.ones(2)
        optimizer.step([param])
        # Stepping after the snapshot must not mutate the snapshot.
        restored = Adam(0.002)
        restored.load_state_dict([param], snapshot)
        assert restored.iterations == 1
