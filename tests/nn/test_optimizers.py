"""Tests for repro.nn.optimizers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.layers.base import Parameter
from repro.nn.optimizers import SGD, Adam, RMSProp


def quadratic_parameter(start=5.0):
    """A parameter minimizing f(w) = w^2 (gradient 2w)."""
    return Parameter("w", np.array([start]))


def descend(optimizer, param, steps):
    for _ in range(steps):
        param.grad = 2.0 * param.value
        optimizer.step([param])
    return float(param.value[0])


class TestSGD:
    def test_plain_step_math(self):
        param = Parameter("w", np.array([1.0, 2.0]))
        param.grad = np.array([0.5, -0.5])
        SGD(learning_rate=0.1).step([param])
        np.testing.assert_allclose(param.value, [0.95, 2.05])

    def test_converges_on_quadratic(self):
        assert abs(descend(SGD(0.1), quadratic_parameter(), 100)) < 1e-6

    def test_momentum_accelerates(self):
        plain = abs(descend(SGD(0.01), quadratic_parameter(), 30))
        momentum = abs(descend(SGD(0.01, momentum=0.9),
                               quadratic_parameter(), 30))
        assert momentum < plain

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ConfigError):
            SGD(0.1, nesterov=True)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter("w", np.array([10.0]))
        param.grad = np.array([0.0])
        SGD(0.1, weight_decay=0.5).step([param])
        assert param.value[0] < 10.0

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ConfigError):
            SGD(0.0)
        with pytest.raises(ConfigError):
            SGD(0.1, momentum=1.0)
        with pytest.raises(ConfigError):
            SGD(0.1, weight_decay=-1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert abs(descend(Adam(0.2), quadratic_parameter(), 200)) < 1e-3

    def test_first_step_magnitude_is_learning_rate(self):
        # With bias correction, the first Adam step is ~lr in the gradient
        # direction regardless of gradient scale.
        param = Parameter("w", np.array([0.0]))
        param.grad = np.array([1234.5])
        Adam(learning_rate=0.01).step([param])
        assert param.value[0] == pytest.approx(-0.01, rel=1e-6)

    def test_per_parameter_state_is_independent(self):
        a = Parameter("a", np.array([1.0]))
        b = Parameter("b", np.array([1.0]))
        opt = Adam(0.1)
        a.grad = np.array([1.0])
        b.grad = np.array([0.0])
        opt.step([a, b])
        assert a.value[0] != 1.0
        assert b.value[0] == 1.0

    def test_rejects_bad_betas(self):
        with pytest.raises(ConfigError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigError):
            Adam(beta2=-0.1)
        with pytest.raises(ConfigError):
            Adam(epsilon=0.0)


class TestRMSProp:
    def test_converges_on_quadratic(self):
        assert abs(descend(RMSProp(0.05), quadratic_parameter(), 300)) < 0.05

    def test_momentum_variant_converges(self):
        final = descend(RMSProp(0.01, momentum=0.5), quadratic_parameter(),
                        300)
        assert abs(final) < 0.5

    def test_rejects_bad_rho(self):
        with pytest.raises(ConfigError):
            RMSProp(rho=1.0)
