"""Tests for repro.nn.losses."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.losses import HingeLoss, MeanSquaredError, SoftmaxCrossEntropy
from repro.nn.tensor_utils import one_hot, softmax

from .gradcheck import numeric_gradient


class TestSoftmaxCrossEntropy:
    def test_value_matches_manual(self, rng):
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        loss, _ = SoftmaxCrossEntropy().forward(logits, labels)
        probs = softmax(logits)
        manual = -np.mean(np.log(probs[np.arange(4), labels]))
        assert loss == pytest.approx(manual, rel=1e-12)

    def test_accepts_one_hot_targets(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        by_int, _ = SoftmaxCrossEntropy().forward(logits, labels)
        by_onehot, _ = SoftmaxCrossEntropy().forward(logits, one_hot(labels, 4))
        assert by_int == pytest.approx(by_onehot, rel=1e-12)

    def test_gradient_numeric(self, rng):
        logits = rng.normal(size=(3, 4))
        labels = np.array([2, 0, 1])
        loss_fn = SoftmaxCrossEntropy()
        _, grad = loss_fn.forward(logits, labels)
        numeric = numeric_gradient(
            lambda: loss_fn.forward(logits, labels)[0], logits)
        np.testing.assert_allclose(grad, numeric, rtol=1e-5, atol=1e-8)

    def test_perfect_prediction_has_near_zero_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = SoftmaxCrossEntropy().forward(logits, np.array([0, 1]))
        assert loss < 1e-8

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ShapeError):
            SoftmaxCrossEntropy().forward(rng.normal(size=(4,)),
                                          np.array([0]))
        with pytest.raises(ShapeError):
            SoftmaxCrossEntropy().forward(rng.normal(size=(2, 3)),
                                          np.zeros((2, 4)))


class TestMeanSquaredError:
    def test_value(self):
        loss, _ = MeanSquaredError().forward(np.array([[1.0, 2.0]]),
                                             np.array([[0.0, 0.0]]))
        assert loss == pytest.approx(2.5)

    def test_gradient_numeric(self, rng):
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        loss_fn = MeanSquaredError()
        _, grad = loss_fn.forward(pred, target)
        numeric = numeric_gradient(
            lambda: loss_fn.forward(pred, target)[0], pred)
        np.testing.assert_allclose(grad, numeric, rtol=1e-6, atol=1e-9)

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            MeanSquaredError().forward(rng.normal(size=(2, 2)),
                                       rng.normal(size=(2, 3)))


class TestHinge:
    def test_zero_loss_when_margin_satisfied(self):
        scores = np.array([[10.0, 0.0, 0.0]])
        loss, _ = HingeLoss().forward(scores, np.array([0]))
        assert loss == 0.0

    def test_violations_counted(self):
        scores = np.array([[1.0, 1.5, 0.0]])
        loss, _ = HingeLoss(margin=1.0).forward(scores, np.array([0]))
        # Class 1 violates by 1.5, class 2 by 0.
        assert loss == pytest.approx(1.5)

    def test_gradient_numeric(self, rng):
        scores = rng.normal(size=(3, 4))
        labels = np.array([0, 3, 2])
        loss_fn = HingeLoss()
        _, grad = loss_fn.forward(scores, labels)
        numeric = numeric_gradient(
            lambda: loss_fn.forward(scores, labels)[0], scores)
        np.testing.assert_allclose(grad, numeric, rtol=1e-5, atol=1e-7)
