"""Tests for repro.nn.layers.recurrent.SimpleRNN."""

import numpy as np
import pytest

from repro.errors import ConfigError, LayerError, ShapeError
from repro.nn import Adam, Dense, Sequential, SimpleRNN, Trainer

from .gradcheck import check_layer_gradients


def build(layer, shape, seed=0):
    layer.build(shape, np.random.default_rng(seed))
    return layer


class TestForward:
    def test_output_shapes(self, rng):
        last = build(SimpleRNN(5), (7, 3))
        assert last.output_shape == (5,)
        assert last.forward(rng.normal(size=(4, 7, 3))).shape == (4, 5)
        seq = build(SimpleRNN(5, return_sequences=True), (7, 3))
        assert seq.output_shape == (7, 5)
        assert seq.forward(rng.normal(size=(4, 7, 3))).shape == (4, 7, 5)

    def test_recurrence_matches_manual_unroll(self, rng):
        layer = build(SimpleRNN(4, activation="tanh"), (3, 2))
        x = rng.normal(size=(1, 3, 2))
        y = layer.forward(x)
        h = np.zeros(4)
        for t in range(3):
            h = np.tanh(x[0, t] @ layer.w_xh.value + h @ layer.w_hh.value
                        + layer.bias.value)
        np.testing.assert_allclose(y[0], h, rtol=1e-12)

    def test_relu_activation_produces_zeros(self, rng):
        layer = build(SimpleRNN(16, activation="relu"), (8, 3))
        y = layer.forward(rng.normal(size=(6, 8, 3)))
        assert np.any(y == 0.0)
        assert np.all(y >= 0.0)

    def test_hidden_states_consistent_with_forward(self, rng):
        layer = build(SimpleRNN(6), (5, 3))
        x = rng.normal(size=(5, 3))
        states = layer.hidden_states(x)
        assert states.shape == (5, 6)
        np.testing.assert_allclose(states[-1], layer.forward(x[None])[0],
                                   rtol=1e-12)

    def test_rejects_wrong_shapes(self, rng):
        layer = build(SimpleRNN(4), (5, 3))
        with pytest.raises(ShapeError):
            layer.forward(rng.normal(size=(2, 5, 4)))
        with pytest.raises(ShapeError):
            layer.hidden_states(rng.normal(size=(4, 3)))

    def test_rejects_non_sequence_input_shape(self):
        with pytest.raises(ShapeError):
            build(SimpleRNN(4), (5,))

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            SimpleRNN(0)
        with pytest.raises(ConfigError):
            SimpleRNN(4, activation="gelu")


class TestBackward:
    @pytest.mark.parametrize("activation", ["tanh", "relu"])
    def test_gradients_last_state(self, activation, rng):
        layer = build(SimpleRNN(4, activation=activation), (5, 3))
        # Shift inputs away from ReLU kinks for stable central differences.
        x = rng.normal(size=(2, 5, 3)) + 0.05
        check_layer_gradients(layer, x, rng, rtol=2e-4, atol=1e-6)

    def test_gradients_sequence_output(self, rng):
        layer = build(SimpleRNN(3, activation="tanh",
                                return_sequences=True), (4, 2))
        check_layer_gradients(layer, rng.normal(size=(2, 4, 2)), rng,
                              rtol=2e-4, atol=1e-6)

    def test_backward_requires_forward(self, rng):
        layer = build(SimpleRNN(4), (5, 3))
        with pytest.raises(LayerError):
            layer.backward(rng.normal(size=(2, 4)))


class TestTrainingAndSerialization:
    def test_learns_sequence_classification(self, rng):
        from repro.datasets import SyntheticSensorTraces
        dataset = SyntheticSensorTraces().generate(30, seed=3,
                                                   categories=[0, 2])
        model = Sequential([SimpleRNN(16), Dense(6)]).build((32, 3), seed=1)
        trainer = Trainer(model, optimizer=Adam(0.005), batch_size=16)
        history = trainer.fit(dataset.images, dataset.labels, epochs=8)
        assert history.train_accuracy[-1] > 0.9

    def test_save_load_round_trip(self, tmp_path, rng):
        from repro.nn import load_model, save_model
        model = Sequential([SimpleRNN(5, activation="tanh"),
                            Dense(3)]).build((6, 2), seed=2)
        x = rng.normal(size=(3, 6, 2))
        expected = model.forward(x)
        loaded = load_model(save_model(model, tmp_path / "rnn.npz"))
        np.testing.assert_allclose(loaded.forward(x), expected, rtol=1e-12)
