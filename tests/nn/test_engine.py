"""Tests for repro.nn.engine — the compiled inference engine.

The contract under test: a compiled plan matches the layer-by-layer
reference forward pass to <= 1e-9 (fused mode) or bit for bit per layer
(preserve mode), while allocating its workspace once per batch size.
"""

import pickle

import numpy as np
import pytest

from repro.core.experiment import build_model
from repro.errors import ConfigError, EngineError, ShapeError
from repro.nn import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GRU,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn import engine
from repro.nn.engine import InferencePlan, compile_model, freeze

TOLERANCE = 1e-9


def paper_model(dataset, seed=3):
    return build_model(dataset, seed=seed)


class TestEquivalence:
    @pytest.mark.parametrize("dataset", ["mnist", "cifar10"])
    @pytest.mark.parametrize("batch", [1, 3, 32])
    def test_matches_reference_forward(self, dataset, batch, rng):
        model = paper_model(dataset)
        x = rng.normal(size=(batch,) + model.input_shape)
        plan = compile_model(model, batch_size=batch)
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_predict_and_logits_aliases(self, rng):
        model = paper_model("mnist")
        x = rng.normal(size=(5,) + model.input_shape)
        plan = compile_model(model, batch_size=5)
        np.testing.assert_allclose(plan.predict_logits(x), plan(x),
                                   rtol=0, atol=0)
        np.testing.assert_array_equal(plan.predict(x), model.predict(x))

    def test_other_batch_sizes_bind_on_demand(self, rng):
        model = paper_model("mnist")
        plan = compile_model(model, batch_size=2)
        for batch in (1, 4, 7):
            x = rng.normal(size=(batch,) + model.input_shape)
            np.testing.assert_allclose(plan.forward(x),
                                       model.predict_logits(x),
                                       rtol=0, atol=TOLERANCE)

    def test_padded_and_strided_conv(self, rng):
        model = Sequential([
            Conv2D(6, 3, stride=2, padding=1, name="c1"), ReLU(),
            Conv2D(4, 3, padding=1, name="c2"), Tanh(),
            AvgPool2D(2), Flatten(), Dense(5),
        ]).build((2, 15, 15), seed=5)
        x = rng.normal(size=(4, 2, 15, 15))
        plan = compile_model(model, batch_size=4)
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_global_pool_and_leaky_relu(self, rng):
        model = Sequential([
            Conv2D(5, 3), LeakyReLU(0.1), GlobalAvgPool2D(), Dense(3),
        ]).build((1, 9, 9), seed=2)
        x = rng.normal(size=(3, 1, 9, 9))
        plan = compile_model(model, batch_size=3)
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_plan_reflects_compile_time_weights(self, rng):
        model = paper_model("mnist")
        x = rng.normal(size=(2,) + model.input_shape)
        plan = compile_model(model, batch_size=2)
        before = model.predict_logits(x)
        model.parameters()[0].value += 1.0
        # The plan froze the old weights; the model moved on.
        np.testing.assert_allclose(plan.forward(x), before,
                                   rtol=0, atol=TOLERANCE)
        assert np.max(np.abs(model.predict_logits(x) - before)) > 0


class TestWorkspaceReuse:
    def test_program_cached_per_batch_size(self, rng):
        model = paper_model("mnist")
        plan = compile_model(model, batch_size=4)
        program = plan._program(4)
        x = rng.normal(size=(4,) + model.input_shape)
        plan.forward(x)
        plan.forward(x)
        assert plan._program(4) is program

    def test_program_cache_evicts_oldest(self, rng):
        from repro.nn.engine.plan import _PROGRAM_CACHE_SIZE
        model = paper_model("mnist")
        plan = compile_model(model, batch_size=1)
        for n in range(2, _PROGRAM_CACHE_SIZE + 3):
            plan._program(n)
        assert len(plan._programs) == _PROGRAM_CACHE_SIZE
        assert 1 not in plan._programs

    def test_forward_returns_fresh_arrays(self, rng):
        model = paper_model("mnist")
        plan = compile_model(model, batch_size=1)
        x1 = rng.normal(size=(1,) + model.input_shape)
        x2 = rng.normal(size=(1,) + model.input_shape)
        out1 = plan.forward(x1)
        out2 = plan.forward(x2)
        # out1 must not have been overwritten by the second call.
        np.testing.assert_allclose(out1, model.predict_logits(x1),
                                   rtol=0, atol=TOLERANCE)
        assert np.max(np.abs(out1 - out2)) > 0


class TestFreezing:
    def test_mnist_fusion_stats(self):
        model = paper_model("mnist")
        plan = compile_model(model)
        stats = plan.stats
        assert stats.layers == 8
        assert stats.ops == len(plan.ops)
        assert stats.fused_activations == 2
        assert stats.folded_batchnorm == 0
        assert stats.fused_layers >= 2
        assert stats.ops < stats.layers

    def test_dropout_dropped(self, rng):
        model = Sequential([
            Conv2D(4, 3), ReLU(), Dropout(0.5), Flatten(), Dense(3),
        ]).build((1, 8, 8), seed=1)
        plan = compile_model(model)
        assert plan.stats.dropped_layers == 1
        x = rng.normal(size=(2, 1, 8, 8))
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_stats_as_dict_round_trips(self):
        stats = compile_model(paper_model("mnist")).stats
        as_dict = stats.as_dict()
        assert as_dict["fused_activations"] == stats.fused_activations
        assert as_dict["ops"] == stats.ops

    def test_freeze_without_binding(self):
        model = paper_model("mnist")
        ops, stats = freeze(model)
        assert len(ops) == stats.ops

    def test_leaky_relu_alpha_above_one_falls_back(self, rng):
        # np.maximum(x, alpha*x) is only the leaky rectifier for alpha<=1;
        # larger slopes must run the layer itself.
        model = Sequential([
            Conv2D(3, 3), LeakyReLU(1.5), Flatten(), Dense(3),
        ]).build((1, 7, 7), seed=4)
        plan = compile_model(model)
        x = rng.normal(size=(2, 1, 7, 7))
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_generic_fallback_layers(self, rng):
        # Sigmoid / Softmax / GRU have no frozen kernel; the plan wraps
        # the layer's own forward and still matches end to end.
        model = Sequential([
            GRU(12), Dense(6), Sigmoid(), Dense(4), Softmax(),
        ]).build((5, 5), seed=6)
        plan = compile_model(model)
        x = rng.normal(size=(3, 5, 5))
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_standalone_batchnorm_becomes_affine(self, rng):
        # BatchNorm with no foldable GEMM upstream (first layer) still
        # compiles — as a standalone affine op.
        model = Sequential([
            BatchNorm2D(), Conv2D(4, 3), ReLU(), Flatten(), Dense(3),
        ]).build((2, 8, 8), seed=7)
        model.forward(rng.normal(size=(16, 2, 8, 8)), training=True)
        plan = compile_model(model)
        assert plan.stats.folded_batchnorm == 0
        x = rng.normal(size=(3, 2, 8, 8))
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)


class TestRefresh:
    """``plan.refresh(model)`` rebinds weights without recompiling."""

    def perturb(self, model, rng):
        for param in model.parameters():
            param.value += rng.normal(scale=0.05, size=param.value.shape)

    def assert_refresh_matches_recompile(self, model, rng, batch=3,
                                         **compile_kwargs):
        plan = compile_model(model, batch_size=batch, **compile_kwargs)
        self.perturb(model, rng)
        assert plan.refresh(model) is plan
        fresh = compile_model(model, batch_size=batch, **compile_kwargs)
        x = rng.normal(size=(batch,) + model.input_shape)
        np.testing.assert_array_equal(plan.forward(x), fresh.forward(x))
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_refresh_matches_recompile(self, rng):
        self.assert_refresh_matches_recompile(paper_model("mnist"), rng)

    def test_refresh_preserve_mode(self, rng):
        self.assert_refresh_matches_recompile(paper_model("mnist"), rng,
                                              preserve_layers=True)

    def test_refresh_refolds_batchnorm(self, rng):
        model = Sequential([
            Conv2D(4, 3), BatchNorm2D(), ReLU(), Flatten(), Dense(3),
        ]).build((1, 8, 8), seed=9)
        model.forward(rng.normal(size=(16, 1, 8, 8)), training=True)
        plan = compile_model(model, batch_size=2)
        assert plan.stats.folded_batchnorm == 1
        # Move the conv weights AND the folded statistics: more training
        # shifts the running mean/var the fold consumed at compile time.
        self.perturb(model, rng)
        model.forward(rng.normal(size=(16, 1, 8, 8)) + 1.0, training=True)
        plan.refresh(model)
        x = rng.normal(size=(2, 1, 8, 8))
        fresh = compile_model(model, batch_size=2)
        np.testing.assert_array_equal(plan.forward(x), fresh.forward(x))

    def test_refresh_standalone_batchnorm_affine(self, rng):
        model = Sequential([
            BatchNorm2D(), Conv2D(4, 3), ReLU(), Flatten(), Dense(3),
        ]).build((2, 8, 8), seed=10)
        model.forward(rng.normal(size=(16, 2, 8, 8)), training=True)
        self.assert_refresh_matches_recompile(model, rng)

    def test_refresh_after_real_training(self, rng):
        # The Trainer's usage pattern: compile once, train, refresh.
        from repro.nn import Adam, Trainer
        model = paper_model("mnist")
        plan = compile_model(model, batch_size=4)
        x = rng.normal(size=(24,) + model.input_shape)
        y = rng.integers(0, 10, size=24)
        Trainer(model, optimizer=Adam(0.002), batch_size=8,
                engine="layers").fit(x, y, epochs=1)
        plan.refresh(model)
        np.testing.assert_allclose(plan.forward(x[:4]),
                                   model.predict_logits(x[:4]),
                                   rtol=0, atol=TOLERANCE)

    def test_refresh_rejects_unbuilt_or_mismatched_model(self, rng):
        plan = compile_model(paper_model("mnist"), batch_size=1)
        with pytest.raises(EngineError):
            plan.refresh(Sequential([Flatten(), Dense(3)]))
        other = Sequential([Flatten(), Dense(10)]).build((3, 32, 32), seed=0)
        with pytest.raises(EngineError):
            plan.refresh(other)

    def test_refresh_rejects_renamed_layers(self, rng):
        plan = compile_model(paper_model("mnist"), batch_size=1)
        renamed = paper_model("mnist")
        renamed.layers[0].name = "not-conv1"
        with pytest.raises(EngineError):
            plan.refresh(renamed)


class TestPreserveMode:
    def test_per_layer_activations_bit_exact(self, rng):
        model = paper_model("mnist")
        plan = compile_model(model, batch_size=1, preserve_layers=True)
        assert len(plan.ops) == len(model.layers)
        x = rng.normal(size=(1,) + model.input_shape)
        reference = x
        for (label, _xin, yout), layer in zip(plan.iter_layers(x),
                                              model.layers):
            reference = layer.forward(reference, training=False)
            assert label == layer.name
            np.testing.assert_array_equal(yout, reference)

    def test_relu_zero_pattern_preserved(self, rng):
        # The trace layer's sparsity analysis keys off exact zeros.
        model = paper_model("mnist")
        plan = compile_model(model, batch_size=1, preserve_layers=True)
        x = rng.normal(size=(1,) + model.input_shape)
        triples = plan.run_layers(x)
        relu_out = dict((label, out) for label, _i, out in triples)["relu1"]
        reference = model.layers[0].forward(x, training=False)
        reference = model.layers[1].forward(reference, training=False)
        np.testing.assert_array_equal(relu_out == 0.0, reference == 0.0)

    def test_preserve_mode_performs_no_fusion(self):
        plan = compile_model(paper_model("mnist"), preserve_layers=True)
        assert plan.preserve_layers
        stats = plan.stats
        assert stats.fused_activations == 0
        assert stats.folded_batchnorm == 0
        assert stats.dropped_layers == 0
        assert stats.ops == stats.layers


class TestErrors:
    def test_unbuilt_model_rejected(self):
        model = Sequential([Flatten(), Dense(3)])
        with pytest.raises(EngineError):
            compile_model(model)

    def test_wrong_input_shape_rejected(self, rng):
        plan = compile_model(paper_model("mnist"))
        with pytest.raises(ShapeError):
            plan.forward(rng.normal(size=(2, 3, 28, 28)))
        with pytest.raises(ShapeError):
            plan.forward(rng.normal(size=(1, 28, 28)))

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ConfigError):
            compile_model(paper_model("mnist"), batch_size=0)


class TestApiSurface:
    def test_model_compile_inference(self, rng):
        model = paper_model("mnist")
        plan = model.compile_inference(batch_size=2)
        assert isinstance(plan, InferencePlan)
        x = rng.normal(size=(2,) + model.input_shape)
        np.testing.assert_allclose(plan.forward(x), model.predict_logits(x),
                                   rtol=0, atol=TOLERANCE)

    def test_engine_compile_alias(self):
        plan = engine.compile(paper_model("mnist"))
        assert isinstance(plan, InferencePlan)

    def test_engines_tuple(self):
        assert engine.ENGINES == ("layers", "compiled")

    def test_describe_mentions_fusion(self):
        text = compile_model(paper_model("mnist")).describe()
        assert "activations fused" in text
        assert "batchnorm folded" in text

    def test_plan_pickles_and_rebinds(self, rng):
        model = paper_model("mnist")
        plan = compile_model(model, batch_size=2)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone._programs == {}
        x = rng.normal(size=(2,) + model.input_shape)
        np.testing.assert_allclose(clone.forward(x), plan.forward(x),
                                   rtol=0, atol=0)
