"""Tests for repro.nn.engine.train_plan — the compiled training engine.

The contract under test: a compiled train step is *bitwise* identical to
the layer-by-layer reference step (same forward, same gradients, same
optimizer update, in the same order), while reusing one preallocated
workspace per batch size.
"""

import pickle

import numpy as np
import pytest

from repro.core.experiment import build_model
from repro.errors import ConfigError, EngineError, ShapeError, TrainingError
from repro.nn import (
    Adam,
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    HingeLoss,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    RMSProp,
    SGD,
    Sequential,
    SoftmaxCrossEntropy,
    Tanh,
    Trainer,
)
from repro.nn.engine import TrainPlan, compile_training, freeze_training


def reference_steps(model, loss, optimizer, batches):
    """The layer-by-layer training loop the plan must reproduce exactly."""
    for xb, yb in batches:
        model.zero_grad()
        outputs = model.forward(np.asarray(xb, dtype=np.float64),
                                training=True)
        _, grad = loss.forward(outputs, yb)
        model.backward(grad)
        optimizer.step(model.parameters())


def assert_bitwise_training(make_model, make_loss, make_optimizer, x, y,
                            batch=8):
    """Run identical batch sequences through both paths; weights must be
    bit-for-bit equal (the last batch is partial, exercising rebinding)."""
    n = x.shape[0]
    slices = [np.arange(s, min(s + batch, n)) for s in range(0, n, batch)]
    batches = [(x[i], y[i]) for i in slices] * 2  # two passes

    ref = make_model()
    reference_steps(ref, make_loss(), make_optimizer(), batches)

    compiled = make_model()
    plan = compile_training(compiled, make_loss(), make_optimizer(),
                            batch_size=batch)
    for xb, yb in batches:
        plan.step(xb, yb)

    for p_ref, p_com in zip(ref.parameters(), compiled.parameters()):
        np.testing.assert_array_equal(p_ref.value, p_com.value,
                                      err_msg=p_ref.name)


def class_data(rng, n, shape, classes=4):
    x = rng.normal(size=(n,) + shape)
    y = rng.integers(0, classes, size=n)
    return x, y


class TestBitwiseEquivalence:
    def test_paper_cnn_adam(self, rng):
        x, y = class_data(rng, 12, (1, 28, 28), classes=10)
        assert_bitwise_training(
            lambda: build_model("mnist", seed=3),
            SoftmaxCrossEntropy, lambda: Adam(0.002), x, y, batch=5)

    def test_padded_strided_conv_nesterov_sgd(self, rng):
        def make():
            return Sequential([
                Conv2D(5, 3, stride=2, padding=1), ReLU(), Flatten(),
                Dense(4),
            ]).build((2, 9, 9), seed=1)
        x, y = class_data(rng, 20, (2, 9, 9))
        assert_bitwise_training(
            make, SoftmaxCrossEntropy,
            lambda: SGD(0.05, momentum=0.9, nesterov=True,
                        weight_decay=1e-3), x, y)

    def test_overlapping_maxpool_rmsprop(self, rng):
        def make():
            return Sequential([
                Conv2D(4, 3), ReLU(), MaxPool2D(3, stride=2), Flatten(),
                Dense(4),
            ]).build((1, 11, 11), seed=2)
        x, y = class_data(rng, 20, (1, 11, 11))
        assert_bitwise_training(
            make, SoftmaxCrossEntropy,
            lambda: RMSProp(0.003, momentum=0.5), x, y)

    def test_avgpool_and_leaky_relu_adam_decay(self, rng):
        def make():
            return Sequential([
                Conv2D(4, 3), LeakyReLU(0.1), AvgPool2D(2), Flatten(),
                Dense(4),
            ]).build((1, 10, 10), seed=3)
        x, y = class_data(rng, 20, (1, 10, 10))
        assert_bitwise_training(
            make, SoftmaxCrossEntropy,
            lambda: Adam(0.002, weight_decay=1e-2), x, y)

    def test_large_avgpool_generic_fallback(self, rng):
        # pool * pool > the sequential-reduce limit: falls back to the
        # layer's own forward/backward yet must stay bitwise.
        def make():
            return Sequential([
                Conv2D(3, 3), ReLU(), AvgPool2D(3), Flatten(), Dense(4),
            ]).build((1, 11, 11), seed=4)
        x, y = class_data(rng, 16, (1, 11, 11))
        plan_stats = freeze_training(make())[1]
        assert plan_stats.generic_layers == 1
        assert_bitwise_training(make, SoftmaxCrossEntropy,
                                lambda: SGD(0.05), x, y)

    def test_global_avgpool(self, rng):
        def make():
            return Sequential([
                Conv2D(4, 3), ReLU(), GlobalAvgPool2D(), Dense(4),
            ]).build((1, 9, 9), seed=5)
        x, y = class_data(rng, 16, (1, 9, 9))
        assert_bitwise_training(make, SoftmaxCrossEntropy,
                                lambda: Adam(0.002), x, y)

    def test_batchnorm_dropout_tanh_generic_layers(self, rng):
        # Stateful / random fallbacks: BatchNorm updates running stats,
        # Dropout draws from its own RNG stream — both must advance
        # exactly as in the reference path.
        def make():
            return Sequential([
                Conv2D(3, 3), BatchNorm2D(), Tanh(), MaxPool2D(2),
                Flatten(), Dropout(0.3), Dense(4),
            ]).build((1, 10, 10), seed=6)
        x, y = class_data(rng, 16, (1, 10, 10))
        assert_bitwise_training(make, SoftmaxCrossEntropy,
                                lambda: SGD(0.05, momentum=0.8), x, y)

    def test_hinge_loss_fallback(self, rng):
        def make():
            return Sequential([Dense(12), ReLU(), Dense(4)]).build(
                (6,), seed=7)
        x, y = class_data(rng, 20, (6,))
        stats = compile_training(make(), HingeLoss(), SGD(0.05)).stats
        assert stats.fused_loss is False
        assert_bitwise_training(make, HingeLoss, lambda: SGD(0.05), x, y)

    def test_standalone_relu_between_generic_ops(self, rng):
        # ReLU that cannot fuse (generic op in between) runs standalone.
        def make():
            return Sequential([
                Conv2D(3, 3), Dropout(0.0), ReLU(), Flatten(), Dense(4),
            ]).build((1, 8, 8), seed=8)
        x, y = class_data(rng, 16, (1, 8, 8))
        assert_bitwise_training(make, SoftmaxCrossEntropy,
                                lambda: Adam(0.002), x, y)


class TestTrainerIntegration:
    def test_fit_engines_reach_identical_weights(self, rng):
        x, y = class_data(rng, 30, (1, 28, 28), classes=10)
        trained = {}
        for engine in ("layers", "compiled"):
            model = build_model("mnist", seed=3)
            Trainer(model, SoftmaxCrossEntropy(), Adam(0.002), batch_size=8,
                    shuffle_seed=11, engine=engine).fit(x, y, epochs=2)
            trained[engine] = model
        for a, b in zip(trained["layers"].parameters(),
                        trained["compiled"].parameters()):
            np.testing.assert_array_equal(a.value, b.value, err_msg=a.name)

    def test_fit_compiles_one_plan(self, rng):
        x, y = class_data(rng, 16, (6,))
        model = Sequential([Dense(8), ReLU(), Dense(4)]).build((6,), seed=1)
        trainer = Trainer(model, batch_size=8, engine="compiled")
        trainer.fit(x, y, epochs=2)
        plan = trainer._train_plan
        assert isinstance(plan, TrainPlan)
        trainer.fit(x, y, epochs=1)
        assert trainer._train_plan is plan

    def test_layers_engine_never_compiles(self, rng):
        x, y = class_data(rng, 16, (6,))
        model = Sequential([Dense(8), ReLU(), Dense(4)]).build((6,), seed=1)
        trainer = Trainer(model, batch_size=8, engine="layers")
        trainer.fit(x, y, epochs=1)
        assert trainer._train_plan is None


class TestStepSemantics:
    def mlp_plan(self, batch=8, optimizer=None):
        model = Sequential([Dense(10), ReLU(), Dense(4)]).build((5,), seed=9)
        plan = compile_training(model, SoftmaxCrossEntropy(),
                                optimizer or SGD(0.05), batch_size=batch)
        return model, plan

    def test_step_gather_matches_step(self, rng):
        x = rng.normal(size=(24, 5))
        y = rng.integers(0, 4, size=24)
        model_a, plan_a = self.mlp_plan()
        model_b, plan_b = self.mlp_plan()
        index = np.array([3, 17, 5, 9, 21, 0, 11, 8])
        loss_a = plan_a.step(x[index], y[index])
        loss_b = plan_b.step_gather(x, y.astype(np.int64), index)
        assert loss_a == loss_b
        for pa, pb in zip(model_a.parameters(), model_b.parameters()):
            np.testing.assert_array_equal(pa.value, pb.value)

    def test_loss_matches_reference_value(self, rng):
        x = rng.normal(size=(8, 5))
        y = rng.integers(0, 4, size=8)
        model, plan = self.mlp_plan()
        reference = Sequential([Dense(10), ReLU(), Dense(4)]).build(
            (5,), seed=9)
        expected, _ = SoftmaxCrossEntropy().forward(
            reference.forward(x, training=True), y)
        # The fused loss reduces in a different order; values agree to the
        # last few ulps (gradients — what moves the weights — are bitwise).
        assert plan.step(x, y) == pytest.approx(expected, rel=1e-12)

    def test_partial_batches_bind_on_demand(self, rng):
        model, plan = self.mlp_plan(batch=8)
        assert set(plan._programs) == {8}
        plan.step(rng.normal(size=(3, 5)), rng.integers(0, 4, size=3))
        assert set(plan._programs) == {8, 3}
        program = plan._programs[3]
        plan.step(rng.normal(size=(3, 5)), rng.integers(0, 4, size=3))
        assert plan._programs[3] is program

    def test_weight_storage_rebind_detected(self, rng):
        model, plan = self.mlp_plan()
        layer = model.layers[0]
        layer.weight.value = layer.weight.value.copy()
        with pytest.raises(EngineError):
            plan.step(rng.normal(size=(8, 5)), rng.integers(0, 4, size=8))

    @pytest.mark.filterwarnings("ignore:overflow:RuntimeWarning")
    @pytest.mark.filterwarnings("ignore:invalid value:RuntimeWarning")
    def test_divergence_detected(self, rng):
        model, plan = self.mlp_plan(optimizer=SGD(1e12))
        x = rng.normal(size=(8, 5)) * 1e3
        y = rng.integers(0, 4, size=8)
        with pytest.raises(TrainingError):
            for _ in range(50):
                plan.step(x, y)

    def test_optimizer_sees_every_parameter(self):
        model, plan = self.mlp_plan()
        assert len(plan._train_params) == len(model.parameters())


class TestErrors:
    def test_unbuilt_model_rejected(self):
        model = Sequential([Dense(3)])
        with pytest.raises(EngineError):
            compile_training(model, SoftmaxCrossEntropy(), SGD(0.1))

    def test_bad_batch_size_rejected(self):
        model = Sequential([Dense(3)]).build((4,), seed=0)
        with pytest.raises(ConfigError):
            compile_training(model, SoftmaxCrossEntropy(), SGD(0.1),
                             batch_size=0)

    def test_loss_and_optimizer_types_validated(self):
        model = Sequential([Dense(3)]).build((4,), seed=0)
        with pytest.raises(ConfigError):
            compile_training(model, "not a loss", SGD(0.1))
        with pytest.raises(ConfigError):
            compile_training(model, SoftmaxCrossEntropy(), "not an optimizer")

    def test_wrong_input_shape_rejected(self, rng):
        model = Sequential([Dense(3)]).build((4,), seed=0)
        plan = compile_training(model, SoftmaxCrossEntropy(), SGD(0.1))
        with pytest.raises(ShapeError):
            plan.step(rng.normal(size=(2, 5)), np.zeros(2, dtype=int))

    def test_mismatched_label_count_rejected(self, rng):
        model = Sequential([Dense(3)]).build((4,), seed=0)
        plan = compile_training(model, SoftmaxCrossEntropy(), SGD(0.1))
        with pytest.raises(ShapeError):
            plan.step(rng.normal(size=(2, 4)), np.zeros(3, dtype=int))

    def test_out_of_range_labels_rejected(self, rng):
        model = Sequential([Dense(3)]).build((4,), seed=0)
        plan = compile_training(model, SoftmaxCrossEntropy(), SGD(0.1))
        with pytest.raises(ShapeError):
            plan.step(rng.normal(size=(2, 4)), np.array([0, 3]))

    def test_plan_refuses_to_pickle(self):
        model = Sequential([Dense(3)]).build((4,), seed=0)
        plan = compile_training(model, SoftmaxCrossEntropy(), SGD(0.1))
        with pytest.raises(TypeError):
            pickle.dumps(plan)


class TestTelemetry:
    def fit_with_telemetry(self, rng, engine, tracemalloc_on=False):
        import tracemalloc

        from repro import obs
        x = rng.normal(size=(32, 6))
        y = rng.integers(0, 4, size=32)
        model = Sequential([Dense(16), ReLU(), Dense(4)]).build((6,), seed=2)
        trainer = Trainer(model, batch_size=8, shuffle_seed=1, engine=engine)
        with obs.session(obs.TelemetryConfig(enabled=True,
                                             console=False)) as telemetry:
            if tracemalloc_on:
                tracemalloc.start()
            try:
                trainer.fit(x, y, epochs=2)
            finally:
                if tracemalloc_on:
                    tracemalloc.stop()
            return {(r["name"], tuple(sorted(r["labels"].items()))): r
                    for r in telemetry.metrics.snapshot()}

    @pytest.mark.parametrize("engine", ["layers", "compiled"])
    def test_train_step_histogram_emitted(self, rng, engine):
        records = self.fit_with_telemetry(rng, engine)
        step = records[("train.step", (("engine", engine),
                                       ("model", "sequential")))]
        assert step["count"] == 8  # 4 batches x 2 epochs
        assert step["min"] > 0

    def test_compile_training_telemetry(self, rng):
        records = self.fit_with_telemetry(rng, "compiled")
        fused = records[("engine.train_fused_layers", ())]
        assert fused["value"] == 3.0
        assert ("train.batches", ()) in records

    @pytest.mark.parametrize("engine", ["layers", "compiled"])
    def test_alloc_gauge_requires_tracemalloc(self, rng, engine):
        records = self.fit_with_telemetry(rng, engine)
        assert ("train.alloc_bytes", (("engine", engine),)) not in records

    def test_alloc_gauge_shows_compiled_savings(self, rng):
        allocated = {}
        for engine in ("layers", "compiled"):
            records = self.fit_with_telemetry(rng, engine,
                                              tracemalloc_on=True)
            gauge = records[("train.alloc_bytes", (("engine", engine),))]
            allocated[engine] = gauge["value"]
        # The gauge holds the *last* epoch: the compiled arena is already
        # bound, so the loop's per-step allocations all but vanish.
        assert allocated["layers"] > 0
        assert allocated["compiled"] < allocated["layers"]


class TestIntrospection:
    def test_paper_cnn_fusion_stats(self):
        model = build_model("mnist", seed=3)
        plan = compile_training(model, SoftmaxCrossEntropy(), Adam(0.001))
        stats = plan.stats
        assert stats.layers == 8
        assert stats.ops == len(plan.ops) == 6
        assert stats.fused_activations == 2
        assert stats.generic_layers == 0
        assert stats.fused_layers == 8
        assert stats.fused_loss is True
        assert stats.as_dict()["fused_loss"] is True

    def test_model_compile_training_api(self):
        model = Sequential([Dense(3)]).build((4,), seed=0)
        plan = model.compile_training(SoftmaxCrossEntropy(), SGD(0.1),
                                      batch_size=4)
        assert isinstance(plan, TrainPlan)
        assert plan.batch_size == 4

    def test_describe_mentions_fusion(self):
        model = build_model("mnist", seed=3)
        plan = compile_training(model, SoftmaxCrossEntropy(), Adam(0.001))
        text = plan.describe()
        assert "activations fused" in text
        assert "fused_loss=True" in text
        assert "conv1+relu1" in text

    def test_freeze_requires_built_model(self):
        with pytest.raises(EngineError):
            freeze_training(Sequential([Dense(3)]))
