"""Tests for the SimpleRNN tracer (the future-work extension)."""

import numpy as np
import pytest

from repro.datasets import SyntheticSensorTraces
from repro.nn import Adam, Dense, Sequential, SimpleRNN, Trainer
from repro.trace import Trace, TraceConfig, TracedInference
from repro.uarch import CpuModel, HpcEvent


@pytest.fixture(scope="module")
def rnn_model():
    dataset = SyntheticSensorTraces().generate(20, seed=3)
    model = Sequential([SimpleRNN(16, name="rnn"), Dense(6, name="fc")],
                       name="activity-rnn").build((32, 3), seed=1)
    trainer = Trainer(model, optimizer=Adam(0.005), batch_size=16)
    trainer.fit(dataset.images, dataset.labels, epochs=6)
    return model


@pytest.fixture(scope="module")
def traces(rnn_model):
    traced = TracedInference(rnn_model)
    gen = SyntheticSensorTraces()
    resting = gen.generate(1, seed=7, categories=[0]).images[0]
    running = gen.generate(1, seed=7, categories=[2]).images[0]
    return {
        0: traced.trace_sample(resting)[1],
        2: traced.trace_sample(running)[1],
    }


class TestRnnTracing:
    def test_prediction_matches_model(self, rnn_model):
        traced = TracedInference(rnn_model)
        sample = SyntheticSensorTraces().generate(1, seed=11).images[0]
        prediction, _ = traced.trace_sample(sample)
        assert prediction == rnn_model.classify_one(sample)

    def test_traffic_depends_on_activity_class(self, traces):
        assert traces[0].memory_accesses != traces[2].memory_accesses

    def test_branch_count_is_class_independent(self, traces):
        assert traces[0].branches == traces[2].branches

    def test_instructions_scale_with_live_state(self, traces):
        # Running excites far more hidden units than resting.
        assert traces[2].instructions != traces[0].instructions

    def test_regions_allocated(self, rnn_model):
        traced = TracedInference(rnn_model)
        names = [r.name for r in traced.space.regions()]
        assert "rnn.w_hh" in names
        assert "rnn.workspace" in names
        assert "rnn.state" in names

    def test_constant_footprint_mode(self, rnn_model):
        hardened = TracedInference(
            rnn_model,
            TraceConfig(sparse_from_layer=None, branchless_compares=True))
        cpu = CpuModel(seed=0)
        gen = SyntheticSensorTraces()
        counts = [
            hardened.run(gen.generate(1, seed=s, categories=[s % 6]
                                      ).images[0], cpu)[1]
            for s in range(4)
        ]
        assert all(c == counts[0] for c in counts)

    def test_full_pipeline_leaks_cache_misses_not_branches(self, rnn_model):
        from repro.core import Evaluator
        from repro.hpc import MeasurementSession, SimBackend

        backend = SimBackend(rnn_model, seed=5)
        pool = SyntheticSensorTraces().generate(15, seed=9,
                                                categories=[0, 2])
        dists = MeasurementSession(backend, warmup=0).collect(
            pool, [0, 2], 15)
        report = Evaluator().evaluate(
            dists, events=[HpcEvent.CACHE_MISSES, HpcEvent.BRANCHES])
        assert report.rejection_count(HpcEvent.CACHE_MISSES) == 1
        assert report.rejection_count(HpcEvent.BRANCHES) == 0
