"""Tests for repro.trace.layer_tracers — the data-dependence contracts."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
)
from repro.trace import Trace, TraceConfig, TracedInference
from repro.trace.layer_tracers import tracer_for
from repro.trace.address_map import AddressSpace


def single_layer_setup(layer, input_shape, config=None, layer_index=1):
    """Build one layer with regions and its tracer."""
    config = config or TraceConfig()
    rng = np.random.default_rng(0)
    layer.build(input_shape, rng)
    space = AddressSpace(base=0)
    in_region = space.allocate("in", input_shape)
    for key, value in layer.state_arrays().items():
        space.allocate(f"{layer.name}.{key}", value.shape)
    out_region = space.allocate("out", layer.output_shape)
    tracer = tracer_for(layer, layer_index, in_region, out_region, space,
                        config)
    tracer.prepare()
    return layer, tracer


def run_trace(layer, tracer, x):
    trace = Trace()
    y = layer.forward(x[None])[0]
    tracer.trace(x, y, trace)
    return trace


class TestConvTracer:
    def test_sparse_trace_scales_with_live_activations(self, rng):
        layer, tracer = single_layer_setup(Conv2D(4, 3, name="c"), (2, 8, 8))
        dense_input = np.abs(rng.normal(size=(2, 8, 8))) + 0.1
        sparse_input = dense_input.copy()
        sparse_input[:, ::2, :] = 0.0
        full = run_trace(layer, tracer, dense_input)
        half = run_trace(layer, tracer, sparse_input)
        assert half.memory_accesses < full.memory_accesses
        assert half.instructions < full.instructions

    def test_sparse_branch_count_is_input_independent(self, rng):
        layer, tracer = single_layer_setup(Conv2D(4, 3, name="c"), (2, 8, 8))
        a = run_trace(layer, tracer, np.abs(rng.normal(size=(2, 8, 8))))
        zeros = np.zeros((2, 8, 8))
        b = run_trace(layer, tracer, zeros)
        assert a.branches == b.branches

    def test_all_zero_input_does_minimal_work(self):
        layer, tracer = single_layer_setup(Conv2D(4, 3, name="c"), (2, 8, 8))
        trace = run_trace(layer, tracer, np.zeros((2, 8, 8)))
        # Only the activation-test sweep remains.
        assert trace.memory_accesses == tracer.in_region.line_span()

    def test_dense_mode_is_input_independent(self, rng):
        layer, tracer = single_layer_setup(Conv2D(4, 3, name="c"), (2, 8, 8),
                                           layer_index=0)
        assert not tracer.sparse
        a = run_trace(layer, tracer, rng.normal(size=(2, 8, 8)))
        b = run_trace(layer, tracer, np.zeros((2, 8, 8)))
        assert a.memory_accesses == b.memory_accesses
        assert a.instructions == b.instructions
        assert a.branches == b.branches
        np.testing.assert_array_equal(a.memory_lines(), b.memory_lines())

    def test_scatter_orders_same_volume_different_order(self, rng):
        x = np.abs(rng.normal(size=(2, 8, 8)))
        x[x < 0.5] = 0.0
        traces = {}
        for order in ("channel-major", "spatial-major"):
            layer, tracer = single_layer_setup(
                Conv2D(4, 3, name="c"), (2, 8, 8),
                config=TraceConfig(scatter_order=order))
            traces[order] = run_trace(layer, tracer, x)
        assert (traces["channel-major"].memory_accesses
                == traces["spatial-major"].memory_accesses)
        assert not np.array_equal(traces["channel-major"].memory_lines(),
                                  traces["spatial-major"].memory_lines())

    def test_padded_convolution_traces(self, rng):
        layer, tracer = single_layer_setup(Conv2D(2, 3, padding=1, name="c"),
                                           (1, 8, 8))
        x = np.abs(rng.normal(size=(1, 8, 8)))
        trace = run_trace(layer, tracer, x)
        assert trace.memory_accesses > 0

    def test_padded_dense_mode_is_input_independent(self, rng):
        layer, tracer = single_layer_setup(
            Conv2D(2, 3, padding=1, stride=2, name="c"), (1, 8, 8),
            layer_index=0)
        a = run_trace(layer, tracer, rng.normal(size=(1, 8, 8)))
        b = run_trace(layer, tracer, np.zeros((1, 8, 8)))
        np.testing.assert_array_equal(a.memory_lines(), b.memory_lines())

    def test_padded_scatter_targets_valid_outputs_only(self):
        # A corner input pixel of a padded conv scatters into the corner
        # output block; all referenced lines must be inside the out region.
        layer, tracer = single_layer_setup(Conv2D(2, 3, padding=1, name="c"),
                                           (1, 6, 6))
        x = np.zeros((1, 6, 6))
        x[0, 0, 0] = 1.0
        trace = run_trace(layer, tracer, x)
        out_lines = set(tracer.out_region.all_lines().tolist())
        ws_lines = set(tracer._workspace.all_lines().tolist())
        w_lines = set(
            tracer.weight_region("weight").all_lines().tolist())
        in_lines = set(tracer.in_region.all_lines().tolist())
        allowed = out_lines | ws_lines | w_lines | in_lines
        assert set(trace.memory_lines().tolist()) <= allowed


class TestDenseTracer:
    def test_sparse_row_gather_scales_with_nnz(self):
        layer, tracer = single_layer_setup(Dense(10, name="fc"), (64,))
        full = run_trace(layer, tracer, np.ones(64))
        half_input = np.ones(64)
        half_input[::2] = 0.0
        half = run_trace(layer, tracer, half_input)
        assert half.memory_accesses < full.memory_accesses

    def test_dense_mode_strided_sweep(self, rng):
        layer, tracer = single_layer_setup(Dense(10, name="fc"), (64,),
                                           layer_index=0)
        a = run_trace(layer, tracer, rng.normal(size=64))
        b = run_trace(layer, tracer, np.zeros(64))
        assert a.memory_accesses == b.memory_accesses

    def test_dynamic_branch_outcomes_track_zero_pattern(self):
        layer, tracer = single_layer_setup(Dense(4, name="fc"), (8,))
        x = np.array([1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 1.0])
        trace = run_trace(layer, tracer, x)
        dyn_ops = [op for op in trace.ops if op[0] == "dyn-branch"]
        assert len(dyn_ops) == 1
        np.testing.assert_array_equal(dyn_ops[0][2], x != 0)


class TestPoolAndActivationTracers:
    def test_maxpool_compare_outcomes_are_data_dependent(self, rng):
        layer, tracer = single_layer_setup(MaxPool2D(2, name="p"), (2, 4, 4))
        a = run_trace(layer, tracer, rng.normal(size=(2, 4, 4)))
        b = run_trace(layer, tracer, rng.normal(size=(2, 4, 4)))
        assert a.branches == b.branches  # counts constant
        a_outcomes = np.concatenate(
            [op[2] for op in a.ops if op[0] == "dyn-branch"])
        b_outcomes = np.concatenate(
            [op[2] for op in b.ops if op[0] == "dyn-branch"])
        assert not np.array_equal(a_outcomes, b_outcomes)

    def test_maxpool_branchless_mode_has_no_dynamic_branches(self, rng):
        layer, tracer = single_layer_setup(
            MaxPool2D(2, name="p"), (2, 4, 4),
            config=TraceConfig(branchless_compares=True))
        trace = run_trace(layer, tracer, rng.normal(size=(2, 4, 4)))
        assert trace.dynamic_branches == 0

    def test_relu_sign_outcomes(self):
        layer, tracer = single_layer_setup(ReLU(name="r"), (6,))
        x = np.array([1.0, -1.0, 2.0, -2.0, 0.0, 3.0])
        trace = run_trace(layer, tracer, x)
        outcomes = [op[2] for op in trace.ops if op[0] == "dyn-branch"][0]
        np.testing.assert_array_equal(outcomes, x > 0)

    def test_relu_branchless_mode(self):
        layer, tracer = single_layer_setup(
            ReLU(name="r"), (6,), config=TraceConfig(branchless_compares=True))
        trace = run_trace(layer, tracer, np.array([1.0, -1.0, 0.5, 0, 0, 2]))
        assert trace.dynamic_branches == 0

    def test_flatten_emits_almost_nothing(self):
        layer, tracer = single_layer_setup(Flatten(name="f"), (2, 3, 3))
        trace = run_trace(layer, tracer, np.ones((2, 3, 3)))
        assert trace.memory_accesses == 0
        assert trace.instructions < 20


class TestRegistry:
    def test_unknown_layer_rejected(self):
        from repro.nn.layers.base import Layer

        class Exotic(Layer):
            def _build(self, input_shape, rng):
                return input_shape

            def forward(self, x, training=False):
                return x

            def backward(self, grad):
                return grad

        layer = Exotic()
        layer.build((4,), np.random.default_rng(0))
        space = AddressSpace()
        region = space.allocate("r", (4,))
        with pytest.raises(TraceError):
            tracer_for(layer, 0, region, region, space, TraceConfig())
