"""Tests for repro.trace.address_map."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace import AddressSpace, ArrayRegion


class TestArrayRegion:
    def region(self, base=0x1000, shape=(4, 8), itemsize=4):
        return ArrayRegion("weights", base, shape, itemsize)

    def test_sizes(self):
        region = self.region()
        assert region.num_elements == 32
        assert region.num_bytes == 128

    def test_lines_of_maps_addresses(self):
        region = self.region(base=0)
        # 16 float32 per 64B line.
        lines = region.lines_of([0, 15, 16, 31])
        np.testing.assert_array_equal(lines, [0, 1])  # consecutive dedupe

    def test_lines_of_keeps_order_nonconsecutive(self):
        region = self.region(base=0)
        lines = region.lines_of([0, 16, 0, 16])
        np.testing.assert_array_equal(lines, [0, 1, 0, 1])

    def test_lines_of_respects_base(self):
        region = self.region(base=64 * 10)
        assert region.lines_of([0])[0] == 10

    def test_lines_of_rejects_out_of_range(self):
        with pytest.raises(TraceError):
            self.region().lines_of([32])
        with pytest.raises(TraceError):
            self.region().lines_of([-1])

    def test_empty_indices_ok(self):
        assert self.region().lines_of([]).size == 0

    def test_all_lines_and_span(self):
        region = self.region(base=0, shape=(40,))  # 160 bytes -> 3 lines
        np.testing.assert_array_equal(region.all_lines(), [0, 1, 2])
        assert region.line_span() == 3

    def test_unaligned_base_spans_extra_line(self):
        region = ArrayRegion("r", 32, (16,), 4)  # bytes 32..96
        assert region.line_span() == 2


class TestAddressSpace:
    def test_page_alignment(self):
        space = AddressSpace(page_bytes=4096, base=0)
        a = space.allocate("a", (10,))
        b = space.allocate("b", (10,))
        assert a.base == 0
        assert b.base == 4096

    def test_large_region_spans_pages(self):
        space = AddressSpace(page_bytes=4096, base=0)
        space.allocate("big", (3000,))  # 12000 bytes -> 3 pages
        c = space.allocate("next", (1,))
        assert c.base == 3 * 4096

    def test_lookup_and_contains(self):
        space = AddressSpace()
        region = space.allocate("x", (5,))
        assert space["x"] is region
        assert "x" in space
        assert "y" not in space

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.allocate("x", (5,))
        with pytest.raises(TraceError):
            space.allocate("x", (5,))

    def test_unknown_lookup_rejected(self):
        with pytest.raises(TraceError):
            AddressSpace()["ghost"]

    def test_degenerate_shape_rejected(self):
        with pytest.raises(TraceError):
            AddressSpace().allocate("bad", (0, 3))

    def test_bad_page_size_rejected(self):
        with pytest.raises(TraceError):
            AddressSpace(page_bytes=1000)

    def test_regions_in_allocation_order(self):
        space = AddressSpace()
        space.allocate("first", (1,))
        space.allocate("second", (1,))
        assert [r.name for r in space.regions()] == ["first", "second"]

    def test_total_bytes_and_describe(self):
        space = AddressSpace(page_bytes=4096, base=0)
        space.allocate("a", (10,))
        assert space.total_bytes == 4096
        assert "a" in space.describe()

    def test_regions_never_overlap(self):
        space = AddressSpace(page_bytes=256, base=0)
        spans = []
        for i, shape in enumerate([(100,), (7,), (64, 64), (1,)]):
            region = space.allocate(f"r{i}", shape)
            spans.append((region.base, region.base + region.num_bytes))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start
