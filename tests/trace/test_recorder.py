"""Tests for repro.trace.recorder (Trace and TraceConfig)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace import Trace, TraceConfig
from repro.uarch import CpuModel


class TestTraceConfig:
    def test_defaults_are_sparse_aware(self):
        config = TraceConfig()
        assert not config.sparse_enabled(0)   # dense stem
        assert config.sparse_enabled(1)
        assert config.sparse_enabled(5)

    def test_sparse_disabled_entirely(self):
        config = TraceConfig(sparse_from_layer=None)
        assert not config.sparse_enabled(3)

    def test_sparse_everywhere(self):
        config = TraceConfig(sparse_from_layer=0)
        assert config.sparse_enabled(0)

    def test_validation(self):
        with pytest.raises(TraceError):
            TraceConfig(line_bytes=100)
        with pytest.raises(TraceError):
            TraceConfig(dense_stride=0)
        with pytest.raises(TraceError):
            TraceConfig(sparse_from_layer=-1)
        with pytest.raises(TraceError):
            TraceConfig(bulk_branch_miss_rate=2.0)
        with pytest.raises(TraceError):
            TraceConfig(scatter_order="diagonal")


class TestTrace:
    def test_aggregates(self):
        trace = Trace()
        trace.mem(np.array([1, 2, 3]))
        trace.instr(100)
        trace.bulk_branch(50, 0.001)
        trace.dyn_branch(7, np.array([True, False]))
        assert trace.memory_accesses == 3
        assert trace.instructions == 100
        assert trace.branches == 52
        assert trace.dynamic_branches == 2

    def test_empty_ops_skipped(self):
        trace = Trace()
        trace.mem(np.array([], dtype=np.int64))
        trace.instr(0)
        trace.bulk_branch(0, 0.0)
        trace.dyn_branch(1, np.array([], dtype=bool))
        assert trace.ops == []

    def test_memory_lines_concatenates_in_order(self):
        trace = Trace()
        trace.mem(np.array([5, 6]))
        trace.instr(10)
        trace.mem(np.array([7]))
        np.testing.assert_array_equal(trace.memory_lines(), [5, 6, 7])

    def test_extend(self):
        a = Trace()
        a.instr(10)
        b = Trace()
        b.instr(20)
        a.extend(b)
        assert a.instructions == 30

    def test_negative_counts_rejected(self):
        trace = Trace()
        with pytest.raises(TraceError):
            trace.instr(-1)
        with pytest.raises(TraceError):
            trace.bulk_branch(-1, 0.0)

    def test_replay_matches_manual_feeding(self):
        trace = Trace()
        trace.mem(np.arange(30))
        trace.instr(500)
        trace.bulk_branch(100, 0.0)
        trace.dyn_branch(3, np.array([True, False, True, False] * 5))

        replayed = CpuModel(seed=0)
        replayed.begin_task()
        trace.replay(replayed)

        manual = CpuModel(seed=0)
        manual.begin_task()
        manual.load_store(np.arange(30))
        manual.retire_instructions(500)
        manual.bulk_branches(100, miss_rate=0.0)
        manual.dynamic_branches(np.full(20, 3),
                                np.array([True, False, True, False] * 5))

        assert replayed.read_counters() == manual.read_counters()

    def test_summary_mentions_totals(self):
        trace = Trace()
        trace.mem(np.array([1]))
        trace.instr(2)
        text = trace.summary()
        assert "1 mem" in text
        assert "2 instructions" in text


class TestMemoryLinesCache:
    def test_concatenation_cached_and_invalidated_on_mem(self):
        trace = Trace()
        trace.mem(np.array([1, 2, 3]))
        first = trace.memory_lines()
        assert trace.memory_lines() is first  # cached object reused
        trace.mem(np.array([4, 5]))
        np.testing.assert_array_equal(trace.memory_lines(),
                                      [1, 2, 3, 4, 5])

    def test_invalidated_on_extend(self):
        trace = Trace()
        trace.mem(np.array([7]))
        trace.memory_lines()
        other = Trace()
        other.mem(np.array([8, 9]))
        trace.extend(other)
        np.testing.assert_array_equal(trace.memory_lines(), [7, 8, 9])

    def test_empty_trace(self):
        trace = Trace()
        assert trace.memory_lines().size == 0
        trace.instr(5)  # non-mem ops leave the (empty) stream empty
        assert trace.memory_lines().size == 0
