"""Tests for repro.trace.traced_model."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.nn import Dense, Flatten, ReLU, Sequential
from repro.trace import TraceConfig, TracedInference
from repro.uarch import CpuModel, HpcEvent


class TestConstruction:
    def test_requires_built_model(self):
        with pytest.raises(TraceError):
            TracedInference(Sequential([Dense(3)]))

    def test_regions_allocated_for_weights_and_activations(self,
                                                           traced_inference):
        names = [r.name for r in traced_inference.space.regions()]
        assert "input" in names
        assert any(name.startswith("conv1.weight") for name in names)
        assert any(name.startswith("act") for name in names)

    def test_flatten_shares_its_input_region(self, traced_inference):
        model = traced_inference.model
        flatten_index = next(
            i for i, l in enumerate(model.layers)
            if type(l).__name__ == "Flatten")
        tracer = traced_inference.tracers[flatten_index]
        assert tracer.out_region is tracer.in_region

    def test_footprint_positive(self, traced_inference):
        assert traced_inference.footprint_bytes() > 10_000

    def test_describe(self, traced_inference):
        text = traced_inference.describe()
        assert "sparsity-aware" in text
        assert "input" in text


class TestTraceSample:
    def test_prediction_matches_model(self, traced_inference, digits_dataset):
        model = traced_inference.model
        for image in digits_dataset.images[:5]:
            prediction, _ = traced_inference.trace_sample(image)
            assert prediction == model.classify_one(image)

    def test_rejects_wrong_shape(self, traced_inference):
        with pytest.raises(TraceError):
            traced_inference.trace_sample(np.zeros((2, 28, 28)))

    def test_trace_is_deterministic(self, traced_inference, digits_dataset):
        image = digits_dataset.images[0]
        _, a = traced_inference.trace_sample(image)
        _, b = traced_inference.trace_sample(image)
        assert a.instructions == b.instructions
        np.testing.assert_array_equal(a.memory_lines(), b.memory_lines())

    def test_different_inputs_different_traces(self, traced_inference,
                                               digits_dataset):
        _, a = traced_inference.trace_sample(digits_dataset.images[0])
        _, b = traced_inference.trace_sample(digits_dataset.images[1])
        assert (a.memory_accesses != b.memory_accesses
                or not np.array_equal(a.memory_lines(), b.memory_lines()))

    def test_branch_count_is_input_independent(self, traced_inference,
                                               digits_dataset):
        counts = set()
        for image in digits_dataset.images[:6]:
            _, trace = traced_inference.trace_sample(image)
            counts.add(trace.branches - trace.dynamic_branches
                       + trace.dynamic_branches)  # total retired branches
        # The sparsity-aware kernels keep the branch count constant; only
        # the tiny argmax tail could vary, and it has a fixed count too.
        assert len(counts) == 1


class TestRun:
    def test_run_produces_all_events(self, traced_inference, digits_dataset):
        cpu = CpuModel(seed=0)
        prediction, counts = traced_inference.run(digits_dataset.images[0],
                                                  cpu)
        assert len(counts) == 8
        assert counts[HpcEvent.INSTRUCTIONS] > 10_000
        assert counts[HpcEvent.CACHE_MISSES] > 0

    def test_run_is_reproducible(self, traced_inference, digits_dataset):
        cpu = CpuModel(seed=0)
        image = digits_dataset.images[0]
        _, first = traced_inference.run(image, cpu)
        _, second = traced_inference.run(image, cpu)
        assert first == second


class TestBatchedInference:
    def test_trace_batch_matches_trace_sample(self, traced_inference,
                                              digits_dataset):
        batch = digits_dataset.images[:4]
        batched = traced_inference.trace_batch(batch)
        assert len(batched) == 4
        for image, (prediction, trace) in zip(batch, batched):
            expected_prediction, expected_trace = \
                traced_inference.trace_sample(image)
            assert prediction == expected_prediction
            assert trace.instructions == expected_trace.instructions
            assert trace.branches == expected_trace.branches
            np.testing.assert_array_equal(trace.memory_lines(),
                                          expected_trace.memory_lines())

    def test_run_batch_matches_run(self, traced_inference, digits_dataset):
        batch = digits_dataset.images[:3]
        batched = traced_inference.run_batch(batch, CpuModel(seed=0))
        cpu = CpuModel(seed=0)
        for image, (prediction, counts) in zip(batch, batched):
            expected_prediction, expected_counts = traced_inference.run(
                image, cpu)
            assert prediction == expected_prediction
            assert counts == expected_counts

    def test_trace_batch_rejects_unbatched_input(self, traced_inference,
                                                 digits_dataset):
        with pytest.raises(TraceError):
            traced_inference.trace_batch(digits_dataset.images[0])
        with pytest.raises(TraceError):
            traced_inference.trace_batch(np.zeros((2, 3, 28, 28)))

    def test_measure_clean_batch_matches_measure_clean(self,
                                                       tiny_trained_model,
                                                       digits_dataset):
        from repro.hpc import SimBackend
        backend = SimBackend(tiny_trained_model, noise_scale=1.0, seed=3)
        batch = digits_dataset.images[:3]
        batched = backend.measure_clean_batch(batch)
        for image, measurement in zip(batch, batched):
            expected = backend.measure_clean(image)
            assert measurement.prediction == expected.prediction
            assert measurement.counts == expected.counts


class TestConstantFootprintMode:
    def test_counts_identical_across_inputs(self, tiny_trained_model,
                                            digits_dataset):
        hardened = TracedInference(
            tiny_trained_model,
            TraceConfig(sparse_from_layer=None, branchless_compares=True))
        cpu = CpuModel(seed=0)
        readouts = []
        for image in digits_dataset.images[:5]:
            _, counts = hardened.run(image, cpu)
            readouts.append(counts)
        assert all(counts == readouts[0] for counts in readouts)

    def test_predictions_unchanged_by_hardening(self, tiny_trained_model,
                                                digits_dataset):
        hardened = TracedInference(
            tiny_trained_model,
            TraceConfig(sparse_from_layer=None, branchless_compares=True))
        for image in digits_dataset.images[:5]:
            prediction, _ = hardened.trace_sample(image)
            assert prediction == tiny_trained_model.classify_one(image)

    def test_describe_shows_constant_footprint(self, tiny_trained_model):
        hardened = TracedInference(
            tiny_trained_model, TraceConfig(sparse_from_layer=None))
        assert "constant footprint" in hardened.describe()


class TestEngines:
    def test_rejects_unknown_engine(self, tiny_trained_model):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            TracedInference(tiny_trained_model, engine="bogus")

    def test_default_engine_is_compiled(self, traced_inference):
        assert traced_inference.engine == "compiled"

    def test_trace_sample_identical_across_engines(self, tiny_trained_model,
                                                   digits_dataset):
        compiled = TracedInference(tiny_trained_model, engine="compiled")
        layers = TracedInference(tiny_trained_model, engine="layers")
        for image in digits_dataset.images[:5]:
            pc, tc = compiled.trace_sample(image)
            pl, tl = layers.trace_sample(image)
            assert pc == pl
            cpu_c, cpu_l = CpuModel(seed=0), CpuModel(seed=0)
            cpu_c.begin_task()
            tc.replay(cpu_c)
            cpu_l.begin_task()
            tl.replay(cpu_l)
            assert cpu_c.read_counters() == cpu_l.read_counters()

    def test_trace_batch_identical_across_engines(self, tiny_trained_model,
                                                  digits_dataset):
        compiled = TracedInference(tiny_trained_model, engine="compiled")
        layers = TracedInference(tiny_trained_model, engine="layers")
        batch = digits_dataset.images[:6]
        for (pc, tc), (pl, tl) in zip(compiled.trace_batch(batch),
                                      layers.trace_batch(batch)):
            assert pc == pl
            cpu_c, cpu_l = CpuModel(seed=0), CpuModel(seed=0)
            cpu_c.begin_task()
            tc.replay(cpu_c)
            cpu_l.begin_task()
            tl.replay(cpu_l)
            assert cpu_c.read_counters() == cpu_l.read_counters()

    def test_preserve_plan_compiled_once_and_lazily(self, tiny_trained_model,
                                                    digits_dataset):
        traced = TracedInference(tiny_trained_model, engine="compiled")
        assert traced._plan is None
        traced.trace_sample(digits_dataset.images[0])
        plan = traced._plan
        assert plan is not None and plan.preserve_layers
        traced.trace_sample(digits_dataset.images[1])
        assert traced._plan is plan

    def test_layers_engine_never_compiles(self, tiny_trained_model,
                                          digits_dataset):
        traced = TracedInference(tiny_trained_model, engine="layers")
        traced.trace_sample(digits_dataset.images[0])
        traced.trace_batch(digits_dataset.images[:3])
        assert traced._plan is None
