"""Tests for repro.countermeasures."""

import numpy as np
import pytest

from repro.core import Evaluator
from repro.countermeasures import (
    NoiseInjectionBackend,
    certify_equivalence,
    constant_footprint_config,
    evaluate_defense,
    footprint_overhead,
    harden_backend,
    make_hardened_backend,
)
from repro.errors import BackendError
from repro.hpc import EventDistributions, MeasurementSession, SimBackend
from repro.trace import TraceConfig
from repro.uarch import HpcEvent


class TestConstantFootprintConfig:
    def test_transform(self):
        hardened = constant_footprint_config(TraceConfig(dense_stride=2))
        assert hardened.sparse_from_layer is None
        assert hardened.branchless_compares
        assert hardened.dense_stride == 2  # unrelated knobs preserved

    def test_default_base(self):
        hardened = constant_footprint_config()
        assert hardened.sparse_from_layer is None


class TestHardenedBackend:
    def test_counts_identical_across_inputs(self, tiny_trained_model,
                                            digits_dataset):
        backend = make_hardened_backend(tiny_trained_model, noise_scale=0.0)
        readouts = [backend.measure(image).counts
                    for image in digits_dataset.images[:5]]
        assert all(counts == readouts[0] for counts in readouts)

    def test_harden_backend_clones_settings(self, tiny_trained_model):
        base = SimBackend(tiny_trained_model, noise_scale=0.5, seed=3)
        hardened = harden_backend(base)
        assert hardened.noise_scale == 0.5
        assert hardened.seed == 3
        assert hardened.trace_config.sparse_from_layer is None
        assert hardened.fingerprint() != base.fingerprint()

    def test_baseline_backend_actually_varies(self, tiny_trained_model,
                                              digits_dataset):
        backend = SimBackend(tiny_trained_model, noise_scale=0.0)
        readouts = [backend.measure(image).counts
                    for image in digits_dataset.images[:5]]
        assert any(counts != readouts[0] for counts in readouts[1:])

    def test_overhead_factor_above_one(self, tiny_trained_model):
        assert footprint_overhead(tiny_trained_model) > 1.0


class TestNoiseInjection:
    def test_zero_amplitude_passthrough(self, tiny_trained_model,
                                        digits_dataset):
        inner = SimBackend(tiny_trained_model, noise_scale=0.0)
        wrapped = NoiseInjectionBackend(inner, amplitude=0.0)
        image = digits_dataset.images[0]
        assert wrapped.measure(image).counts == inner.measure(image).counts

    def test_injection_inflates_variance(self, tiny_trained_model,
                                         digits_dataset):
        image = digits_dataset.images[0]

        def spread(backend, n=12):
            values = [backend.measure(image).counts[HpcEvent.CACHE_MISSES]
                      for _ in range(n)]
            return float(np.std(values))

        clean = SimBackend(tiny_trained_model, noise_scale=0.0)
        noisy = NoiseInjectionBackend(
            SimBackend(tiny_trained_model, noise_scale=0.0),
            amplitude=0.10, seed=1)
        assert spread(noisy) > spread(clean) + 1.0

    def test_injection_only_adds(self, tiny_trained_model, digits_dataset):
        image = digits_dataset.images[0]
        inner = SimBackend(tiny_trained_model, noise_scale=0.0)
        reference = inner.measure(image).counts
        wrapped = NoiseInjectionBackend(
            SimBackend(tiny_trained_model, noise_scale=0.0),
            amplitude=0.05, seed=2)
        noisy = wrapped.measure(image).counts
        for event in reference:
            assert noisy[event] >= reference[event]

    def test_rejects_negative_amplitude(self, tiny_trained_model):
        inner = SimBackend(tiny_trained_model)
        with pytest.raises(BackendError):
            NoiseInjectionBackend(inner, amplitude=-0.1)

    def test_fingerprint_includes_amplitude(self, tiny_trained_model):
        inner = SimBackend(tiny_trained_model)
        a = NoiseInjectionBackend(inner, amplitude=0.1).fingerprint()
        b = NoiseInjectionBackend(inner, amplitude=0.2).fingerprint()
        assert a != b


class TestDefenseEvaluation:
    def test_certify_equivalence_on_identical_data(self):
        rng = np.random.default_rng(0)
        dists = EventDistributions({
            1: {HpcEvent.CACHE_MISSES: rng.normal(1000, 2, 100)},
            2: {HpcEvent.CACHE_MISSES: rng.normal(1000, 2, 100)},
        })
        assert certify_equivalence(dists, HpcEvent.CACHE_MISSES,
                                   margin_fraction=0.005) == 1.0

    def test_certify_fails_on_separated_data(self):
        rng = np.random.default_rng(0)
        dists = EventDistributions({
            1: {HpcEvent.CACHE_MISSES: rng.normal(1000, 2, 100)},
            2: {HpcEvent.CACHE_MISSES: rng.normal(1100, 2, 100)},
        })
        assert certify_equivalence(dists, HpcEvent.CACHE_MISSES,
                                   margin_fraction=0.005) == 0.0

    def test_full_defense_evaluation(self, tiny_trained_model,
                                     digits_dataset):
        hardened = make_hardened_backend(tiny_trained_model, noise_scale=0.2,
                                         seed=4)
        report = evaluate_defense(hardened, digits_dataset, [0, 1, 2], 8)
        assert report.equivalence  # per-event certification present
        text = report.summary()
        assert "defended alarm" in text
        assert "TOST" in text

    def test_defense_report_with_baseline(self, tiny_trained_model,
                                          digits_dataset):
        baseline_backend = SimBackend(tiny_trained_model, noise_scale=0.2,
                                      seed=4)
        session = MeasurementSession(baseline_backend, warmup=0)
        baseline_dists = session.collect(digits_dataset, [0, 1, 2], 8)
        baseline_report = Evaluator().evaluate(baseline_dists)
        hardened = harden_backend(baseline_backend)
        report = evaluate_defense(hardened, digits_dataset, [0, 1, 2], 8,
                                  baseline_report=baseline_report)
        assert "baseline alarm" in report.summary()
