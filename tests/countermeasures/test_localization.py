"""Tests for repro.countermeasures.localization."""

import numpy as np
import pytest

from repro.countermeasures import LayerLeak, LocalizationReport, localize_leak
from repro.errors import EvaluationError
from repro.trace import TraceConfig, TracedInference
from repro.uarch import HpcEvent


class TestSparseLayersKnob:
    def test_explicit_selection_overrides_threshold(self):
        config = TraceConfig(sparse_from_layer=1, sparse_layers=(3,))
        assert not config.sparse_enabled(1)
        assert config.sparse_enabled(3)

    def test_empty_selection_is_all_dense(self):
        config = TraceConfig(sparse_layers=())
        assert not any(config.sparse_enabled(i) for i in range(10))

    def test_isolated_layer_trace_differs_from_all_dense(
            self, tiny_trained_model, digits_dataset):
        sample = digits_dataset.images[0]
        dense = TracedInference(tiny_trained_model,
                                TraceConfig(sparse_layers=()))
        isolated = TracedInference(tiny_trained_model,
                                   TraceConfig(sparse_layers=(3,)))
        _, dense_trace = dense.trace_sample(sample)
        _, isolated_trace = isolated.trace_sample(sample)
        assert (dense_trace.memory_accesses
                != isolated_trace.memory_accesses)


class TestLayerLeak:
    def test_floor_comparison(self):
        leak = LayerLeak(0, "conv", "Conv2D", rejections=3, total_pairs=6,
                         max_abs_t=4.0)
        assert leak.leaks_above(1)
        assert not leak.leaks_above(3)
        assert "LEAKS" in leak.format(floor=1)
        assert "quiet" in leak.format(floor=5)


class TestLocalization:
    @pytest.fixture(scope="class")
    def report(self, tiny_trained_model, digits_dataset):
        return localize_leak(tiny_trained_model, digits_dataset,
                             [0, 1, 2], 10, seed=3)

    def test_one_entry_per_layer(self, report, tiny_trained_model):
        assert len(report.layers) == len(tiny_trained_model.layers)
        assert [leak.layer_index for leak in report.layers] == list(
            range(len(tiny_trained_model.layers)))

    def test_weight_layers_dominate(self, report):
        by_name = {leak.layer_name: leak for leak in report.layers}
        weight_strength = max(by_name["conv2"].max_abs_t,
                              by_name["fc"].max_abs_t)
        elementwise_strength = max(
            leak.max_abs_t for leak in report.layers
            if leak.layer_type in ("ReLU", "Flatten"))
        assert weight_strength > elementwise_strength

    def test_culprits_exclude_noise_floor(self, report):
        for leak in report.culprits():
            assert leak.rejections > report.floor_rejections

    def test_ranked_is_descending(self, report):
        ranked = report.ranked()
        keys = [(leak.rejections, leak.max_abs_t) for leak in ranked]
        assert keys == sorted(keys, reverse=True)

    def test_summary_text(self, report):
        text = report.summary()
        assert "leak localization on cache-misses" in text
        assert "noise floor" in text
        assert "layers to harden first" in text

    def test_rejects_tiny_budget(self, tiny_trained_model, digits_dataset):
        with pytest.raises(EvaluationError):
            localize_leak(tiny_trained_model, digits_dataset, [0, 1], 1)
