"""Tests for the repro command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def tiny_args(tmp_path, monkeypatch):
    """CLI argument suffix keeping runs small and cache isolated."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return ["--samples", "3", "--categories", "0", "1"]


@pytest.fixture()
def fast_training(monkeypatch):
    """Shrink training so CLI tests stay quick."""
    import importlib

    # `repro.cli.main` the *attribute* is the main() function (re-exported
    # by the package), so resolve the module object via importlib.
    cli_main = importlib.import_module("repro.cli.main")
    from repro.core.experiment import ExperimentConfig as original

    def patched(**kwargs):
        kwargs.setdefault("train_samples_per_class", 8)
        kwargs.setdefault("epochs", 1)
        return original(**kwargs)

    monkeypatch.setattr(cli_main, "ExperimentConfig", patched)
    return patched


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction")
        commands = set(subparsers.choices)
        assert {"evaluate", "figure1", "figure2", "figure3", "figure4",
                "table1", "table2", "attack", "defend", "perf-probe",
                "info", "bits", "latency", "localize",
                "telemetry", "report", "stream"} <= commands

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--dataset", "imagenet"])

    def test_engine_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--engine", "turbo"])

    def test_engine_flag_reaches_config(self):
        from repro.cli.main import _config_from_args
        args = build_parser().parse_args(["evaluate", "--engine", "layers"])
        assert _config_from_args(args).engine == "layers"
        # Unset flag keeps the config default (compiled).
        args = build_parser().parse_args(["evaluate"])
        assert args.engine is None
        assert _config_from_args(args).engine == "compiled"

    def test_backend_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--backend", "quantum"])

    def test_backend_flag_reaches_config(self):
        from repro.cli.main import _config_from_args
        args = build_parser().parse_args(["evaluate", "--backend", "auto"])
        assert _config_from_args(args).backend == "auto"
        args = build_parser().parse_args(["evaluate"])
        assert args.backend is None
        assert _config_from_args(args).backend == "sim"

    def test_retries_flag_reaches_config(self):
        from repro.cli.main import _config_from_args
        args = build_parser().parse_args(["evaluate", "--retries", "5"])
        assert _config_from_args(args).retries == 5
        args = build_parser().parse_args(["evaluate"])
        assert args.retries is None
        assert _config_from_args(args).retries == 3


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "Conv2D" in out

    def test_perf_probe_runs(self, capsys):
        code = main(["perf-probe"])
        out = capsys.readouterr().out
        assert "perf hardware counters" in out
        assert "backend=auto would select:" in out
        assert code in (0, 1)

    def test_perf_probe_with_retries(self, capsys, monkeypatch):
        probes = []

        def failing_probe(events=(), timeout=10.0, retry=None):
            if retry is not None:
                return retry.call_until(
                    lambda: failing_probe(events, timeout))
            probes.append(1)
            return False

        monkeypatch.setattr("repro.hpc.perf_backend.perf_available",
                            failing_probe)
        code = main(["perf-probe", "--retries", "3"])
        out = capsys.readouterr().out
        assert code == 1
        assert "NOT available" in out
        assert "backend=auto would select: sim" in out
        assert len(probes) == 3  # the probe itself was retried

    def test_evaluate_tiny(self, tiny_args, fast_training, capsys):
        assert main(["evaluate"] + tiny_args) == 0
        out = capsys.readouterr().out
        assert "leakage evaluation" in out
        assert "model accuracy" in out

    def test_evaluate_layers_engine(self, tiny_args, fast_training, capsys):
        assert main(["evaluate", "--engine", "layers"] + tiny_args) == 0
        assert "leakage evaluation" in capsys.readouterr().out

    def test_table1_tiny(self, tiny_args, fast_training, capsys):
        assert main(["table1", "--csv"] + tiny_args) == 0
        out = capsys.readouterr().out
        assert "cache-misses t" in out
        assert "event,category_a" in out  # CSV header

    def test_figure1_tiny(self, tiny_args, fast_training, capsys):
        assert main(["figure1"] + tiny_args) == 0
        assert "average cache-misses" in capsys.readouterr().out

    def test_figure2_tiny(self, tiny_args, fast_training, capsys):
        assert main(["figure2"] + tiny_args) == 0
        out = capsys.readouterr().out
        assert "HPC events for one" in out
        assert "instructions" in out

    def test_figure3_tiny(self, tiny_args, fast_training, capsys):
        assert main(["figure3", "--event", "branches"] + tiny_args) == 0
        assert "distribution of branches" in capsys.readouterr().out

    def test_attack_tiny(self, tiny_args, fast_training, capsys):
        assert main(["attack"] + tiny_args) == 0
        assert "input-recovery attack" in capsys.readouterr().out

    def test_defend_tiny(self, tiny_args, fast_training, capsys):
        assert main(["defend"] + tiny_args) == 0
        out = capsys.readouterr().out
        assert "defended alarm" in out
        assert "overhead" in out

    def test_attack_prime_probe_tiny(self, tiny_args, fast_training, capsys):
        assert main(["attack", "--technique", "prime-probe"]
                    + tiny_args) == 0
        assert "prime+probe attack" in capsys.readouterr().out

    def test_attack_flush_reload_tiny(self, tiny_args, fast_training,
                                      capsys):
        assert main(["attack", "--technique", "flush-reload"]
                    + tiny_args) == 0
        assert "flush+reload attack" in capsys.readouterr().out

    def test_bits_tiny(self, tiny_args, fast_training, capsys):
        assert main(["bits"] + tiny_args) == 0
        out = capsys.readouterr().out
        assert "bits" in out
        assert "cache-misses" in out

    def test_latency_tiny(self, tiny_args, fast_training, capsys):
        assert main(["latency", "--event", "cache-misses"] + tiny_args) == 0
        out = capsys.readouterr().out
        assert "vs budget" in out

    def test_localize_tiny(self, tiny_args, fast_training, capsys):
        assert main(["localize"] + tiny_args) == 0
        out = capsys.readouterr().out
        assert "leak localization" in out
        assert "harden first" in out

    def test_info_reports_telemetry_config(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "REPRO_TELEMETRY" in out


class TestTelemetry:
    @pytest.fixture(autouse=True)
    def restore_runtime(self):
        """CLI telemetry flags install a global runtime; restore it."""
        yield
        from repro import obs
        obs.reset()

    def test_telemetry_subcommand_prints_breakdown(self, tiny_args,
                                                   fast_training, capsys):
        assert main(["telemetry"] + tiny_args) == 0
        out = capsys.readouterr().out
        assert "model accuracy" in out
        assert "telemetry summary" in out
        for stage in ("experiment.train", "experiment.measure",
                      "experiment.evaluate"):
            assert stage in out
        assert "cache.miss{kind=measurement}" in out
        assert "ttest.pairs" in out

    def test_evaluate_with_telemetry_flag(self, tiny_args, fast_training,
                                          capsys):
        assert main(["evaluate", "--telemetry"] + tiny_args) == 0
        out = capsys.readouterr().out
        assert "leakage evaluation" in out
        assert "telemetry summary" in out
        assert "experiment.run" in out

    def test_evaluate_telemetry_out_writes_jsonl(self, tiny_args,
                                                 fast_training, tmp_path,
                                                 capsys):
        from repro.obs import read_jsonl
        path = tmp_path / "telemetry.jsonl"
        assert main(["evaluate", "--telemetry-out", str(path)]
                    + tiny_args) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" not in out  # console off without the flag
        assert f"wrote telemetry JSONL to {path}" in out
        records = read_jsonl(path)
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {"experiment.run", "experiment.train",
                "experiment.measure", "experiment.evaluate"} <= span_names
        assert any(r["type"] == "metric" for r in records)

    def test_telemetry_disabled_by_default(self, tiny_args, fast_training,
                                           capsys):
        assert main(["evaluate"] + tiny_args) == 0
        assert "telemetry summary" not in capsys.readouterr().out

    def test_profile_flag_reaches_config(self):
        from repro.cli.main import _config_from_args
        args = build_parser().parse_args(["evaluate", "--profile"])
        telemetry = _config_from_args(args).telemetry
        assert telemetry.enabled and telemetry.profile
        assert not telemetry.console

    def test_progress_flag_alone_keeps_telemetry_off(self):
        from repro.cli.main import _config_from_args
        args = build_parser().parse_args(["evaluate", "--progress"])
        telemetry = _config_from_args(args).telemetry
        assert telemetry.progress and not telemetry.enabled

    def test_report_subcommand_writes_artifact(self, tiny_args,
                                               fast_training, tmp_path,
                                               capsys):
        import json

        path = tmp_path / "RUN_REPORT.json"
        assert main(["report", "--out", str(path), "--workers", "2"]
                    + tiny_args) == 0
        out = capsys.readouterr().out
        assert "cpu_count=" in out
        assert "workers=2" in out
        assert f"wrote run report to {path}" in out
        report = json.loads(path.read_text())
        assert report["type"] == "run_report"
        assert report["environment"]["cpu_count"] >= 1
        assert report["environment"]["workers"] == 2
        assert report["result"]["pairs"] > 0
        assert report["spans"][0]["name"] == "experiment.run"
        assert report["profile"]  # --profile is implied by `report`
        names = {r["name"] for r in report["deterministic_metrics"]}
        assert "measurement.samples" in names

    def test_stream_tiny(self, tiny_args, fast_training, capsys):
        assert main(["stream", "--batch-size", "2"] + tiny_args) == 0
        out = capsys.readouterr().out
        assert "ticks=2" in out  # 3 samples in rounds of 2 + 1
        assert "evaluator_memory=" in out
        assert "samples/category at first detection" in out
        assert "verdict:" in out

    def test_stream_parser_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.batch_size == 25
        args = build_parser().parse_args(["report"])
        assert args.stream_batch == 25

    def test_report_includes_streaming_section(self, tiny_args,
                                               fast_training, tmp_path,
                                               capsys):
        import json

        path = tmp_path / "RUN_REPORT.json"
        assert main(["report", "--out", str(path), "--stream-batch", "2"]
                    + tiny_args) == 0
        out = capsys.readouterr().out
        assert "streaming: ticks=2" in out
        report = json.loads(path.read_text())
        assert report["schema"] >= 2
        streaming = report["streaming"]
        assert streaming["batch_size"] == 2
        assert streaming["ticks"] == 2
        assert streaming["memory_bytes"] > 0
        rows = streaming["detections"]
        assert rows == sorted(rows, key=lambda r: (r["event"],
                                                   r["category_a"],
                                                   r["category_b"]))


class TestServeCommand:
    def test_serve_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction")
        assert "serve" in subparsers.choices

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.tenants == 2
        assert args.policy == "block"
        assert args.queue_capacity == 8
        assert args.drift_threshold == 5.0
        assert args.rps == 0.0

    def test_serve_smoke(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "serve.json"
        assert main(["serve", "--tenants", "2", "--rounds", "8",
                     "--batch-size", "10", "--drift-after", "5",
                     "--seed", "3", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "tenants=2" in out
        assert "queue memory: peak" in out
        assert "tenant0:" in out and "tenant1:" in out
        assert "leak_alarm=yes" in out
        payload = json.loads(out_path.read_text())
        assert payload["tenants"] == 2
        assert payload["queue_peak_bytes"] <= payload["queue_ceiling_bytes"]
        assert len(payload["per_tenant"]) == 2
        for row in payload["per_tenant"]:
            assert row["rounds"] == 8
            assert row["leakage_alarm"] is True
            assert row["p95_ingest_ms"] >= 0.0

    def test_serve_state_dir_round_trip(self, tmp_path, capsys):
        state = tmp_path / "state"
        base = ["serve", "--tenants", "1", "--rounds", "4",
                "--batch-size", "6", "--state-dir", str(state)]
        assert main(base) == 0
        assert (state / "tenant-tenant0.npz").exists()
        capsys.readouterr()
        # Second run resumes: rounds accumulate instead of restarting.
        assert main(base) == 0
        assert "rounds=8" in capsys.readouterr().out

    def test_serve_reject_policy(self, capsys):
        assert main(["serve", "--tenants", "1", "--rounds", "6",
                     "--batch-size", "4", "--policy", "reject",
                     "--queue-capacity", "1"]) == 0
        assert "admission=reject" in capsys.readouterr().out


class TestStreamDriftFlag:
    def test_stream_drift_threshold_output(self, tiny_args, fast_training,
                                           capsys):
        assert main(["stream", "--batch-size", "2",
                     "--drift-threshold", "1000", "--drift-window", "4"]
                    + tiny_args) == 0
        out = capsys.readouterr().out
        assert "drift: no alarm" in out
        assert "|z|>=1000" in out

    def test_stream_drift_parser_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.drift_threshold is None
        assert args.drift_window == 32
