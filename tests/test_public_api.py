"""Public-API quality gates.

Every ``__all__`` entry must resolve, every public item must carry a
docstring, and the version metadata must be coherent — the contract a
downstream user relies on before reading any code.
"""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.attack",
    "repro.cli",
    "repro.core",
    "repro.countermeasures",
    "repro.datasets",
    "repro.hpc",
    "repro.nn",
    "repro.obs",
    "repro.parallel",
    "repro.resilience",
    "repro.stats",
    "repro.trace",
    "repro.uarch",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} missing __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} does not resolve"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_entries_sorted_and_unique(module_name):
    module = importlib.import_module(module_name)
    exported = list(module.__all__)
    assert len(exported) == len(set(exported)), (
        f"{module_name}.__all__ has duplicates"
    )


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} missing a module docstring"
    missing = []
    for name in module.__all__:
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not inspect.getdoc(item):
                missing.append(name)
    assert not missing, f"{module_name} items without docstrings: {missing}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_classes_document_their_methods(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name in module.__all__:
        item = getattr(module, name)
        if not inspect.isclass(item):
            continue
        for method_name, method in inspect.getmembers(
                item, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if method.__qualname__.split(".")[0] != item.__name__:
                continue  # inherited elsewhere; documented at the source
            if not inspect.getdoc(method):
                missing.append(f"{name}.{method_name}")
    assert not missing, (
        f"{module_name} public methods without docstrings: {missing}"
    )


def test_version_metadata():
    import repro
    from repro.version import VERSION_INFO

    assert repro.__version__.count(".") == 2
    assert VERSION_INFO == tuple(
        int(part) for part in repro.__version__.split("."))


def test_error_hierarchy_is_catchable():
    import repro.errors as errors

    base = errors.ReproError
    for name in dir(errors):
        item = getattr(errors, name)
        if (inspect.isclass(item) and issubclass(item, Exception)
                and item is not base and item.__module__ == "repro.errors"):
            assert issubclass(item, base), f"{name} escapes ReproError"
