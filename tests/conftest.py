"""Shared fixtures for the test suite.

Heavy artifacts (trained models, traced-inference bindings) are session
scoped so the many tests that need "a small trained CNN" pay for training
once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import build_model
from repro.datasets import SyntheticDigits, SyntheticObjects
from repro.nn import Adam, Trainer
from repro.trace import TracedInference


@pytest.fixture(scope="session")
def digits_dataset():
    """A small deterministic digit dataset (10 classes x 12 samples)."""
    return SyntheticDigits().generate(12, seed=101)


@pytest.fixture(scope="session")
def objects_dataset():
    """A small deterministic CIFAR-like dataset (10 classes x 8 samples)."""
    return SyntheticObjects().generate(8, seed=202)


@pytest.fixture(scope="session")
def tiny_trained_model(digits_dataset):
    """A quickly trained MNIST-style CNN (enough epochs to beat chance)."""
    model = build_model("mnist", seed=3)
    train, _ = digits_dataset.split(0.8, seed=4)
    trainer = Trainer(model, optimizer=Adam(0.002), batch_size=32,
                      shuffle_seed=3)
    trainer.fit(train.images, train.labels, epochs=3)
    return model


@pytest.fixture(scope="session")
def traced_inference(tiny_trained_model):
    """Traced binding of the session model (default sparse config)."""
    return TracedInference(tiny_trained_model)


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)
