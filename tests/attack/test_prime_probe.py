"""Tests for the simulated Prime+Probe attack."""

import numpy as np
import pytest

from repro.attack import PrimeProbeAttacker, collect_probe_vectors
from repro.errors import SimulationError
from repro.trace import Trace
from repro.uarch import CacheGeometry, HierarchyConfig


def small_hierarchy():
    return HierarchyConfig(
        l1=CacheGeometry(2 * 64, 64, 2),
        l2=CacheGeometry(8 * 64, 64, 2),
        llc=CacheGeometry(8 * 4 * 64, 64, 4),  # 8 sets x 4 ways
    )


def trace_touching(lines):
    trace = Trace()
    trace.mem(np.asarray(lines, dtype=np.int64))
    return trace


class TestProbeVector:
    def test_idle_victim_displaces_nothing(self):
        attacker = PrimeProbeAttacker(small_hierarchy())
        # One access that stays inside the victim's private L1 after the
        # first epoch boundary is unavoidable; touch a single line.
        vector = attacker.probe_vector(trace_touching([0]), epochs=1)
        assert vector.shape == (8,)
        assert vector.sum() == 1  # exactly the one displaced way

    def test_victim_activity_lands_in_the_right_set(self):
        attacker = PrimeProbeAttacker(small_hierarchy())
        # Victim touches 4 distinct lines all mapping to LLC set 3.
        lines = [3 + 8 * i for i in range(4)]
        vector = attacker.probe_vector(trace_touching(lines), epochs=1)
        assert vector[3] == 4
        assert vector.sum() == 4

    def test_saturation_bounded_by_associativity(self):
        attacker = PrimeProbeAttacker(small_hierarchy())
        lines = [5 + 8 * i for i in range(20)]  # 20 lines into set 5
        vector = attacker.probe_vector(trace_touching(lines), epochs=1)
        assert vector[5] == 4  # can't displace more ways than exist

    def test_epoch_slicing_shape_and_content(self):
        attacker = PrimeProbeAttacker(small_hierarchy())
        # First half touches set 0, second half set 7.
        trace = Trace()
        trace.mem(np.asarray([0, 8, 16, 24], dtype=np.int64))
        trace.mem(np.asarray([7, 15, 23, 31], dtype=np.int64))
        vector = attacker.probe_vector(trace, epochs=2)
        assert vector.shape == (16,)
        first, second = vector[:8], vector[8:]
        assert first[0] == 4 and first[7] == 0
        assert second[7] == 4 and second[0] == 0

    def test_deterministic(self, rng):
        attacker = PrimeProbeAttacker(small_hierarchy())
        lines = rng.integers(0, 64, size=200)
        a = attacker.probe_vector(trace_touching(lines), epochs=4)
        b = attacker.probe_vector(trace_touching(lines), epochs=4)
        np.testing.assert_array_equal(a, b)

    def test_rejects_empty_trace_and_bad_epochs(self):
        attacker = PrimeProbeAttacker(small_hierarchy())
        with pytest.raises(SimulationError):
            attacker.probe_vector(Trace(), epochs=1)
        with pytest.raises(SimulationError):
            attacker.probe_vector(trace_touching([1]), epochs=0)

    def test_describe(self):
        attacker = PrimeProbeAttacker(small_hierarchy())
        assert "8 LLC sets x 4 ways" in attacker.describe()


class TestCollection:
    def test_probe_vectors_labelled_and_shaped(self, tiny_trained_model,
                                               digits_dataset):
        x, y = collect_probe_vectors(tiny_trained_model, digits_dataset,
                                     [0, 1], 3, epochs=4)
        attacker = PrimeProbeAttacker()
        assert x.shape == (6, 4 * attacker.num_sets)
        assert sorted(set(y.tolist())) == [0, 1]

    def test_vectors_vary_with_input(self, tiny_trained_model,
                                     digits_dataset):
        x, _ = collect_probe_vectors(tiny_trained_model, digits_dataset,
                                     [0], 3, epochs=4)
        assert not np.array_equal(x[0], x[1])

    def test_insufficient_samples_rejected(self, tiny_trained_model,
                                           digits_dataset):
        with pytest.raises(SimulationError):
            collect_probe_vectors(tiny_trained_model, digits_dataset,
                                  [0], 10_000)


class TestFullAttack:
    def test_recovers_categories_above_chance(self, tiny_trained_model,
                                              digits_dataset):
        from repro.attack import prime_probe_attack

        result = prime_probe_attack(tiny_trained_model, digits_dataset,
                                    [0, 1], 10,
                                    classifier="nearest-centroid", seed=2)
        assert result.chance_level == pytest.approx(0.5)
        assert result.accuracy > 0.6
        assert result.n_train + result.n_test == 20
        assert "prime+probe attack" in result.summary()
