"""Trace-store tests: roundtrip fidelity, corruption eviction, keying."""

import numpy as np
import pytest

from repro.attack.trace_store import (
    TraceStore,
    collect_traces,
    traces_from_arrays,
    traces_to_arrays,
)
from repro.errors import MeasurementError, SimulationError
from repro.trace.recorder import OP_MEM, Trace, TraceConfig


def make_traces(rng, n=4):
    traces = []
    for _ in range(n):
        trace = Trace()
        for _ in range(int(rng.integers(1, 4))):
            trace.mem(rng.integers(0, 500, size=int(rng.integers(1, 60))),
                      write=bool(rng.random() < 0.5))
        traces.append(trace)
    return traces


def mem_ops(trace):
    return [(op[1].tolist(), op[2]) for op in trace.ops if op[0] == OP_MEM]


def test_array_roundtrip_preserves_memory_ops(rng):
    traces = make_traces(rng)
    rebuilt = traces_from_arrays(traces_to_arrays(traces))
    assert len(rebuilt) == len(traces)
    for original, copy in zip(traces, rebuilt):
        assert mem_ops(original) == mem_ops(copy)
        assert np.array_equal(original.memory_lines(), copy.memory_lines())


def test_inconsistent_payload_rejected(rng):
    arrays = traces_to_arrays(make_traces(rng))
    torn = dict(arrays)
    torn["lines"] = arrays["lines"][:-1]  # truncated payload
    with pytest.raises(MeasurementError):
        traces_from_arrays(torn)
    torn = dict(arrays)
    torn["ops_per_sample"] = arrays["ops_per_sample"] + 1
    with pytest.raises(MeasurementError):
        traces_from_arrays(torn)


def test_store_roundtrip_and_hit(tmp_path, rng):
    store = TraceStore(tmp_path)
    traces = make_traces(rng)
    key = "some|content|key"
    assert store.get(key) is None
    store.put(key, traces)
    loaded = store.get(key)
    assert loaded is not None
    for original, copy in zip(traces, loaded):
        assert mem_ops(original) == mem_ops(copy)


def test_store_corruption_evicts_and_misses(tmp_path, rng):
    store = TraceStore(tmp_path)
    key = "poisoned"
    path = store.put(key, make_traces(rng))
    path.write_bytes(b"not an npz archive")
    assert store.get(key) is None
    assert not path.exists()  # evicted, next put repopulates
    store.put(key, make_traces(rng))
    assert store.get(key) is not None


def test_store_remove_and_temp_cleanup(tmp_path, rng):
    store = TraceStore(tmp_path)
    store.put("k", make_traces(rng))
    store.remove("k")
    assert store.get("k") is None
    store.remove("k")  # idempotent
    # Atomic writes leave no temp droppings behind.
    store.put("k2", make_traces(rng))
    assert not list(tmp_path.glob("*.tmp-*"))


def test_concurrent_writers_last_replace_wins(tmp_path, rng):
    # Two processes racing on one key both succeed; the entry stays intact
    # (os.replace is atomic), whichever write lands last.
    store_a = TraceStore(tmp_path)
    store_b = TraceStore(tmp_path)
    first = make_traces(rng, n=2)
    second = make_traces(rng, n=2)
    store_a.put("shared", first)
    store_b.put("shared", second)
    loaded = store_a.get("shared")
    assert loaded is not None
    assert [mem_ops(t) for t in loaded] == [mem_ops(t) for t in second]


def test_key_sensitivity(tiny_trained_model):
    base = TraceStore.key_for(tiny_trained_model, None, "digits", 1, 4)
    assert TraceStore.key_for(tiny_trained_model, None, "digits", 1, 4) == base
    assert TraceStore.key_for(tiny_trained_model, None, "digits", 2, 4) != base
    assert TraceStore.key_for(tiny_trained_model, None, "digits", 1, 5) != base
    assert TraceStore.key_for(tiny_trained_model, None, "other", 1, 4) != base
    assert TraceStore.key_for(tiny_trained_model, None, "digits", 1, 4,
                              tag="seed=9") != base
    sparse = TraceConfig(sparse_from_layer=None)
    if repr(sparse) != repr(TraceConfig()):
        assert TraceStore.key_for(tiny_trained_model, sparse,
                                  "digits", 1, 4) != base


def test_collect_traces_uses_store(tmp_path, tiny_trained_model,
                                   digits_dataset):
    store = TraceStore(tmp_path)
    traces, labels = collect_traces(tiny_trained_model, digits_dataset,
                                    [1, 2], 3, store=store)
    assert len(traces) == 6
    assert labels.tolist() == [1, 1, 1, 2, 2, 2]
    files = list(tmp_path.glob("trace-*.npz"))
    assert len(files) == 2  # one entry per category
    # Second collection is served from disk and replays identically.
    again, labels2 = collect_traces(tiny_trained_model, digits_dataset,
                                    [1, 2], 3, store=store)
    assert labels2.tolist() == labels.tolist()
    for a, b in zip(traces, again):
        assert mem_ops(a) == mem_ops(b)


def test_collect_traces_insufficient_samples(tiny_trained_model,
                                             digits_dataset):
    with pytest.raises(SimulationError):
        collect_traces(tiny_trained_model, digits_dataset, [1], 10 ** 6)
