"""Tests for repro.attack.classifiers."""

import numpy as np
import pytest

from repro.attack import (
    GaussianNaiveBayes,
    LinearDiscriminant,
    NearestCentroid,
    make_classifier,
)
from repro.errors import StatisticsError

ALL_CLASSIFIERS = ("gaussian-nb", "lda", "nearest-centroid")


def blobs(rng, separation=6.0, n=60, features=4, classes=3):
    """Well-separated Gaussian blobs."""
    xs, ys = [], []
    for label in range(classes):
        center = rng.normal(size=features) * 0.1 + label * separation
        xs.append(rng.normal(center, 1.0, size=(n, features)))
        ys.append(np.full(n, label))
    return np.concatenate(xs), np.concatenate(ys)


class TestSeparableAccuracy:
    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_near_perfect_on_separated_blobs(self, name, rng):
        x, y = blobs(rng)
        classifier = make_classifier(name)
        classifier.fit(x, y)
        assert classifier.score(x, y) > 0.98

    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_generalizes_to_fresh_samples(self, name, rng):
        x, y = blobs(rng)
        x2, y2 = blobs(np.random.default_rng(77))
        classifier = make_classifier(name).fit(x, y)
        assert classifier.score(x2, y2) > 0.95

    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_chance_level_on_identical_classes(self, name, rng):
        x = rng.normal(size=(200, 3))
        y = rng.integers(0, 2, size=200)
        classifier = make_classifier(name).fit(x, y)
        assert classifier.score(x, y) < 0.75


class TestGaussianNB:
    def test_log_posterior_shape(self, rng):
        x, y = blobs(rng, classes=2)
        model = GaussianNaiveBayes().fit(x, y)
        assert model.log_posterior(x[:5]).shape == (5, 2)

    def test_priors_reflect_imbalance(self, rng):
        x = np.concatenate([rng.normal(0, 1, (90, 2)),
                            rng.normal(0, 1, (10, 2))])
        y = np.concatenate([np.zeros(90), np.ones(10)]).astype(int)
        model = GaussianNaiveBayes().fit(x, y)
        # Ambiguous points should lean towards the majority class.
        predictions = model.predict(rng.normal(0, 1, (200, 2)))
        assert np.mean(predictions == 0) > 0.7

    def test_unfitted_predict_rejected(self, rng):
        with pytest.raises(StatisticsError):
            GaussianNaiveBayes().predict(rng.normal(size=(2, 2)))


class TestLda:
    def test_shrinkage_bounds(self):
        with pytest.raises(StatisticsError):
            LinearDiscriminant(shrinkage=-0.1)
        with pytest.raises(StatisticsError):
            LinearDiscriminant(shrinkage=1.1)

    def test_decision_function_shape(self, rng):
        x, y = blobs(rng, classes=3)
        model = LinearDiscriminant().fit(x, y)
        assert model.decision_function(x[:7]).shape == (7, 3)

    def test_handles_correlated_features(self, rng):
        base = rng.normal(size=(120, 1))
        x = np.hstack([base, base * 2.0 + rng.normal(0, 0.01, (120, 1))])
        y = (base[:, 0] > 0).astype(int)
        model = LinearDiscriminant(shrinkage=0.2).fit(x, y)
        assert model.score(x, y) > 0.95


class TestValidation:
    @pytest.mark.parametrize("name", ALL_CLASSIFIERS)
    def test_fit_input_checks(self, name, rng):
        classifier = make_classifier(name)
        with pytest.raises(StatisticsError):
            classifier.fit(rng.normal(size=(4,)), np.array([0, 1, 0, 1]))
        with pytest.raises(StatisticsError):
            classifier.fit(rng.normal(size=(4, 2)), np.array([0, 1]))
        with pytest.raises(StatisticsError):
            classifier.fit(rng.normal(size=(4, 2)), np.zeros(4))

    def test_unknown_name(self):
        with pytest.raises(StatisticsError):
            make_classifier("svm")


class TestQuadraticExpansionEquivalence:
    """The memory-lean two-term expansions must match the naive broadcasts.

    ``log_posterior`` and the centroid distances were rewritten from an
    ``(n, classes, features)`` broadcast cube into matrix products; these
    regressions pin the rewritten math to a reference implementation.
    """

    def test_gaussian_nb_log_posterior_matches_broadcast(self, rng):
        x, y = blobs(rng, classes=4, features=30)
        model = GaussianNaiveBayes().fit(x, y)
        query = rng.normal(scale=3.0, size=(50, 30))
        # Reference: the full (n, classes, features) broadcast.
        diff = query[:, None, :] - model.theta_[None, :, :]
        log_like = -0.5 * (np.log(2.0 * np.pi * model.var_)[None, :, :]
                           + diff ** 2 / model.var_[None, :, :]).sum(axis=2)
        reference = log_like + model.log_prior_[None, :]
        assert np.allclose(model.log_posterior(query), reference,
                           rtol=1e-9, atol=1e-7)

    def test_gaussian_nb_predictions_match_broadcast(self, rng):
        x, y = blobs(rng, classes=3, features=12)
        model = GaussianNaiveBayes().fit(x, y)
        query = rng.normal(size=(80, 12))
        diff = query[:, None, :] - model.theta_[None, :, :]
        log_like = -0.5 * (np.log(2.0 * np.pi * model.var_)[None, :, :]
                           + diff ** 2 / model.var_[None, :, :]).sum(axis=2)
        reference = model.classes_[
            np.argmax(log_like + model.log_prior_[None, :], axis=1)]
        assert np.array_equal(model.predict(query), reference)

    def test_nearest_centroid_matches_broadcast(self, rng):
        x, y = blobs(rng, classes=4, features=25)
        model = NearestCentroid().fit(x, y)
        query = rng.normal(scale=2.0, size=(60, 25))
        distances = np.linalg.norm(
            query[:, None, :] - model._centroids[None, :, :], axis=2)
        reference = model.classes_[np.argmin(distances, axis=1)]
        assert np.array_equal(model.predict(query), reference)
