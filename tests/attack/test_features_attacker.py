"""Tests for repro.attack.features and repro.attack.attacker."""

import numpy as np
import pytest

from repro.attack import (
    FeatureMatrix,
    InputRecoveryAttack,
    Standardizer,
    build_features,
    profile_and_attack,
)
from repro.errors import MeasurementError
from repro.hpc import EventDistributions
from repro.uarch import HpcEvent


def leaky_distributions(n=40, gap=80.0, seed=0):
    """Categories separated on cache-misses, identical on branches."""
    rng = np.random.default_rng(seed)
    data = {}
    for i, category in enumerate((1, 2, 3)):
        data[category] = {
            HpcEvent.CACHE_MISSES: rng.normal(1000 + i * gap, 10.0, n),
            HpcEvent.BRANCHES: rng.normal(50_000, 40.0, n),
        }
    return EventDistributions(data)


class TestFeatures:
    def test_build_features_shapes(self):
        features = build_features(leaky_distributions())
        assert features.x.shape == (120, 2)
        assert features.y.shape == (120,)
        assert features.categories == [1, 2, 3]

    def test_event_column_selection(self):
        features = build_features(leaky_distributions(),
                                  events=[HpcEvent.BRANCHES])
        assert features.x.shape == (120, 1)
        assert features.events == (HpcEvent.BRANCHES,)

    def test_split_stratified(self):
        features = build_features(leaky_distributions(n=10))
        train, test = features.split(0.7, seed=1)
        for label in (1, 2, 3):
            assert np.sum(train.y == label) == 7
            assert np.sum(test.y == label) == 3

    def test_split_rejects_bad_fraction(self):
        features = build_features(leaky_distributions(n=4))
        with pytest.raises(MeasurementError):
            features.split(0.0)

    def test_standardizer(self, rng):
        x = rng.normal(5.0, 3.0, size=(100, 4))
        transform = Standardizer.fit(x)
        z = transform.transform(x)
        np.testing.assert_allclose(z.mean(axis=0), np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), np.ones(4), rtol=1e-10)

    def test_standardizer_constant_column_safe(self):
        x = np.ones((10, 2))
        z = Standardizer.fit(x).transform(x)
        assert np.all(np.isfinite(z))


class TestInputRecoveryAttack:
    def test_fit_predict_evaluate(self):
        attack = InputRecoveryAttack("gaussian-nb")
        attack.fit(leaky_distributions())
        fresh = leaky_distributions(seed=9)
        result = attack.evaluate(fresh)
        assert result.accuracy > 0.9
        assert result.chance_level == pytest.approx(1 / 3)
        assert result.advantage > 0.8

    def test_predict_single_reading(self):
        attack = InputRecoveryAttack("nearest-centroid")
        attack.fit(leaky_distributions())
        reading = np.array([1160.0, 50_000.0])  # near category 3's template
        assert attack.predict(reading)[0] == 3

    def test_unfitted_attack_rejected(self):
        attack = InputRecoveryAttack()
        with pytest.raises(MeasurementError):
            attack.predict(np.zeros(2))
        with pytest.raises(MeasurementError):
            attack.evaluate(leaky_distributions())

    def test_non_leaky_event_gives_chance_accuracy(self):
        attack = InputRecoveryAttack("gaussian-nb",
                                     events=[HpcEvent.BRANCHES])
        attack.fit(leaky_distributions())
        result = attack.evaluate(leaky_distributions(seed=5))
        assert result.accuracy < 0.55


class TestProfileAndAttack:
    def test_split_protocol(self):
        result = profile_and_attack(leaky_distributions(), seed=2)
        assert result.accuracy > 0.85
        assert result.n_train + result.n_test == 120
        assert set(result.per_category_accuracy) == {1, 2, 3}

    def test_summary_text(self):
        result = profile_and_attack(leaky_distributions())
        text = result.summary()
        assert "accuracy" in text
        assert "chance" in text

    @pytest.mark.parametrize("name", ("gaussian-nb", "lda",
                                      "nearest-centroid"))
    def test_all_classifiers_beat_chance_on_leak(self, name):
        result = profile_and_attack(leaky_distributions(), classifier=name)
        assert result.accuracy > 0.8


class TestSharedProfilingCore:
    """profiled_split / score_predictions / profile_attack_vectors."""

    def test_profiled_split_matches_feature_matrix_split(self):
        from repro.attack import profiled_split
        y = np.repeat([3, 1, 7], 10)
        train_idx, test_idx = profiled_split(y, 0.6, seed=5)
        matrix = FeatureMatrix(np.arange(30, dtype=float)[:, None], y,
                               (HpcEvent.CACHE_MISSES,))
        train, test = matrix.split(0.6, seed=5)
        assert np.array_equal(train.x[:, 0], train_idx.astype(float))
        assert np.array_equal(test.x[:, 0], test_idx.astype(float))
        # Stratified, disjoint, exhaustive, at least one sample per side.
        assert set(train_idx) | set(test_idx) == set(range(30))
        assert not set(train_idx) & set(test_idx)
        for label in (1, 3, 7):
            assert (y[train_idx] == label).sum() == 6
            assert (y[test_idx] == label).sum() == 4

    def test_profiled_split_determinism_and_validation(self):
        from repro.attack import profiled_split
        y = np.repeat([0, 1], 5)
        a = profiled_split(y, 0.6, seed=9)
        b = profiled_split(y, 0.6, seed=9)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        c = profiled_split(y, 0.6, seed=10)
        assert not (np.array_equal(a[0], c[0]) and np.array_equal(a[1], c[1]))
        with pytest.raises(MeasurementError):
            profiled_split(y, 0.0)
        with pytest.raises(MeasurementError):
            profiled_split(y, 1.0)

    def test_score_predictions(self):
        from repro.attack import score_predictions
        truth = np.array([0, 0, 1, 1, 2, 2])
        predictions = np.array([0, 1, 1, 1, 0, 2])
        accuracy, per_category = score_predictions(predictions, truth)
        assert accuracy == pytest.approx(4 / 6)
        assert per_category == {0: 0.5, 1: 1.0, 2: 0.5}
        # Requested-but-absent categories score 0.0.
        _, padded = score_predictions(predictions, truth,
                                      categories=[0, 1, 2, 9])
        assert padded[9] == 0.0

    def test_profile_attack_vectors_on_separable_data(self, rng):
        from repro.attack import profile_attack_vectors
        x = np.vstack([rng.normal(0.0, 1.0, size=(20, 6)),
                       rng.normal(8.0, 1.0, size=(20, 6))])
        y = np.repeat([2, 5], 20)
        outcome = profile_attack_vectors(x, y, classifier="gaussian-nb",
                                         seed=1)
        assert outcome.accuracy > 0.9
        assert outcome.chance_level == pytest.approx(0.5)
        assert outcome.n_train + outcome.n_test == 40
        assert outcome.classifier_name == "gaussian-nb"
        assert set(outcome.per_category_accuracy) == {2, 5}
        assert 0.0 <= outcome.advantage <= 1.0
