"""Tests for repro.attack.features and repro.attack.attacker."""

import numpy as np
import pytest

from repro.attack import (
    InputRecoveryAttack,
    Standardizer,
    build_features,
    profile_and_attack,
)
from repro.errors import MeasurementError
from repro.hpc import EventDistributions
from repro.uarch import HpcEvent


def leaky_distributions(n=40, gap=80.0, seed=0):
    """Categories separated on cache-misses, identical on branches."""
    rng = np.random.default_rng(seed)
    data = {}
    for i, category in enumerate((1, 2, 3)):
        data[category] = {
            HpcEvent.CACHE_MISSES: rng.normal(1000 + i * gap, 10.0, n),
            HpcEvent.BRANCHES: rng.normal(50_000, 40.0, n),
        }
    return EventDistributions(data)


class TestFeatures:
    def test_build_features_shapes(self):
        features = build_features(leaky_distributions())
        assert features.x.shape == (120, 2)
        assert features.y.shape == (120,)
        assert features.categories == [1, 2, 3]

    def test_event_column_selection(self):
        features = build_features(leaky_distributions(),
                                  events=[HpcEvent.BRANCHES])
        assert features.x.shape == (120, 1)
        assert features.events == (HpcEvent.BRANCHES,)

    def test_split_stratified(self):
        features = build_features(leaky_distributions(n=10))
        train, test = features.split(0.7, seed=1)
        for label in (1, 2, 3):
            assert np.sum(train.y == label) == 7
            assert np.sum(test.y == label) == 3

    def test_split_rejects_bad_fraction(self):
        features = build_features(leaky_distributions(n=4))
        with pytest.raises(MeasurementError):
            features.split(0.0)

    def test_standardizer(self, rng):
        x = rng.normal(5.0, 3.0, size=(100, 4))
        transform = Standardizer.fit(x)
        z = transform.transform(x)
        np.testing.assert_allclose(z.mean(axis=0), np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), np.ones(4), rtol=1e-10)

    def test_standardizer_constant_column_safe(self):
        x = np.ones((10, 2))
        z = Standardizer.fit(x).transform(x)
        assert np.all(np.isfinite(z))


class TestInputRecoveryAttack:
    def test_fit_predict_evaluate(self):
        attack = InputRecoveryAttack("gaussian-nb")
        attack.fit(leaky_distributions())
        fresh = leaky_distributions(seed=9)
        result = attack.evaluate(fresh)
        assert result.accuracy > 0.9
        assert result.chance_level == pytest.approx(1 / 3)
        assert result.advantage > 0.8

    def test_predict_single_reading(self):
        attack = InputRecoveryAttack("nearest-centroid")
        attack.fit(leaky_distributions())
        reading = np.array([1160.0, 50_000.0])  # near category 3's template
        assert attack.predict(reading)[0] == 3

    def test_unfitted_attack_rejected(self):
        attack = InputRecoveryAttack()
        with pytest.raises(MeasurementError):
            attack.predict(np.zeros(2))
        with pytest.raises(MeasurementError):
            attack.evaluate(leaky_distributions())

    def test_non_leaky_event_gives_chance_accuracy(self):
        attack = InputRecoveryAttack("gaussian-nb",
                                     events=[HpcEvent.BRANCHES])
        attack.fit(leaky_distributions())
        result = attack.evaluate(leaky_distributions(seed=5))
        assert result.accuracy < 0.55


class TestProfileAndAttack:
    def test_split_protocol(self):
        result = profile_and_attack(leaky_distributions(), seed=2)
        assert result.accuracy > 0.85
        assert result.n_train + result.n_test == 120
        assert set(result.per_category_accuracy) == {1, 2, 3}

    def test_summary_text(self):
        result = profile_and_attack(leaky_distributions())
        text = result.summary()
        assert "accuracy" in text
        assert "chance" in text

    @pytest.mark.parametrize("name", ("gaussian-nb", "lda",
                                      "nearest-centroid"))
    def test_all_classifiers_beat_chance_on_leak(self, name):
        result = profile_and_attack(leaky_distributions(), classifier=name)
        assert result.accuracy > 0.8
