"""Leakage-tournament tests: matrix coverage, ranking, artifacts, reuse."""

import json

import pytest

from repro.attack.tournament import (
    ATTACKERS,
    COUNTERMEASURES,
    run_tournament,
    write_tournament_report,
)
from repro.attack.trace_store import TraceStore
from repro.core.experiment import mnist_experiment
from repro.errors import MeasurementError


def tiny_config(tmp_path, **overrides):
    defaults = dict(samples_per_category=4, categories=(1, 2),
                    cache_dir=str(tmp_path / "cache"), workers=1)
    defaults.update(overrides)
    return mnist_experiment(**defaults)


@pytest.fixture(scope="module")
def full_report(tmp_path_factory, tiny_trained_model):
    tmp_path = tmp_path_factory.mktemp("tournament")
    config = tiny_config(tmp_path)
    return run_tournament([config], attack_samples=4, epochs=4,
                          models={"mnist": tiny_trained_model})


def test_full_matrix_coverage(full_report):
    assert len(full_report.cells) == len(ATTACKERS) * len(COUNTERMEASURES)
    coordinates = {(c.attacker, c.countermeasure) for c in full_report.cells}
    assert coordinates == {(a, cm) for a in ATTACKERS
                           for cm in COUNTERMEASURES}
    assert full_report.datasets == ("mnist",)
    assert full_report.samples_per_category == 4


def test_cells_are_scored_and_ranked(full_report):
    ranked = full_report.ranked()
    keys = [(-c.advantage, -c.mi_bits) for c in ranked]
    assert keys == sorted(keys)
    for cell in ranked:
        assert 0.0 <= cell.accuracy <= 1.0
        assert cell.chance_level == pytest.approx(0.5)
        assert cell.mi_bits >= 0.0
        assert 0.0 <= cell.leakage_fraction <= 1.0 + 1e-9
        assert cell.runtime_cost >= 1.0
        assert cell.n_train > 0 and cell.n_test > 0
        assert cell.wall_seconds >= 0.0
    baseline = {c.countermeasure: c for c in ranked}
    assert baseline["constant-footprint"].runtime_cost > 1.0
    assert baseline["noise-injection"].runtime_cost > 1.0


def test_countermeasure_defeats_cache_attacks(full_report):
    # Constant-footprint kernels erase the data-dependent footprint, so
    # both cache attackers drop to (at most) chance against them.
    for cell in full_report.cells:
        if (cell.attacker in ("prime-probe", "flush-reload")
                and cell.countermeasure == "constant-footprint"):
            baseline = next(c for c in full_report.cells
                            if c.attacker == cell.attacker
                            and c.countermeasure == "baseline")
            assert cell.accuracy <= baseline.accuracy
            assert cell.mi_bits <= baseline.mi_bits + 1e-9


def test_noise_injection_leaves_traces_unchanged(full_report):
    # Dummy-work noise perturbs counters, not the memory stream: the cache
    # attackers' observables are identical to baseline by construction.
    for attacker in ("prime-probe", "flush-reload"):
        baseline = next(c for c in full_report.cells
                        if c.attacker == attacker
                        and c.countermeasure == "baseline")
        noisy = next(c for c in full_report.cells
                     if c.attacker == attacker
                     and c.countermeasure == "noise-injection")
        assert noisy.accuracy == pytest.approx(baseline.accuracy)
        assert noisy.mi_bits == pytest.approx(baseline.mi_bits)


def test_report_artifact_roundtrip(full_report, tmp_path):
    path = write_tournament_report(full_report, tmp_path / "REPORT.json")
    payload = json.loads(path.read_text())
    assert payload["kind"] == "leakage-tournament"
    assert payload["datasets"] == ["mnist"]
    assert len(payload["ranking"]) == len(full_report.cells)
    first = payload["ranking"][0]
    assert {"dataset", "attacker", "countermeasure", "accuracy",
            "advantage", "mi_bits", "runtime_cost"} <= set(first)
    assert not list(tmp_path.glob("*.tmp-*"))


def test_trace_store_shared_across_runs(tmp_path, tiny_trained_model):
    store = TraceStore(tmp_path / "traces")
    config = tiny_config(tmp_path, cache_dir="")
    first = run_tournament([config], attackers=("prime-probe",),
                           countermeasures=("baseline",), attack_samples=4,
                           epochs=4, store=store,
                           models={"mnist": tiny_trained_model})
    entries = sorted(p.name for p in (tmp_path / "traces").glob("*.npz"))
    assert entries  # traces were persisted
    second = run_tournament([config], attackers=("flush-reload",),
                            countermeasures=("baseline",), attack_samples=4,
                            epochs=4, store=store,
                            models={"mnist": tiny_trained_model})
    # The second attacker reused the first run's traces: same entries.
    assert sorted(p.name for p in (tmp_path / "traces").glob("*.npz")) \
        == entries
    assert first.cells[0].attacker == "prime-probe"
    assert second.cells[0].attacker == "flush-reload"


def test_parallel_matches_sequential(tmp_path, tiny_trained_model):
    config = tiny_config(tmp_path, cache_dir="")
    kwargs = dict(attackers=("prime-probe", "flush-reload"),
                  attack_samples=4, epochs=4,
                  models={"mnist": tiny_trained_model})
    sequential = run_tournament([config], workers=1, **kwargs)
    parallel = run_tournament([config], workers=2, **kwargs)
    for seq, par in zip(sequential.ranked(), parallel.ranked()):
        assert (seq.dataset, seq.attacker, seq.countermeasure) \
            == (par.dataset, par.attacker, par.countermeasure)
        assert par.accuracy == pytest.approx(seq.accuracy)
        assert par.mi_bits == pytest.approx(seq.mi_bits)


def test_input_validation(tmp_path, tiny_trained_model):
    config = tiny_config(tmp_path)
    models = {"mnist": tiny_trained_model}
    with pytest.raises(MeasurementError):
        run_tournament([config], attackers=("nope",), models=models)
    with pytest.raises(MeasurementError):
        run_tournament([config], countermeasures=("nope",), models=models)
    with pytest.raises(MeasurementError):
        run_tournament([config], attackers=(), models=models)
    with pytest.raises(MeasurementError):
        run_tournament([config], attack_samples=1, models=models)
    with pytest.raises(MeasurementError):
        run_tournament([config, config], models=models)
