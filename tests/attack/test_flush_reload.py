"""Tests for the simulated Flush+Reload attack and cache invalidation."""

import numpy as np
import pytest

from repro.attack import (
    FlushReloadAttacker,
    flush_reload_attack,
    weight_lines,
)
from repro.errors import SimulationError
from repro.trace import Trace, TracedInference
from repro.uarch import Cache, CacheGeometry, CacheHierarchy


class TestInvalidate:
    def test_invalidate_removes_resident_line(self):
        cache = Cache(CacheGeometry(4 * 64, 64, 2))
        cache.access(5)
        assert cache.contains(5)
        assert cache.invalidate(5)
        assert not cache.contains(5)

    def test_invalidate_absent_line_is_noop(self):
        cache = Cache(CacheGeometry(4 * 64, 64, 2))
        assert not cache.invalidate(9)

    def test_invalidate_clears_dirty_state(self):
        cache = Cache(CacheGeometry(2 * 64, 64, 2))
        cache.access(0, write=True)
        cache.invalidate(0)
        cache.access_many([2, 4])  # fill the set, force evictions
        assert cache.stats.writebacks == 0

    def test_invalidate_plru_variant(self):
        cache = Cache(CacheGeometry(4 * 64, 64, 2), policy="tree-plru")
        cache.access(3)
        assert cache.invalidate(3)
        assert not cache.contains(3)

    def test_hierarchy_invalidate_all_levels(self):
        hierarchy = CacheHierarchy()
        hierarchy.access_stream([7])
        hierarchy.invalidate(7)
        assert all(not level.contains(7) for level in hierarchy.levels)
        # The next access misses everywhere again.
        summary = hierarchy.access_stream([7])
        assert summary.llc_misses == 1


def trace_touching(lines):
    trace = Trace()
    trace.mem(np.asarray(lines, dtype=np.int64))
    return trace


class TestFlushReloadAttacker:
    def test_detects_touched_lines_only(self):
        attacker = FlushReloadAttacker([100, 200, 300])
        observation = attacker.observe(trace_touching([100, 300, 55]),
                                       epochs=1)
        np.testing.assert_array_equal(observation, [1, 0, 1])

    def test_epoch_resolution(self):
        attacker = FlushReloadAttacker([100, 200])
        trace = Trace()
        trace.mem(np.asarray([100, 1, 2, 3], dtype=np.int64))
        trace.mem(np.asarray([200, 4, 5, 6], dtype=np.int64))
        observation = attacker.observe(trace, epochs=2)
        np.testing.assert_array_equal(observation, [1, 0, 0, 1])

    def test_deterministic(self, rng):
        attacker = FlushReloadAttacker(list(range(50)))
        lines = rng.integers(0, 100, size=500)
        a = attacker.observe(trace_touching(lines), epochs=4)
        b = attacker.observe(trace_touching(lines), epochs=4)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            FlushReloadAttacker([])
        attacker = FlushReloadAttacker([1])
        with pytest.raises(SimulationError):
            attacker.observe(Trace(), epochs=1)
        with pytest.raises(SimulationError):
            attacker.observe(trace_touching([1]), epochs=0)

    def test_describe(self):
        assert "2 shared lines" in FlushReloadAttacker([1, 2]).describe()


class TestWeightLines:
    def test_resolves_layer_region(self, traced_inference):
        lines = weight_lines(traced_inference, "fc")
        region = traced_inference.space["fc.weight"]
        np.testing.assert_array_equal(lines, region.all_lines())

    def test_unknown_layer_rejected(self, traced_inference):
        from repro.errors import TraceError
        with pytest.raises(TraceError):
            weight_lines(traced_inference, "ghost")


class TestFullAttack:
    def test_recovers_categories_above_chance(self, tiny_trained_model,
                                              digits_dataset):
        result = flush_reload_attack(tiny_trained_model, digits_dataset,
                                     [0, 1], 10, layer_name="fc", seed=3)
        assert result.chance_level == pytest.approx(0.5)
        assert result.accuracy > 0.6
        assert "flush+reload attack" in result.summary()

    def test_insufficient_samples_rejected(self, tiny_trained_model,
                                           digits_dataset):
        with pytest.raises(SimulationError):
            flush_reload_attack(tiny_trained_model, digits_dataset, [0],
                                10_000, layer_name="fc")
