"""Invariance suite: the vectorized replay engine vs the reference loops.

The batched engine must be *bit-identical* to the per-trace loop paths of
:class:`PrimeProbeAttacker` and :class:`FlushReloadAttacker` — same epoch
slicing, same LRU evolution, same padding — across hierarchy shapes, epoch
counts, trace lengths (including degenerate single-access traces) and
read/write mixes.
"""

import numpy as np
import pytest

from repro.attack.engine import (
    flush_reload_observations,
    prime_probe_vectors,
    replay_supported,
    traces_compatible,
)
from repro.attack.flush_reload import FlushReloadAttacker, weight_lines
from repro.attack.prime_probe import PrimeProbeAttacker
from repro.errors import SimulationError
from repro.trace.recorder import Trace
from repro.trace.traced_model import TracedInference
from repro.uarch.hierarchy import CacheGeometry, HierarchyConfig


def small_hierarchy():
    return HierarchyConfig(
        l1=CacheGeometry(2 * 64, 64, 2),
        l2=CacheGeometry(8 * 64, 64, 2),
        llc=CacheGeometry(8 * 4 * 64, 64, 4),  # 8 sets x 4 ways
    )


def random_traces(rng, n=6, line_space=600, max_ops=5, max_len=400,
                  write_fraction=0.3):
    traces = []
    for _ in range(n):
        trace = Trace()
        for _ in range(int(rng.integers(1, max_ops + 1))):
            length = int(rng.integers(1, max_len + 1))
            lines = rng.integers(0, line_space, size=length)
            trace.mem(lines, write=bool(rng.random() < write_fraction))
        traces.append(trace)
    return traces


def loop_probe_vectors(attacker, traces, epochs):
    return np.stack([attacker.probe_vector(t, epochs=epochs) for t in traces])


def loop_observations(attacker, traces, epochs):
    return np.stack([attacker.observe(t, epochs=epochs) for t in traces])


@pytest.mark.parametrize("config_name", ["small", "default"])
@pytest.mark.parametrize("epochs", [1, 2, 3, 8, 17])
def test_prime_probe_bit_identical(config_name, epochs, rng):
    config = small_hierarchy() if config_name == "small" else HierarchyConfig()
    attacker = PrimeProbeAttacker(config)
    traces = random_traces(rng)
    batched = prime_probe_vectors(traces, config, epochs=epochs)
    reference = loop_probe_vectors(attacker, traces, epochs)
    assert batched.dtype == reference.dtype
    assert np.array_equal(batched, reference)


@pytest.mark.parametrize("config_name", ["small", "default"])
@pytest.mark.parametrize("epochs", [1, 2, 3, 8, 17])
def test_flush_reload_bit_identical(config_name, epochs, rng):
    config = small_hierarchy() if config_name == "small" else HierarchyConfig()
    monitored = list(range(40, 104, 4))
    attacker = FlushReloadAttacker(monitored, config)
    traces = random_traces(rng)
    batched = flush_reload_observations(traces, monitored, config,
                                        epochs=epochs)
    reference = loop_observations(attacker, traces, epochs)
    assert batched.dtype == reference.dtype
    assert np.array_equal(batched, reference)


@pytest.mark.parametrize("totals", [[1], [3], [8], [2, 2, 2, 2], [1, 37]])
@pytest.mark.parametrize("epochs", [1, 2, 5, 8])
def test_degenerate_trace_lengths(totals, epochs, rng):
    # Covers total < epochs (zero-padded trailing epochs), total == 1 and
    # exact multiples of the budget.
    config = small_hierarchy()
    traces = []
    for total in totals:
        trace = Trace()
        trace.mem(rng.integers(0, 64, size=total))
        traces.append(trace)
    pp = PrimeProbeAttacker(config)
    assert np.array_equal(prime_probe_vectors(traces, config, epochs=epochs),
                          loop_probe_vectors(pp, traces, epochs))
    monitored = [3, 9, 17]
    fr = FlushReloadAttacker(monitored, config)
    assert np.array_equal(
        flush_reload_observations(traces, monitored, config, epochs=epochs),
        loop_observations(fr, traces, epochs))


def test_write_heavy_streams_identical(rng):
    config = small_hierarchy()
    traces = random_traces(rng, write_fraction=1.0)
    pp = PrimeProbeAttacker(config)
    assert np.array_equal(prime_probe_vectors(traces, config, epochs=6),
                          loop_probe_vectors(pp, traces, 6))
    monitored = list(range(0, 64, 8))
    fr = FlushReloadAttacker(monitored, config)
    assert np.array_equal(
        flush_reload_observations(traces, monitored, config, epochs=6),
        loop_observations(fr, traces, 6))


def test_real_model_traces_identical(tiny_trained_model, digits_dataset):
    traced = TracedInference(tiny_trained_model)
    traces = [traced.trace_sample(s)[1] for s in digits_dataset.images[:3]]
    config = HierarchyConfig()
    pp = PrimeProbeAttacker(config)
    assert np.array_equal(pp.probe_vectors(traces, epochs=8),
                          loop_probe_vectors(pp, traces, 8))
    monitored = weight_lines(traced, "fc")
    fr = FlushReloadAttacker(monitored, config)
    assert np.array_equal(fr.observe_batch(traces, epochs=8),
                          loop_observations(fr, traces, 8))


def test_batch_methods_dispatch_to_engine(rng):
    config = small_hierarchy()
    traces = random_traces(rng, n=4)
    pp = PrimeProbeAttacker(config)
    assert np.array_equal(pp.probe_vectors(traces, epochs=5),
                          prime_probe_vectors(traces, config, epochs=5))
    monitored = [1, 2, 3]
    fr = FlushReloadAttacker(monitored, config)
    assert np.array_equal(
        fr.observe_batch(traces, epochs=5),
        flush_reload_observations(traces, monitored, config, epochs=5))


def test_non_lru_policy_falls_back_to_loop(rng):
    config = HierarchyConfig(
        l1=CacheGeometry(2 * 64, 64, 2),
        l2=CacheGeometry(8 * 64, 64, 2),
        llc=CacheGeometry(8 * 4 * 64, 64, 4),
        policy="fifo",
    )
    assert not replay_supported(config)
    traces = random_traces(rng, n=3)
    pp = PrimeProbeAttacker(config)
    assert np.array_equal(pp.probe_vectors(traces, epochs=4),
                          loop_probe_vectors(pp, traces, 4))
    fr = FlushReloadAttacker([0, 1], config)
    assert np.array_equal(fr.observe_batch(traces, epochs=4),
                          loop_observations(fr, traces, 4))


def test_traces_compatible_gating():
    good = Trace()
    good.mem([1, 2, 3])
    negative = Trace()
    negative.mem([-1, 2])
    huge = Trace()
    huge.mem([1 << 41])
    assert traces_compatible([good])
    assert not traces_compatible([good, negative])
    assert traces_compatible([huge])
    assert not traces_compatible([huge], max_line=1 << 40)
    # Colliding line ids still replay correctly via the loop fallback.
    attacker = PrimeProbeAttacker(small_hierarchy())
    assert np.array_equal(attacker.probe_vectors([huge], epochs=2),
                          loop_probe_vectors(attacker, [huge], 2))


def test_engine_error_cases():
    config = small_hierarchy()
    trace = Trace()
    trace.mem([1, 2, 3])
    empty = Trace()
    with pytest.raises(SimulationError):
        prime_probe_vectors([trace], config, epochs=0)
    with pytest.raises(SimulationError):
        prime_probe_vectors([empty], config, epochs=2)
    with pytest.raises(SimulationError):
        flush_reload_observations([trace], [], config, epochs=2)
    with pytest.raises(SimulationError):
        flush_reload_observations([empty], [1], config, epochs=2)


def test_empty_batch_shapes():
    config = small_hierarchy()
    pp = PrimeProbeAttacker(config)
    assert pp.probe_vectors([], epochs=3).shape == (0, 3 * pp.num_sets)
    fr = FlushReloadAttacker([1, 2], config)
    assert fr.observe_batch([], epochs=3).shape == (0, 6)


def test_flush_reload_multi_group_carry_priming():
    # Regression: each epoch's carried state must prime *its own group's*
    # run, not sit at the epoch boundary.  Here two L1 sets carry lines
    # across the epoch split; line 9's carried L1 hit must keep its
    # second-epoch access away from the LLC, otherwise the monitored line
    # becomes LRU in its 16-way set and the reload bit flips.
    monitored = 9 + 128 * 50
    fillers = [9 + 128 * (k + 1) for k in range(15)]
    seq = [5, 9] * 9 + [monitored, 9] + fillers + [5]
    trace = Trace()
    trace.mem(np.asarray(seq, dtype=np.int64))
    attacker = FlushReloadAttacker([monitored])
    loop = attacker.observe(trace, epochs=2)
    assert loop[1] == 1  # the loop keeps the monitored line resident
    assert np.array_equal(attacker.observe_batch([trace], epochs=2)[0], loop)


@pytest.mark.parametrize("epochs", [2, 3, 8])
def test_flush_reload_dense_cross_epoch_reuse(epochs, rng):
    # Tight line space -> nearly every line is carried across every epoch
    # boundary, exercising the carry chain and prefix splice heavily.
    for _ in range(12):
        length = int(rng.integers(60, 500))
        trace = Trace()
        trace.mem(rng.integers(0, 48, size=length).astype(np.int64))
        monitored = [int(x) for x in rng.choice(48, size=5, replace=False)]
        attacker = FlushReloadAttacker(monitored)
        assert np.array_equal(
            attacker.observe_batch([trace], epochs=epochs)[0],
            attacker.observe(trace, epochs=epochs))
