"""End-to-end integration tests: the paper's qualitative claims must hold.

These run the full pipeline (train -> trace -> simulate -> measure ->
evaluate) on reduced sample counts.  The assertions encode the *shape* of
the paper's results, not absolute numbers:

* ``cache-misses`` distinguishes most category pairs;
* ``branches`` distinguishes (almost) none;
* the Evaluator raises an alarm;
* the recovered-category attack beats chance;
* the constant-footprint countermeasure removes the leak.
"""

import numpy as np
import pytest

from repro.attack import profile_and_attack
from repro.core import (
    CONSERVATIVE_POLICY,
    Evaluator,
    ExperimentConfig,
    PAPER_POLICY,
    run_experiment,
)
from repro.countermeasures import evaluate_defense, harden_backend
from repro.hpc import MeasurementCache, MeasurementSession
from repro.uarch import HpcEvent


@pytest.fixture(scope="module")
def mnist_result(tmp_path_factory):
    config = ExperimentConfig(
        dataset="mnist",
        categories=(1, 2, 3, 4),
        samples_per_category=30,
        cache_dir=str(tmp_path_factory.mktemp("cache")),
    )
    return run_experiment(config)


class TestPaperShapeMnist:
    def test_classifier_actually_works(self, mnist_result):
        assert mnist_result.test_accuracy > 0.7

    def test_alarm_raised(self, mnist_result):
        assert mnist_result.report.alarm
        assert PAPER_POLICY.decide(mnist_result.report).triggered

    def test_cache_misses_distinguish_most_pairs(self, mnist_result):
        rejections = mnist_result.report.rejection_count(
            HpcEvent.CACHE_MISSES)
        assert rejections >= 4  # of 6 pairs (paper: 6/6 with n~1000)

    def test_branches_mostly_indistinguishable(self, mnist_result):
        rejections = mnist_result.report.rejection_count(HpcEvent.BRANCHES)
        assert rejections <= 2  # paper: 2/6 marginal

    def test_cache_misses_stronger_than_branches(self, mnist_result):
        cm = [abs(r.ttest.statistic) for r in
              mnist_result.report.for_event(HpcEvent.CACHE_MISSES)]
        br = [abs(r.ttest.statistic) for r in
              mnist_result.report.for_event(HpcEvent.BRANCHES)]
        assert max(cm) > 3 * max(br)

    def test_attack_beats_chance(self, mnist_result):
        outcome = profile_and_attack(mnist_result.distributions, seed=1)
        assert outcome.accuracy > outcome.chance_level + 0.10

    def test_countermeasure_removes_leak(self, mnist_result):
        config = mnist_result.config
        hardened = harden_backend(mnist_result.backend)
        # The TOST margin (0.5% of the branch mean, ~65 counts) sits below
        # the simulated noise sigma (~90 counts), so certifying all pairs
        # needs enough samples for the 90% CI of each mean difference to
        # fit inside the margin — and the no-alarm check below needs the
        # noise-only means tight enough that no pair rejects by chance.
        pool = config.generator().generate(
            80, seed=config.eval_seed, categories=list(config.categories))
        defense = evaluate_defense(
            hardened, pool, config.categories, 80,
            baseline_report=mnist_result.report,
            cache=MeasurementCache(config.cache_dir))
        # TOST certifies equivalence on the paper's two headline events.
        assert defense.equivalence[HpcEvent.CACHE_MISSES] == 1.0
        assert defense.equivalence[HpcEvent.BRANCHES] == 1.0
        # The Holm-corrected policy stays quiet on the defended system.
        assert not CONSERVATIVE_POLICY.decide(defense.defended).triggered

    def test_measured_magnitudes_are_plausible(self, mnist_result):
        dists = mnist_result.distributions
        category = dists.categories[0]
        instructions = dists.mean(category, HpcEvent.INSTRUCTIONS)
        cycles = dists.mean(category, HpcEvent.CYCLES)
        references = dists.mean(category, HpcEvent.CACHE_REFERENCES)
        misses = dists.mean(category, HpcEvent.CACHE_MISSES)
        assert 0.5 < cycles / instructions < 10.0    # sane CPI
        assert misses <= references                   # miss ratio <= 1
        assert dists.mean(category, HpcEvent.BUS_CYCLES) < cycles

    def test_deterministic_reproduction(self, mnist_result, tmp_path):
        config_dict = {
            "dataset": "mnist",
            "categories": (1, 2, 3, 4),
            "samples_per_category": 12,
            "cache_dir": "",
        }
        a = run_experiment(ExperimentConfig(**config_dict))
        b = run_experiment(ExperimentConfig(**config_dict))
        for event in (HpcEvent.CACHE_MISSES, HpcEvent.BRANCHES):
            for category in (1, 2, 3, 4):
                np.testing.assert_array_equal(
                    a.distributions.values(category, event),
                    b.distributions.values(category, event))

    def test_engine_invariance(self, tmp_path):
        # The compiled engine must change nothing observable: identical
        # measured distributions, identical t-test verdicts.
        config_dict = {
            "dataset": "mnist",
            "categories": (1, 2, 3, 4),
            "samples_per_category": 12,
            "cache_dir": "",
        }
        compiled = run_experiment(
            ExperimentConfig(engine="compiled", **config_dict))
        layers = run_experiment(
            ExperimentConfig(engine="layers", **config_dict))
        for event in HpcEvent:
            for category in (1, 2, 3, 4):
                np.testing.assert_array_equal(
                    compiled.distributions.values(category, event),
                    layers.distributions.values(category, event))
        assert compiled.report.alarm == layers.report.alarm
        assert compiled.report.leaking_events == layers.report.leaking_events
        assert len(compiled.report.results) == len(layers.report.results)
        for result_c, result_l in zip(compiled.report.results,
                                      layers.report.results):
            assert result_c.event == result_l.event
            assert result_c.pair == result_l.pair
            assert result_c.distinguishable == result_l.distinguishable
            assert result_c.ttest == result_l.ttest
