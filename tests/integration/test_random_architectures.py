"""Property test: ANY registry-built architecture traces consistently.

Hypothesis generates small random CNN/MLP stacks; for each one we verify the
library-wide contracts that every other result relies on:

* the traced forward pass predicts exactly what the model predicts;
* tracing is deterministic;
* retired-branch counts are input-independent (the paper's `branches`
  observation must hold structurally, not just for the two case-study
  models);
* constant-footprint mode produces identical readouts for any two inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.trace import TraceConfig, TracedInference
from repro.uarch import CpuModel


@st.composite
def small_architectures(draw):
    """A random but always-valid conv stack on 10x10 inputs."""
    channels = draw(st.integers(min_value=1, max_value=3))
    layers = []
    filters = draw(st.integers(min_value=2, max_value=6))
    padding = draw(st.sampled_from([0, 1]))
    layers.append(Conv2D(filters, 3, padding=padding, name="conv_a"))
    activation = draw(st.sampled_from([ReLU, LeakyReLU, Tanh, Sigmoid]))
    layers.append(activation(name="act_a"))
    if draw(st.booleans()):
        layers.append(BatchNorm2D(name="bn"))
    pool = draw(st.sampled_from([MaxPool2D, AvgPool2D, None]))
    if pool is not None:
        layers.append(pool(2, name="pool_a"))
    if draw(st.booleans()):
        layers.append(Conv2D(draw(st.integers(2, 5)), 3, name="conv_b"))
        layers.append(ReLU(name="act_b"))
    layers.append(Flatten(name="flat"))
    if draw(st.booleans()):
        layers.append(Dense(draw(st.integers(4, 12)), name="hidden"))
        layers.append(ReLU(name="act_c"))
        layers.append(Dropout(0.3, name="drop"))
    layers.append(Dense(5, name="out"))
    model = Sequential(layers, name="fuzzed")
    model.build((channels, 10, 10), seed=draw(st.integers(0, 2 ** 16)))
    return model


@settings(max_examples=20, deadline=None)
@given(model=small_architectures(), data_seed=st.integers(0, 2 ** 16))
def test_traced_predictions_match_model(model, data_seed):
    traced = TracedInference(model)
    rng = np.random.default_rng(data_seed)
    for _ in range(2):
        sample = rng.normal(size=model.input_shape)
        prediction, trace = traced.trace_sample(sample)
        assert prediction == model.classify_one(sample)
        assert trace.instructions > 0
        assert trace.memory_accesses > 0


@settings(max_examples=15, deadline=None)
@given(model=small_architectures(), data_seed=st.integers(0, 2 ** 16))
def test_tracing_is_deterministic(model, data_seed):
    traced = TracedInference(model)
    sample = np.random.default_rng(data_seed).normal(size=model.input_shape)
    _, first = traced.trace_sample(sample)
    _, second = traced.trace_sample(sample)
    assert first.instructions == second.instructions
    assert first.branches == second.branches
    np.testing.assert_array_equal(first.memory_lines(),
                                  second.memory_lines())


@settings(max_examples=15, deadline=None)
@given(model=small_architectures(), data_seed=st.integers(0, 2 ** 16))
def test_branch_counts_are_input_independent(model, data_seed):
    traced = TracedInference(model)
    rng = np.random.default_rng(data_seed)
    counts = set()
    for _ in range(3):
        _, trace = traced.trace_sample(rng.normal(size=model.input_shape))
        counts.add(trace.branches)
    assert len(counts) == 1


@settings(max_examples=10, deadline=None)
@given(model=small_architectures(), data_seed=st.integers(0, 2 ** 16))
def test_constant_footprint_readouts_identical(model, data_seed):
    hardened = TracedInference(
        model, TraceConfig(sparse_from_layer=None, branchless_compares=True))
    cpu = CpuModel(seed=0)
    rng = np.random.default_rng(data_seed)
    readouts = [hardened.run(rng.normal(size=model.input_shape), cpu)[1]
                for _ in range(2)]
    assert readouts[0] == readouts[1]
