"""Statistical machinery for side-channel leakage assessment.

Everything here is implemented from scratch (NumPy for array arithmetic
only); the test-suite cross-checks the distributions and tests against SciPy
when it is installed.
"""

from .bootstrap import (
    BootstrapInterval,
    bootstrap_mean_difference,
    bootstrap_statistic,
)
from .corrections import (
    adjust_p_values,
    benjamini_hochberg,
    bonferroni,
    holm_bonferroni,
    significant_after_correction,
)
from .descriptive import (
    Histogram,
    Summary,
    coefficient_of_variation,
    mean,
    median,
    quantile,
    shared_histogram_range,
    standard_error,
    std,
    variance,
)
from .distributions import Normal, StudentT
from .effect_size import (
    cohens_d,
    glass_delta,
    hedges_g,
    interpret_cohens_d,
    overlap_coefficient,
)
from .equivalence import TostResult, relative_margin, tost_equivalence
from .mannwhitney import MannWhitneyResult, mann_whitney_u, rank_biserial_correlation
from .mutual_information import (
    binned_mutual_information,
    entropy_bits,
    leakage_fraction,
    max_leakage_bits,
)
from .power import (
    detectable_effect_size,
    required_samples_per_group,
    ttest_power,
)
from .special import (
    binomial_coefficient,
    log_beta,
    log_factorial,
    log_gamma,
    regularized_incomplete_beta,
)
from .streaming import (
    MomentAccumulator,
    MomentColumns,
    SlidingWindowMoments,
    StreamingMoments,
)
from .ttest import (
    TTestResult,
    format_p_value,
    one_sample_t_test,
    student_t_test,
    welch_t_test,
)
from .vectorized import (
    PairwiseTestArrays,
    SufficientStats,
    batch_pairwise_tests,
    pairwise_indices,
    regularized_incomplete_beta_array,
    two_sided_p_values,
)

__all__ = [
    "bootstrap_statistic",
    "bootstrap_mean_difference",
    "BootstrapInterval",
    "ttest_power",
    "required_samples_per_group",
    "max_leakage_bits",
    "leakage_fraction",
    "entropy_bits",
    "detectable_effect_size",
    "binned_mutual_information",
    "Histogram",
    "MannWhitneyResult",
    "MomentAccumulator",
    "MomentColumns",
    "Normal",
    "PairwiseTestArrays",
    "SlidingWindowMoments",
    "StreamingMoments",
    "StudentT",
    "SufficientStats",
    "Summary",
    "TTestResult",
    "TostResult",
    "adjust_p_values",
    "batch_pairwise_tests",
    "benjamini_hochberg",
    "binomial_coefficient",
    "bonferroni",
    "coefficient_of_variation",
    "cohens_d",
    "format_p_value",
    "glass_delta",
    "hedges_g",
    "holm_bonferroni",
    "interpret_cohens_d",
    "log_beta",
    "log_factorial",
    "log_gamma",
    "mann_whitney_u",
    "mean",
    "median",
    "one_sample_t_test",
    "overlap_coefficient",
    "pairwise_indices",
    "quantile",
    "rank_biserial_correlation",
    "regularized_incomplete_beta",
    "regularized_incomplete_beta_array",
    "relative_margin",
    "shared_histogram_range",
    "significant_after_correction",
    "standard_error",
    "std",
    "student_t_test",
    "tost_equivalence",
    "two_sided_p_values",
    "variance",
    "welch_t_test",
]
