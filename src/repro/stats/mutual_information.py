"""Mutual-information leakage quantification.

A t-test answers *whether* two categories are distinguishable; mutual
information answers *how much* an adversary learns per measurement, in
bits, across all monitored categories at once.  We use the classic binned
plug-in estimator with the Miller–Madow bias correction, which is robust at
the sample sizes the evaluator collects.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from ..errors import StatisticsError


def entropy_bits(probabilities: Sequence[float]) -> float:
    """Shannon entropy (base 2) of a discrete distribution."""
    total = float(np.sum(probabilities))
    if total <= 0:
        raise StatisticsError("probabilities must sum to a positive value")
    h = 0.0
    for p in probabilities:
        p = float(p) / total
        if p > 0.0:
            h -= p * math.log2(p)
    return h


def binned_mutual_information(values_by_class: Dict[int, np.ndarray],
                              bins: int = 16,
                              bias_correction: bool = True) -> float:
    """MI (bits) between a continuous observable and the class label.

    Args:
        values_by_class: ``{label: readings}`` — e.g. one HPC event's
            per-category distributions.
        bins: Histogram bins over the pooled value range.
        bias_correction: Apply the Miller-Madow correction
            ``-(cells_occupied - 1) / (2 N ln 2)`` per entropy term.

    Returns:
        Estimated ``I(observable; label)`` in bits, clipped at 0.
    """
    if len(values_by_class) < 2:
        raise StatisticsError("need at least two classes")
    if bins < 2:
        raise StatisticsError(f"bins must be >= 2, got {bins}")
    arrays = {label: np.asarray(v, dtype=float).ravel()
              for label, v in values_by_class.items()}
    for label, arr in arrays.items():
        if arr.size == 0:
            raise StatisticsError(f"class {label} has no readings")
    pooled = np.concatenate(list(arrays.values()))
    lo, hi = float(pooled.min()), float(pooled.max())
    if lo == hi:
        return 0.0  # constant observable carries no information
    edges = np.linspace(lo, hi, bins + 1)
    n_total = pooled.size

    # Joint histogram: rows = classes, columns = bins.
    labels = sorted(arrays)
    joint = np.stack([np.histogram(arrays[label], bins=edges)[0]
                      for label in labels]).astype(float)
    class_totals = joint.sum(axis=1)
    bin_totals = joint.sum(axis=0)

    def plug_in_entropy(counts: np.ndarray) -> float:
        total = counts.sum()
        probs = counts[counts > 0] / total
        h = float(-(probs * np.log2(probs)).sum())
        if bias_correction:
            h += (np.count_nonzero(counts) - 1) / (2.0 * total * math.log(2))
        return h

    h_value = plug_in_entropy(bin_totals)
    h_value_given_class = sum(
        (class_totals[i] / n_total) * plug_in_entropy(joint[i])
        for i in range(len(labels)))
    return max(0.0, h_value - h_value_given_class)


def max_leakage_bits(num_classes: int) -> float:
    """Upper bound: a perfect side channel leaks ``log2(classes)`` bits."""
    if num_classes < 2:
        raise StatisticsError(f"need >= 2 classes, got {num_classes}")
    return math.log2(num_classes)


def leakage_fraction(values_by_class: Dict[int, np.ndarray],
                     bins: int = 16) -> float:
    """Estimated MI as a fraction of the maximum possible leakage."""
    mi = binned_mutual_information(values_by_class, bins=bins)
    return min(1.0, mi / max_leakage_bits(len(values_by_class)))
