"""Special functions needed by the statistical tests, written from scratch.

The paper's evaluator relies on Student's t distribution for p-values.  Its
CDF reduces to the regularized incomplete beta function, which we implement
here with the classic Lentz continued-fraction evaluation (Numerical Recipes
style), together with a Lanczos log-gamma.  ``scipy`` is only used in the
test-suite to cross-check these implementations.
"""

from __future__ import annotations

import math

from ..errors import StatisticsError

#: Lanczos coefficients (g = 7, n = 9) — accurate to ~15 significant digits.
_LANCZOS_G = 7.0
_LANCZOS_COEFFS = (
    0.99999999999980993,
    676.5203681218851,
    -1259.1392167224028,
    771.32342877765313,
    -176.61502916214059,
    12.507343278686905,
    -0.13857109526572012,
    9.9843695780195716e-6,
    1.5056327351493116e-7,
)

_MAX_CF_ITERATIONS = 300
_CF_EPSILON = 3.0e-15
_CF_FPMIN = 1.0e-300


def log_gamma(x: float) -> float:
    """Natural log of the absolute value of the Gamma function.

    Uses the Lanczos approximation with reflection for ``x < 0.5``.

    Args:
        x: Argument; must not be zero or a negative integer.

    Returns:
        ``ln |Gamma(x)|``.
    """
    if x <= 0.0 and x == math.floor(x):
        raise StatisticsError(f"log_gamma undefined at non-positive integer {x}")
    if x < 0.5:
        # Reflection formula: Gamma(x) Gamma(1-x) = pi / sin(pi x).
        return math.log(math.pi / abs(math.sin(math.pi * x))) - log_gamma(1.0 - x)
    x -= 1.0
    series = _LANCZOS_COEFFS[0]
    for i, coeff in enumerate(_LANCZOS_COEFFS[1:], start=1):
        series += coeff / (x + i)
    t = x + _LANCZOS_G + 0.5
    return 0.5 * math.log(2.0 * math.pi) + (x + 0.5) * math.log(t) - t + math.log(series)


def log_beta(a: float, b: float) -> float:
    """``ln B(a, b)`` for positive ``a`` and ``b``."""
    if a <= 0.0 or b <= 0.0:
        raise StatisticsError(f"log_beta requires positive arguments, got ({a}, {b})")
    return log_gamma(a) + log_gamma(b) - log_gamma(a + b)


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued-fraction kernel for the incomplete beta (Lentz's method)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _CF_FPMIN:
        d = _CF_FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_CF_ITERATIONS + 1):
        m2 = 2 * m
        # Even step.
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _CF_FPMIN:
            d = _CF_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _CF_FPMIN:
            c = _CF_FPMIN
        d = 1.0 / d
        h *= d * c
        # Odd step.
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _CF_FPMIN:
            d = _CF_FPMIN
        c = 1.0 + aa / c
        if abs(c) < _CF_FPMIN:
            c = _CF_FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _CF_EPSILON:
            return h
    raise StatisticsError(
        f"incomplete beta continued fraction failed to converge for a={a}, b={b}, x={x}"
    )


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function ``I_x(a, b)``.

    Args:
        a: First shape parameter (> 0).
        b: Second shape parameter (> 0).
        x: Upper integration limit in ``[0, 1]``.

    Returns:
        ``I_x(a, b)`` in ``[0, 1]``.
    """
    if a <= 0.0 or b <= 0.0:
        raise StatisticsError(f"incomplete beta requires positive shapes, got ({a}, {b})")
    if x < 0.0 or x > 1.0:
        raise StatisticsError(f"incomplete beta argument x={x} outside [0, 1]")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    log_front = (
        a * math.log(x) + b * math.log(1.0 - x) - log_beta(a, b)
    )
    front = math.exp(log_front)
    # Use the continued fraction directly where it converges fastest, and the
    # symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a) elsewhere.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def erf(x: float) -> float:
    """Error function (delegates to :func:`math.erf`; kept for a stable API)."""
    return math.erf(x)


def erfc(x: float) -> float:
    """Complementary error function."""
    return math.erfc(x)


def log_factorial(n: int) -> float:
    """``ln n!`` via :func:`log_gamma`."""
    if n < 0:
        raise StatisticsError(f"factorial undefined for negative n={n}")
    return log_gamma(n + 1.0)


def binomial_coefficient(n: int, k: int) -> float:
    """Binomial coefficient ``C(n, k)`` as a float (exact for small inputs)."""
    if k < 0 or k > n:
        return 0.0
    return math.exp(log_factorial(n) - log_factorial(k) - log_factorial(n - k))
