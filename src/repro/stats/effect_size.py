"""Effect-size measures complementing the t-tests.

The paper reports only t and p values; p-values conflate effect size with
sample size, so the reproduction additionally records standardized effect
sizes for every pair — large |t| with trivial Cohen's d would indicate a
statistically detectable but practically unexploitable leak.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..errors import StatisticsError
from .descriptive import _as_float_array


def cohens_d(a: Iterable[float], b: Iterable[float]) -> float:
    """Cohen's d with the pooled standard deviation.

    Returns:
        Standardized mean difference ``(mean(a) - mean(b)) / s_pooled``.
        ``inf`` (signed) when both groups are constant but unequal, ``0`` when
        constant and equal.
    """
    arr_a = _as_float_array(a, "a")
    arr_b = _as_float_array(b, "b")
    if arr_a.size < 2 or arr_b.size < 2:
        raise StatisticsError("cohens_d needs at least 2 observations per group")
    var_a = float(np.var(arr_a, ddof=1))
    var_b = float(np.var(arr_b, ddof=1))
    n_a, n_b = arr_a.size, arr_b.size
    pooled = ((n_a - 1) * var_a + (n_b - 1) * var_b) / (n_a + n_b - 2)
    diff = float(np.mean(arr_a) - np.mean(arr_b))
    if pooled == 0.0:
        if diff == 0.0:
            return 0.0
        return math.copysign(math.inf, diff)
    return diff / math.sqrt(pooled)


def hedges_g(a: Iterable[float], b: Iterable[float]) -> float:
    """Hedges' g: Cohen's d with the small-sample bias correction."""
    arr_a = _as_float_array(a, "a")
    arr_b = _as_float_array(b, "b")
    d = cohens_d(arr_a, arr_b)
    if not math.isfinite(d):
        return d
    df = arr_a.size + arr_b.size - 2
    correction = 1.0 - 3.0 / (4.0 * df - 1.0)
    return d * correction


def glass_delta(a: Iterable[float], b: Iterable[float]) -> float:
    """Glass's delta: standardizes by the *second* group's std (control)."""
    arr_a = _as_float_array(a, "a")
    arr_b = _as_float_array(b, "b")
    if arr_b.size < 2:
        raise StatisticsError("glass_delta needs >= 2 control observations")
    sd_b = float(np.std(arr_b, ddof=1))
    diff = float(np.mean(arr_a) - np.mean(arr_b))
    if sd_b == 0.0:
        if diff == 0.0:
            return 0.0
        return math.copysign(math.inf, diff)
    return diff / sd_b


def overlap_coefficient(a: Iterable[float], b: Iterable[float],
                        bins: int = 64) -> float:
    """Empirical distribution overlap in [0, 1] (1 = identical histograms).

    A direct, assumption-free view of how separable two HPC distributions
    are: an adversary thresholding a single reading succeeds with probability
    ``1 - overlap/2`` in the equal-prior two-class case.
    """
    arr_a = _as_float_array(a, "a")
    arr_b = _as_float_array(b, "b")
    lo = min(float(arr_a.min()), float(arr_b.min()))
    hi = max(float(arr_a.max()), float(arr_b.max()))
    if lo == hi:
        return 1.0
    hist_a, _ = np.histogram(arr_a, bins=bins, range=(lo, hi))
    hist_b, _ = np.histogram(arr_b, bins=bins, range=(lo, hi))
    p = hist_a / hist_a.sum()
    q = hist_b / hist_b.sum()
    return float(np.minimum(p, q).sum())


def interpret_cohens_d(d: float) -> str:
    """Conventional qualitative label for |d| (Cohen 1988 thresholds)."""
    magnitude = abs(d)
    if magnitude < 0.2:
        return "negligible"
    if magnitude < 0.5:
        return "small"
    if magnitude < 0.8:
        return "medium"
    return "large"
