"""Probability distributions used by the hypothesis tests.

Only the machinery the evaluator needs: the standard normal and Student's t
distribution, each exposing ``cdf``, ``sf`` (survival), ``ppf`` (quantile) and
two-sided tail helpers.  The t CDF is computed through the regularized
incomplete beta function from :mod:`repro.stats.special`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import StatisticsError
from .special import erfc, regularized_incomplete_beta

_SQRT2 = math.sqrt(2.0)


@dataclass(frozen=True)
class Normal:
    """Normal distribution with mean ``mu`` and standard deviation ``sigma``."""

    mu: float = 0.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma <= 0.0:
            raise StatisticsError(f"Normal sigma must be positive, got {self.sigma}")

    def pdf(self, x: float) -> float:
        """Probability density at ``x``."""
        z = (x - self.mu) / self.sigma
        return math.exp(-0.5 * z * z) / (self.sigma * math.sqrt(2.0 * math.pi))

    def cdf(self, x: float) -> float:
        """P(X <= x)."""
        z = (x - self.mu) / self.sigma
        return 0.5 * erfc(-z / _SQRT2)

    def sf(self, x: float) -> float:
        """P(X > x)."""
        z = (x - self.mu) / self.sigma
        return 0.5 * erfc(z / _SQRT2)

    def ppf(self, q: float) -> float:
        """Quantile function (inverse CDF) via bisection refined by Newton."""
        if not 0.0 < q < 1.0:
            raise StatisticsError(f"quantile level must be in (0, 1), got {q}")
        z = _standard_normal_ppf(q)
        return self.mu + self.sigma * z


def _standard_normal_ppf(q: float) -> float:
    """Acklam's rational approximation, refined with one Halley step."""
    # Coefficients for the central and tail regions.
    a = (
        -3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
        1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
    )
    b = (
        -5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
        6.680131188771972e+01, -1.328068155288572e+01,
    )
    c = (
        -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
        -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
    )
    d = (
        7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
        3.754408661907416e+00,
    )
    q_low = 0.02425
    if q < q_low:
        u = math.sqrt(-2.0 * math.log(q))
        z = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    elif q <= 1.0 - q_low:
        u = q - 0.5
        r = u * u
        z = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * u / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    else:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        z = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0
        )
    # One Halley refinement step against the exact CDF.
    err = 0.5 * erfc(-z / _SQRT2) - q
    pdf = math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
    if pdf > 0.0:
        u = err / pdf
        z -= u / (1.0 + z * u / 2.0)
    return z


@dataclass(frozen=True)
class StudentT:
    """Student's t distribution with (possibly fractional) ``df`` degrees."""

    df: float

    def __post_init__(self) -> None:
        if self.df <= 0.0:
            raise StatisticsError(f"StudentT df must be positive, got {self.df}")

    def pdf(self, x: float) -> float:
        """Probability density at ``x``."""
        nu = self.df
        from .special import log_gamma  # local import avoids cycle at module load

        log_norm = (
            log_gamma((nu + 1.0) / 2.0)
            - log_gamma(nu / 2.0)
            - 0.5 * math.log(nu * math.pi)
        )
        return math.exp(log_norm - ((nu + 1.0) / 2.0) * math.log1p(x * x / nu))

    def cdf(self, x: float) -> float:
        """P(T <= x) through the regularized incomplete beta function."""
        nu = self.df
        if x == 0.0:
            return 0.5
        z = nu / (nu + x * x)
        tail = 0.5 * regularized_incomplete_beta(nu / 2.0, 0.5, z)
        return 1.0 - tail if x > 0.0 else tail

    def sf(self, x: float) -> float:
        """P(T > x)."""
        return self.cdf(-x)

    def two_sided_p_value(self, t: float) -> float:
        """P(|T| >= |t|) — the p-value of a two-sided t-test."""
        nu = self.df
        if t == 0.0:
            return 1.0
        z = nu / (nu + t * t)
        return min(1.0, regularized_incomplete_beta(nu / 2.0, 0.5, z))

    def ppf(self, q: float) -> float:
        """Quantile function by bisection on the CDF (robust for any df)."""
        if not 0.0 < q < 1.0:
            raise StatisticsError(f"quantile level must be in (0, 1), got {q}")
        if q == 0.5:
            return 0.0
        # Bracket: the normal quantile scaled generously is always inside.
        guess = abs(_standard_normal_ppf(q))
        hi = max(4.0, guess * 8.0 + 8.0)
        lo = -hi
        while self.cdf(hi) < q:
            hi *= 2.0
            if hi > 1e12:
                raise StatisticsError("StudentT.ppf failed to bracket quantile")
        while self.cdf(lo) > q:
            lo *= 2.0
            if lo < -1e12:
                raise StatisticsError("StudentT.ppf failed to bracket quantile")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.cdf(mid) < q:
                lo = mid
            else:
                hi = mid
            if hi - lo < 1e-12 * max(1.0, abs(mid)):
                break
        return 0.5 * (lo + hi)

    def critical_value(self, confidence: float = 0.95) -> float:
        """Two-sided critical value: reject |t| above this at ``confidence``."""
        if not 0.0 < confidence < 1.0:
            raise StatisticsError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        alpha = 1.0 - confidence
        return self.ppf(1.0 - alpha / 2.0)
