"""Streaming moment accumulators: O(1)-memory statistics with exact merge.

Batch evaluation retains every sample of every (category, event) stream and
recomputes ``np.mean`` / ``np.var`` from scratch — O(n) memory and O(n) work
per verdict.  A monitoring service cannot afford either.  This module keeps
only the Welford sufficient statistics ``(count, mean, M2)`` per stream and
updates them incrementally:

* :class:`MomentAccumulator` — one scalar stream;
* :class:`MomentColumns` — one category's row of event columns, updated a
  batch at a time with vectorized NumPy arithmetic;
* :class:`StreamingMoments` — the full category × event matrix, convertible
  into a :class:`repro.stats.vectorized.SufficientStats` so the broadcast
  Welch/Student machinery runs unchanged on ``(mean, var, n)`` triples;
* :class:`SlidingWindowMoments` — a fixed-capacity ring buffer for drift
  detection over the trailing window.

Merging uses Chan et al.'s pairwise update, which combines two shards'
``(count, mean, M2)`` exactly (no loss of the variance information, no
catastrophic cancellation from subtracting large sums of squares).  The
merge is *deterministic*: a fixed sequence of shards merged in a fixed
order always yields bit-identical state, so the measurement path's
discipline of merging per-chunk states in sorted ``(category, start)``
order (the same rule PR 6 applies to telemetry payloads) makes results
independent of worker scheduling.  Different shard *partitions* (e.g.
different worker counts) agree to floating-point roundoff — at realistic
counter magnitudes the equivalence suite pins this at 1e-9 relative on
derived t statistics.  In the adversarial 1e12-mean/unit-variance regime
the accumulator stays within the ~1e-5 envelope every float64 two-pass
method shares (the rounded mean itself), where a naive sum-of-squares
accumulator loses every significant digit outright.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import StatisticsError

__all__ = [
    "MomentAccumulator",
    "MomentColumns",
    "SlidingWindowMoments",
    "StreamingMoments",
]


def _batch_moments(rows: np.ndarray) -> Tuple[int, np.ndarray, np.ndarray]:
    """``(count, mean, M2)`` of one batch of rows, reduced along axis 0."""
    count = rows.shape[0]
    mean = rows.mean(axis=0)
    centered = rows - mean
    m2 = np.einsum("ij,ij->j", centered, centered)
    return count, mean, m2


def _merge_moments(n_a: float, mean_a, m2_a, n_b: float, mean_b, m2_b):
    """Chan et al. pairwise combination of two ``(count, mean, M2)`` shards.

    Exact in the sense that no information is lost: the combined state is
    algebraically identical to accumulating both shards' samples into one
    stream, without ever forming a sum of squares (the quantity whose
    cancellation destroys naive accumulators at large magnitudes).
    """
    if n_a == 0:
        return n_b, mean_b, m2_b
    if n_b == 0:
        return n_a, mean_a, m2_a
    total = n_a + n_b
    delta = mean_b - mean_a
    mean = mean_a + delta * (n_b / total)
    m2 = m2_a + m2_b + delta * delta * (n_a * n_b / total)
    return total, mean, m2


class MomentAccumulator:
    """Welford accumulator for one scalar stream.

    Attributes:
        count: Observations folded in so far.
        mean: Running mean.
        m2: Running sum of squared deviations from the mean.
    """

    __slots__ = ("count", "mean", "m2")

    def __init__(self, count: int = 0, mean: float = 0.0, m2: float = 0.0):
        if count < 0:
            raise StatisticsError(f"count must be >= 0, got {count}")
        if m2 < 0.0:
            raise StatisticsError(f"M2 must be >= 0, got {m2}")
        self.count = int(count)
        self.mean = float(mean)
        self.m2 = float(m2)

    def push(self, value: float) -> None:
        """Fold one observation in (classic Welford update)."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def extend(self, values: Iterable[float]) -> None:
        """Fold a batch of observations in (one vectorized Chan merge)."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray)
                         else values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        b_mean = arr.mean()
        centered = arr - b_mean
        b_m2 = float(centered @ centered)
        self.count, self.mean, self.m2 = _merge_moments(
            self.count, self.mean, self.m2, arr.size, float(b_mean), b_m2)
        self.count = int(self.count)

    def merge(self, other: "MomentAccumulator") -> None:
        """Combine another accumulator's state into this one (Chan merge)."""
        self.count, self.mean, self.m2 = _merge_moments(
            self.count, self.mean, self.m2,
            other.count, other.mean, other.m2)
        self.count = int(self.count)

    @property
    def variance(self) -> float:
        """Unbiased (ddof=1) sample variance of everything folded in."""
        if self.count < 2:
            raise StatisticsError(
                f"variance needs >= 2 observations, got {self.count}")
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return float(np.sqrt(self.variance))

    def state(self) -> Tuple[int, float, float]:
        """Transportable ``(count, mean, m2)`` triple."""
        return (self.count, self.mean, self.m2)

    @classmethod
    def from_state(cls, state: Tuple[int, float, float]) -> "MomentAccumulator":
        """Rebuild from a :meth:`state` triple."""
        return cls(*state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MomentAccumulator(count={self.count}, mean={self.mean!r}, "
                f"m2={self.m2!r})")


class MomentColumns:
    """Welford moments of one category's ``E`` parallel event columns.

    Batches arrive as ``(B, E)`` arrays (one row per measurement, one
    column per event) and are folded in with a single vectorized Chan
    merge, so the per-batch cost is O(B·E) array arithmetic with no
    Python-level per-sample loop.

    Args:
        columns: Number of parallel columns (monitored events).
    """

    __slots__ = ("count", "mean", "m2")

    def __init__(self, columns: int):
        if columns < 1:
            raise StatisticsError(f"need >= 1 column, got {columns}")
        self.count = 0
        self.mean = np.zeros(columns, dtype=np.float64)
        self.m2 = np.zeros(columns, dtype=np.float64)

    @property
    def columns(self) -> int:
        """Number of parallel columns."""
        return self.mean.shape[0]

    def observe(self, rows: np.ndarray) -> None:
        """Fold a ``(B, E)`` batch of rows in."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2 or rows.shape[1] != self.columns:
            raise StatisticsError(
                f"expected rows of {self.columns} columns, got array of "
                f"shape {rows.shape}")
        if rows.shape[0] == 0:
            return
        b_count, b_mean, b_m2 = _batch_moments(rows)
        if self.count == 0:
            # Bit-exact adoption: a shard's state is exactly its own batch
            # moments, which keeps same-partition merges bitwise
            # reproducible.
            self.count = b_count
            self.mean = b_mean
            self.m2 = b_m2
            return
        self.count, self.mean, self.m2 = _merge_moments(
            self.count, self.mean, self.m2, b_count, b_mean, b_m2)
        self.count = int(self.count)

    def merge(self, other: "MomentColumns") -> None:
        """Combine another shard's columns into this one (Chan merge)."""
        if other.columns != self.columns:
            raise StatisticsError(
                f"cannot merge {other.columns} columns into {self.columns}")
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean.copy()
            self.m2 = other.m2.copy()
            return
        self.count, self.mean, self.m2 = _merge_moments(
            self.count, self.mean, self.m2,
            other.count, other.mean, other.m2)
        self.count = int(self.count)

    def variance(self, ddof: int = 1) -> np.ndarray:
        """Per-column sample variance of everything folded in."""
        if self.count <= ddof:
            raise StatisticsError(
                f"variance needs more than ddof={ddof} observations, "
                f"got {self.count}")
        return self.m2 / (self.count - ddof)


class StreamingMoments:
    """The full category × event accumulator matrix — O(k·e) memory total.

    Purely numeric: rows are keyed by integer category, columns are
    positional (the caller owns the event labels).  Feeding ``n`` samples
    costs O(n·e) arithmetic overall but the retained state never grows —
    exactly the evaluator-side memory contract the streaming engine gates.

    Args:
        columns: Number of event columns every category must provide.
    """

    def __init__(self, columns: int):
        if columns < 1:
            raise StatisticsError(f"need >= 1 column, got {columns}")
        self._columns = columns
        self._rows: Dict[int, MomentColumns] = {}

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------

    @property
    def columns(self) -> int:
        """Number of event columns."""
        return self._columns

    @property
    def categories(self) -> List[int]:
        """Categories observed so far, sorted."""
        return sorted(self._rows)

    def count(self, category: int) -> int:
        """Observations folded in for ``category`` (0 when unseen)."""
        row = self._rows.get(category)
        return row.count if row is not None else 0

    def observe(self, category: int, rows: np.ndarray) -> None:
        """Fold a ``(B, E)`` batch of one category's measurements in."""
        row = self._rows.get(int(category))
        if row is None:
            row = self._rows[int(category)] = MomentColumns(self._columns)
        row.observe(rows)

    def row(self, category: int) -> MomentColumns:
        """The long-run accumulator of one category (drift baseline).

        Raises:
            StatisticsError: When the category was never observed.
        """
        row = self._rows.get(int(category))
        if row is None:
            raise StatisticsError(f"category {category} was never observed")
        return row

    # ------------------------------------------------------------------
    # Merging / transport
    # ------------------------------------------------------------------

    def merge(self, other: "StreamingMoments") -> None:
        """Combine another shard's matrix into this one, category-wise.

        Deterministic given the merge sequence; the measurement path
        always merges shards in sorted chunk order, making the combined
        state independent of worker scheduling.
        """
        if other._columns != self._columns:
            raise StatisticsError(
                f"cannot merge {other._columns} columns into {self._columns}")
        for category in sorted(other._rows):
            mine = self._rows.get(category)
            if mine is None:
                mine = self._rows[category] = MomentColumns(self._columns)
            mine.merge(other._rows[category])

    def state(self) -> Dict[str, np.ndarray]:
        """Flatten into ``{"cat<k>/<field>": array}`` (npz-friendly).

        The layout mirrors ``EventDistributions.to_arrays`` so checkpoint
        files stay self-describing, but stores three O(e) arrays per
        category instead of O(n) raw samples.
        """
        out: Dict[str, np.ndarray] = {}
        for category in self.categories:
            row = self._rows[category]
            out[f"cat{category}/count"] = np.asarray([row.count],
                                                     dtype=np.int64)
            out[f"cat{category}/mean"] = row.mean.copy()
            out[f"cat{category}/m2"] = row.m2.copy()
        return out

    @classmethod
    def from_state(cls, arrays: Mapping[str, np.ndarray],
                   columns: Optional[int] = None) -> "StreamingMoments":
        """Inverse of :meth:`state` (bit-exact round trip)."""
        fields: Dict[int, Dict[str, np.ndarray]] = {}
        for key, values in arrays.items():
            if "/" not in key or not key.startswith("cat"):
                continue
            cat_part, field = key.split("/", 1)
            try:
                category = int(cat_part[3:])
            except ValueError:
                continue
            fields.setdefault(category, {})[field] = np.asarray(values)
        if not fields and columns is None:
            raise StatisticsError("no accumulator state arrays found")
        if columns is None:
            columns = next(iter(fields.values()))["mean"].size
        moments = cls(columns)
        for category, per_field in fields.items():
            missing = {"count", "mean", "m2"} - set(per_field)
            if missing:
                raise StatisticsError(
                    f"category {category} state is missing {sorted(missing)}")
            row = MomentColumns(columns)
            row.count = int(per_field["count"][0])
            row.mean = np.asarray(per_field["mean"],
                                  dtype=np.float64).reshape(columns)
            row.m2 = np.asarray(per_field["m2"],
                                dtype=np.float64).reshape(columns)
            if row.count < 0 or np.any(row.m2 < 0.0):
                raise StatisticsError(
                    f"category {category} state is not a valid accumulator")
            moments._rows[category] = row
        return moments

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def to_sufficient_stats(self, events: Sequence) -> "SufficientStats":
        """``(n, mean, var)`` arrays in the vectorized evaluator's format.

        Args:
            events: Column labels, in column order (the caller owns them).

        Returns:
            A :class:`repro.stats.vectorized.SufficientStats` ready for
            :func:`repro.stats.vectorized.batch_pairwise_tests` — the
            whole broadcast t/p machinery runs on the accumulator state
            with no retained samples.
        """
        from .vectorized import SufficientStats

        events = tuple(events)
        if len(events) != self._columns:
            raise StatisticsError(
                f"expected {self._columns} event labels, got {len(events)}")
        categories = self.categories
        if not categories:
            raise StatisticsError("no categories observed yet")
        n = np.empty(len(categories), dtype=np.float64)
        mean = np.empty((len(categories), self._columns), dtype=np.float64)
        var = np.empty_like(mean)
        for index, category in enumerate(categories):
            row = self._rows[category]
            if row.count < 2:
                raise StatisticsError(
                    f"category {category} needs at least 2 observations, "
                    f"got {row.count}")
            n[index] = row.count
            mean[index] = row.mean
            var[index] = row.variance()
        return SufficientStats(categories=tuple(categories), events=events,
                               n=n, mean=mean, var=var)

    def memory_bytes(self) -> int:
        """Bytes retained by the accumulator arrays (flat in sample count)."""
        total = 0
        for row in self._rows.values():
            total += row.mean.nbytes + row.m2.nbytes + 8  # + the count slot
        return total


class SlidingWindowMoments:
    """Trailing-window moments over a fixed-capacity ring buffer.

    Holds the last ``capacity`` rows of one category's event columns —
    O(W·e) memory regardless of stream length — for drift detection: the
    long-run accumulators answer "do these categories differ?", the
    window answers "has this stream recently moved away from its own
    long-run behaviour?".

    Args:
        capacity: Window length (rows retained).
        columns: Number of parallel event columns.
    """

    def __init__(self, capacity: int, columns: int):
        if capacity < 2:
            raise StatisticsError(f"capacity must be >= 2, got {capacity}")
        if columns < 1:
            raise StatisticsError(f"need >= 1 column, got {columns}")
        self._buffer = np.zeros((capacity, columns), dtype=np.float64)
        self._next = 0
        self._filled = 0
        self.total_seen = 0

    @property
    def capacity(self) -> int:
        """Maximum rows retained."""
        return self._buffer.shape[0]

    @property
    def columns(self) -> int:
        """Number of parallel columns."""
        return self._buffer.shape[1]

    @property
    def count(self) -> int:
        """Rows currently inside the window."""
        return self._filled

    def observe(self, rows: np.ndarray) -> None:
        """Append rows, evicting the oldest beyond :attr:`capacity`."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2 or rows.shape[1] != self.columns:
            raise StatisticsError(
                f"expected rows of {self.columns} columns, got array of "
                f"shape {rows.shape}")
        self.total_seen += rows.shape[0]
        capacity = self.capacity
        if rows.shape[0] >= capacity:
            # The batch alone overwrites the whole window.
            self._buffer[:] = rows[-capacity:]
            self._next = 0
            self._filled = capacity
            return
        first = min(rows.shape[0], capacity - self._next)
        self._buffer[self._next:self._next + first] = rows[:first]
        remainder = rows.shape[0] - first
        if remainder:
            self._buffer[:remainder] = rows[first:]
        self._next = (self._next + rows.shape[0]) % capacity
        self._filled = min(capacity, self._filled + rows.shape[0])

    def window(self) -> np.ndarray:
        """The retained rows, oldest first (copy)."""
        if self._filled < self.capacity:
            return self._buffer[:self._filled].copy()
        return np.concatenate([self._buffer[self._next:],
                               self._buffer[:self._next]])

    def mean(self) -> np.ndarray:
        """Per-column mean over the current window."""
        if self._filled == 0:
            raise StatisticsError("window is empty")
        return self._buffer[:self._filled].mean(axis=0)

    def variance(self, ddof: int = 1) -> np.ndarray:
        """Per-column sample variance over the current window."""
        if self._filled <= ddof:
            raise StatisticsError(
                f"variance needs more than ddof={ddof} rows, "
                f"got {self._filled}")
        return self._buffer[:self._filled].var(axis=0, ddof=ddof)

    def state(self) -> Dict[str, np.ndarray]:
        """Npz-able window state (bit-exact round trip via :meth:`from_state`).

        The rows are stored oldest-first (the rotation is normalized away),
        so two windows holding the same trailing samples serialize
        identically regardless of their internal write cursor.
        """
        return {
            "window/rows": self.window(),
            "window/capacity": np.asarray([self.capacity], dtype=np.int64),
            "window/total_seen": np.asarray([self.total_seen],
                                            dtype=np.int64),
        }

    @classmethod
    def from_state(cls, arrays: Mapping[str, np.ndarray]
                   ) -> "SlidingWindowMoments":
        """Rebuild a window from persisted :meth:`state` arrays."""
        try:
            rows = np.asarray(arrays["window/rows"], dtype=np.float64)
            capacity = int(np.asarray(arrays["window/capacity"])[0])
            total_seen = int(np.asarray(arrays["window/total_seen"])[0])
        except KeyError as exc:
            raise StatisticsError(
                f"window state is missing {exc.args[0]!r}") from None
        if rows.ndim != 2 or rows.shape[0] > capacity:
            raise StatisticsError(
                f"window state rows of shape {rows.shape} do not fit "
                f"capacity {capacity}")
        window = cls(capacity, rows.shape[1])
        if rows.shape[0]:
            window.observe(rows)
        window.total_seen = total_seen
        return window

    def drift_z_scores(self, baseline: MomentColumns) -> np.ndarray:
        """Window-mean z-scores against a long-run baseline accumulator.

        Per column: ``(window_mean - baseline_mean) / sqrt(baseline_var / W)``
        — how many standard errors the trailing window has moved away from
        the stream's long-run behaviour.
        """
        if baseline.columns != self.columns:
            raise StatisticsError(
                f"baseline has {baseline.columns} columns, window has "
                f"{self.columns}")
        if self._filled == 0:
            raise StatisticsError("window is empty")
        scale = np.sqrt(baseline.variance() / self._filled)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = (self.mean() - baseline.mean) / scale
        return np.where(scale == 0.0, 0.0, z)
