"""Multiple-comparison corrections for families of pairwise leakage tests.

The paper runs 6 pairwise tests per event per dataset at a fixed 95%
confidence without correction.  The reproduction reports both the raw
verdicts (to match the paper's tables) and family-wise corrected verdicts,
since an evaluator scanning many events over many category pairs would
otherwise accumulate false alarms.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import StatisticsError


def _validate(p_values: Sequence[float]) -> List[float]:
    ps = [float(p) for p in p_values]
    if not ps:
        raise StatisticsError("need at least one p-value")
    for p in ps:
        if not 0.0 <= p <= 1.0:
            raise StatisticsError(f"p-value {p} outside [0, 1]")
    return ps


def bonferroni(p_values: Sequence[float]) -> List[float]:
    """Bonferroni-adjusted p-values: ``min(1, m * p)``."""
    ps = _validate(p_values)
    m = len(ps)
    return [min(1.0, m * p) for p in ps]


def holm_bonferroni(p_values: Sequence[float]) -> List[float]:
    """Holm's step-down adjusted p-values (uniformly more powerful)."""
    ps = _validate(p_values)
    m = len(ps)
    order = sorted(range(m), key=lambda i: ps[i])
    adjusted = [0.0] * m
    running_max = 0.0
    for rank, idx in enumerate(order):
        candidate = min(1.0, (m - rank) * ps[idx])
        running_max = max(running_max, candidate)
        adjusted[idx] = running_max
    return adjusted


def benjamini_hochberg(p_values: Sequence[float]) -> List[float]:
    """Benjamini–Hochberg FDR-adjusted p-values (q-values)."""
    ps = _validate(p_values)
    m = len(ps)
    order = sorted(range(m), key=lambda i: ps[i])
    adjusted = [0.0] * m
    running_min = 1.0
    for rank in range(m - 1, -1, -1):
        idx = order[rank]
        candidate = min(1.0, ps[idx] * m / (rank + 1))
        running_min = min(running_min, candidate)
        adjusted[idx] = running_min
    return adjusted


_METHODS = {
    "none": lambda ps: list(_validate(ps)),
    "bonferroni": bonferroni,
    "holm": holm_bonferroni,
    "bh": benjamini_hochberg,
}


def adjust_p_values(p_values: Sequence[float], method: str = "none") -> List[float]:
    """Dispatch to a correction by name (``none``/``bonferroni``/``holm``/``bh``)."""
    try:
        fn = _METHODS[method]
    except KeyError:
        raise StatisticsError(
            f"unknown correction {method!r}; choose from {sorted(_METHODS)}"
        ) from None
    return fn(p_values)


def significant_after_correction(p_values: Sequence[float], alpha: float = 0.05,
                                 method: str = "holm") -> List[bool]:
    """Boolean reject/accept vector after applying ``method`` at level ``alpha``."""
    if not 0.0 < alpha < 1.0:
        raise StatisticsError(f"alpha must be in (0, 1), got {alpha}")
    return [p < alpha for p in adjust_p_values(p_values, method=method)]
