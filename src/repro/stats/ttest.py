"""Two-sample t-tests — the hypothesis test at the heart of the paper.

The evaluator computes, for each HPC event and each pair of input categories,
a two-sample t statistic on the two distributions of counter readings and
rejects the null hypothesis of equal means when the two-sided p-value drops
below ``1 - confidence`` (the paper uses a 95% confidence interval).

Welch's unequal-variance test is the default, matching standard practice for
side-channel leakage assessment (it is also what ``scipy.stats.ttest_ind``
computes with ``equal_var=False``); the pooled-variance Student test is
provided for comparison and ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import StatisticsError
from .descriptive import _as_float_array
from .distributions import StudentT


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a two-sample t-test.

    Attributes:
        statistic: The t statistic (sign follows ``mean(a) - mean(b)``).
        p_value: Two-sided p-value.
        df: Degrees of freedom (fractional for Welch).
        mean_a: Sample mean of the first group.
        mean_b: Sample mean of the second group.
        n_a: First group size.
        n_b: Second group size.
        method: ``"welch"`` or ``"student"``.
    """

    statistic: float
    p_value: float
    df: float
    mean_a: float
    mean_b: float
    n_a: int
    n_b: int
    method: str

    def rejects_null(self, confidence: float = 0.95) -> bool:
        """True when the equal-means null is rejected at ``confidence``."""
        if not 0.0 < confidence < 1.0:
            raise StatisticsError(f"confidence must be in (0, 1), got {confidence}")
        return self.p_value < (1.0 - confidence)

    def format(self) -> str:
        """Compact ``t=..., p=...`` rendering used in the paper-style tables."""
        return f"t={self.statistic:+.4f} p={format_p_value(self.p_value)} df={self.df:.1f}"


def format_p_value(p: float, approx_zero_below: float = 5e-5) -> str:
    """Render a p-value the way the paper's tables do (tiny values as ``~0``)."""
    if p < approx_zero_below:
        return "~0"
    return f"{p:.4f}"


def _moments(values: Iterable[float], name: str):
    arr = _as_float_array(values, name=name)
    if arr.size < 2:
        raise StatisticsError(f"{name} needs at least 2 observations, got {arr.size}")
    return arr.size, float(np.mean(arr)), float(np.var(arr, ddof=1))


def welch_t_test(a: Iterable[float], b: Iterable[float]) -> TTestResult:
    """Welch's unequal-variance two-sample t-test.

    Args:
        a: Readings of one HPC event for input category *i*.
        b: Readings of the same event for category *j*.

    Returns:
        A :class:`TTestResult` with the Welch–Satterthwaite degrees of freedom.
    """
    n_a, mean_a, var_a = _moments(a, "a")
    n_b, mean_b, var_b = _moments(b, "b")
    se_a = var_a / n_a
    se_b = var_b / n_b
    se_sq = se_a + se_b
    if se_sq == 0.0:
        # Both samples are exactly constant.  Equal constants -> no evidence
        # of difference; different constants -> perfectly separable.
        if mean_a == mean_b:
            return TTestResult(0.0, 1.0, float(n_a + n_b - 2), mean_a, mean_b,
                               n_a, n_b, "welch")
        return TTestResult(math.inf if mean_a > mean_b else -math.inf, 0.0,
                           float(n_a + n_b - 2), mean_a, mean_b, n_a, n_b, "welch")
    t = (mean_a - mean_b) / math.sqrt(se_sq)
    df_denominator = (se_a * se_a) / (n_a - 1) + (se_b * se_b) / (n_b - 1)
    if df_denominator > 0.0:
        df = se_sq * se_sq / df_denominator
    else:
        # Variances so small their squares underflow: fall back to pooled df.
        df = float(n_a + n_b - 2)
    p = StudentT(df).two_sided_p_value(t)
    return TTestResult(t, p, df, mean_a, mean_b, n_a, n_b, "welch")


def student_t_test(a: Iterable[float], b: Iterable[float]) -> TTestResult:
    """Classic pooled-variance Student two-sample t-test."""
    n_a, mean_a, var_a = _moments(a, "a")
    n_b, mean_b, var_b = _moments(b, "b")
    df = float(n_a + n_b - 2)
    pooled = ((n_a - 1) * var_a + (n_b - 1) * var_b) / df
    if pooled == 0.0:
        if mean_a == mean_b:
            return TTestResult(0.0, 1.0, df, mean_a, mean_b, n_a, n_b, "student")
        return TTestResult(math.inf if mean_a > mean_b else -math.inf, 0.0,
                           df, mean_a, mean_b, n_a, n_b, "student")
    t = (mean_a - mean_b) / math.sqrt(pooled * (1.0 / n_a + 1.0 / n_b))
    p = StudentT(df).two_sided_p_value(t)
    return TTestResult(t, p, df, mean_a, mean_b, n_a, n_b, "student")


def one_sample_t_test(values: Iterable[float], popmean: float) -> TTestResult:
    """One-sample t-test of ``mean(values) == popmean``.

    Useful for checking a counter against a calibrated reference level (e.g.
    countermeasure validation against the designed constant footprint).
    """
    n, mu, var = _moments(values, "values")
    df = float(n - 1)
    if var == 0.0:
        if mu == popmean:
            return TTestResult(0.0, 1.0, df, mu, popmean, n, 1, "one-sample")
        return TTestResult(math.inf if mu > popmean else -math.inf, 0.0,
                           df, mu, popmean, n, 1, "one-sample")
    t = (mu - popmean) / math.sqrt(var / n)
    p = StudentT(df).two_sided_p_value(t)
    return TTestResult(t, p, df, mu, popmean, n, 1, "one-sample")
