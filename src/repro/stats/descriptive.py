"""Descriptive statistics for HPC measurement distributions.

These helpers are deliberately explicit (one pass with Welford's algorithm
where numerically helpful) because the evaluator applies them to raw counter
readings whose magnitudes can span many orders of magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import StatisticsError


def _as_float_array(values: Iterable[float], name: str = "values") -> np.ndarray:
    # np.asarray handles ndarrays (copy-free), lists and tuples directly;
    # only consumable iterators (generators) need materializing first.
    try:
        arr = np.asarray(values, dtype=float)
    except (TypeError, ValueError):
        arr = np.asarray(list(values), dtype=float)
    if arr.ndim != 1:
        arr = arr.ravel()
    if arr.size == 0:
        raise StatisticsError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise StatisticsError(f"{name} contains non-finite entries")
    return arr


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean."""
    return float(np.mean(_as_float_array(values)))


def variance(values: Iterable[float], ddof: int = 1) -> float:
    """Variance with ``ddof`` delta degrees of freedom (sample variance by default).

    Computed with Welford's online algorithm for numerical stability on
    large-magnitude counter values.
    """
    arr = _as_float_array(values)
    if arr.size <= ddof:
        raise StatisticsError(
            f"variance needs more than ddof={ddof} observations, got {arr.size}"
        )
    running_mean = 0.0
    m2 = 0.0
    for i, x in enumerate(arr, start=1):
        delta = x - running_mean
        running_mean += delta / i
        m2 += delta * (x - running_mean)
    return m2 / (arr.size - ddof)


def std(values: Iterable[float], ddof: int = 1) -> float:
    """Standard deviation (square root of :func:`variance`)."""
    return math.sqrt(variance(values, ddof=ddof))


def median(values: Iterable[float]) -> float:
    """Median."""
    return float(np.median(_as_float_array(values)))


def quantile(values: Iterable[float], q: float) -> float:
    """Linear-interpolated quantile, ``q`` in [0, 1]."""
    if not 0.0 <= q <= 1.0:
        raise StatisticsError(f"quantile level must be in [0, 1], got {q}")
    return float(np.quantile(_as_float_array(values), q))


def standard_error(values: Iterable[float]) -> float:
    """Standard error of the mean."""
    arr = _as_float_array(values)
    return std(arr) / math.sqrt(arr.size)


def coefficient_of_variation(values: Iterable[float]) -> float:
    """Relative dispersion: sample std divided by |mean|."""
    arr = _as_float_array(values)
    mu = float(np.mean(arr))
    if mu == 0.0:
        raise StatisticsError("coefficient of variation undefined for zero mean")
    return std(arr) / abs(mu)


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of one distribution of counter readings."""

    n: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    @classmethod
    def of(cls, values: Iterable[float]) -> "Summary":
        """Build a summary of ``values``."""
        arr = _as_float_array(values)
        sample_std = std(arr) if arr.size > 1 else 0.0
        return cls(
            n=int(arr.size),
            mean=float(np.mean(arr)),
            std=sample_std,
            minimum=float(np.min(arr)),
            q25=float(np.quantile(arr, 0.25)),
            median=float(np.median(arr)),
            q75=float(np.quantile(arr, 0.75)),
            maximum=float(np.max(arr)),
        )

    def format(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} q25={self.q25:.4g} med={self.median:.4g} "
            f"q75={self.q75:.4g} max={self.maximum:.4g}"
        )


@dataclass(frozen=True)
class Histogram:
    """A binned view of a distribution, used to render the paper's figures."""

    edges: Tuple[float, ...]
    counts: Tuple[int, ...]

    @classmethod
    def of(cls, values: Iterable[float], bins: int = 20,
           value_range: Tuple[float, float] = None) -> "Histogram":
        """Histogram ``values`` into ``bins`` equal-width bins.

        Args:
            values: Observations.
            bins: Number of bins (>= 1).
            value_range: Optional (lo, hi) range; defaults to data range.
        """
        if bins < 1:
            raise StatisticsError(f"bins must be >= 1, got {bins}")
        arr = _as_float_array(values)
        counts, edges = np.histogram(arr, bins=bins, range=value_range)
        return cls(edges=tuple(float(e) for e in edges),
                   counts=tuple(int(c) for c in counts))

    @property
    def total(self) -> int:
        """Total number of binned observations."""
        return sum(self.counts)

    def densities(self) -> List[float]:
        """Per-bin probability densities (integrate to 1)."""
        total = self.total
        out = []
        for count, lo, hi in zip(self.counts, self.edges[:-1], self.edges[1:]):
            width = hi - lo
            out.append(count / (total * width) if total and width else 0.0)
        return out

    def render(self, width: int = 50, label: str = "") -> str:
        """ASCII rendering (one bar per bin), used by the figure benches."""
        peak = max(self.counts) if self.counts else 0
        lines = []
        if label:
            lines.append(label)
        for count, lo, hi in zip(self.counts, self.edges[:-1], self.edges[1:]):
            bar = "#" * (round(width * count / peak) if peak else 0)
            lines.append(f"[{lo:12.4g}, {hi:12.4g}) {count:5d} {bar}")
        return "\n".join(lines)


def shared_histogram_range(groups: Sequence[Iterable[float]],
                           pad_fraction: float = 0.02) -> Tuple[float, float]:
    """Common (lo, hi) range covering every group, slightly padded.

    The paper's Figures 3 and 4 overlay per-category distributions on one
    axis; a shared range keeps the rendered histograms comparable.
    """
    if not groups:
        raise StatisticsError("need at least one group")
    lows, highs = [], []
    for group in groups:
        arr = _as_float_array(group, name="group")
        lows.append(float(np.min(arr)))
        highs.append(float(np.max(arr)))
    lo, hi = min(lows), max(highs)
    pad = (hi - lo) * pad_fraction or max(abs(lo), 1.0) * pad_fraction
    return lo - pad, hi + pad
