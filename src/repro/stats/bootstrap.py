"""Bootstrap confidence intervals for leakage effect sizes.

The t-test says *whether* two categories' counter means differ; a bootstrap
interval says *by how much*, with no normality assumption — useful because
HPC counts are integer-valued and occasionally skewed.  Percentile and BCa
(bias-corrected and accelerated) intervals are provided, both fully seeded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..errors import StatisticsError
from .descriptive import _as_float_array
from .distributions import Normal


@dataclass(frozen=True)
class BootstrapInterval:
    """A two-sided bootstrap confidence interval.

    Attributes:
        estimate: The statistic on the original sample(s).
        low: Lower confidence bound.
        high: Upper confidence bound.
        confidence: Interval coverage.
        method: ``percentile`` or ``bca``.
        resamples: Bootstrap replications used.
    """

    estimate: float
    low: float
    high: float
    confidence: float
    method: str
    resamples: int

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def format(self) -> str:
        """Compact rendering."""
        return (f"{self.estimate:.4g} "
                f"[{self.low:.4g}, {self.high:.4g}] "
                f"({self.confidence:.0%} {self.method})")


def _validate(confidence: float, resamples: int) -> None:
    if not 0.0 < confidence < 1.0:
        raise StatisticsError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 100:
        raise StatisticsError(
            f"need >= 100 resamples for a stable interval, got {resamples}"
        )


def bootstrap_mean_difference(a: Iterable[float], b: Iterable[float],
                              confidence: float = 0.95,
                              resamples: int = 2000,
                              seed: int = 0) -> BootstrapInterval:
    """Percentile bootstrap CI for ``mean(a) - mean(b)``.

    Args:
        a: First sample (e.g. one category's cache-miss readings).
        b: Second sample.
        confidence: Interval coverage (paper-compatible default 0.95).
        resamples: Bootstrap replications.
        seed: Resampling seed (fully deterministic).
    """
    _validate(confidence, resamples)
    arr_a = _as_float_array(a, "a")
    arr_b = _as_float_array(b, "b")
    rng = np.random.default_rng(seed)
    idx_a = rng.integers(0, arr_a.size, size=(resamples, arr_a.size))
    idx_b = rng.integers(0, arr_b.size, size=(resamples, arr_b.size))
    diffs = arr_a[idx_a].mean(axis=1) - arr_b[idx_b].mean(axis=1)
    alpha = 1.0 - confidence
    low, high = np.quantile(diffs, [alpha / 2.0, 1.0 - alpha / 2.0])
    return BootstrapInterval(
        estimate=float(arr_a.mean() - arr_b.mean()),
        low=float(low), high=float(high),
        confidence=confidence, method="percentile", resamples=resamples)


def bootstrap_statistic(values: Iterable[float],
                        statistic: Callable[[np.ndarray], float],
                        confidence: float = 0.95, resamples: int = 2000,
                        seed: int = 0,
                        method: str = "percentile") -> BootstrapInterval:
    """Bootstrap CI for an arbitrary one-sample statistic.

    Args:
        values: The sample.
        statistic: Maps an array to a scalar (e.g. ``np.median``).
        confidence: Interval coverage.
        resamples: Bootstrap replications.
        seed: Resampling seed.
        method: ``"percentile"`` or ``"bca"`` (bias-corrected/accelerated;
            more accurate for skewed statistics at the price of n extra
            jackknife evaluations).
    """
    _validate(confidence, resamples)
    if method not in ("percentile", "bca"):
        raise StatisticsError(
            f"method must be 'percentile' or 'bca', got {method!r}"
        )
    arr = _as_float_array(values, "values")
    if arr.size < 2:
        raise StatisticsError("bootstrap needs at least 2 observations")
    rng = np.random.default_rng(seed)
    estimate = float(statistic(arr))
    replicates = np.empty(resamples)
    for i in range(resamples):
        replicates[i] = statistic(arr[rng.integers(0, arr.size, arr.size)])
    alpha = 1.0 - confidence
    if method == "percentile":
        low, high = np.quantile(replicates,
                                [alpha / 2.0, 1.0 - alpha / 2.0])
    else:
        normal = Normal()
        # Bias correction from the fraction of replicates below the estimate.
        proportion = float(np.mean(replicates < estimate))
        proportion = min(max(proportion, 1.0 / (resamples + 1)),
                         1.0 - 1.0 / (resamples + 1))
        z0 = normal.ppf(proportion)
        # Acceleration from the jackknife skewness.
        jackknife = np.empty(arr.size)
        for i in range(arr.size):
            jackknife[i] = statistic(np.delete(arr, i))
        centered = jackknife.mean() - jackknife
        denominator = float(np.sum(centered ** 2)) ** 1.5
        acceleration = (float(np.sum(centered ** 3))
                        / (6.0 * denominator) if denominator else 0.0)
        z_lo = normal.ppf(alpha / 2.0)
        z_hi = normal.ppf(1.0 - alpha / 2.0)

        def adjusted(z: float) -> float:
            corrected = z0 + (z0 + z) / (1.0 - acceleration * (z0 + z))
            return float(np.quantile(replicates, normal.cdf(corrected)))

        low, high = adjusted(z_lo), adjusted(z_hi)
    return BootstrapInterval(estimate=estimate, low=float(low),
                             high=float(high), confidence=confidence,
                             method=method, resamples=resamples)
