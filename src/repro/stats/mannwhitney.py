"""Mann–Whitney U test — a distribution-free alternative to the t-test.

HPC counter distributions are occasionally heavy-tailed (context switches,
interrupt storms), where the t-test loses power.  The evaluator can be
configured to corroborate t-test verdicts with this rank test.  We use the
normal approximation with tie correction, which is accurate for the sample
sizes the paper works with (dozens to thousands of readings per category).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import StatisticsError
from .descriptive import _as_float_array
from .distributions import Normal


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of a two-sided Mann–Whitney U test.

    Attributes:
        u_statistic: The U statistic of the first sample.
        z_statistic: Normal-approximation z score (continuity corrected).
        p_value: Two-sided p-value.
        n_a: First group size.
        n_b: Second group size.
    """

    u_statistic: float
    z_statistic: float
    p_value: float
    n_a: int
    n_b: int

    def rejects_null(self, confidence: float = 0.95) -> bool:
        """True when the identical-distribution null is rejected."""
        if not 0.0 < confidence < 1.0:
            raise StatisticsError(f"confidence must be in (0, 1), got {confidence}")
        return self.p_value < (1.0 - confidence)


def _midranks(pooled: np.ndarray) -> np.ndarray:
    """Ranks with ties replaced by their midrank (1-based)."""
    order = np.argsort(pooled, kind="mergesort")
    ranks = np.empty(pooled.size, dtype=float)
    sorted_vals = pooled[order]
    i = 0
    while i < pooled.size:
        j = i
        while j + 1 < pooled.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        midrank = 0.5 * (i + j) + 1.0
        ranks[order[i:j + 1]] = midrank
        i = j + 1
    return ranks


def mann_whitney_u(a: Iterable[float], b: Iterable[float]) -> MannWhitneyResult:
    """Two-sided Mann–Whitney U test with normal approximation.

    Args:
        a: First sample of counter readings.
        b: Second sample.

    Returns:
        A :class:`MannWhitneyResult`.
    """
    arr_a = _as_float_array(a, "a")
    arr_b = _as_float_array(b, "b")
    n_a, n_b = arr_a.size, arr_b.size
    if n_a < 2 or n_b < 2:
        raise StatisticsError("mann_whitney_u needs >= 2 observations per group")
    pooled = np.concatenate([arr_a, arr_b])
    ranks = _midranks(pooled)
    rank_sum_a = float(ranks[:n_a].sum())
    u_a = rank_sum_a - n_a * (n_a + 1) / 2.0

    mean_u = n_a * n_b / 2.0
    # Tie correction for the variance of U.
    _, tie_counts = np.unique(pooled, return_counts=True)
    n = n_a + n_b
    tie_term = float(((tie_counts ** 3) - tie_counts).sum())
    var_u = n_a * n_b / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var_u <= 0.0:
        # All pooled values identical: no evidence of any difference.
        return MannWhitneyResult(u_a, 0.0, 1.0, n_a, n_b)
    # Continuity correction toward the mean.
    diff = u_a - mean_u
    correction = -0.5 if diff > 0 else (0.5 if diff < 0 else 0.0)
    z = (diff + correction) / math.sqrt(var_u)
    p = 2.0 * Normal().sf(abs(z))
    return MannWhitneyResult(u_a, z, min(1.0, p), n_a, n_b)


def rank_biserial_correlation(a: Iterable[float], b: Iterable[float]) -> float:
    """Rank-biserial effect size ``r = 2U/(n_a n_b) - 1`` in [-1, 1]."""
    arr_a = _as_float_array(a, "a")
    arr_b = _as_float_array(b, "b")
    result = mann_whitney_u(arr_a, arr_b)
    return 2.0 * result.u_statistic / (result.n_a * result.n_b) - 1.0
