"""Statistical power analysis for the evaluator's measurement planning.

The paper measures "all the test images belonging to different categories";
a deployed evaluator must instead decide *how many* classifications to
observe.  These helpers answer the two planning questions for the
two-sample t-test at the heart of the methodology:

* :func:`ttest_power` — detection probability for a given standardized
  effect size and per-group sample count;
* :func:`required_samples_per_group` — the measurement budget needed to
  reach a target power.

Both use the standard normal approximation to the noncentral t (accurate to
a couple of percent for n >= 10, the regime the evaluator operates in).
"""

from __future__ import annotations

import math

from ..errors import StatisticsError
from .distributions import Normal, StudentT


def ttest_power(effect_size: float, n_per_group: int,
                alpha: float = 0.05) -> float:
    """Two-sided two-sample t-test power.

    Args:
        effect_size: Standardized mean difference (Cohen's d).
        n_per_group: Measurements per category.
        alpha: Significance level (the paper: 0.05).

    Returns:
        Probability of rejecting the null when the true difference is
        ``effect_size`` pooled standard deviations.
    """
    if n_per_group < 2:
        raise StatisticsError(f"need n >= 2 per group, got {n_per_group}")
    if not 0.0 < alpha < 1.0:
        raise StatisticsError(f"alpha must be in (0, 1), got {alpha}")
    df = 2.0 * (n_per_group - 1)
    critical = StudentT(df).ppf(1.0 - alpha / 2.0)
    noncentrality = abs(effect_size) * math.sqrt(n_per_group / 2.0)
    normal = Normal()
    # Normal approximation to the noncentral t: T' ~ N(ncp, 1).
    power = (normal.sf(critical - noncentrality)
             + normal.cdf(-critical - noncentrality))
    return min(1.0, max(0.0, power))


def required_samples_per_group(effect_size: float, power: float = 0.8,
                               alpha: float = 0.05,
                               max_n: int = 10_000_000) -> int:
    """Smallest per-category measurement count reaching ``power``.

    Args:
        effect_size: Standardized mean difference to detect (non-zero).
        power: Target detection probability.
        alpha: Significance level.
        max_n: Search cap (raises if exceeded — the effect is undetectable
            in practice).
    """
    if effect_size == 0.0:
        raise StatisticsError("effect_size must be non-zero")
    if not 0.0 < power < 1.0:
        raise StatisticsError(f"power must be in (0, 1), got {power}")
    # Closed-form seed from the pure-normal approximation...
    normal = Normal()
    z_alpha = normal.ppf(1.0 - alpha / 2.0)
    z_beta = normal.ppf(power)
    seed = int(math.ceil(2.0 * ((z_alpha + z_beta) / abs(effect_size)) ** 2))
    if seed > max_n:
        raise StatisticsError(
            f"effect size {effect_size} needs more than {max_n} samples"
        )
    # ...then walk to the exact (approximated-power) threshold.
    n = max(2, seed)
    while n > 2 and ttest_power(effect_size, n - 1, alpha) >= power:
        n -= 1
    while ttest_power(effect_size, n, alpha) < power:
        n += 1
        if n > max_n:
            raise StatisticsError(
                f"effect size {effect_size} needs more than {max_n} samples"
            )
    return n


def detectable_effect_size(n_per_group: int, power: float = 0.8,
                           alpha: float = 0.05) -> float:
    """Smallest Cohen's d detectable with ``n_per_group`` measurements."""
    if n_per_group < 2:
        raise StatisticsError(f"need n >= 2 per group, got {n_per_group}")
    if not 0.0 < power < 1.0:
        raise StatisticsError(f"power must be in (0, 1), got {power}")
    lo, hi = 1e-6, 100.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if ttest_power(mid, n_per_group, alpha) < power:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-9:
            break
    return 0.5 * (lo + hi)
