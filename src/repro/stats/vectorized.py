"""Vectorized pairwise hypothesis testing — the evaluator's fast path.

The scalar path (:mod:`repro.stats.ttest`) recomputes sample moments for
every one of the C(n, 2) category pairs and walks a Python continued
fraction per p-value.  This module computes per-(category, event)
sufficient statistics *once* as NumPy arrays and then evaluates every pair
of every event with broadcast arithmetic: Welch/Student t statistics,
degrees of freedom, two-sided p-values (through an array implementation of
the regularized incomplete beta function) and Cohen's d, all in a handful
of array operations.

The array beta function runs the same Lentz continued fraction as
:func:`repro.stats.special.regularized_incomplete_beta`, lane-by-lane
retired at each lane's own convergence step, so vectorized p-values match
the scalar ones to the last few ulps (most lanes exactly) — a property the
test-suite asserts to 1e-12 across random and degenerate distributions.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import StatisticsError
from .special import (
    _CF_EPSILON,
    _CF_FPMIN,
    _LANCZOS_COEFFS,
    _LANCZOS_G,
    _MAX_CF_ITERATIONS,
)

__all__ = [
    "PairwiseTestArrays",
    "SufficientStats",
    "batch_pairwise_tests",
    "log_gamma_array",
    "pairwise_indices",
    "regularized_incomplete_beta_array",
    "two_sided_p_values",
]


@functools.lru_cache(maxsize=64)
def pairwise_indices(n_categories: int) -> Tuple[np.ndarray, np.ndarray]:
    """The C(n,2) upper-triangle pair index arrays for ``n_categories``.

    Built once per category count and reused across evaluations — a
    streaming evaluator calls :func:`batch_pairwise_tests` every tick, and
    rebuilding the combination indices each time is pure waste.  The
    cached arrays are marked read-only so no caller can corrupt the cache.
    """
    if n_categories < 2:
        raise StatisticsError("need at least two categories to compare")
    ia, ib = np.triu_indices(n_categories, k=1)
    ia.setflags(write=False)
    ib.setflags(write=False)
    return ia, ib

_LOG_TWO_PI_HALF = 0.5 * np.log(2.0 * np.pi)


def log_gamma_array(x: np.ndarray) -> np.ndarray:
    """Elementwise ``ln |Gamma(x)|`` — the array twin of ``special.log_gamma``.

    Runs the same Lanczos series (same coefficients, same operation order)
    over whole arrays, with the reflection formula applied through a mask
    for lanes below 0.5.
    """
    x = np.asarray(x, dtype=np.float64)
    if np.any((x <= 0.0) & (x == np.floor(x))):
        raise StatisticsError("log_gamma undefined at non-positive integers")
    out = np.empty(x.shape, dtype=np.float64)
    reflect = x < 0.5
    if reflect.any():
        xr = x[reflect]
        out[reflect] = (np.log(np.pi / np.abs(np.sin(np.pi * xr)))
                        - log_gamma_array(1.0 - xr))
    direct = ~reflect
    if direct.any():
        xd = x[direct] - 1.0
        series = np.full(xd.shape, _LANCZOS_COEFFS[0])
        for i, coeff in enumerate(_LANCZOS_COEFFS[1:], start=1):
            series += coeff / (xd + i)
        t = xd + _LANCZOS_G + 0.5
        out[direct] = (_LOG_TWO_PI_HALF + (xd + 0.5) * np.log(t) - t
                       + np.log(series))
    return out


def _log_beta_array(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``ln B(a, b)`` for positive arrays."""
    return log_gamma_array(a) + log_gamma_array(b) - log_gamma_array(a + b)


def _beta_continued_fraction_array(a: np.ndarray, b: np.ndarray,
                                   x: np.ndarray) -> np.ndarray:
    """Lentz's continued fraction, elementwise over equally-shaped arrays.

    Each lane is frozen at its own convergence iteration, replicating the
    scalar kernel's early exit exactly.
    """
    a = a.ravel().copy()
    b = b.ravel().copy()
    x = x.ravel().copy()
    out = np.empty(x.shape, dtype=np.float64)
    lanes = np.arange(x.size)  # output positions of the remaining lanes
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = np.ones_like(x)
    d = 1.0 - qab * x / qap
    d = np.where(np.abs(d) < _CF_FPMIN, _CF_FPMIN, d)
    d = 1.0 / d
    h = d.copy()
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for m in range(1, _MAX_CF_ITERATIONS + 1):
            m2 = 2 * m
            am2 = a + m2
            # Even step.
            aa = m * (b - m) * x / ((qam + m2) * am2)
            d = 1.0 + aa * d
            d = np.where(np.abs(d) < _CF_FPMIN, _CF_FPMIN, d)
            c = 1.0 + aa / c
            c = np.where(np.abs(c) < _CF_FPMIN, _CF_FPMIN, c)
            d = 1.0 / d
            h = h * (d * c)
            # Odd step.
            aa = -(a + m) * (qab + m) * x / (am2 * (qap + m2))
            d = 1.0 + aa * d
            d = np.where(np.abs(d) < _CF_FPMIN, _CF_FPMIN, d)
            c = 1.0 + aa / c
            c = np.where(np.abs(c) < _CF_FPMIN, _CF_FPMIN, c)
            d = 1.0 / d
            delta = d * c
            h = h * delta
            # Retire converged lanes at their own stopping iteration (the
            # scalar kernel's early exit), compacting the working set.
            converged = np.abs(delta - 1.0) < _CF_EPSILON
            if converged.any():
                out[lanes[converged]] = h[converged]
                if converged.all():
                    return out
                keep = ~converged
                lanes = lanes[keep]
                a, b, x = a[keep], b[keep], x[keep]
                qab, qap, qam = qab[keep], qap[keep], qam[keep]
                c, d, h = c[keep], d[keep], h[keep]
    raise StatisticsError(
        "incomplete beta continued fraction failed to converge for "
        f"{lanes.size} lane(s)"
    )


def regularized_incomplete_beta_array(a: np.ndarray, b: np.ndarray,
                                      x: np.ndarray) -> np.ndarray:
    """Elementwise regularized incomplete beta ``I_x(a, b)`` over arrays.

    Args:
        a: First shape parameters (> 0), broadcastable against ``x``.
        b: Second shape parameters (> 0), broadcastable against ``x``.
        x: Upper integration limits in ``[0, 1]``.

    Returns:
        ``I_x(a, b)`` with the broadcast shape, matching the scalar
        :func:`repro.stats.special.regularized_incomplete_beta` lane by lane.
    """
    a, b, x = np.broadcast_arrays(np.asarray(a, dtype=np.float64),
                                  np.asarray(b, dtype=np.float64),
                                  np.asarray(x, dtype=np.float64))
    if np.any(a <= 0.0) or np.any(b <= 0.0):
        raise StatisticsError("incomplete beta requires positive shapes")
    if np.any(x < 0.0) or np.any(x > 1.0):
        raise StatisticsError("incomplete beta arguments must lie in [0, 1]")
    out = np.empty(x.shape, dtype=np.float64)
    flat_a, flat_b, flat_x = a.ravel(), b.ravel(), x.ravel()
    flat_out = out.ravel()
    at_zero = flat_x == 0.0
    at_one = flat_x == 1.0
    flat_out[at_zero] = 0.0
    flat_out[at_one] = 1.0
    interior = ~(at_zero | at_one)
    if interior.any():
        ai, bi, xi = flat_a[interior], flat_b[interior], flat_x[interior]
        log_b = _log_beta_array(ai, bi)
        front = np.exp(ai * np.log(xi) + bi * np.log(1.0 - xi) - log_b)
        # The continued fraction converges fastest below the split point;
        # use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) above it.  Both
        # orientations run through ONE fraction call (lanes are independent,
        # so mixing them changes nothing per lane but halves the fixed
        # per-iteration dispatch overhead of two separate loops).
        direct = xi < (ai + 1.0) / (ai + bi + 2.0)
        cf_a = np.where(direct, ai, bi)
        cf_b = np.where(direct, bi, ai)
        cf_x = np.where(direct, xi, 1.0 - xi)
        tail = front * _beta_continued_fraction_array(cf_a, cf_b, cf_x) / cf_a
        flat_out[interior] = np.where(direct, tail, 1.0 - tail)
    return flat_out.reshape(x.shape)


def two_sided_p_values(t: np.ndarray, df: np.ndarray) -> np.ndarray:
    """``P(|T| >= |t|)`` elementwise, matching ``StudentT.two_sided_p_value``.

    Args:
        t: t statistics (finite; infinite statistics are handled by the
            degenerate-variance branches of :func:`batch_pairwise_tests`).
        df: Degrees of freedom (> 0), same shape as ``t``.
    """
    t = np.asarray(t, dtype=np.float64)
    df = np.asarray(df, dtype=np.float64)
    p = np.ones(np.broadcast(t, df).shape, dtype=np.float64)
    nonzero = (t != 0.0) & np.isfinite(t)
    if nonzero.any():
        tz = np.broadcast_to(t, p.shape)[nonzero]
        dz = np.broadcast_to(df, p.shape)[nonzero]
        z = dz / (dz + tz * tz)
        p[nonzero] = np.minimum(
            1.0, regularized_incomplete_beta_array(dz / 2.0, 0.5, z))
    p[np.broadcast_to(np.isinf(t), p.shape)] = 0.0
    return p


@dataclass(frozen=True)
class SufficientStats:
    """Per-(category, event) sample moments of one set of distributions.

    Attributes:
        categories: Category indices, sorted (row order of the arrays).
        events: Events, in evaluation order (column order of the arrays).
        n: Sample counts, shape ``(C,)``.
        mean: Sample means, shape ``(C, E)``.
        var: Unbiased (ddof=1) sample variances, shape ``(C, E)``.
    """

    categories: Tuple[int, ...]
    events: tuple
    n: np.ndarray
    mean: np.ndarray
    var: np.ndarray

    @classmethod
    def from_distributions(cls, distributions,
                           events: Optional[Sequence] = None
                           ) -> "SufficientStats":
        """Compute the moment arrays from an ``EventDistributions``.

        Each 1-D readings vector is reduced exactly once with the same
        ``np.mean`` / ``np.var(ddof=1)`` reductions as the scalar tests, so
        downstream broadcast arithmetic reproduces the scalar results.
        """
        categories = tuple(distributions.categories)
        events = tuple(events) if events is not None else tuple(
            distributions.events)
        n = np.empty(len(categories), dtype=np.float64)
        mean = np.empty((len(categories), len(events)), dtype=np.float64)
        var = np.empty_like(mean)
        for ci, category in enumerate(categories):
            n[ci] = distributions.sample_count(category)
            if n[ci] < 2:
                raise StatisticsError(
                    f"category {category} needs at least 2 observations, "
                    f"got {int(n[ci])}"
                )
            # One stacked (E, n) reduction per category instead of E scalar
            # np.mean/np.var dispatches — rows are contiguous, so the
            # per-row reductions are numerically the 1-D reductions.
            stacked = np.stack([distributions.values(category, event)
                                for event in events])
            mean[ci] = stacked.mean(axis=1)
            var[ci] = stacked.var(axis=1, ddof=1)
        return cls(categories=categories, events=events, n=n, mean=mean,
                   var=var)


@dataclass(frozen=True)
class PairwiseTestArrays:
    """All C(n,2) x E pairwise test results as arrays.

    Rows follow ``itertools.combinations(categories, 2)`` order; columns
    follow the event order of the originating :class:`SufficientStats`.

    Attributes:
        index_a: Row index (into ``SufficientStats.categories``) of the
            first category of each pair, shape ``(P,)``.
        index_b: Row index of the second category of each pair.
        statistic: t statistics, shape ``(P, E)`` (signed, may be ``inf``).
        p_value: Two-sided p-values, shape ``(P, E)``.
        df: Degrees of freedom, shape ``(P, E)``.
        mean_a: First-group means, shape ``(P, E)``.
        mean_b: Second-group means, shape ``(P, E)``.
        n_a: First-group sizes, shape ``(P,)``.
        n_b: Second-group sizes, shape ``(P,)``.
        effect_size: Cohen's d, shape ``(P, E)``.
        method: ``"welch"`` or ``"student"``.
    """

    index_a: np.ndarray
    index_b: np.ndarray
    statistic: np.ndarray
    p_value: np.ndarray
    df: np.ndarray
    mean_a: np.ndarray
    mean_b: np.ndarray
    n_a: np.ndarray
    n_b: np.ndarray
    effect_size: np.ndarray
    method: str


def batch_pairwise_tests(stats: SufficientStats,
                         method: str = "welch") -> PairwiseTestArrays:
    """Evaluate every category pair on every event in broadcast arithmetic.

    Args:
        stats: Per-(category, event) sufficient statistics.
        method: ``"welch"`` (unequal variances) or ``"student"`` (pooled).

    Returns:
        A :class:`PairwiseTestArrays` whose entries match the scalar
        :func:`repro.stats.ttest.welch_t_test` /
        :func:`~repro.stats.ttest.student_t_test` and
        :func:`repro.stats.effect_size.cohens_d` results.
    """
    if method not in ("welch", "student"):
        raise StatisticsError(
            f"method must be 'welch' or 'student', got {method!r}"
        )
    n_categories = len(stats.categories)
    if n_categories < 2:
        raise StatisticsError("need at least two categories to compare")
    ia, ib = pairwise_indices(n_categories)
    n_a = stats.n[ia][:, None]
    n_b = stats.n[ib][:, None]
    mean_a = stats.mean[ia]
    mean_b = stats.mean[ib]
    var_a = stats.var[ia]
    var_b = stats.var[ib]
    diff = mean_a - mean_b
    pooled_df = n_a + n_b - 2.0
    pooled_var = ((n_a - 1.0) * var_a + (n_b - 1.0) * var_b) / pooled_df
    signed_inf = np.where(diff > 0.0, np.inf, -np.inf)

    with np.errstate(divide="ignore", invalid="ignore"):
        if method == "welch":
            se_a = var_a / n_a
            se_b = var_b / n_b
            se_sq = se_a + se_b
            degenerate = se_sq == 0.0
            t = diff / np.sqrt(se_sq)
            df_denominator = (se_a * se_a) / (n_a - 1.0) + \
                (se_b * se_b) / (n_b - 1.0)
            df = np.where(df_denominator > 0.0,
                          se_sq * se_sq / df_denominator, pooled_df)
        else:
            degenerate = pooled_var == 0.0
            t = diff / np.sqrt(pooled_var * (1.0 / n_a + 1.0 / n_b))
            df = np.broadcast_to(pooled_df, t.shape).copy()
        # Degenerate lanes (both samples exactly constant): equal constants
        # carry no evidence, unequal constants are perfectly separable.
        t = np.where(degenerate, np.where(diff == 0.0, 0.0, signed_inf), t)
        df = np.where(degenerate, np.broadcast_to(pooled_df, t.shape), df)
        p = two_sided_p_values(t, df)
        p = np.where(degenerate, np.where(diff == 0.0, 1.0, 0.0), p)
        effect = diff / np.sqrt(pooled_var)
        effect = np.where(pooled_var == 0.0,
                          np.where(diff == 0.0, 0.0, signed_inf), effect)
    return PairwiseTestArrays(
        index_a=ia,
        index_b=ib,
        statistic=t,
        p_value=p,
        df=df,
        mean_a=mean_a,
        mean_b=mean_b,
        n_a=stats.n[ia],
        n_b=stats.n[ib],
        effect_size=effect,
        method=method,
    )
