"""Two-one-sided-tests (TOST) equivalence testing.

A *failure to reject* in the paper's t-test does not demonstrate that two
categories are indistinguishable — it may simply reflect low power.  The
reproduction therefore also offers TOST: declare two HPC distributions
*equivalent* only when both one-sided tests reject, i.e. the mean difference
is provably inside ``±margin``.  This is the statistically sound way to
certify a countermeasure as leak-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import StatisticsError
from .descriptive import _as_float_array
from .distributions import StudentT


@dataclass(frozen=True)
class TostResult:
    """Outcome of a TOST equivalence test.

    Attributes:
        p_lower: p-value of H0: ``mean(a) - mean(b) <= -margin``.
        p_upper: p-value of H0: ``mean(a) - mean(b) >= +margin``.
        p_value: ``max(p_lower, p_upper)`` — the TOST p-value.
        margin: The equivalence margin used (absolute units).
        mean_difference: Observed ``mean(a) - mean(b)``.
        df: Welch degrees of freedom.
    """

    p_lower: float
    p_upper: float
    p_value: float
    margin: float
    mean_difference: float
    df: float

    def equivalent(self, alpha: float = 0.05) -> bool:
        """True when equivalence within the margin is demonstrated."""
        if not 0.0 < alpha < 1.0:
            raise StatisticsError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value < alpha


def tost_equivalence(a: Iterable[float], b: Iterable[float],
                     margin: float) -> TostResult:
    """Welch-based TOST equivalence test with absolute margin.

    Args:
        a: First sample.
        b: Second sample.
        margin: Positive equivalence margin in counter units; the means are
            declared equivalent when their difference is provably within
            ``(-margin, +margin)``.
    """
    if margin <= 0.0:
        raise StatisticsError(f"margin must be positive, got {margin}")
    arr_a = _as_float_array(a, "a")
    arr_b = _as_float_array(b, "b")
    if arr_a.size < 2 or arr_b.size < 2:
        raise StatisticsError("tost needs >= 2 observations per group")
    n_a, n_b = arr_a.size, arr_b.size
    mean_a, mean_b = float(np.mean(arr_a)), float(np.mean(arr_b))
    var_a, var_b = float(np.var(arr_a, ddof=1)), float(np.var(arr_b, ddof=1))
    se_sq = var_a / n_a + var_b / n_b
    diff = mean_a - mean_b
    if se_sq == 0.0:
        inside = abs(diff) < margin
        p = 0.0 if inside else 1.0
        return TostResult(p, p, p, margin, diff, float(n_a + n_b - 2))
    se = math.sqrt(se_sq)
    df_denominator = ((var_a / n_a) ** 2 / (n_a - 1)
                      + (var_b / n_b) ** 2 / (n_b - 1))
    df = (se_sq * se_sq / df_denominator if df_denominator > 0.0
          else float(n_a + n_b - 2))
    dist = StudentT(df)
    # H0_lower: diff <= -margin, rejected when t_lower is large.
    t_lower = (diff + margin) / se
    p_lower = dist.sf(t_lower)
    # H0_upper: diff >= +margin, rejected when t_upper is very negative.
    t_upper = (diff - margin) / se
    p_upper = dist.cdf(t_upper)
    return TostResult(p_lower, p_upper, max(p_lower, p_upper), margin, diff, df)


def relative_margin(reference: Iterable[float], fraction: float) -> float:
    """Absolute margin equal to ``fraction`` of the reference sample mean.

    Convenience for expressing equivalence margins like "within 0.5% of the
    typical cache-miss count".
    """
    if fraction <= 0.0:
        raise StatisticsError(f"fraction must be positive, got {fraction}")
    arr = _as_float_array(reference, "reference")
    mu = abs(float(np.mean(arr)))
    if mu == 0.0:
        raise StatisticsError("relative margin undefined for zero-mean reference")
    return fraction * mu
