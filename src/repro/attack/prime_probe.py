"""Simulated Prime+Probe attack on the shared last-level cache.

The paper's related work (Cache Telepathy, CSI NN, ...) recovers *model*
secrets with classic cache attacks; this module turns the same technique on
the *input*: a co-located adversary primes every LLC set with its own lines,
lets the victim classify one input, then probes — the per-set eviction
pattern is a far richer observable than the scalar `cache-misses` counter,
so input-category recovery is correspondingly stronger.

The simulation shares one LLC between the victim (whose L1/L2 are private
and filter its accesses) and the attacker (who reaches the LLC directly, as
a real attacker does by bypassing or thrashing its own private levels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.base import LabeledDataset
from ..errors import SimulationError
from ..nn.model import Sequential
from ..trace.recorder import OP_MEM, Trace, TraceConfig
from ..uarch.hierarchy import CacheHierarchy, HierarchyConfig
from .engine import prime_probe_vectors, replay_supported, traces_compatible
from .features import profile_attack_vectors
from .trace_store import TraceStore, collect_traces


class PrimeProbeAttacker:
    """Measures one victim classification's per-LLC-set footprint.

    Args:
        hierarchy_config: The shared cache system (the victim's view).
        attacker_base_line: First line id of the attacker's eviction-set
            buffer; must not collide with victim lines, which live in the
            low address range of :class:`repro.trace.AddressSpace`.
    """

    def __init__(self, hierarchy_config: Optional[HierarchyConfig] = None,
                 attacker_base_line: int = 1 << 40):
        self.config = hierarchy_config or HierarchyConfig()
        self.attacker_base_line = attacker_base_line
        llc = self.config.llc
        self.num_sets = llc.num_sets
        self.associativity = llc.associativity
        # One attacker line per (set, way): congruent addresses per set.
        self._eviction_lines: List[np.ndarray] = []
        for set_index in range(self.num_sets):
            ways = (attacker_base_line + set_index
                    + np.arange(self.associativity) * self.num_sets)
            self._eviction_lines.append(ways)

    def _prime(self, llc) -> None:
        for ways in self._eviction_lines:
            llc.access_many(ways)

    def _probe(self, llc) -> np.ndarray:
        # Probe in REVERSE priming order: with LRU replacement the victim
        # evicts the oldest attacker ways first, so touching the newest ways
        # first refreshes the survivors without self-evicting the set — the
        # standard trick real Prime+Probe loops use.  The miss count then
        # equals the number of victim lines that landed in the set (capped
        # by the associativity).
        vector = np.empty(self.num_sets, dtype=np.int64)
        for set_index, ways in enumerate(self._eviction_lines):
            missed = llc.access_many(ways[::-1])
            vector[set_index] = len(missed)
        return vector

    def probe_vector(self, victim_trace: Trace, epochs: int = 8) -> np.ndarray:
        """Time-sliced Prime+Probe over one classification.

        A classification's working set typically exceeds the LLC, so a
        single end-of-run probe saturates (every way evicted everywhere).
        Real attacks therefore probe *periodically*; here the victim's
        memory-operation stream is divided into ``epochs`` slices with a
        prime before and a probe after each.

        Args:
            victim_trace: The classification's trace (memory ops are used).
            epochs: Temporal resolution of the attack.

        Returns:
            ``(epochs * num_sets,)`` ints — per-epoch, per-set counts of
            attacker ways the victim displaced.
        """
        if epochs < 1:
            raise SimulationError(f"epochs must be >= 1, got {epochs}")
        hierarchy = CacheHierarchy(self.config)
        llc = hierarchy.llc
        mem_ops = [op for op in victim_trace.ops if op[0] == OP_MEM]
        total = sum(op[1].size for op in mem_ops)
        if total == 0:
            raise SimulationError("victim trace contains no memory accesses")
        budget = max(1, total // epochs)
        vectors: List[np.ndarray] = []
        self._prime(llc)
        consumed = 0
        for op in mem_ops:
            lines = op[1]
            start = 0
            while start < lines.size:
                if len(vectors) < epochs - 1:
                    remaining = max(1, budget - consumed)
                else:
                    # All intermediate probes done: drain the rest.
                    remaining = lines.size - start
                chunk = lines[start:start + remaining]
                hierarchy.access_stream(chunk, write=op[2])
                consumed += chunk.size
                start += chunk.size
                if consumed >= budget and len(vectors) < epochs - 1:
                    vectors.append(self._probe(llc))
                    self._prime(llc)
                    consumed = 0
        vectors.append(self._probe(llc))
        while len(vectors) < epochs:
            vectors.append(np.zeros(self.num_sets, dtype=np.int64))
        return np.concatenate(vectors[:epochs])

    def probe_vectors(self, traces: Sequence[Trace],
                      epochs: int = 8) -> np.ndarray:
        """Probe vectors for a whole batch of victim traces.

        Dispatches to the vectorized replay engine — bit-identical to
        :meth:`probe_vector` (see ``tests/attack/test_engine.py``) —
        whenever the hierarchy uses LRU replacement and the victim's line
        ids cannot collide with the eviction buffer; anything else falls
        back to the per-trace reference loop.

        Returns:
            ``(len(traces), epochs * num_sets)`` int64 probe vectors.
        """
        if epochs < 1:
            raise SimulationError(f"epochs must be >= 1, got {epochs}")
        traces = list(traces)
        if not traces:
            return np.zeros((0, epochs * self.num_sets), dtype=np.int64)
        if (replay_supported(self.config)
                and traces_compatible(traces,
                                      max_line=self.attacker_base_line)):
            return prime_probe_vectors(traces, self.config, epochs=epochs)
        return np.stack([self.probe_vector(trace, epochs=epochs)
                         for trace in traces])

    def describe(self) -> str:
        """One-line attacker description."""
        return (f"prime+probe over {self.num_sets} LLC sets x "
                f"{self.associativity} ways")


@dataclass
class PrimeProbeResult:
    """Outcome of a profiled Prime+Probe recovery attack.

    Attributes:
        accuracy: Input-category recovery accuracy on held-out traces.
        chance_level: 1 / #categories.
        num_sets: LLC sets (features = epochs * num_sets).
        per_category_accuracy: Recall per category.
        classifier_name: Model used on the probe vectors.
        n_train: Profiling traces.
        n_test: Attacked traces.
    """

    accuracy: float
    chance_level: float
    num_sets: int
    per_category_accuracy: Dict[int, float]
    classifier_name: str
    n_train: int
    n_test: int

    @property
    def advantage(self) -> float:
        """Accuracy above chance, normalized."""
        return (self.accuracy - self.chance_level) / (1.0 - self.chance_level)

    def summary(self) -> str:
        """Human-readable digest."""
        lines = [
            f"prime+probe attack ({self.classifier_name} on {self.num_sets} "
            f"LLC-set features, {self.n_train} profiling / {self.n_test} "
            f"attacked traces)",
            f"  accuracy {self.accuracy:.1%} vs chance "
            f"{self.chance_level:.1%} (advantage {self.advantage:.1%})",
        ]
        for category, acc in sorted(self.per_category_accuracy.items()):
            lines.append(f"  category {category}: {acc:.1%}")
        return "\n".join(lines)


def collect_probe_vectors(model: Sequential, dataset: LabeledDataset,
                          categories: Sequence[int],
                          samples_per_category: int,
                          trace_config: Optional[TraceConfig] = None,
                          hierarchy_config: Optional[HierarchyConfig] = None,
                          epochs: int = 8,
                          store: Optional[TraceStore] = None,
                          tag: str = "") -> Tuple[np.ndarray, np.ndarray]:
    """Per-classification probe vectors for labelled inputs.

    Args:
        store: Optional shared :class:`repro.attack.TraceStore`; traced
            passes are reused across attackers and countermeasure variants.
        tag: Extra trace-store key component (see
            :func:`repro.attack.collect_traces`).

    Returns:
        ``(x, y)`` — ``(n, epochs * num_sets)`` probe vectors and category
        labels.
    """
    traces, labels = collect_traces(model, dataset, categories,
                                    samples_per_category, trace_config,
                                    store=store, tag=tag)
    attacker = PrimeProbeAttacker(hierarchy_config)
    return attacker.probe_vectors(traces, epochs=epochs).astype(float), labels


def prime_probe_attack(model: Sequential, dataset: LabeledDataset,
                       categories: Sequence[int],
                       samples_per_category: int,
                       classifier: str = "lda",
                       train_fraction: float = 0.6,
                       trace_config: Optional[TraceConfig] = None,
                       hierarchy_config: Optional[HierarchyConfig] = None,
                       epochs: int = 8,
                       seed: int = 0,
                       store: Optional[TraceStore] = None,
                       tag: str = "") -> PrimeProbeResult:
    """Full profiled Prime+Probe study: collect, split, profile, attack."""
    x, y = collect_probe_vectors(model, dataset, categories,
                                 samples_per_category, trace_config,
                                 hierarchy_config, epochs=epochs,
                                 store=store, tag=tag)
    outcome = profile_attack_vectors(x, y, classifier=classifier,
                                     train_fraction=train_fraction, seed=seed)
    return PrimeProbeResult(
        accuracy=outcome.accuracy,
        chance_level=outcome.chance_level,
        num_sets=x.shape[1],
        per_category_accuracy=outcome.per_category_accuracy,
        classifier_name=outcome.classifier_name,
        n_train=outcome.n_train,
        n_test=outcome.n_test,
    )
