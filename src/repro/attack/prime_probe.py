"""Simulated Prime+Probe attack on the shared last-level cache.

The paper's related work (Cache Telepathy, CSI NN, ...) recovers *model*
secrets with classic cache attacks; this module turns the same technique on
the *input*: a co-located adversary primes every LLC set with its own lines,
lets the victim classify one input, then probes — the per-set eviction
pattern is a far richer observable than the scalar `cache-misses` counter,
so input-category recovery is correspondingly stronger.

The simulation shares one LLC between the victim (whose L1/L2 are private
and filter its accesses) and the attacker (who reaches the LLC directly, as
a real attacker does by bypassing or thrashing its own private levels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets.base import LabeledDataset
from ..errors import SimulationError
from ..nn.model import Sequential
from ..trace.recorder import OP_MEM, Trace, TraceConfig
from ..trace.traced_model import TracedInference
from ..uarch.hierarchy import CacheHierarchy, HierarchyConfig
from .classifiers import AttackClassifier, make_classifier
from .features import Standardizer


class PrimeProbeAttacker:
    """Measures one victim classification's per-LLC-set footprint.

    Args:
        hierarchy_config: The shared cache system (the victim's view).
        attacker_base_line: First line id of the attacker's eviction-set
            buffer; must not collide with victim lines, which live in the
            low address range of :class:`repro.trace.AddressSpace`.
    """

    def __init__(self, hierarchy_config: Optional[HierarchyConfig] = None,
                 attacker_base_line: int = 1 << 40):
        self.config = hierarchy_config or HierarchyConfig()
        self.attacker_base_line = attacker_base_line
        llc = self.config.llc
        self.num_sets = llc.num_sets
        self.associativity = llc.associativity
        # One attacker line per (set, way): congruent addresses per set.
        self._eviction_lines: List[np.ndarray] = []
        for set_index in range(self.num_sets):
            ways = (attacker_base_line + set_index
                    + np.arange(self.associativity) * self.num_sets)
            self._eviction_lines.append(ways)

    def _prime(self, llc) -> None:
        for ways in self._eviction_lines:
            llc.access_many(ways)

    def _probe(self, llc) -> np.ndarray:
        # Probe in REVERSE priming order: with LRU replacement the victim
        # evicts the oldest attacker ways first, so touching the newest ways
        # first refreshes the survivors without self-evicting the set — the
        # standard trick real Prime+Probe loops use.  The miss count then
        # equals the number of victim lines that landed in the set (capped
        # by the associativity).
        vector = np.empty(self.num_sets, dtype=np.int64)
        for set_index, ways in enumerate(self._eviction_lines):
            missed = llc.access_many(ways[::-1])
            vector[set_index] = len(missed)
        return vector

    def probe_vector(self, victim_trace: Trace, epochs: int = 8) -> np.ndarray:
        """Time-sliced Prime+Probe over one classification.

        A classification's working set typically exceeds the LLC, so a
        single end-of-run probe saturates (every way evicted everywhere).
        Real attacks therefore probe *periodically*; here the victim's
        memory-operation stream is divided into ``epochs`` slices with a
        prime before and a probe after each.

        Args:
            victim_trace: The classification's trace (memory ops are used).
            epochs: Temporal resolution of the attack.

        Returns:
            ``(epochs * num_sets,)`` ints — per-epoch, per-set counts of
            attacker ways the victim displaced.
        """
        if epochs < 1:
            raise SimulationError(f"epochs must be >= 1, got {epochs}")
        hierarchy = CacheHierarchy(self.config)
        llc = hierarchy.llc
        mem_ops = [op for op in victim_trace.ops if op[0] == OP_MEM]
        total = sum(op[1].size for op in mem_ops)
        if total == 0:
            raise SimulationError("victim trace contains no memory accesses")
        budget = max(1, total // epochs)
        vectors: List[np.ndarray] = []
        self._prime(llc)
        consumed = 0
        for op in mem_ops:
            lines = op[1]
            start = 0
            while start < lines.size:
                if len(vectors) < epochs - 1:
                    remaining = max(1, budget - consumed)
                else:
                    # All intermediate probes done: drain the rest.
                    remaining = lines.size - start
                chunk = lines[start:start + remaining]
                hierarchy.access_stream(chunk, write=op[2])
                consumed += chunk.size
                start += chunk.size
                if consumed >= budget and len(vectors) < epochs - 1:
                    vectors.append(self._probe(llc))
                    self._prime(llc)
                    consumed = 0
        vectors.append(self._probe(llc))
        while len(vectors) < epochs:
            vectors.append(np.zeros(self.num_sets, dtype=np.int64))
        return np.concatenate(vectors[:epochs])

    def describe(self) -> str:
        """One-line attacker description."""
        return (f"prime+probe over {self.num_sets} LLC sets x "
                f"{self.associativity} ways")


@dataclass
class PrimeProbeResult:
    """Outcome of a profiled Prime+Probe recovery attack.

    Attributes:
        accuracy: Input-category recovery accuracy on held-out traces.
        chance_level: 1 / #categories.
        num_sets: LLC sets (features = epochs * num_sets).
        per_category_accuracy: Recall per category.
        classifier_name: Model used on the probe vectors.
        n_train: Profiling traces.
        n_test: Attacked traces.
    """

    accuracy: float
    chance_level: float
    num_sets: int
    per_category_accuracy: Dict[int, float]
    classifier_name: str
    n_train: int
    n_test: int

    @property
    def advantage(self) -> float:
        """Accuracy above chance, normalized."""
        return (self.accuracy - self.chance_level) / (1.0 - self.chance_level)

    def summary(self) -> str:
        """Human-readable digest."""
        lines = [
            f"prime+probe attack ({self.classifier_name} on {self.num_sets} "
            f"LLC-set features, {self.n_train} profiling / {self.n_test} "
            f"attacked traces)",
            f"  accuracy {self.accuracy:.1%} vs chance "
            f"{self.chance_level:.1%} (advantage {self.advantage:.1%})",
        ]
        for category, acc in sorted(self.per_category_accuracy.items()):
            lines.append(f"  category {category}: {acc:.1%}")
        return "\n".join(lines)


def collect_probe_vectors(model: Sequential, dataset: LabeledDataset,
                          categories: Sequence[int],
                          samples_per_category: int,
                          trace_config: Optional[TraceConfig] = None,
                          hierarchy_config: Optional[HierarchyConfig] = None,
                          epochs: int = 8) -> Tuple[np.ndarray, np.ndarray]:
    """Per-classification probe vectors for labelled inputs.

    Returns:
        ``(x, y)`` — ``(n, num_sets)`` probe vectors and category labels.
    """
    traced = TracedInference(model, trace_config)
    attacker = PrimeProbeAttacker(hierarchy_config)
    vectors, labels = [], []
    for category in categories:
        subset = dataset.category(category)
        if len(subset) < samples_per_category:
            raise SimulationError(
                f"category {category} has only {len(subset)} samples, "
                f"need {samples_per_category}"
            )
        for sample in subset.images[:samples_per_category]:
            _, trace = traced.trace_sample(sample)
            vectors.append(attacker.probe_vector(trace, epochs=epochs))
            labels.append(category)
    return np.stack(vectors).astype(float), np.asarray(labels)


def prime_probe_attack(model: Sequential, dataset: LabeledDataset,
                       categories: Sequence[int],
                       samples_per_category: int,
                       classifier: str = "lda",
                       train_fraction: float = 0.6,
                       trace_config: Optional[TraceConfig] = None,
                       hierarchy_config: Optional[HierarchyConfig] = None,
                       epochs: int = 8,
                       seed: int = 0) -> PrimeProbeResult:
    """Full profiled Prime+Probe study: collect, split, profile, attack."""
    x, y = collect_probe_vectors(model, dataset, categories,
                                 samples_per_category, trace_config,
                                 hierarchy_config, epochs=epochs)
    rng = np.random.default_rng(seed)
    train_idx, test_idx = [], []
    for category in sorted(set(y.tolist())):
        indices = np.flatnonzero(y == category)
        rng.shuffle(indices)
        cut = min(max(int(round(indices.size * train_fraction)), 1),
                  indices.size - 1)
        train_idx.extend(indices[:cut])
        test_idx.extend(indices[cut:])
    train_idx = np.asarray(train_idx)
    test_idx = np.asarray(test_idx)
    standardizer = Standardizer.fit(x[train_idx])
    attack_model: AttackClassifier = make_classifier(classifier)
    attack_model.fit(standardizer.transform(x[train_idx]), y[train_idx])
    predictions = attack_model.predict(standardizer.transform(x[test_idx]))
    truth = y[test_idx]
    per_category = {
        int(category): float(np.mean(predictions[truth == category]
                                     == category))
        for category in sorted(set(truth.tolist()))
    }
    return PrimeProbeResult(
        accuracy=float(np.mean(predictions == truth)),
        chance_level=1.0 / len(set(y.tolist())),
        num_sets=x.shape[1],
        per_category_accuracy=per_category,
        classifier_name=attack_model.name,
        n_train=int(train_idx.size),
        n_test=int(test_idx.size),
    )
