"""Shared victim-trace artifact store for the cache attackers.

Every microarchitectural attacker (Prime+Probe, Flush+Reload) and every
countermeasure variant replays the same victim memory streams; before this
store each of them re-ran :meth:`repro.trace.TracedInference.trace_sample`
over the whole dataset.  The store persists one traced pass per
``(model fingerprint, trace config, dataset, category, count, tag)`` key so
all consumers share it, with the same atomic-write / corruption-eviction
discipline as :class:`repro.hpc.MeasurementCache`.

Only the memory operations are serialized (lines, per-op sizes and write
flags): they are the complete input of both cache attackers, and dropping
the instruction/branch ops keeps entries small.  Rebuilt traces therefore
replay bit-identically through the attack paths but carry no
instruction-count aggregates.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..atomicio import atomic_write_bytes
from ..datasets.base import LabeledDataset
from ..errors import MeasurementError, SimulationError
from ..nn.model import Sequential
from ..obs import runtime as obs
from ..trace.recorder import OP_MEM, Trace, TraceConfig
from ..trace.traced_model import TracedInference

__all__ = [
    "TraceStore",
    "collect_traces",
    "traces_from_arrays",
    "traces_to_arrays",
]

#: Bumped when the serialized layout changes; part of every cache key.
_LAYOUT_VERSION = 1


def traces_to_arrays(traces: Sequence[Trace]) -> Dict[str, np.ndarray]:
    """Flatten traces' memory ops into a savez-able array mapping."""
    lines: List[np.ndarray] = []
    sizes: List[int] = []
    writes: List[bool] = []
    counts: List[int] = []
    for trace in traces:
        ops = [op for op in trace.ops if op[0] == OP_MEM]
        counts.append(len(ops))
        for op in ops:
            lines.append(op[1])
            sizes.append(int(op[1].size))
            writes.append(bool(op[2]))
    return {
        "lines": (np.concatenate(lines) if lines
                  else np.zeros(0, dtype=np.int64)),
        "op_sizes": np.asarray(sizes, dtype=np.int64),
        "op_writes": np.asarray(writes, dtype=np.uint8),
        "ops_per_sample": np.asarray(counts, dtype=np.int64),
    }


def traces_from_arrays(arrays: Dict[str, np.ndarray]) -> List[Trace]:
    """Rebuild memory-op traces from :func:`traces_to_arrays` output.

    Raises:
        MeasurementError: If the arrays are internally inconsistent (a
            truncated or torn payload).
    """
    lines = np.asarray(arrays["lines"], dtype=np.int64)
    sizes = np.asarray(arrays["op_sizes"], dtype=np.int64)
    writes = np.asarray(arrays["op_writes"], dtype=np.uint8)
    counts = np.asarray(arrays["ops_per_sample"], dtype=np.int64)
    if (sizes.size != writes.size or int(counts.sum()) != sizes.size
            or int(sizes.sum()) != lines.size or (sizes < 1).any()
            or (counts < 0).any()):
        raise MeasurementError("inconsistent trace payload")
    bounds = np.cumsum(sizes)[:-1]
    chunks = np.split(lines, bounds) if sizes.size else []
    traces: List[Trace] = []
    op_index = 0
    for count in counts.tolist():
        trace = Trace()
        for _ in range(count):
            trace.mem(chunks[op_index], write=bool(writes[op_index]))
            op_index += 1
        traces.append(trace)
    return traces


class TraceStore:
    """Disk store of victim memory-op traces, keyed by content fingerprints.

    Traced inference is deterministic given (model weights, trace config,
    input), so one traced pass per key can be shared by every attacker and
    countermeasure variant — and by concurrent processes: writes land in a
    per-process temp file renamed over the final name, and a corrupt entry
    is evicted and treated as a miss, never poisoning an attack.

    Args:
        directory: Store directory (created on first write).
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    @staticmethod
    def key_for(model: Sequential, trace_config: Optional[TraceConfig],
                dataset_name: str, category: int, count: int,
                tag: str = "") -> str:
        """Content key of one (model, config, category subset) traced pass."""
        return "|".join([
            f"trace-v{_LAYOUT_VERSION}",
            model.weights_fingerprint(),
            repr(trace_config or TraceConfig()),
            str(dataset_name),
            str(category),
            str(count),
            str(tag),
        ])

    def _path(self, key: str) -> Path:
        safe = hashlib.sha256(key.encode()).hexdigest()[:32]
        return self.directory / f"trace-{safe}.npz"

    def get(self, key: str) -> Optional[List[Trace]]:
        """Load stored traces, or None on miss/corruption (evicted)."""
        path = self._path(key)
        if not path.exists():
            obs.inc("cache.miss", kind="trace")
            return None
        try:
            with np.load(path) as archive:
                arrays = {name: archive[name] for name in archive.files}
            traces = traces_from_arrays(arrays)
        except Exception:
            # A torn or stale entry must never poison an attack replay.
            obs.inc("cache.corrupt", kind="trace")
            obs.inc("cache.miss", kind="trace")
            path.unlink(missing_ok=True)
            return None
        obs.inc("cache.hit", kind="trace")
        return traces

    def put(self, key: str, traces: Sequence[Trace]) -> Path:
        """Store traces under ``key`` atomically; returns the written path.

        The temp file is unlinked whether the write succeeds or raises
        mid-``savez``, and orphans left by SIGKILL'd writer processes are
        swept on this process's first write (see :mod:`repro.atomicio`).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        arrays = traces_to_arrays(traces)
        atomic_write_bytes(path, lambda stream: np.savez(stream, **arrays))
        obs.inc("cache.write", kind="trace")
        return path

    def remove(self, key: str) -> None:
        """Drop the entry stored under ``key`` (missing entries are fine)."""
        self._path(key).unlink(missing_ok=True)


def collect_traces(model: Sequential, dataset: LabeledDataset,
                   categories: Sequence[int], samples_per_category: int,
                   trace_config: Optional[TraceConfig] = None,
                   store: Optional[TraceStore] = None,
                   tag: str = "") -> Tuple[List[Trace], np.ndarray]:
    """Victim traces for labelled inputs, shared through the store.

    Args:
        model: The victim classifier.
        dataset: Labelled inputs; the first ``samples_per_category`` of
            each category are traced.
        categories: Input categories to cover, in output order.
        samples_per_category: Traces per category.
        trace_config: Victim kernel configuration (None = default).
        store: Optional :class:`TraceStore`; hits skip re-tracing.
        tag: Extra key component (e.g. the dataset generation seed) for
            callers whose ``dataset.name`` does not pin the content.

    Returns:
        ``(traces, labels)`` — one trace per sample, category labels
        aligned with it.
    """
    traced: Optional[TracedInference] = None
    traces: List[Trace] = []
    labels: List[int] = []
    for category in categories:
        key = None
        cached = None
        if store is not None:
            key = TraceStore.key_for(model, trace_config, dataset.name,
                                     category, samples_per_category, tag)
            cached = store.get(key)
        if cached is not None and len(cached) == samples_per_category:
            traces.extend(cached)
            labels.extend([category] * samples_per_category)
            continue
        subset = dataset.category(category)
        if len(subset) < samples_per_category:
            raise SimulationError(
                f"category {category} has only {len(subset)} samples, "
                f"need {samples_per_category}"
            )
        if traced is None:
            traced = TracedInference(model, trace_config)
        fresh = [traced.trace_sample(sample)[1]
                 for sample in subset.images[:samples_per_category]]
        if store is not None and key is not None:
            store.put(key, fresh)
        traces.extend(fresh)
        labels.extend([category] * samples_per_category)
    return traces, np.asarray(labels)
