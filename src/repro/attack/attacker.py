"""Input-category recovery attack.

Closes the loop on the paper's threat model: the Evaluator's alarm claims an
adversary *could* identify inputs from HPC readings; this module builds that
adversary (profile on labelled traces, then classify unlabelled readings)
and reports how accurately the category is recovered — the side-channel
analogue of template attacks on cryptographic implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import MeasurementError
from ..hpc.distributions import EventDistributions
from ..uarch.events import HpcEvent
from .classifiers import AttackClassifier, make_classifier
from .features import Standardizer, build_features


@dataclass
class AttackResult:
    """Outcome of one profiling-then-recovery attack.

    Attributes:
        accuracy: Category-recovery accuracy on held-out measurements.
        chance_level: Accuracy of random guessing (1 / #categories).
        per_category_accuracy: Recall per category.
        events: Feature events used.
        classifier_name: The model employed.
        n_train: Profiling measurements.
        n_test: Attacked measurements.
    """

    accuracy: float
    chance_level: float
    per_category_accuracy: Dict[int, float]
    events: Sequence[HpcEvent]
    classifier_name: str
    n_train: int
    n_test: int

    @property
    def advantage(self) -> float:
        """Accuracy above chance, normalized to [~0, 1]."""
        return (self.accuracy - self.chance_level) / (1.0 - self.chance_level)

    def summary(self) -> str:
        """Human-readable digest."""
        lines = [
            f"input-recovery attack ({self.classifier_name} on "
            f"{len(self.events)} events, {self.n_train} profiling / "
            f"{self.n_test} attacked measurements)",
            f"  accuracy {self.accuracy:.1%} vs chance {self.chance_level:.1%}"
            f" (advantage {self.advantage:.1%})",
        ]
        for category, acc in sorted(self.per_category_accuracy.items()):
            lines.append(f"  category {category}: {acc:.1%}")
        return "\n".join(lines)


class InputRecoveryAttack:
    """Profiled side-channel attack on classification HPC readings.

    Args:
        classifier: Attack model name (``gaussian-nb``, ``lda``,
            ``nearest-centroid``) or a ready instance.
        events: Feature events (default: all measured).
        standardize: Z-score features with profiling statistics.
    """

    def __init__(self, classifier="gaussian-nb",
                 events: Optional[Sequence[HpcEvent]] = None,
                 standardize: bool = True):
        if isinstance(classifier, AttackClassifier):
            self.classifier = classifier
        else:
            self.classifier = make_classifier(classifier)
        self.events = tuple(events) if events is not None else None
        self.standardize = standardize
        self._standardizer: Optional[Standardizer] = None
        self._fitted = False

    def fit(self, distributions: EventDistributions) -> "InputRecoveryAttack":
        """Profile the attack model on labelled measurements."""
        features = build_features(distributions, self.events)
        x = features.x
        if self.standardize:
            self._standardizer = Standardizer.fit(x)
            x = self._standardizer.transform(x)
        self.classifier.fit(x, features.y)
        self.events = features.events
        self._n_train = features.n_samples
        self._fitted = True
        return self

    def predict(self, readings: np.ndarray) -> np.ndarray:
        """Recover categories for raw reading rows (event column order)."""
        if not self._fitted:
            raise MeasurementError("attack not fitted; call fit() first")
        x = np.asarray(readings, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if self._standardizer is not None:
            x = self._standardizer.transform(x)
        return self.classifier.predict(x)

    def evaluate(self, distributions: EventDistributions) -> AttackResult:
        """Attack held-out labelled measurements and score recovery."""
        if not self._fitted:
            raise MeasurementError("attack not fitted; call fit() first")
        features = build_features(distributions, self.events)
        predictions = self.predict(features.x)
        y = features.y
        per_category = {}
        for category in features.categories:
            mask = y == category
            per_category[category] = float(
                np.mean(predictions[mask] == category))
        return AttackResult(
            accuracy=float(np.mean(predictions == y)),
            chance_level=1.0 / len(features.categories),
            per_category_accuracy=per_category,
            events=self.events,
            classifier_name=self.classifier.name,
            n_train=self._n_train,
            n_test=features.n_samples,
        )


def profile_and_attack(distributions: EventDistributions,
                       classifier: str = "gaussian-nb",
                       events: Optional[Sequence[HpcEvent]] = None,
                       train_fraction: float = 0.6,
                       seed: int = 0) -> AttackResult:
    """Split one measurement set into profiling/attack halves and score.

    The standard evaluation protocol when only one labelled measurement
    campaign exists.
    """
    features = build_features(distributions, events)
    train, test = features.split(train_fraction, seed=seed)
    attack = InputRecoveryAttack(classifier, events=features.events)
    standardizer = Standardizer.fit(train.x) if attack.standardize else None
    x_train = standardizer.transform(train.x) if standardizer else train.x
    x_test = standardizer.transform(test.x) if standardizer else test.x
    attack.classifier.fit(x_train, train.y)
    predictions = attack.classifier.predict(x_test)
    per_category = {}
    for category in features.categories:
        mask = test.y == category
        per_category[category] = (float(np.mean(
            predictions[mask] == category)) if mask.any() else 0.0)
    return AttackResult(
        accuracy=float(np.mean(predictions == test.y)),
        chance_level=1.0 / len(features.categories),
        per_category_accuracy=per_category,
        events=features.events,
        classifier_name=attack.classifier.name,
        n_train=train.n_samples,
        n_test=test.n_samples,
    )
