"""Batched attack-replay engine: vectorized cache-attack simulation.

The reference attackers in :mod:`repro.attack.prime_probe` and
:mod:`repro.attack.flush_reload` replay one victim trace at a time through
the per-access Python loops of :class:`repro.uarch.CacheHierarchy`.  This
module re-derives both observation vectors with grouped-LRU kernels — one
NumPy pass over the *whole batch* of victim traces — and is
**bit-identical** to the loops (asserted by the invariance suite in
``tests/attack/test_engine.py``).

Two structural facts make the reduction exact:

*Prime+Probe.*  The attacker touches only the LLC, so the victim's private
L1/L2 run uninterrupted across epochs and their filtering is a plain cold
per-(set, sample) LRU hit mask.  At the LLC, probing in reverse priming
order re-inserts every way and the following forward prime restores the
canonical oldest-first way order, so every epoch starts from the same
primed state; during an epoch attacker ways are never re-touched, hence
strictly older than every victim line and evicted first.  Victim residency
therefore evolves exactly as in a *cold* LRU set fed only the victim's
stream, and the probe's per-set miss count equals ``min(victim LLC misses
in that set and epoch, associativity)``.

*Flush+Reload.*  Flushes happen only at epoch boundaries, so within an
epoch no line is ever removed and the classic LRU stack property holds:
a level's set content at reload time is the ``min(assoc, distinct)`` most
recently used distinct lines, ordered by last access.  Epochs chain
sequentially: each level's end state (minus the flushed monitored lines)
is replayed as a warm priming prefix into the next epoch's kernel call,
and the reload bit is membership of a monitored line in *any* level's end
state.

Kernel notes.  Shallow sets (the L1 point) are resolved by ``assoc``
shifted self-compares: with consecutive duplicates collapsed, an access
whose value recurs in the previous ``assoc`` positions is a certain hit,
and one whose previous ``assoc`` positions hold ``assoc`` *distinct*
values without it is a certain miss.  The leftover — inside windows that
contain a repeat — is walked by a compact vectorized scanner that leaps
over period-``p`` runs whose values its avoid set already covers.  Deep
sets (L2/LLC) go through :func:`repro.uarch.vectorized.lru_hits_grouped`
after :func:`~repro.uarch.vectorized.strip_periodic_middles` removes the
interiors of periodic runs (guaranteed hits).  End states are recovered
from a short per-group suffix — the last ``min(assoc, distinct)`` lines
by last occurrence — growing the suffix only for the rare groups whose
tail holds fewer than ``assoc`` distinct lines.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..trace.recorder import Trace
from ..uarch.hierarchy import HierarchyConfig
from ..uarch.vectorized import lru_hits_grouped, strip_periodic_middles

__all__ = [
    "flush_reload_observations",
    "prime_probe_vectors",
    "replay_supported",
    "traces_compatible",
]


def replay_supported(config: HierarchyConfig) -> bool:
    """Whether the vectorized replay path models ``config`` exactly.

    The grouped-LRU kernels reproduce true-LRU sets only; other policies
    (tree-plru, random) must take the reference loop.
    """
    return getattr(config, "policy", "lru") == "lru"


def traces_compatible(traces: Sequence[Trace],
                      max_line: Optional[int] = None) -> bool:
    """Whether every trace's line ids are replayable by the kernels.

    The kernels reserve negative ids for group sentinels, and Prime+Probe
    additionally needs victim lines to stay below the attacker's eviction
    buffer (``max_line``) so identities never collide.
    """
    for trace in traces:
        lines = trace.memory_lines()
        if lines.size == 0:
            continue
        if int(lines.min()) < 0:
            return False
        if max_line is not None and int(lines.max()) >= max_line:
            return False
    return True


def _batched_stream(traces: Sequence[Trace],
                    epochs: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate per-trace memory streams with sample and epoch labels.

    Epoch boundaries replicate the reference loops exactly: with
    ``budget = max(1, total // epochs)`` the k-th intermediate probe fires
    after global access ``(k+1) * budget``, so position ``j`` belongs to
    epoch ``min(j // budget, epochs - 1)`` (the final epoch drains the
    remainder).
    """
    streams = []
    for trace in traces:
        lines = trace.memory_lines()
        if lines.size == 0:
            raise SimulationError("victim trace contains no memory accesses")
        streams.append(lines)
    totals = np.array([part.size for part in streams], dtype=np.int64)
    stream = np.concatenate(streams)
    sample_of = np.repeat(np.arange(totals.size, dtype=np.int64), totals)
    # Per-(trace, epoch) position counts for epoch = min(pos // budget,
    # last): full budgets while positions last, remainder in the final
    # epoch — materialized with a single repeat over the whole batch.
    eidx = np.arange(epochs, dtype=np.int64)
    budgets = np.maximum(totals // epochs, 1)
    counts = np.clip(totals[:, None] - eidx[None, :] * budgets[:, None],
                     0, budgets[:, None])
    counts[:, -1] = np.maximum(totals - (epochs - 1) * budgets, 0)
    epoch_of = np.repeat(np.tile(eidx, totals.size), counts.ravel())
    return stream, sample_of, epoch_of


def _check_replayable(config: HierarchyConfig, epochs: int) -> None:
    if epochs < 1:
        raise SimulationError(f"epochs must be >= 1, got {epochs}")
    if not replay_supported(config):
        raise SimulationError(
            f"vectorized attack replay requires the 'lru' policy, "
            f"got {config.policy!r}"
        )


# ----------------------------------------------------------------------
# Grouped LRU hit resolution
# ----------------------------------------------------------------------

def _position_in_group(new_group: np.ndarray) -> np.ndarray:
    starts = np.flatnonzero(new_group)
    lens = np.empty(starts.size, dtype=np.int64)
    lens[:-1] = starts[1:] - starts[:-1]
    lens[-1] = new_group.size - starts[-1]
    return np.arange(new_group.size, dtype=np.int64) - np.repeat(starts, lens)


def _walk_unresolved(v: np.ndarray, pig: np.ndarray, hit: np.ndarray,
                     idx: np.ndarray, assoc: int) -> None:
    """Exact backward scans for the window-ambiguous positions.

    ``_lean_hits`` guarantees every ``idx`` has ``pig >= assoc``, no
    target in its lag window and at least one in-window duplicate — so
    the window's distinct values (at most ``assoc - 1`` of them) seed
    each walker's avoid set directly from pairwise lag compares.

    After seeding, a walker can change state at most ``assoc`` more
    times: its avoid set never evicts, so only a target match or a value
    outside the set matters.  Each round gathers a segment of ``L``
    positions, jumps every walker to its first such *event* (``argmax``
    over the segment), and applies it; stalled walkers — hot loops whose
    values the avoid set already covers — skip the whole segment.  ``L``
    doubles per round, so a walk of span ``S`` costs O(assoc + S / Lmax)
    rounds instead of O(S).
    """
    n = idx.size
    tgt = v[idx]
    lo = idx - pig[idx]
    out = idx
    # seen[k, i] = k-th distinct non-target value walker i met (-1 empty);
    # line ids are non-negative, so the sentinel never matches.
    seen = np.full((assoc - 1, n), -1, dtype=v.dtype)
    cnt = np.zeros(n, dtype=np.int64)
    window = []
    for lag in range(1, assoc + 1):
        wl = v[idx - lag]
        new = np.ones(n, dtype=bool)
        # Consecutive duplicates are collapsed, so the adjacent lag
        # always differs — compare only lags 1..lag-2.
        for k in range(len(window) - 1):
            new &= wl != window[k]
        store = np.flatnonzero(new & (cnt < assoc - 1))
        seen[cnt[store], store] = wl[store]
        cnt += new
        window.append(wl)
    gone = cnt >= assoc
    c = idx - assoc - 1
    gone |= c < lo
    c = np.maximum(c, 0)  # pin finished walkers' gathers in bounds
    L = _SEGMENT
    while True:
        ngone = int(np.count_nonzero(gone))
        if ngone == out.size:
            return
        if 4 * ngone >= out.size:
            keep = np.flatnonzero(~gone)
            out, tgt, lo, c, cnt = (out[keep], tgt[keep], lo[keep],
                                    c[keep], cnt[keep])
            seen = seen[:, keep]
            gone = np.zeros(out.size, dtype=bool)
        offs = np.arange(L, dtype=np.int64)
        pos = c[None, :] - offs[:, None]
        interesting = pos >= lo[None, :]
        w = v[np.maximum(pos, 0)]
        for k in range(assoc - 1):
            interesting &= w != seen[k][None, :]
        has = interesting.any(axis=0)
        hi = np.flatnonzero(has & ~gone)
        if hi.size:
            j = interesting.argmax(axis=0)[hi]
            ev = w[j, hi]
            ishit = ev == tgt[hi]
            if ishit.any():
                hw = hi[ishit]
                hit[out[hw]] = True
                gone[hw] = True
            rest = hi[~ishit]
            if rest.size:
                full = cnt[rest] == assoc - 1
                gone[rest[full]] = True
                gi = rest[~full]
                if gi.size:
                    seen[cnt[gi], gi] = ev[~ishit][~full]
                    cnt[gi] += 1
            c[hi] = c[hi] - j - 1
        nh = ~has
        if nh.any():
            c[nh] -= L
        gone |= c < lo
        c = np.maximum(c, 0)
        L = min(L * 2, _SEGMENT_MAX)


_SEGMENT = 8
_SEGMENT_MAX = 128


def _lean_hits(v: np.ndarray, new_group: np.ndarray, assoc: int) -> np.ndarray:
    """Exact grouped-LRU hit mask for shallow sets via shifted compares."""
    m = int(v.size)
    hit = np.zeros(m, dtype=bool)
    if m == 0:
        return hit
    pig = _position_in_group(new_group)
    if m < 2 ** 31:
        pig = pig.astype(np.int32)
    buf = np.empty(m, dtype=bool)
    # Keep the raw lag-k equality masks for 2 <= k < assoc: the window-dup
    # scan below reuses them as shifted views instead of re-comparing.
    eqs = {}
    for j in range(1, assoc + 1):
        if j >= m:
            break
        if 2 <= j < assoc:
            eq = np.empty(m, dtype=bool)
            np.equal(v[j:], v[:-j], out=eq[j:])
            eqs[j] = eq
            np.logical_and(eq[j:], pig[j:] >= j, out=buf[j:])
        else:
            np.equal(v[j:], v[:-j], out=buf[j:])
            np.logical_and(buf[j:], pig[j:] >= j, out=buf[j:])
        np.logical_or(hit[j:], buf[j:], out=hit[j:])
    if assoc < 3:
        # The window is the whole LRU state: consecutive duplicates are
        # collapsed, so positions t-1 and t-2 always hold distinct values.
        return hit
    # A window of `assoc` *distinct* values without v[t] is a certain
    # miss; only windows containing a repeat stay ambiguous.  Adjacent
    # window entries always differ, so check the non-adjacent pairs —
    # pair (t-a, t-b) duplicates exactly when the lag-(b-a) mask fires at
    # t-a, a pure shift of an already-computed compare.
    dup_w = np.zeros(m, dtype=bool)
    for a in range(1, assoc - 1):
        for b in range(a + 2, assoc + 1):
            if b >= m or (b - a) not in eqs:
                continue
            np.logical_or(dup_w[b:], eqs[b - a][b - a:m - a],
                          out=dup_w[b:])
    unresolved = np.flatnonzero(~hit & dup_w & (pig >= assoc))
    if unresolved.size > _WALK_DENSITY * m:
        # Dense ambiguity: the backward walkers would each scan long
        # spans, so the bitset kernel's single forward sweep is cheaper
        # than per-position event walks over most of the feed.
        return lru_hits_grouped(v, None, assoc, group_starts=new_group)
    if unresolved.size:
        _walk_unresolved(v, pig, hit, unresolved, assoc)
    return hit


# Unresolved-walker fraction above which _lean_hits abandons the event
# walkers for the bitset kernel: walker cost scales with walkers x span
# while the bitset sweep is flat in ambiguity density.
_WALK_DENSITY = 0.35


# Deepest associativity the shifted-compare kernel handles before the
# bitset kernel wins: its pairwise window scans cost O(assoc^2) vector
# ops, overtaking the bitset kernel's O(assoc) word sweeps past ~8 ways.
_LEAN_MAX_ASSOC = 8

# Smallest post-strip survivor feed worth the shifted-compare kernel.
# When stripping removes most of a deep-set feed the survivors are cheap
# for the bitset kernel's single sweep, while the shifted-compare path
# still pays its fixed window scans plus backward walks whose spans the
# strip has stretched; below this size the bitset kernel wins outright.
_LEAN_MIN_STRIPPED = 1 << 16


def _dense_hits(v: np.ndarray, new_group: np.ndarray,
                assoc: int) -> np.ndarray:
    """Hit kernel for a collapsed grouped feed (no strip preprocessing)."""
    if assoc > _LEAN_MAX_ASSOC:
        return lru_hits_grouped(v, None, assoc, group_starts=new_group)
    if v.size and int(v.max()) < 2 ** 31 - 1:
        v = v.astype(np.int32, copy=False)
    return _lean_hits(v, new_group, assoc)


def _grouped_hits(v: np.ndarray, new_group: np.ndarray,
                  assoc: int) -> np.ndarray:
    """Dispatch: shifted-compare kernel (shallow) or bitset kernel (deep).

    Feeds must be contiguous per-group streams with consecutive
    duplicates collapsed.  Deep sets strip periodic-run interiors first —
    they are guaranteed hits and exactly the positions that cost the
    kernels the most.  Stripping keeps a run's first ``2p`` and last
    ``p`` positions, which can leave an *adjacent* duplicate at the
    junction (an unconditional hit); the shifted-compare kernel assumes
    collapsed feeds, so those junctions are re-collapsed before it runs.
    """
    if assoc >= 6 and v.size >= 4096:
        keep = strip_periodic_middles(v, new_group, assoc)
        if not keep.all():
            ki = np.flatnonzero(keep)
            hit = np.ones(v.size, dtype=bool)
            sub_v = v[ki]
            sub_g = new_group[ki]
            if (assoc <= _LEAN_MAX_ASSOC
                    and sub_v.size >= _LEAN_MIN_STRIPPED):
                dup = np.zeros(sub_v.size, dtype=bool)
                np.equal(sub_v[1:], sub_v[:-1], out=dup[1:])
                dup[1:] &= ~sub_g[1:]
                if dup.any():
                    di = np.flatnonzero(~dup)
                    sub_hit = np.ones(sub_v.size, dtype=bool)
                    sub_hit[di] = _dense_hits(sub_v[di], sub_g[di], assoc)
                    hit[ki] = sub_hit
                    return hit
                hit[ki] = _dense_hits(sub_v, sub_g, assoc)
            else:
                hit[ki] = lru_hits_grouped(sub_v, None, assoc,
                                           group_starts=sub_g)
            return hit
    return _dense_hits(v, new_group, assoc)


def _sort_collapse(lines: np.ndarray, key: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                              np.ndarray, np.ndarray]:
    """Group a labelled stream and collapse in-group consecutive repeats.

    Returns ``(order, kept, v, skey_kept, new_group)`` where ``order`` is
    the stable grouping permutation, ``kept`` indexes its collapsed
    positions and ``v``/``skey_kept``/``new_group`` describe the
    collapsed feed (consecutive duplicates are unconditional hits and
    never misses, so they can only matter to callers as hits).
    """
    order = np.argsort(key, kind="stable")
    skey = key[order]
    svals = lines[order]
    m = svals.size
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    np.not_equal(skey[1:], skey[:-1], out=new_group[1:])
    keep = np.empty(m, dtype=bool)
    keep[0] = True
    np.not_equal(svals[1:], svals[:-1], out=keep[1:])
    keep[1:] |= new_group[1:]
    kept = np.flatnonzero(keep)
    return order, kept, svals[kept], skey[kept], new_group[kept]


def _group_key(lines: np.ndarray, sample_of: np.ndarray, num_sets: int,
               num_samples: int) -> np.ndarray:
    key = (lines & (num_sets - 1)) * num_samples + sample_of
    if num_sets * num_samples <= 1 << 16:
        return key.astype(np.uint16)
    return key


def prime_probe_vectors(traces: Sequence[Trace],
                        config: Optional[HierarchyConfig] = None,
                        epochs: int = 8) -> np.ndarray:
    """Batched :meth:`PrimeProbeAttacker.probe_vector` over many traces.

    Args:
        traces: Victim traces (memory ops are used).
        config: Shared hierarchy; must use the LRU policy.
        epochs: Temporal resolution of the attack.

    Returns:
        ``(len(traces), epochs * num_sets)`` int64 vectors, bit-identical
        to the per-trace loop.
    """
    config = config or HierarchyConfig()
    _check_replayable(config, epochs)
    n = len(traces)
    num_sets = config.llc.num_sets
    if n == 0:
        return np.zeros((0, epochs * num_sets), dtype=np.int64)
    stream, sample_of, epoch_of = _batched_stream(traces, epochs)
    # The victim's private L1/L2 are never primed, probed or flushed, so
    # they run uninterrupted across epoch boundaries: filter the full
    # per-sample streams level by level in program order.
    for geo in (config.l1, config.l2):
        order, kept, v, _, gb = _sort_collapse(
            stream, _group_key(stream, sample_of, geo.num_sets, n))
        hits = _grouped_hits(v, gb, geo.associativity)
        # Restore stream order by scattering into a position mask — the
        # miss indices are distinct, so this beats re-sorting them.
        mask = np.zeros(stream.size, dtype=bool)
        mask[order[kept[~hits]]] = True
        miss = np.flatnonzero(mask)
        stream = stream[miss]
        sample_of = sample_of[miss]
        epoch_of = epoch_of[miss]
    assoc = config.llc.associativity
    cells = n * epochs
    if stream.size == 0:
        return np.zeros((n, epochs * num_sets), dtype=np.int64)
    # Every (sample, epoch, set) cell is an independent cold-LRU run over
    # the victim's LLC feed (see module docstring); one combined key makes
    # all cells contiguous groups of a single stable sort.
    key = (stream & (num_sets - 1)) * cells + sample_of * epochs + epoch_of
    key = key.astype(np.uint16 if num_sets * cells <= 1 << 16 else np.int64)
    _, kept, v, skey, gb = _sort_collapse(stream, key)
    khit = _grouped_hits(v, gb, assoc)
    miss_keys = skey[~khit].astype(np.int64)
    counts = np.bincount(miss_keys, minlength=num_sets * cells)
    counts = np.minimum(counts, assoc)
    return np.ascontiguousarray(
        counts.reshape(num_sets, n, epochs).transpose(1, 2, 0)
    ).reshape(n, epochs * num_sets)


def _end_states(v: np.ndarray, new_group: np.ndarray,
                assoc: int) -> np.ndarray:
    """Indices (into ``v``) of each group's LRU end state, oldest first.

    The end state is the ``min(assoc, distinct)`` most recently used
    distinct values; their last occurrences almost always sit inside a
    short suffix of the group, so only a ``3 * assoc`` tail is examined
    and grown for the rare groups whose tail repeats too much.
    """
    m = int(v.size)
    starts = np.flatnonzero(new_group)
    ngroups = int(starts.size)
    lens = np.empty(ngroups, dtype=np.int64)
    lens[:-1] = starts[1:] - starts[:-1]
    lens[-1] = m - starts[-1]
    ends = starts + lens
    take = np.minimum(lens, 3 * assoc)
    vmax = np.int64(int(v.max()) + 1 if m else 1)
    active = np.arange(ngroups, dtype=np.int64)
    pos_parts: List[np.ndarray] = []
    gid_parts: List[np.ndarray] = []
    # Each round scans only the still-unresolved groups' suffixes — a
    # resolved group is never re-read — growing the window 8x for groups
    # whose tail held fewer than ``assoc`` distinct values.
    while active.size:
        at = take[active]
        total = int(at.sum())
        base = np.repeat(ends[active] - at, at)
        cum = np.cumsum(at) - at
        intra = np.arange(total, dtype=np.int64) - np.repeat(cum, at)
        idx = base + intra
        sgid = np.repeat(active, at)
        ck = sgid * vmax + v[idx]
        o = np.argsort(ck, kind="stable")
        sck = ck[o]
        run_last = np.empty(total, dtype=bool)
        run_last[-1] = True
        np.not_equal(sck[1:], sck[:-1], out=run_last[:-1])
        li = o[run_last]
        lg = sgid[li]
        distinct = np.bincount(lg, minlength=ngroups)[active]
        done = (distinct >= assoc) | (at >= lens[active])
        done_global = np.zeros(ngroups, dtype=bool)
        done_global[active[done]] = True
        sel = done_global[lg]
        pos_parts.append(idx[li[sel]])
        gid_parts.append(lg[sel])
        active = active[~done]
        take[active] = np.minimum(lens[active], take[active] * 8)
    if not pos_parts:
        return np.zeros(0, dtype=np.int64)
    pos = np.concatenate(pos_parts)
    gid = np.concatenate(gid_parts)
    # Order each group's distinct values by last occurrence; keep the
    # final `assoc`, emitted oldest-first (the priming-prefix order).
    # Groups occupy disjoint ascending position ranges, so sorting by
    # position alone restores (group, recency) order.
    o2 = np.argsort(pos, kind="stable")
    gid = gid[o2]
    pos = pos[o2]
    gstart = np.empty(gid.size, dtype=bool)
    gstart[0] = True
    np.not_equal(gid[1:], gid[:-1], out=gstart[1:])
    gs = np.flatnonzero(gstart)
    glen = np.empty(gs.size, dtype=np.int64)
    glen[:-1] = gs[1:] - gs[:-1]
    glen[-1] = gid.size - gs[-1]
    from_end = np.repeat(glen, glen) - (
        np.arange(gid.size, dtype=np.int64) - np.repeat(gs, glen))
    return pos[from_end <= assoc]


def _merge_states(carry_g: np.ndarray, carry_v: np.ndarray,
                  s_g: np.ndarray, s_v: np.ndarray,
                  assoc: int, cells: int) -> Tuple[np.ndarray, np.ndarray]:
    """Merge a carried LRU state with an epoch's slice states.

    Both inputs are grouped by ascending set/sample key with values
    distinct and oldest-first within each group, and every slice entry is
    more recent than every carried one.  That makes the true merged state
    a three-step reduction — drop carried values that reappear in the
    slice (their recency moved there), interleave the two sorted halves
    carry-first, keep each group's last ``assoc`` entries — with no
    general recency sort needed.  ``cells`` bounds the group-key space,
    letting the interleave rank both halves with bincount histograms
    instead of per-needle binary searches.
    """
    if carry_g.size == 0:
        return s_g, s_v
    if s_g.size == 0:
        return carry_g, carry_v
    vmax = np.int64(max(int(carry_v.max()), int(s_v.max())) + 1)
    ks = s_g.astype(np.int64) * vmax + s_v
    so = np.argsort(ks, kind="stable")
    sks = ks[so]
    kc = carry_g.astype(np.int64) * vmax + carry_v
    j = np.minimum(np.searchsorted(sks, kc), sks.size - 1)
    fresh = sks[j] != kc
    carry_g = carry_g[fresh]
    carry_v = carry_v[fresh]
    total = carry_g.size + s_g.size
    counts_s = np.bincount(s_g, minlength=cells)
    counts_c = np.bincount(carry_g, minlength=cells)
    pc = ((np.cumsum(counts_s) - counts_s)[carry_g]
          + np.arange(carry_g.size, dtype=np.int64))
    ps = (np.cumsum(counts_c)[s_g]
          + np.arange(s_g.size, dtype=np.int64))
    mg = np.empty(total, dtype=s_g.dtype)
    mv = np.empty(total, dtype=s_v.dtype)
    mg[pc] = carry_g
    mv[pc] = carry_v
    mg[ps] = s_g
    mv[ps] = s_v
    starts = np.empty(total, dtype=bool)
    starts[0] = True
    np.not_equal(mg[1:], mg[:-1], out=starts[1:])
    gs = np.flatnonzero(starts)
    lens = np.diff(np.append(gs, total))
    from_end = np.repeat(lens, lens) - (
        np.arange(total, dtype=np.int64) - np.repeat(gs, lens))
    keep = from_end <= assoc
    return mg[keep], mv[keep]


# Largest line id for which monitored-membership uses a direct-address
# table (one byte per id); sparser id spaces binary-search instead.
_WATCH_TABLE_MAX = 1 << 26


def _level_pass(lines: np.ndarray, samp: np.ndarray, ep: np.ndarray,
                n: int, epochs: int, num_sets: int, assoc: int,
                mon_unique: np.ndarray, watch: Optional[np.ndarray],
                out_u: np.ndarray, want_feed: bool = True
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One cache level of the whole Flush+Reload attack, all epochs.

    The crucial decoupling: per-epoch end states depend only on the
    level's *feed* (the LRU stack property needs recency order, not hit
    verdicts), so the cheap state chain — slice suffix states merged with
    the carried pre-epoch state, flush-filtered against the monitored
    lines — runs sequentially over epochs first, marking reload bits into
    ``out_u`` along the way.  The expensive hit kernel then runs **once**
    over a single (epoch, set, sample)-grouped array with every epoch's
    carry spliced in as an uncounted priming prefix, instead of once per
    epoch.

    Returns the counted misses in stream order — the next level's feed
    (skipped for the last level, whose misses feed nothing).
    """
    empty = np.zeros(0, dtype=np.int64)
    if lines.size == 0:
        return empty, empty, empty
    cells = num_sets * n
    key = ep * cells + (lines & (num_sets - 1)) * n + samp
    kk = key.astype(np.uint16) if epochs * cells <= 1 << 16 else key
    order = np.argsort(kk, kind="stable")
    skey = kk[order]
    sv = lines[order]
    m = sv.size
    gb0 = np.empty(m, dtype=bool)
    gb0[0] = True
    np.not_equal(skey[1:], skey[:-1], out=gb0[1:])
    # Epoch boundaries, probed at the sort key's own width (a mixed-dtype
    # searchsorted would silently upcast-copy the whole key array).
    bounds = (np.arange(1, epochs, dtype=np.int64) * cells).astype(skey.dtype)
    seg = np.empty(epochs + 1, dtype=np.int64)
    seg[0], seg[epochs] = 0, m
    seg[1:epochs] = np.searchsorted(skey, bounds)
    # One suffix extraction covers every epoch's slice states at once: the
    # sorted runs are exactly the (epoch, set, sample) groups, so slicing
    # the result per epoch is bit-identical to per-segment calls without
    # their per-call overhead.
    si_all = _end_states(sv, gb0, assoc)
    ski = skey[si_all]
    sseg = np.empty(epochs + 1, dtype=np.int64)
    sseg[0], sseg[epochs] = 0, si_all.size
    sseg[1:epochs] = np.searchsorted(ski, bounds)
    carry_v = np.zeros(0, dtype=sv.dtype)
    carry_g = np.zeros(0, dtype=skey.dtype)
    pre_pos: List[np.ndarray] = []
    pre_key: List[np.ndarray] = []
    pre_val: List[np.ndarray] = []
    for e in range(epochs):
        if carry_v.size:
            # Each group's carry must sit directly in front of that
            # group's run inside the epoch — runs are delimited by key
            # changes, so a prefix parked anywhere else would never
            # connect with the accesses it primes.
            a, b = int(seg[e]), int(seg[e + 1])
            gk = (carry_g + e * cells).astype(skey.dtype)
            pre_pos.append(a + np.searchsorted(skey[a:b], gk))
            pre_key.append(gk)
            pre_val.append(carry_v)
        si = si_all[sseg[e]:sseg[e + 1]]
        s_v = sv[si]
        s_g = skey[si] - e * cells
        if carry_g.size + s_g.size == 0:
            continue
        # A carried line that was re-accessed but fell out of the slice's
        # top-``assoc`` is pushed out of the merge too — ``assoc`` newer
        # distinct entries follow it.
        st_g, st_v = _merge_states(carry_g, carry_v, s_g, s_v, assoc, cells)
        # Reload reads the state *before* the boundary flush: mark
        # monitored residents directly into the output.  Membership is a
        # table gather (binary search when the id space is too sparse
        # for a table); only the (few) watched residents still need
        # their monitor index resolved.
        if watch is not None:
            watched = watch[st_v]
        else:
            mp = np.minimum(np.searchsorted(mon_unique, st_v),
                            mon_unique.size - 1)
            watched = mon_unique[mp] == st_v
        wi = np.flatnonzero(watched)
        mpc = np.searchsorted(mon_unique, st_v[wi])
        out_u[st_g[wi] % n, e, mpc] = 1
        # The flush drops monitored lines from every level for the next
        # epoch (invalidation shrinks the set; replaying the survivors
        # oldest-first reproduces that state exactly).
        np.logical_not(watched, out=watched)
        carry_v = st_v[watched]
        carry_g = st_g[watched]
    if not want_feed:
        return empty, empty, empty
    # Splice every epoch's carry in front of its groups' runs as uncounted
    # priming prefixes (pure offset arithmetic — no O(m log m) re-sort).
    if pre_val:
        ins = np.concatenate(pre_pos)
        pk = np.concatenate(pre_key)
        pv = np.concatenate(pre_val)
    else:
        ins = np.zeros(0, dtype=np.int64)
        pk = np.zeros(0, dtype=skey.dtype)
        pv = np.zeros(0, dtype=sv.dtype)
    num_pre = pv.size
    total = m + num_pre
    fv = np.empty(total, dtype=sv.dtype)
    gb = np.empty(total, dtype=bool)
    # ``ins`` ascends (epochs are visited in order and positions ascend
    # within each), so prefix entry k lands at slot ``ins[k] + k`` and the
    # originals' displacement is the step function "prefixes inserted at
    # or before me" — no per-position bincount/cumsum needed.
    bnd = np.empty(num_pre + 2, dtype=np.int64)
    bnd[0] = 0
    bnd[1:num_pre + 1] = ins
    bnd[num_pre + 1] = m
    fo = np.arange(m, dtype=np.int64)
    fo += np.repeat(np.arange(num_pre + 1, dtype=np.int64), np.diff(bnd))
    fv[fo] = sv
    gb[fo] = gb0
    if num_pre:
        fp = ins + np.arange(num_pre, dtype=np.int64)
        fv[fp] = pv
        # Group boundaries without materializing a spliced key array:
        # a prefix entry opens a run exactly when its key changes (all
        # insertions land at run starts), and an original run start is
        # absorbed when a same-key prefix run directly precedes it.
        pb = np.empty(num_pre, dtype=bool)
        pb[0] = True
        np.not_equal(pk[1:], pk[:-1], out=pb[1:])
        gb[fp] = pb
        lastrun = np.empty(num_pre, dtype=bool)
        lastrun[-1] = True
        lastrun[:-1] = pb[1:]
        cont = lastrun & (ins < m)
        cont &= pk == skey[np.minimum(ins, m - 1)]
        gb[fp[cont] + 1] = False
    keep = np.empty(total, dtype=bool)
    keep[0] = True
    np.not_equal(fv[1:], fv[:-1], out=keep[1:])
    keep[1:] |= gb[1:]
    kept = np.flatnonzero(keep)
    hit = _grouped_hits(fv[kept], gb[kept], assoc)
    # Counted misses restored to stream order (collapsed repeats and
    # priming prefixes can only be hits/uncounted, never misses):
    # gathering a spliced-slot miss mask through ``fo`` reads each
    # original's verdict without carrying an index array through the
    # splice, and a position-mask scatter beats sorting the indices.
    missed = np.zeros(total, dtype=bool)
    missed[kept[~hit]] = True
    mask = np.zeros(m, dtype=bool)
    mask[order[missed[fo]]] = True
    oi = np.flatnonzero(mask)
    return lines[oi], samp[oi], ep[oi]


def flush_reload_observations(traces: Sequence[Trace],
                              monitored_lines: Sequence[int],
                              config: Optional[HierarchyConfig] = None,
                              epochs: int = 8) -> np.ndarray:
    """Batched :meth:`FlushReloadAttacker.observe` over many traces.

    Args:
        traces: Victim traces (memory ops are used).
        monitored_lines: Shared line ids the attacker flushes and reloads.
        config: The victim's hierarchy; must use the LRU policy.
        epochs: Temporal resolution of the attack.

    Returns:
        ``(len(traces), epochs * len(monitored_lines))`` 0/1 int64
        vectors, bit-identical to the per-trace loop.
    """
    config = config or HierarchyConfig()
    _check_replayable(config, epochs)
    monitored = np.asarray([int(line) for line in monitored_lines],
                           dtype=np.int64)
    if monitored.size == 0:
        raise SimulationError("nothing to monitor")
    n = len(traces)
    if n == 0:
        return np.zeros((0, epochs * monitored.size), dtype=np.int64)
    stream, sample_of, epoch_of = _batched_stream(traces, epochs)
    levels = [(config.l1.num_sets, config.l1.associativity),
              (config.l2.num_sets, config.l2.associativity),
              (config.llc.num_sets, config.llc.associativity)]
    # Narrow to 32-bit when both line ids and every level's key span fit:
    # the sort keys, gathers and splices below run at half the width.
    span = epochs * max(sets for sets, _ in levels) * n
    if (stream.size and span <= np.iinfo(np.int32).max
            and int(stream.max()) <= np.iinfo(np.int32).max):
        stream = stream.astype(np.int32)
        sample_of = sample_of.astype(np.int32)
        epoch_of = epoch_of.astype(np.int32)
    mon_unique, mon_inv = np.unique(monitored, return_inverse=True)
    # Direct-address watch table over the line-id range actually seen:
    # monitored lines past the stream's maximum can never be resident.
    # Sparse id spaces fall back to binary-search membership.
    top = int(stream.max()) if stream.size else 0
    if top <= _WATCH_TABLE_MAX:
        watch = np.zeros(top + 1, dtype=bool)
        watch[mon_unique[mon_unique <= top]] = True
    else:
        watch = None
    out_u = np.zeros((n, epochs, mon_unique.size), dtype=np.int64)
    # Epoch 0 starts cold like the loop (the initial flush is a no-op);
    # each level's counted misses become the next level's feed.
    for index, (num_sets, assoc) in enumerate(levels):
        stream, sample_of, epoch_of = _level_pass(
            stream, sample_of, epoch_of, n, epochs, num_sets, assoc,
            mon_unique, watch, out_u, want_feed=index + 1 < len(levels))
    out = out_u[:, :, mon_inv]
    return np.ascontiguousarray(out).reshape(n, epochs * monitored.size)
