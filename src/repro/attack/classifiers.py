"""From-scratch classifiers the adversary uses on HPC feature vectors.

Small-sample-friendly generative/linear models: Gaussian naive Bayes,
linear discriminant analysis with a shared (regularized) covariance, and a
nearest-centroid baseline.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..errors import StatisticsError


class AttackClassifier(abc.ABC):
    """Minimal fit/predict interface."""

    name = "abstract"

    @abc.abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "AttackClassifier":
        """Learn from ``(x, y)``; returns self."""

    @abc.abstractmethod
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels for ``x``."""

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on ``(x, y)``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(x) == y))

    def _check_fit_inputs(self, x: np.ndarray, y: np.ndarray):
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y).ravel().astype(int)
        if x.ndim != 2:
            raise StatisticsError(f"x must be 2-D, got shape {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise StatisticsError(
                f"{x.shape[0]} rows but {y.shape[0]} labels"
            )
        if x.shape[0] < 2 or np.unique(y).size < 2:
            raise StatisticsError("need >= 2 samples and >= 2 classes")
        return x, y


class GaussianNaiveBayes(AttackClassifier):
    """Per-class diagonal Gaussians with a variance floor.

    Args:
        var_smoothing: Fraction of the largest feature variance added to
            every class variance (numerical floor).
    """

    name = "gaussian-nb"

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise StatisticsError("var_smoothing must be >= 0")
        self.var_smoothing = var_smoothing
        self.classes_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        x, y = self._check_fit_inputs(x, y)
        self.classes_ = np.unique(y)
        epsilon = self.var_smoothing * float(x.var(axis=0).max() or 1.0)
        self.theta_ = np.stack([x[y == c].mean(axis=0) for c in self.classes_])
        self.var_ = np.stack([x[y == c].var(axis=0) + epsilon + 1e-12
                              for c in self.classes_])
        counts = np.asarray([(y == c).sum() for c in self.classes_], dtype=float)
        self.log_prior_ = np.log(counts / counts.sum())
        return self

    def log_posterior(self, x: np.ndarray) -> np.ndarray:
        """Unnormalized log posterior, shape ``(n, classes)``.

        The quadratic term expands as ``sum((x - mu)^2 / var) =
        x^2 . (1/var) - 2 x . (mu/var) + sum(mu^2 / var)``, three matrix
        products instead of an ``(n, classes, features)`` intermediate —
        on wide attack vectors (epochs x LLC sets) the broadcast cube
        dominated RSS.
        """
        if self.classes_ is None:
            raise StatisticsError("classifier not fitted")
        x = np.asarray(x, dtype=np.float64)
        inv_var = 1.0 / self.var_
        quad = ((x ** 2) @ inv_var.T
                - 2.0 * (x @ (self.theta_ * inv_var).T)
                + (self.theta_ ** 2 * inv_var).sum(axis=1)[None, :])
        log_like = -0.5 * (np.log(2.0 * np.pi * self.var_).sum(axis=1)[None, :]
                           + quad)
        return log_like + self.log_prior_[None, :]

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.log_posterior(x), axis=1)]


class LinearDiscriminant(AttackClassifier):
    """LDA with a shared, shrinkage-regularized covariance.

    Args:
        shrinkage: Convex blend toward the scaled identity (0 = empirical
            covariance, 1 = spherical); small positive values stabilize the
            inverse for few samples.
    """

    name = "lda"

    def __init__(self, shrinkage: float = 0.1):
        if not 0.0 <= shrinkage <= 1.0:
            raise StatisticsError(f"shrinkage must be in [0, 1], got {shrinkage}")
        self.shrinkage = shrinkage
        self.classes_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearDiscriminant":
        x, y = self._check_fit_inputs(x, y)
        self.classes_ = np.unique(y)
        means = np.stack([x[y == c].mean(axis=0) for c in self.classes_])
        centered = x - means[np.searchsorted(self.classes_, y)]
        cov = centered.T @ centered / max(1, x.shape[0] - self.classes_.size)
        identity_scale = np.trace(cov) / cov.shape[0] or 1.0
        cov = ((1.0 - self.shrinkage) * cov
               + self.shrinkage * identity_scale * np.eye(cov.shape[0]))
        self._precision = np.linalg.pinv(cov)
        self._means = means
        counts = np.asarray([(y == c).sum() for c in self.classes_], dtype=float)
        self._log_prior = np.log(counts / counts.sum())
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Linear discriminant scores, shape ``(n, classes)``."""
        if self.classes_ is None:
            raise StatisticsError("classifier not fitted")
        x = np.asarray(x, dtype=np.float64)
        scores = x @ self._precision @ self._means.T
        scores -= 0.5 * np.einsum("ci,ij,cj->c", self._means,
                                  self._precision, self._means)[None, :]
        return scores + self._log_prior[None, :]

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.classes_[np.argmax(self.decision_function(x), axis=1)]


class NearestCentroid(AttackClassifier):
    """Euclidean nearest-centroid baseline."""

    name = "nearest-centroid"

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "NearestCentroid":
        x, y = self._check_fit_inputs(x, y)
        self.classes_ = np.unique(y)
        self._centroids = np.stack(
            [x[y == c].mean(axis=0) for c in self.classes_])
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise StatisticsError("classifier not fitted")
        x = np.asarray(x, dtype=np.float64)
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the ||x||^2 term is
        # constant per row, so the argmin needs only one matrix product —
        # no (n, classes, features) broadcast cube.
        scores = (self._centroids ** 2).sum(axis=1)[None, :] \
            - 2.0 * (x @ self._centroids.T)
        return self.classes_[np.argmin(scores, axis=1)]


_CLASSIFIERS = {
    "gaussian-nb": GaussianNaiveBayes,
    "lda": LinearDiscriminant,
    "nearest-centroid": NearestCentroid,
}


def make_classifier(name: str, **kwargs) -> AttackClassifier:
    """Construct an attack classifier by name."""
    try:
        cls = _CLASSIFIERS[name]
    except KeyError:
        raise StatisticsError(
            f"unknown classifier {name!r}; choose from {sorted(_CLASSIFIERS)}"
        ) from None
    return cls(**kwargs)
