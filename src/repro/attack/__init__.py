"""Adversary model: recover input categories from HPC readings."""

from .attacker import AttackResult, InputRecoveryAttack, profile_and_attack
from .classifiers import (
    AttackClassifier,
    GaussianNaiveBayes,
    LinearDiscriminant,
    NearestCentroid,
    make_classifier,
)
from .engine import (
    flush_reload_observations,
    prime_probe_vectors,
    replay_supported,
    traces_compatible,
)
from .features import (
    FeatureMatrix,
    ProfiledOutcome,
    Standardizer,
    build_features,
    profile_attack_vectors,
    profiled_split,
    score_predictions,
)
from .flush_reload import (
    FlushReloadAttacker,
    FlushReloadResult,
    flush_reload_attack,
    weight_lines,
)
from .prime_probe import (
    PrimeProbeAttacker,
    PrimeProbeResult,
    collect_probe_vectors,
    prime_probe_attack,
)
from .tournament import (
    ATTACKERS,
    COUNTERMEASURES,
    TournamentCell,
    TournamentReport,
    run_tournament,
    write_tournament_report,
)
from .trace_store import (
    TraceStore,
    collect_traces,
    traces_from_arrays,
    traces_to_arrays,
)

__all__ = [
    "weight_lines",
    "flush_reload_attack",
    "FlushReloadResult",
    "FlushReloadAttacker",
    "prime_probe_attack",
    "collect_probe_vectors",
    "PrimeProbeResult",
    "PrimeProbeAttacker",
    "ATTACKERS",
    "AttackClassifier",
    "AttackResult",
    "COUNTERMEASURES",
    "FeatureMatrix",
    "GaussianNaiveBayes",
    "InputRecoveryAttack",
    "LinearDiscriminant",
    "NearestCentroid",
    "ProfiledOutcome",
    "Standardizer",
    "TournamentCell",
    "TournamentReport",
    "TraceStore",
    "build_features",
    "collect_traces",
    "flush_reload_observations",
    "make_classifier",
    "prime_probe_vectors",
    "profile_and_attack",
    "profile_attack_vectors",
    "profiled_split",
    "replay_supported",
    "run_tournament",
    "score_predictions",
    "traces_compatible",
    "traces_from_arrays",
    "traces_to_arrays",
    "write_tournament_report",
]
