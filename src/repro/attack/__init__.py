"""Adversary model: recover input categories from HPC readings."""

from .attacker import AttackResult, InputRecoveryAttack, profile_and_attack
from .classifiers import (
    AttackClassifier,
    GaussianNaiveBayes,
    LinearDiscriminant,
    NearestCentroid,
    make_classifier,
)
from .features import FeatureMatrix, Standardizer, build_features
from .flush_reload import (
    FlushReloadAttacker,
    FlushReloadResult,
    flush_reload_attack,
    weight_lines,
)
from .prime_probe import (
    PrimeProbeAttacker,
    PrimeProbeResult,
    collect_probe_vectors,
    prime_probe_attack,
)

__all__ = [
    "weight_lines",
    "flush_reload_attack",
    "FlushReloadResult",
    "FlushReloadAttacker",
    "prime_probe_attack",
    "collect_probe_vectors",
    "PrimeProbeResult",
    "PrimeProbeAttacker",
    "AttackClassifier",
    "AttackResult",
    "FeatureMatrix",
    "GaussianNaiveBayes",
    "InputRecoveryAttack",
    "LinearDiscriminant",
    "NearestCentroid",
    "Standardizer",
    "build_features",
    "make_classifier",
    "profile_and_attack",
]
