"""The leakage tournament: every attacker against every countermeasure.

The paper's question — *how much does each side channel leak, and what does
each defense buy?* — is answered here as one matrix run: attackers (HPC
profiling, Prime+Probe, Flush+Reload) x countermeasures (baseline,
constant-footprint inference, noise injection) x model zoo (one trained
classifier per dataset).  Each cell reports recovery accuracy, normalized
advantage, mutual information between the observable and the input
category, and the defense's runtime cost; cells are ranked most-leaky
first.

Cost discipline
---------------
The expensive step is victim tracing, not attack replay, so the tournament
collects each distinct *trace variant* exactly once and shares it:

* ``base`` traces serve the baseline cells of both cache attackers **and**
  the noise-injection cells — dummy-work noise perturbs counter readings,
  not the victim's memory-access sequence, so the cache attackers see the
  baseline observable unchanged (the report states this honestly: noise
  injection does not degrade microarchitectural attacks at all).
* ``hardened`` traces (constant-footprint kernels) serve the
  constant-footprint cells of both cache attackers.

Variants live in a shared :class:`repro.attack.TraceStore`, so repeated
tournaments (and the standalone attack CLIs) reuse traced passes across
processes.  When ``workers > 1`` the missing traced passes fan out over a
process pool under :class:`repro.resilience.ChunkSupervisor` — crashed
workers are replaced and their chunks re-traced — with per-worker telemetry
shipped back and merged deterministically.  Attack replay itself runs in
the parent through the vectorized batch engine (:mod:`repro.attack.engine`).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..atomicio import atomic_write_text
from ..core.experiment import (
    GENERATOR_VERSION,
    ExperimentConfig,
    make_backend,
    prepare_model,
)
from ..countermeasures import (
    NoiseInjectionBackend,
    constant_footprint_config,
    footprint_overhead,
    harden_backend,
)
from ..errors import MeasurementError
from ..hpc.session import MeasurementCache, MeasurementSession
from ..nn.model import Sequential
from ..obs import distributed
from ..obs import runtime as obs
from ..obs.runtime import TelemetryConfig
from ..parallel.executor import resolve_context
from ..resilience.supervisor import ChunkSupervisor
from ..stats.mutual_information import binned_mutual_information, max_leakage_bits
from ..trace.recorder import TraceConfig
from ..trace.traced_model import TracedInference
from .attacker import profile_and_attack
from .features import profile_attack_vectors
from .flush_reload import FlushReloadAttacker, weight_lines
from .prime_probe import PrimeProbeAttacker
from .trace_store import TraceStore, traces_from_arrays, traces_to_arrays

__all__ = [
    "ATTACKERS",
    "COUNTERMEASURES",
    "TournamentCell",
    "TournamentReport",
    "run_tournament",
    "write_tournament_report",
]

#: Attacker identifiers, in canonical order.
ATTACKERS: Tuple[str, ...] = ("hpc", "prime-probe", "flush-reload")

#: Countermeasure identifiers, in canonical order.
COUNTERMEASURES: Tuple[str, ...] = (
    "baseline", "constant-footprint", "noise-injection",
)

#: Default profiled classifier per attacker (each attack's own default).
_CLASSIFIER_FOR = {
    "hpc": "gaussian-nb",
    "prime-probe": "lda",
    "flush-reload": "gaussian-nb",
}


@dataclass(frozen=True)
class TournamentCell:
    """One (dataset, attacker, countermeasure) outcome.

    Attributes:
        dataset: Model-zoo entry attacked.
        attacker: ``"hpc"``, ``"prime-probe"`` or ``"flush-reload"``.
        countermeasure: Defense deployed on the victim.
        accuracy: Input-category recovery accuracy on held-out samples.
        chance_level: 1 / #categories.
        advantage: ``(accuracy - chance) / (1 - chance)``.
        mi_bits: Mutual information between the attacker's observable and
            the input category (bits; HPC cells report the leakiest event).
        leakage_fraction: ``mi_bits / log2(#categories)``.
        runtime_cost: Victim slowdown factor of the countermeasure
            (baseline = 1.0).
        classifier_name: Profiled classifier used.
        n_train: Profiling samples.
        n_test: Attacked samples.
        wall_seconds: Cell evaluation wall-clock (replay + profiling; trace
            collection is shared and reported separately).
    """

    dataset: str
    attacker: str
    countermeasure: str
    accuracy: float
    chance_level: float
    advantage: float
    mi_bits: float
    leakage_fraction: float
    runtime_cost: float
    classifier_name: str
    n_train: int
    n_test: int
    wall_seconds: float

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable mapping of the cell."""
        return {
            "dataset": self.dataset,
            "attacker": self.attacker,
            "countermeasure": self.countermeasure,
            "accuracy": self.accuracy,
            "chance_level": self.chance_level,
            "advantage": self.advantage,
            "mi_bits": self.mi_bits,
            "leakage_fraction": self.leakage_fraction,
            "runtime_cost": self.runtime_cost,
            "classifier": self.classifier_name,
            "n_train": self.n_train,
            "n_test": self.n_test,
            "wall_seconds": self.wall_seconds,
        }


def _rank_key(cell: TournamentCell) -> Tuple:
    # Most leakage first; deterministic tie-break on the cell coordinates.
    return (-cell.advantage, -cell.mi_bits,
            cell.dataset, cell.attacker, cell.countermeasure)


@dataclass(frozen=True)
class TournamentReport:
    """Ranked outcome of one full tournament run.

    Attributes:
        cells: All evaluated cells, most-leaky first (advantage, then MI,
            then cell coordinates for determinism).
        datasets: Model-zoo entries covered.
        attackers: Attackers entered.
        countermeasures: Countermeasures entered.
        samples_per_category: Attack-pool size per category.
        epochs: Temporal resolution of the cache attackers.
        workers: Process-pool width used for trace collection.
        trace_seconds: Wall-clock spent collecting (or loading) traces.
        wall_seconds: Total tournament wall-clock.
    """

    cells: Tuple[TournamentCell, ...]
    datasets: Tuple[str, ...]
    attackers: Tuple[str, ...]
    countermeasures: Tuple[str, ...]
    samples_per_category: int
    epochs: int
    workers: int
    trace_seconds: float
    wall_seconds: float

    def ranked(self) -> List[TournamentCell]:
        """Cells ordered most-leaky first."""
        return sorted(self.cells, key=_rank_key)

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable mapping of the whole report."""
        return {
            "kind": "leakage-tournament",
            "datasets": list(self.datasets),
            "attackers": list(self.attackers),
            "countermeasures": list(self.countermeasures),
            "samples_per_category": self.samples_per_category,
            "epochs": self.epochs,
            "workers": self.workers,
            "trace_seconds": self.trace_seconds,
            "wall_seconds": self.wall_seconds,
            "ranking": [cell.to_json() for cell in self.ranked()],
        }

    def summary(self) -> str:
        """Human-readable ranked table."""
        lines = [
            f"leakage tournament: {len(self.datasets)} model(s) x "
            f"{len(self.attackers)} attacker(s) x "
            f"{len(self.countermeasures)} countermeasure(s), "
            f"{self.samples_per_category} samples/category "
            f"({self.wall_seconds:.1f}s total, "
            f"{self.trace_seconds:.1f}s tracing, workers={self.workers})",
            f"{'#':>2}  {'dataset':<8} {'attacker':<13} "
            f"{'countermeasure':<18} {'accuracy':>8} {'advantage':>9} "
            f"{'MI(bits)':>8} {'cost':>6}",
        ]
        for rank, cell in enumerate(self.ranked(), start=1):
            lines.append(
                f"{rank:>2}  {cell.dataset:<8} {cell.attacker:<13} "
                f"{cell.countermeasure:<18} {cell.accuracy:>8.1%} "
                f"{cell.advantage:>9.1%} {cell.mi_bits:>8.3f} "
                f"{cell.runtime_cost:>5.2f}x"
            )
        return "\n".join(lines)


def write_tournament_report(report: TournamentReport,
                            path: Union[str, Path]) -> Path:
    """Write the report artifact atomically; returns the written path."""
    path = Path(path)
    payload = json.dumps(report.to_json(), indent=2) + "\n"
    return atomic_write_text(path, payload)


# ---------------------------------------------------------------------------
# Parallel trace collection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _TraceChunk:
    """One (job, category) traced pass for the supervised pool.

    ``start`` is a globally unique job index: the supervisor keys results
    by ``(category, start)``, and different jobs can share a category.
    """

    category: int
    start: int
    stop: int
    job: str


# Worker-process state: {(job, category): (model, trace_config, images)}.
_TRACE_JOBS: Optional[Dict] = None


def _init_trace_worker(jobs, telemetry, parent_context) -> None:
    """Pool initializer: install the job table and per-worker telemetry."""
    global _TRACE_JOBS
    obs.configure(telemetry or TelemetryConfig(enabled=False),
                  parent_context=parent_context)
    _TRACE_JOBS = jobs


def _trace_chunk(spec: _TraceChunk):
    """Trace one (job, category) image batch; returns serialized arrays."""
    if _TRACE_JOBS is None:  # pragma: no cover - initializer contract
        raise MeasurementError("trace worker used before initialization")
    model, trace_config, images = _TRACE_JOBS[(spec.job, spec.category)]
    capture = obs.is_enabled()
    if capture:
        distributed.start_chunk_capture()
    with obs.span("tournament.trace_chunk", job=spec.job,
                  category=spec.category, samples=len(images),
                  pid=os.getpid()):
        traced = TracedInference(model, trace_config)
        traces = [traced.trace_sample(sample)[1] for sample in images]
        arrays = traces_to_arrays(traces)
        obs.inc("tournament.traced", len(images),
                job=spec.job, category=spec.category)
    payload = distributed.worker_payload() if capture else None
    return spec.job, spec.category, arrays, payload


@dataclass(frozen=True)
class _TraceJob:
    """One trace variant of one model: what to trace and how to key it."""

    name: str                      # "<dataset>/<variant>"
    model: Sequential
    trace_config: Optional[TraceConfig]
    dataset_name: str
    tag: str
    categories: Tuple[int, ...]
    images_by_category: Dict[int, np.ndarray]


def _collect_trace_matrix(jobs: Sequence[_TraceJob], samples: int,
                          workers: int, store: Optional[TraceStore],
                          progress: Optional[Callable[[str], None]] = None
                          ) -> Dict[str, Tuple[List, np.ndarray]]:
    """Traces for every job, store-first, fanning misses over a pool.

    Returns:
        ``{job.name: (traces, labels)}`` with traces in category order.
    """
    collected: Dict[Tuple[str, int], List] = {}
    missing: List[Tuple[_TraceJob, int]] = []
    for job in jobs:
        for category in job.categories:
            cached = None
            if store is not None:
                key = TraceStore.key_for(job.model, job.trace_config,
                                         job.dataset_name, category,
                                         samples, job.tag)
                cached = store.get(key)
            if cached is not None and len(cached) == samples:
                collected[(job.name, category)] = cached
            else:
                missing.append((job, category))

    if missing and workers > 1:
        job_table = {}
        by_name = {job.name: job for job in jobs}
        chunks = []
        for index, (job, category) in enumerate(missing):
            job_table[(job.name, category)] = (
                job.model, job.trace_config,
                job.images_by_category[category],
            )
            chunks.append(_TraceChunk(category=category, start=index,
                                      stop=index + 1, job=job.name))
        worker_telemetry = None
        parent_context = None
        if obs.is_enabled():
            active = obs.active().config
            worker_telemetry = TelemetryConfig(
                enabled=True, console=False, jsonl_path="",
                profile=active.profile)
            parent_context = obs.current_context()
        supervisor = ChunkSupervisor(
            resolve_context("fork"), min(workers, len(chunks)),
            initializer=_init_trace_worker,
            initargs=(job_table, worker_telemetry, parent_context))
        with obs.span("tournament.trace_matrix", chunks=len(chunks),
                      workers=min(workers, len(chunks))) as span:
            results = supervisor.run(_trace_chunk, chunks)
            for key in sorted(results):
                name, category, arrays, payload = results[key]
                distributed.merge_worker_payload(
                    payload, parent_span=span if obs.is_enabled() else None)
                traces = traces_from_arrays(arrays)
                collected[(name, category)] = traces
                job = by_name[name]
                if store is not None:
                    store.put(TraceStore.key_for(job.model, job.trace_config,
                                                 job.dataset_name, category,
                                                 samples, job.tag), traces)
                if progress is not None:
                    progress(f"traced {name} category {category}")
    else:
        for job, category in missing:
            traced = TracedInference(job.model, job.trace_config)
            traces = [traced.trace_sample(sample)[1]
                      for sample in job.images_by_category[category]]
            collected[(job.name, category)] = traces
            if store is not None:
                store.put(TraceStore.key_for(job.model, job.trace_config,
                                             job.dataset_name, category,
                                             samples, job.tag), traces)
            if progress is not None:
                progress(f"traced {job.name} category {category}")

    matrix: Dict[str, Tuple[List, np.ndarray]] = {}
    for job in jobs:
        traces: List = []
        labels: List[int] = []
        for category in job.categories:
            traces.extend(collected[(job.name, category)])
            labels.extend([category] * samples)
        matrix[job.name] = (traces, np.asarray(labels))
    return matrix


# ---------------------------------------------------------------------------
# Scoring helpers
# ---------------------------------------------------------------------------

def _vector_mi(x: np.ndarray, y: np.ndarray) -> float:
    """MI (bits) between an attack-vector summary and the category.

    The per-sample observable is the total probe/reload activity — the one
    scalar a rate-limited attacker gets per classification.
    """
    observable = np.asarray(x, dtype=np.float64).sum(axis=1)
    values = {int(c): observable[y == c] for c in np.unique(y)}
    return binned_mutual_information(values)


def _hpc_mi(distributions) -> float:
    """MI (bits) of the leakiest single HPC event."""
    best = 0.0
    for event in distributions.events:
        values = {int(c): distributions.values(c, event)
                  for c in distributions.categories}
        best = max(best, binned_mutual_information(values))
    return best


def _runtime_cost(countermeasure: str, model: Sequential,
                  trace_config: Optional[TraceConfig],
                  noise_amplitude: float) -> float:
    if countermeasure == "constant-footprint":
        return footprint_overhead(model, trace_config)
    if countermeasure == "noise-injection":
        # Dummy work scales each counter by ~(1 + amplitude) on average.
        return 1.0 + noise_amplitude
    return 1.0


# ---------------------------------------------------------------------------
# The tournament
# ---------------------------------------------------------------------------

def run_tournament(configs: Sequence[ExperimentConfig],
                   attackers: Sequence[str] = ATTACKERS,
                   countermeasures: Sequence[str] = COUNTERMEASURES,
                   attack_samples: Optional[int] = None,
                   epochs: int = 8,
                   workers: Optional[int] = None,
                   noise_amplitude: float = 0.25,
                   flush_reload_layer: str = "fc",
                   store: Optional[TraceStore] = None,
                   models: Optional[Dict[str, Sequential]] = None,
                   progress: Optional[Callable[[str], None]] = None
                   ) -> TournamentReport:
    """Run the attacker x countermeasure x model-zoo matrix.

    Args:
        configs: One experiment configuration per model-zoo entry (their
            ``dataset`` fields must be distinct).  Backends are forced to
            the simulator — the tournament replays recorded traces.
        attackers: Subset of :data:`ATTACKERS` to enter.
        countermeasures: Subset of :data:`COUNTERMEASURES` to deploy.
        attack_samples: Attack-pool size per category (default:
            ``min(20, samples_per_category)`` per config; must be >= 2).
        epochs: Temporal resolution of the cache attackers.
        workers: Trace-collection pool width (default: the max configured
            ``workers`` across ``configs``).
        noise_amplitude: Noise-injection dummy-work amplitude.
        flush_reload_layer: Layer whose weight lines Flush+Reload monitors.
        store: Shared trace store (default: first config's cache dir).
        models: Pre-trained models keyed by dataset name (skips
            :func:`prepare_model`; used by tests).
        progress: Optional callback receiving one line per finished step.

    Returns:
        The ranked :class:`TournamentReport`.
    """
    configs = [replace(config, backend="sim") for config in configs]
    datasets = tuple(config.dataset for config in configs)
    if len(set(datasets)) != len(datasets):
        raise MeasurementError(f"duplicate datasets in tournament: {datasets}")
    attackers = tuple(attackers)
    countermeasures = tuple(countermeasures)
    for name in attackers:
        if name not in ATTACKERS:
            raise MeasurementError(
                f"unknown attacker {name!r}; choose from {list(ATTACKERS)}")
    for name in countermeasures:
        if name not in COUNTERMEASURES:
            raise MeasurementError(
                f"unknown countermeasure {name!r}; "
                f"choose from {list(COUNTERMEASURES)}")
    if not attackers or not countermeasures:
        raise MeasurementError("tournament needs >= 1 attacker and "
                               ">= 1 countermeasure")
    if workers is None:
        workers = max(config.workers for config in configs)
    if store is None:
        for config in configs:
            if config.cache_dir:
                store = TraceStore(Path(config.cache_dir) / "traces")
                break

    samples = (attack_samples
               if attack_samples is not None
               else min(20, min(config.samples_per_category
                                for config in configs)))
    if samples < 2:
        raise MeasurementError(
            f"attack_samples must be >= 2 (profiling needs a split), "
            f"got {samples}")

    started = time.perf_counter()
    cells: List[TournamentCell] = []
    with obs.span("tournament.run", datasets=list(datasets),
                  attackers=list(attackers),
                  countermeasures=list(countermeasures), samples=samples):
        # -- Model zoo + attack pools --------------------------------------
        zoo = []
        for config in configs:
            if models is not None and config.dataset in models:
                model = models[config.dataset]
            else:
                model, _ = prepare_model(config)
            pool_seed = config.eval_seed + 500
            pool = config.generator().generate(
                samples, seed=pool_seed, categories=list(config.categories))
            zoo.append((config, model, pool, pool_seed))
            if progress is not None:
                progress(f"model ready: {config.dataset}")

        # -- Trace variants (deduplicated) ---------------------------------
        cache_attackers = [a for a in attackers if a != "hpc"]
        jobs: List[_TraceJob] = []
        if cache_attackers:
            for config, model, pool, pool_seed in zoo:
                variants = {}
                if ("baseline" in countermeasures
                        or "noise-injection" in countermeasures):
                    variants["base"] = config.trace_config
                if "constant-footprint" in countermeasures:
                    variants["hardened"] = constant_footprint_config(
                        config.trace_config or TraceConfig())
                for variant, trace_config in variants.items():
                    jobs.append(_TraceJob(
                        name=f"{config.dataset}/{variant}",
                        model=model,
                        trace_config=trace_config,
                        dataset_name=pool.name,
                        tag=f"gen{GENERATOR_VERSION}-pool-seed={pool_seed}",
                        categories=tuple(config.categories),
                        images_by_category={
                            c: pool.category(c).images[:samples]
                            for c in config.categories},
                    ))
        trace_started = time.perf_counter()
        matrix = _collect_trace_matrix(jobs, samples, workers, store,
                                       progress=progress)
        trace_seconds = time.perf_counter() - trace_started

        # -- Cache-attacker cells ------------------------------------------
        # Cells that share (dataset, attacker, trace variant) see identical
        # traces, so their attack vectors are replayed once and reused —
        # noise injection perturbs counters, never the memory stream.
        vectors: Dict[Tuple[str, str, str], np.ndarray] = {}
        for config, model, pool, pool_seed in zoo:
            for attacker_name in cache_attackers:
                for countermeasure in countermeasures:
                    variant = ("hardened"
                               if countermeasure == "constant-footprint"
                               else "base")
                    trace_config = (constant_footprint_config(
                                        config.trace_config or TraceConfig())
                                    if variant == "hardened"
                                    else config.trace_config)
                    traces, labels = matrix[f"{config.dataset}/{variant}"]
                    cell_started = time.perf_counter()
                    with obs.span("tournament.cell",
                                  dataset=config.dataset,
                                  attacker=attacker_name,
                                  countermeasure=countermeasure):
                        vector_key = (config.dataset, attacker_name, variant)
                        if vector_key in vectors:
                            x = vectors[vector_key]
                        elif attacker_name == "prime-probe":
                            attacker = PrimeProbeAttacker()
                            x = attacker.probe_vectors(
                                traces, epochs=epochs).astype(float)
                        else:
                            traced = TracedInference(model, trace_config)
                            attacker = FlushReloadAttacker(
                                weight_lines(traced, flush_reload_layer))
                            x = attacker.observe_batch(
                                traces, epochs=epochs).astype(float)
                        vectors[vector_key] = x
                        outcome = profile_attack_vectors(
                            x, labels,
                            classifier=_CLASSIFIER_FOR[attacker_name],
                            seed=config.eval_seed)
                        mi = _vector_mi(x, labels)
                    cells.append(TournamentCell(
                        dataset=config.dataset,
                        attacker=attacker_name,
                        countermeasure=countermeasure,
                        accuracy=outcome.accuracy,
                        chance_level=outcome.chance_level,
                        advantage=outcome.advantage,
                        mi_bits=mi,
                        leakage_fraction=min(
                            1.0,
                            mi / max_leakage_bits(len(config.categories))),
                        runtime_cost=_runtime_cost(
                            countermeasure, model, config.trace_config,
                            noise_amplitude),
                        classifier_name=outcome.classifier_name,
                        n_train=outcome.n_train,
                        n_test=outcome.n_test,
                        wall_seconds=time.perf_counter() - cell_started,
                    ))
                    obs.inc("tournament.cells", dataset=config.dataset,
                            attacker=attacker_name)
                    if progress is not None:
                        progress(f"cell done: {config.dataset} "
                                 f"{attacker_name} vs {countermeasure}")

        # -- HPC cells ------------------------------------------------------
        if "hpc" in attackers:
            for config, model, pool, pool_seed in zoo:
                for countermeasure in countermeasures:
                    backend = make_backend(config, model)
                    if countermeasure == "constant-footprint":
                        backend = harden_backend(backend)
                    elif countermeasure == "noise-injection":
                        backend = NoiseInjectionBackend(
                            backend, amplitude=noise_amplitude,
                            seed=config.noise_seed)
                    cache = (MeasurementCache(Path(config.cache_dir))
                             if config.cache_dir else None)
                    session = MeasurementSession(backend, cache=cache,
                                                 retry=config.retry_policy())
                    # The noise backend draws from one sequential stream
                    # (no per-sample keys), so its cells measure in-process.
                    hpc_workers = (workers
                                   if getattr(backend, "supports_noise_keys",
                                              False) and workers > 1
                                   else None)
                    cell_started = time.perf_counter()
                    with obs.span("tournament.cell",
                                  dataset=config.dataset, attacker="hpc",
                                  countermeasure=countermeasure):
                        distributions = session.collect(
                            pool, config.categories, samples,
                            cache_tag=(f"tournament-gen{GENERATOR_VERSION}"
                                       f"-pool-seed={pool_seed}"),
                            workers=hpc_workers)
                        outcome = profile_and_attack(
                            distributions,
                            classifier=_CLASSIFIER_FOR["hpc"],
                            seed=config.eval_seed)
                        mi = _hpc_mi(distributions)
                    cells.append(TournamentCell(
                        dataset=config.dataset,
                        attacker="hpc",
                        countermeasure=countermeasure,
                        accuracy=outcome.accuracy,
                        chance_level=outcome.chance_level,
                        advantage=outcome.advantage,
                        mi_bits=mi,
                        leakage_fraction=min(
                            1.0,
                            mi / max_leakage_bits(len(config.categories))),
                        runtime_cost=_runtime_cost(
                            countermeasure, model, config.trace_config,
                            noise_amplitude),
                        classifier_name=outcome.classifier_name,
                        n_train=outcome.n_train,
                        n_test=outcome.n_test,
                        wall_seconds=time.perf_counter() - cell_started,
                    ))
                    obs.inc("tournament.cells", dataset=config.dataset,
                            attacker="hpc")
                    if progress is not None:
                        progress(f"cell done: {config.dataset} hpc "
                                 f"vs {countermeasure}")

    return TournamentReport(
        cells=tuple(sorted(cells, key=_rank_key)),
        datasets=datasets,
        attackers=attackers,
        countermeasures=countermeasures,
        samples_per_category=samples,
        epochs=epochs,
        workers=int(workers or 1),
        trace_seconds=trace_seconds,
        wall_seconds=time.perf_counter() - started,
    )
