"""Feature extraction: HPC distributions -> labelled feature matrices.

The adversary observes one vector of counter readings per classification and
wants to recover the input category — the threat the Evaluator's alarm warns
about.  These helpers flatten :class:`repro.hpc.EventDistributions` into
``(X, y)`` matrices and standardize them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError
from ..hpc.distributions import EventDistributions
from ..uarch.events import HpcEvent


def profiled_split(y: np.ndarray, train_fraction: float = 0.6,
                   seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Stratified train/test index split over labels ``y``.

    The single split used everywhere an adversary profiles: shuffle each
    category's indices with one shared generator (categories in sorted
    order, so the draw sequence is reproducible), keep at least one sample
    on each side.

    Args:
        y: ``(n,)`` category labels.
        train_fraction: Fraction of each category used for profiling.
        seed: Split seed.

    Returns:
        ``(train_idx, test_idx)`` index arrays.
    """
    if not 0.0 < train_fraction < 1.0:
        raise MeasurementError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    y = np.asarray(y)
    rng = np.random.default_rng(seed)
    train_idx: List[int] = []
    test_idx: List[int] = []
    for label in sorted(int(v) for v in np.unique(y)):
        indices = np.flatnonzero(y == label)
        rng.shuffle(indices)
        cut = int(round(indices.size * train_fraction))
        cut = min(max(cut, 1), indices.size - 1)
        train_idx.extend(indices[:cut])
        test_idx.extend(indices[cut:])
    return np.asarray(train_idx), np.asarray(test_idx)


def score_predictions(predictions: np.ndarray, truth: np.ndarray,
                      categories: Optional[Sequence[int]] = None
                      ) -> Tuple[float, Dict[int, float]]:
    """Accuracy plus per-category recall of an attack's predictions.

    Args:
        predictions: Predicted category per attacked sample.
        truth: True categories.
        categories: Categories to report (default: those present in
            ``truth``); categories absent from ``truth`` score 0.0.

    Returns:
        ``(accuracy, per_category_recall)``.
    """
    predictions = np.asarray(predictions)
    truth = np.asarray(truth)
    if categories is None:
        categories = sorted(int(v) for v in np.unique(truth))
    per_category: Dict[int, float] = {}
    for category in categories:
        mask = truth == category
        per_category[int(category)] = (
            float(np.mean(predictions[mask] == category))
            if mask.any() else 0.0
        )
    return float(np.mean(predictions == truth)), per_category


@dataclass(frozen=True)
class FeatureMatrix:
    """A labelled design matrix of HPC readings.

    Attributes:
        x: ``(n, features)`` readings.
        y: ``(n,)`` category labels.
        events: Column order.
    """

    x: np.ndarray
    y: np.ndarray
    events: Tuple[HpcEvent, ...]

    @property
    def n_samples(self) -> int:
        """Number of measurements."""
        return int(self.x.shape[0])

    @property
    def categories(self) -> List[int]:
        """Distinct labels, sorted."""
        return sorted(int(v) for v in np.unique(self.y))

    def split(self, train_fraction: float = 0.6,
              seed: int = 0) -> Tuple["FeatureMatrix", "FeatureMatrix"]:
        """Stratified train/test split of the measurements."""
        train_idx, test_idx = profiled_split(self.y, train_fraction, seed)
        return (
            FeatureMatrix(self.x[train_idx], self.y[train_idx], self.events),
            FeatureMatrix(self.x[test_idx], self.y[test_idx], self.events),
        )


def build_features(distributions: EventDistributions,
                   events: Optional[Sequence[HpcEvent]] = None
                   ) -> FeatureMatrix:
    """Flatten distributions into per-measurement feature rows.

    Args:
        distributions: Per-category readings (columns must align: every
            category needs the same events, which the container enforces).
        events: Feature columns (default: every measured event).

    Returns:
        A :class:`FeatureMatrix` with one row per measurement.
    """
    events = tuple(events) if events is not None else tuple(distributions.events)
    rows, labels = [], []
    for category in distributions.categories:
        columns = [distributions.values(category, event) for event in events]
        n = columns[0].size
        for column in columns:
            if column.size != n:
                raise MeasurementError(
                    f"ragged event columns for category {category}"
                )
        rows.append(np.stack(columns, axis=1))
        labels.append(np.full(n, category, dtype=int))
    return FeatureMatrix(np.concatenate(rows), np.concatenate(labels), events)


@dataclass(frozen=True)
class Standardizer:
    """Column-wise z-score transform learned from training data."""

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, x: np.ndarray) -> "Standardizer":
        """Learn column statistics (zero-variance columns keep scale 1)."""
        mean = x.mean(axis=0)
        std = x.std(axis=0)
        std = np.where(std == 0.0, 1.0, std)
        return cls(mean, std)

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned transform."""
        return (x - self.mean) / self.std


@dataclass(frozen=True)
class ProfiledOutcome:
    """Result of one profiled attack over a labelled feature matrix.

    Attributes:
        accuracy: Recovery accuracy on held-out samples.
        chance_level: 1 / #categories.
        per_category_accuracy: Recall per category.
        classifier_name: Classifier used.
        n_train: Profiling samples.
        n_test: Attacked samples.
    """

    accuracy: float
    chance_level: float
    per_category_accuracy: Dict[int, float]
    classifier_name: str
    n_train: int
    n_test: int

    @property
    def advantage(self) -> float:
        """Accuracy above chance, normalized."""
        return (self.accuracy - self.chance_level) / (1.0 - self.chance_level)


def profile_attack_vectors(x: np.ndarray, y: np.ndarray,
                           classifier: str = "gaussian-nb",
                           train_fraction: float = 0.6,
                           seed: int = 0) -> ProfiledOutcome:
    """Split, standardize, fit, predict, score — the shared attack core.

    The single profiled-attack pipeline behind Prime+Probe, Flush+Reload
    and the tournament: stratified :func:`profiled_split`, a
    :class:`Standardizer` learned on the profiling half only, one
    classifier from :func:`repro.attack.make_classifier`, and
    :func:`score_predictions` on the held-out half.
    """
    from .classifiers import make_classifier

    x = np.asarray(x)
    y = np.asarray(y)
    train_idx, test_idx = profiled_split(y, train_fraction, seed)
    standardizer = Standardizer.fit(x[train_idx])
    model = make_classifier(classifier)
    model.fit(standardizer.transform(x[train_idx]), y[train_idx])
    predictions = model.predict(standardizer.transform(x[test_idx]))
    truth = y[test_idx]
    accuracy, per_category = score_predictions(predictions, truth)
    return ProfiledOutcome(
        accuracy=accuracy,
        chance_level=1.0 / len(set(y.tolist())),
        per_category_accuracy=per_category,
        classifier_name=model.name,
        n_train=int(train_idx.size),
        n_test=int(test_idx.size),
    )
