"""Feature extraction: HPC distributions -> labelled feature matrices.

The adversary observes one vector of counter readings per classification and
wants to recover the input category — the threat the Evaluator's alarm warns
about.  These helpers flatten :class:`repro.hpc.EventDistributions` into
``(X, y)`` matrices and standardize them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError
from ..hpc.distributions import EventDistributions
from ..uarch.events import HpcEvent


@dataclass(frozen=True)
class FeatureMatrix:
    """A labelled design matrix of HPC readings.

    Attributes:
        x: ``(n, features)`` readings.
        y: ``(n,)`` category labels.
        events: Column order.
    """

    x: np.ndarray
    y: np.ndarray
    events: Tuple[HpcEvent, ...]

    @property
    def n_samples(self) -> int:
        """Number of measurements."""
        return int(self.x.shape[0])

    @property
    def categories(self) -> List[int]:
        """Distinct labels, sorted."""
        return sorted(int(v) for v in np.unique(self.y))

    def split(self, train_fraction: float = 0.6,
              seed: int = 0) -> Tuple["FeatureMatrix", "FeatureMatrix"]:
        """Stratified train/test split of the measurements."""
        if not 0.0 < train_fraction < 1.0:
            raise MeasurementError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        rng = np.random.default_rng(seed)
        train_idx, test_idx = [], []
        for label in self.categories:
            indices = np.flatnonzero(self.y == label)
            rng.shuffle(indices)
            cut = int(round(indices.size * train_fraction))
            cut = min(max(cut, 1), indices.size - 1)
            train_idx.extend(indices[:cut])
            test_idx.extend(indices[cut:])
        train_idx = np.asarray(train_idx)
        test_idx = np.asarray(test_idx)
        return (
            FeatureMatrix(self.x[train_idx], self.y[train_idx], self.events),
            FeatureMatrix(self.x[test_idx], self.y[test_idx], self.events),
        )


def build_features(distributions: EventDistributions,
                   events: Optional[Sequence[HpcEvent]] = None
                   ) -> FeatureMatrix:
    """Flatten distributions into per-measurement feature rows.

    Args:
        distributions: Per-category readings (columns must align: every
            category needs the same events, which the container enforces).
        events: Feature columns (default: every measured event).

    Returns:
        A :class:`FeatureMatrix` with one row per measurement.
    """
    events = tuple(events) if events is not None else tuple(distributions.events)
    rows, labels = [], []
    for category in distributions.categories:
        columns = [distributions.values(category, event) for event in events]
        n = columns[0].size
        for column in columns:
            if column.size != n:
                raise MeasurementError(
                    f"ragged event columns for category {category}"
                )
        rows.append(np.stack(columns, axis=1))
        labels.append(np.full(n, category, dtype=int))
    return FeatureMatrix(np.concatenate(rows), np.concatenate(labels), events)


@dataclass(frozen=True)
class Standardizer:
    """Column-wise z-score transform learned from training data."""

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, x: np.ndarray) -> "Standardizer":
        """Learn column statistics (zero-variance columns keep scale 1)."""
        mean = x.mean(axis=0)
        std = x.std(axis=0)
        std = np.where(std == 0.0, 1.0, std)
        return cls(mean, std)

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned transform."""
        return (x - self.mean) / self.std
