"""Simulated Flush+Reload attack on shared model weights.

When the classifier's weights live in memory the attacker can map too
(shared library pages, a deduplicated model file), Flush+Reload observes
*which* weight lines the victim touched: flush the monitored lines, let the
victim run, then reload and time each line.  Against the sparsity-aware
kernels of :mod:`repro.trace` this reveals which weight *rows* the
classification fetched — i.e. which activations were live — a much sharper
observable than any aggregate counter.

This is the input-directed version of the weight-recovery attacks the paper
cites (CSI NN, Cache Telepathy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.base import LabeledDataset
from ..errors import SimulationError
from ..nn.model import Sequential
from ..trace.recorder import OP_MEM, Trace, TraceConfig
from ..trace.traced_model import TracedInference
from ..uarch.hierarchy import CacheHierarchy, HierarchyConfig
from .engine import (
    flush_reload_observations,
    replay_supported,
    traces_compatible,
)
from .features import profile_attack_vectors
from .trace_store import TraceStore, collect_traces


class FlushReloadAttacker:
    """Monitors a set of shared cache lines across one victim execution.

    Args:
        monitored_lines: Line ids the attacker shares with the victim
            (typically a weight region's lines, from
            :meth:`repro.trace.ArrayRegion.all_lines`).
        hierarchy_config: The victim's cache system.
    """

    def __init__(self, monitored_lines: Sequence[int],
                 hierarchy_config: Optional[HierarchyConfig] = None):
        self.monitored_lines = [int(line) for line in monitored_lines]
        if not self.monitored_lines:
            raise SimulationError("nothing to monitor")
        self.config = hierarchy_config or HierarchyConfig()

    def _flush(self, hierarchy: CacheHierarchy) -> None:
        for line in self.monitored_lines:
            hierarchy.invalidate(line)

    def _reload(self, hierarchy: CacheHierarchy) -> np.ndarray:
        # A fast reload means the victim brought the line in: resident in
        # any level is "fast" on real hardware.  contains() keeps the reload
        # itself from perturbing the state we report.
        return np.asarray(
            [any(level.contains(line) for level in hierarchy.levels)
             for line in self.monitored_lines],
            dtype=np.int64)

    def observe(self, victim_trace: Trace, epochs: int = 8) -> np.ndarray:
        """Flush, run a victim slice, reload — repeated ``epochs`` times.

        Returns:
            ``(epochs * len(monitored_lines),)`` 0/1 vector: which monitored
            lines the victim touched during each slice.
        """
        if epochs < 1:
            raise SimulationError(f"epochs must be >= 1, got {epochs}")
        hierarchy = CacheHierarchy(self.config)
        mem_ops = [op for op in victim_trace.ops if op[0] == OP_MEM]
        total = sum(op[1].size for op in mem_ops)
        if total == 0:
            raise SimulationError("victim trace contains no memory accesses")
        budget = max(1, total // epochs)
        observations: List[np.ndarray] = []
        self._flush(hierarchy)
        consumed = 0
        for op in mem_ops:
            lines = op[1]
            start = 0
            while start < lines.size:
                if len(observations) < epochs - 1:
                    remaining = max(1, budget - consumed)
                else:
                    remaining = lines.size - start
                chunk = lines[start:start + remaining]
                hierarchy.access_stream(chunk, write=op[2])
                consumed += chunk.size
                start += chunk.size
                if consumed >= budget and len(observations) < epochs - 1:
                    observations.append(self._reload(hierarchy))
                    self._flush(hierarchy)
                    consumed = 0
        observations.append(self._reload(hierarchy))
        while len(observations) < epochs:
            observations.append(
                np.zeros(len(self.monitored_lines), dtype=np.int64))
        return np.concatenate(observations[:epochs])

    def observe_batch(self, traces: Sequence[Trace],
                      epochs: int = 8) -> np.ndarray:
        """Reload observations for a whole batch of victim traces.

        Dispatches to the vectorized replay engine — bit-identical to
        :meth:`observe` (see ``tests/attack/test_engine.py``) — whenever
        the hierarchy uses LRU replacement; other policies fall back to
        the per-trace reference loop.

        Returns:
            ``(len(traces), epochs * len(monitored_lines))`` 0/1 vectors.
        """
        if epochs < 1:
            raise SimulationError(f"epochs must be >= 1, got {epochs}")
        traces = list(traces)
        if not traces:
            return np.zeros((0, epochs * len(self.monitored_lines)),
                            dtype=np.int64)
        if replay_supported(self.config) and traces_compatible(traces):
            return flush_reload_observations(traces, self.monitored_lines,
                                             self.config, epochs=epochs)
        return np.stack([self.observe(trace, epochs=epochs)
                         for trace in traces])

    def describe(self) -> str:
        """One-line attacker description."""
        return f"flush+reload over {len(self.monitored_lines)} shared lines"


@dataclass
class FlushReloadResult:
    """Outcome of a profiled Flush+Reload recovery attack.

    Attributes:
        accuracy: Input-category recovery accuracy on held-out traces.
        chance_level: 1 / #categories.
        monitored_lines: Number of shared lines watched.
        per_category_accuracy: Recall per category.
        classifier_name: Model used on the reload patterns.
        n_train: Profiling traces.
        n_test: Attacked traces.
    """

    accuracy: float
    chance_level: float
    monitored_lines: int
    per_category_accuracy: Dict[int, float]
    classifier_name: str
    n_train: int
    n_test: int

    @property
    def advantage(self) -> float:
        """Accuracy above chance, normalized."""
        return (self.accuracy - self.chance_level) / (1.0 - self.chance_level)

    def summary(self) -> str:
        """Human-readable digest."""
        lines = [
            f"flush+reload attack ({self.classifier_name} on "
            f"{self.monitored_lines} shared weight lines, "
            f"{self.n_train} profiling / {self.n_test} attacked traces)",
            f"  accuracy {self.accuracy:.1%} vs chance "
            f"{self.chance_level:.1%} (advantage {self.advantage:.1%})",
        ]
        for category, acc in sorted(self.per_category_accuracy.items()):
            lines.append(f"  category {category}: {acc:.1%}")
        return "\n".join(lines)


def weight_lines(traced: TracedInference, layer_name: str,
                 parameter: str = "weight") -> np.ndarray:
    """Line ids of one layer's weight region (the attacker's shared pages)."""
    region = traced.space[f"{layer_name}.{parameter}"]
    return region.all_lines(traced.config.line_bytes)


def flush_reload_attack(model: Sequential, dataset: LabeledDataset,
                        categories: Sequence[int],
                        samples_per_category: int,
                        layer_name: str,
                        classifier: str = "gaussian-nb",
                        train_fraction: float = 0.6,
                        trace_config: Optional[TraceConfig] = None,
                        hierarchy_config: Optional[HierarchyConfig] = None,
                        epochs: int = 8,
                        seed: int = 0,
                        store: Optional[TraceStore] = None,
                        tag: str = "") -> FlushReloadResult:
    """Full profiled Flush+Reload study against one layer's weights."""
    traced = TracedInference(model, trace_config)
    attacker = FlushReloadAttacker(weight_lines(traced, layer_name),
                                   hierarchy_config)
    traces, y = collect_traces(model, dataset, categories,
                               samples_per_category, trace_config,
                               store=store, tag=tag)
    x = attacker.observe_batch(traces, epochs=epochs).astype(float)
    outcome = profile_attack_vectors(x, y, classifier=classifier,
                                     train_fraction=train_fraction, seed=seed)
    return FlushReloadResult(
        accuracy=outcome.accuracy,
        chance_level=outcome.chance_level,
        monitored_lines=len(attacker.monitored_lines),
        per_category_accuracy=outcome.per_category_accuracy,
        classifier_name=outcome.classifier_name,
        n_train=outcome.n_train,
        n_test=outcome.n_test,
    )
