"""Per-stage resource profiling: CPU time, RSS peak, allocation peak.

:func:`profile_stage` samples what one pipeline stage cost — process CPU
seconds, the process's resident-set high-water mark, and the tracemalloc
allocation peak — and records them as ``profile.*`` histograms labelled by
stage, optionally annotating the stage's span.  Everything is stdlib
(:mod:`resource`, :mod:`tracemalloc`, :func:`time.process_time`); no
dependencies, no sampling threads.

Profiling is off unless the active :class:`~repro.obs.runtime.TelemetryConfig`
sets ``profile=True`` (CLI ``--profile`` or ``REPRO_TELEMETRY_PROFILE=1``),
in which case tracemalloc runs for the duration of each profiled stage —
a real (2-3x allocation-path) overhead, which is why it is opt-in beyond
plain telemetry.

Caveats: ``ru_maxrss`` is a process-lifetime high-water mark, so a stage's
reading reflects the largest footprint *up to and including* that stage,
not its isolated usage.  Nested profiled stages share one tracemalloc
trace and the inner stage resets the peak counter, so profile leaf stages
(or tolerate inner stages clipping the outer peak).
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from contextlib import contextmanager
from typing import Iterator, Optional

from . import runtime as obs
from .spans import Span

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

__all__ = ["profile_stage", "profiling_enabled", "rss_peak_kb"]


def profiling_enabled() -> bool:
    """Whether :func:`profile_stage` records anything right now."""
    return obs.is_enabled() and obs.active().config.profile


def rss_peak_kb() -> Optional[float]:
    """The process's resident-set high-water mark in KiB (None if unknown)."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes there, KiB on Linux
        peak /= 1024.0
    return float(peak)


@contextmanager
def profile_stage(name: str, span: Optional[Span] = None) -> Iterator[None]:
    """Record the resource cost of the enclosed stage (context manager).

    Args:
        name: Stage label on the ``profile.*`` histogram records.
        span: Optional span to annotate with the same readings.

    Observes ``profile.cpu_s``, ``profile.rss_peak_kb`` and
    ``profile.tracemalloc_peak_kb`` histograms with a ``stage`` label;
    an instant no-op unless :func:`profiling_enabled`.
    """
    if not profiling_enabled():
        yield
        return
    started_tracing = not tracemalloc.is_tracing()
    if started_tracing:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    cpu_start = time.process_time()
    try:
        yield
    finally:
        cpu_s = time.process_time() - cpu_start
        alloc_peak_kb = tracemalloc.get_traced_memory()[1] / 1024.0
        if started_tracing:
            tracemalloc.stop()
        rss_kb = rss_peak_kb()
        obs.observe("profile.cpu_s", cpu_s, stage=name)
        obs.observe("profile.tracemalloc_peak_kb", alloc_peak_kb, stage=name)
        if rss_kb is not None:
            obs.observe("profile.rss_peak_kb", rss_kb, stage=name)
        if span is not None:
            span.set_attribute("profile.cpu_s", round(cpu_s, 6))
            span.set_attribute("profile.tracemalloc_peak_kb",
                               round(alloc_peak_kb, 3))
            if rss_kb is not None:
                span.set_attribute("profile.rss_peak_kb", rss_kb)
