"""Metrics registry: counters, gauges and histograms with labels.

The registry is the numeric half of the telemetry layer: span trees say
*where* time went, metrics say *how much of what* happened — samples
measured, cache hits, t-test pairs, per-readout nanoseconds.  Each metric
is identified by ``(name, labels)``; labels are free-form key/value pairs
(``cache.hit{kind=measurement}``).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigError

#: Canonical label identity: sorted (key, value-as-string) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_labels(labels: LabelKey) -> str:
    """Render a label set as ``{k=v,k2=v2}`` (empty string when unlabeled)."""
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count (events, hits, samples)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """Last-written value (accuracy, loss, configuration readouts)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)


class Histogram:
    """Distribution of observed values (latencies, per-layer timings)."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of observations."""
        return float(sum(self.values))

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self.total / self.count if self.values else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (nearest-rank; 0 <= q <= 100)."""
        if not 0.0 <= q <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        """count/total/mean/min/p50/p95/max of the observations."""
        if not self.values:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0,
                    "p50": 0.0, "p95": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": min(self.values),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": max(self.values),
        }


class MetricsRegistry:
    """Thread-safe home of every metric instrument.

    Instruments are created on first touch and keyed by
    ``(kind, name, labels)``; asking for an existing name with a different
    kind is an error (one name, one instrument type).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}
        self._kinds: Dict[str, str] = {}

    def _instrument(self, kind: str, name: str, labels: Dict[str, Any],
                    factory) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is None:
                self._kinds[name] = kind
            elif existing_kind != kind:
                raise ConfigError(
                    f"metric {name!r} already registered as {existing_kind}, "
                    f"cannot reuse it as a {kind}"
                )
            instrument = self._metrics.get(key)
            if instrument is None:
                instrument = self._metrics[key] = factory()
            return instrument

    # ------------------------------------------------------------------
    # Instrument accessors
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter registered under ``(name, labels)``."""
        return self._instrument("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge registered under ``(name, labels)``."""
        return self._instrument("gauge", name, labels, Gauge)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram registered under ``(name, labels)``."""
        return self._instrument("histogram", name, labels, Histogram)

    # ------------------------------------------------------------------
    # One-shot recording helpers
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name, **labels).observe(value)

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0.0 when never touched)."""
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._metrics.get(key)
        return instrument.value if isinstance(instrument, Counter) else 0.0

    def snapshot(self) -> List[Dict[str, Any]]:
        """All instruments as plain records, sorted by (name, labels).

        Counter/gauge records carry ``value``; histogram records carry the
        :meth:`Histogram.summary` fields.
        """
        with self._lock:
            items = list(self._metrics.items())
            kinds = dict(self._kinds)
        records = []
        for (name, labels), instrument in sorted(items):
            record: Dict[str, Any] = {
                "type": "metric",
                "kind": kinds[name],
                "name": name,
                "labels": dict(labels),
            }
            if isinstance(instrument, Histogram):
                record.update(instrument.summary())
            else:
                record["value"] = instrument.value
            records.append(record)
        return records

    def clear(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
