"""Metrics registry: counters, gauges and histograms with labels.

The registry is the numeric half of the telemetry layer: span trees say
*where* time went, metrics say *how much of what* happened — samples
measured, cache hits, t-test pairs, per-readout nanoseconds.  Each metric
is identified by ``(name, labels)``; labels are free-form key/value pairs
(``cache.hit{kind=measurement}``).

Every instrument is **mergeable**: a worker process can run its own
registry and ship it to the parent, which folds it in with
:meth:`MetricsRegistry.merge` / :meth:`MetricsRegistry.merge_state`.
Merging is exact — counters add, histogram buckets add — so parallel
shards combine into the same totals regardless of worker count, provided
the caller merges shards in a deterministic order (the executor merges by
``(category, chunk start)``).

Histograms are fixed-boundary bucketed (log-spaced by default): memory is
bounded no matter how many observations arrive, and two histograms over
the same boundaries merge without approximation.  A small raw-value
window is retained for exact percentiles on short runs; once it
overflows, percentiles degrade to bucket upper bounds and the record is
flagged ``truncated``.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError

#: Schema version of snapshot/state records (bump on layout changes).
METRICS_SCHEMA_VERSION = 2

#: Canonical label identity: sorted (key, value-as-string) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_labels(labels: LabelKey) -> str:
    """Render a label set as ``{k=v,k2=v2}`` (empty string when unlabeled)."""
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return "{" + inner + "}"


def log_bucket_boundaries(minimum: float = 1e-9, maximum: float = 1e12,
                          per_decade: int = 3) -> Tuple[float, ...]:
    """Log-spaced histogram boundaries covering ``[minimum, maximum]``.

    Boundaries are computed from integer decade steps, so every process
    evaluating the same arguments produces bit-identical floats — a
    precondition for cross-process bucket merging.
    """
    if minimum <= 0 or maximum <= minimum:
        raise ConfigError(
            f"need 0 < minimum < maximum, got [{minimum}, {maximum}]")
    if per_decade < 1:
        raise ConfigError(f"per_decade must be >= 1, got {per_decade}")
    lo = math.floor(math.log10(minimum) * per_decade)
    hi = math.ceil(math.log10(maximum) * per_decade)
    return tuple(10.0 ** (step / per_decade) for step in range(lo, hi + 1))


#: Default boundaries: 1ns .. 1e12 (covers ns timings, byte sizes and
#: event counts alike), 3 buckets per decade.
DEFAULT_BOUNDARIES = log_bucket_boundaries()

#: Raw observations kept per histogram for exact percentiles; beyond this
#: the raw window is dropped (memory stays bounded) and percentiles come
#: from the buckets.
DEFAULT_RETAIN_LIMIT = 512


class Counter:
    """Monotonically increasing count (events, hits, samples)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter in (values add)."""
        self.value += other.value


class Gauge:
    """Last-written value (accuracy, loss, configuration readouts)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = float(value)

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in: a set incoming value wins (last-write
        semantics; callers merge shards in a deterministic order)."""
        if other.value is not None:
            self.value = other.value


class Histogram:
    """Bounded-memory distribution of observed values.

    Observations land in fixed buckets (``value <= boundary``, Prometheus
    ``le`` semantics, plus one overflow bucket), with exact count / total /
    min / max accumulators on the side.  The first ``retain_limit`` raw
    values are kept so short histograms report exact percentiles; past
    the limit the raw window is dropped and :meth:`percentile` answers
    with the containing bucket's upper bound (the overflow bucket answers
    with the observed max).

    Args:
        boundaries: Strictly increasing bucket upper bounds (default:
            :data:`DEFAULT_BOUNDARIES`, log-spaced 1e-9..1e12).
        retain_limit: Raw observations to keep for exact percentiles
            (0 disables raw retention entirely).
    """

    __slots__ = ("boundaries", "bucket_counts", "retain_limit", "values",
                 "truncated", "_count", "_total", "_min", "_max")

    def __init__(self, boundaries: Optional[Sequence[float]] = None,
                 retain_limit: int = DEFAULT_RETAIN_LIMIT):
        bounds = (DEFAULT_BOUNDARIES if boundaries is None
                  else tuple(float(b) for b in boundaries))
        if not bounds:
            raise ConfigError("histogram needs at least one bucket boundary")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ConfigError("bucket boundaries must be strictly increasing")
        if retain_limit < 0:
            raise ConfigError(
                f"retain_limit must be >= 0, got {retain_limit}")
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.retain_limit = retain_limit
        self.values: List[float] = []
        self.truncated = retain_limit == 0
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self._count += 1
        self._total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if not self.truncated:
            if len(self.values) < self.retain_limit:
                self.values.append(value)
            else:
                # Cap raw retention: memory stays bounded, percentiles
                # fall back to bucket resolution.
                self.values = []
                self.truncated = True

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of observations."""
        return self._total

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self._total / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        return self._max if self._max is not None else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 100).

        Exact (nearest-rank over the raw window) while the histogram has
        seen at most ``retain_limit`` values; afterwards the answer is the
        upper boundary of the bucket containing that rank.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        if self._count == 0:
            return 0.0
        rank = max(0, math.ceil(q / 100.0 * self._count) - 1)
        if not self.truncated:
            return sorted(self.values)[rank]
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if rank < seen:
                if index < len(self.boundaries):
                    return self.boundaries[index]
                return self.max  # overflow bucket: max is the best bound
        return self.max  # pragma: no cover - counts always cover ranks

    def summary(self) -> Dict[str, float]:
        """count/total/mean/min/p50/p95/max of the observations."""
        if self._count == 0:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0,
                    "p50": 0.0, "p95": 0.0, "max": 0.0}
        return {
            "count": self._count,
            "total": self._total,
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": self.max,
        }

    # ------------------------------------------------------------------
    # Merge + serialization
    # ------------------------------------------------------------------

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in; buckets add exactly.

        Both histograms must share identical boundaries.  Raw windows are
        concatenated while the result still fits ``retain_limit``;
        otherwise the merged histogram keeps buckets only.
        """
        if self.boundaries != other.boundaries:
            raise ConfigError(
                "cannot merge histograms with different bucket boundaries "
                f"({len(self.boundaries)} vs {len(other.boundaries)} bounds)")
        for index, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += bucket_count
        self._count += other._count
        self._total += other._total
        if other._min is not None and (self._min is None
                                       or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None
                                       or other._max > self._max):
            self._max = other._max
        if (self.truncated or other.truncated
                or len(self.values) + len(other.values) > self.retain_limit):
            self.values = []
            self.truncated = True
        else:
            self.values.extend(other.values)

    def state(self) -> Dict[str, Any]:
        """Full JSON-serializable state (for cross-process shipping)."""
        return {
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "count": self._count,
            "total": self._total,
            "min": self._min,
            "max": self._max,
            "retain_limit": self.retain_limit,
            "truncated": self.truncated,
            "values": list(self.values),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from :meth:`state` output."""
        histogram = cls(boundaries=state["boundaries"],
                        retain_limit=state.get("retain_limit",
                                               DEFAULT_RETAIN_LIMIT))
        histogram.bucket_counts = [int(c) for c in state["bucket_counts"]]
        histogram._count = int(state["count"])
        histogram._total = float(state["total"])
        histogram._min = state["min"]
        histogram._max = state["max"]
        histogram.truncated = bool(state["truncated"])
        histogram.values = ([] if histogram.truncated
                            else [float(v) for v in state["values"]])
        return histogram

    def nonzero_buckets(self) -> List[List[float]]:
        """``[upper_bound, count]`` for every non-empty bucket.

        The overflow bucket's bound is reported as ``inf``.
        """
        out = []
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count:
                bound = (self.boundaries[index]
                         if index < len(self.boundaries) else math.inf)
                out.append([bound, bucket_count])
        return out


class MetricsRegistry:
    """Thread-safe home of every metric instrument.

    Instruments are created on first touch and keyed by
    ``(kind, name, labels)``; asking for an existing name with a different
    kind is an error (one name, one instrument type).

    Args:
        histogram_boundaries: Bucket boundaries for histograms created by
            this registry (default: the log-spaced
            :data:`DEFAULT_BOUNDARIES`).
        histogram_retain_limit: Raw-value window per histogram.
    """

    def __init__(self,
                 histogram_boundaries: Optional[Sequence[float]] = None,
                 histogram_retain_limit: int = DEFAULT_RETAIN_LIMIT):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}
        self._kinds: Dict[str, str] = {}
        self._histogram_boundaries = (
            tuple(histogram_boundaries) if histogram_boundaries is not None
            else None)
        self._histogram_retain_limit = histogram_retain_limit

    def _instrument(self, kind: str, name: str, labels: Dict[str, Any],
                    factory) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            existing_kind = self._kinds.get(name)
            if existing_kind is None:
                self._kinds[name] = kind
            elif existing_kind != kind:
                raise ConfigError(
                    f"metric {name!r} already registered as {existing_kind}, "
                    f"cannot reuse it as a {kind}"
                )
            instrument = self._metrics.get(key)
            if instrument is None:
                instrument = self._metrics[key] = factory()
            return instrument

    def _histogram_factory(self) -> Histogram:
        return Histogram(boundaries=self._histogram_boundaries,
                         retain_limit=self._histogram_retain_limit)

    # ------------------------------------------------------------------
    # Instrument accessors
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter registered under ``(name, labels)``."""
        return self._instrument("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge registered under ``(name, labels)``."""
        return self._instrument("gauge", name, labels, Gauge)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram registered under ``(name, labels)``."""
        return self._instrument("histogram", name, labels,
                                self._histogram_factory)

    # ------------------------------------------------------------------
    # One-shot recording helpers
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name, **labels).observe(value)

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every instrument of ``other`` into this registry.

        Counters add, histogram buckets add, set gauges overwrite.  The
        result is independent of *how the work was sharded* (any grouping
        of the same observations merges to the same totals); callers who
        merge many shards should do so in a deterministic order so gauge
        last-write semantics are reproducible.
        """
        with other._lock:
            items = list(other._metrics.items())
            kinds = dict(other._kinds)
        for (name, labels), instrument in sorted(items):
            kind = kinds[name]
            if kind == "histogram":
                # A histogram created here adopts the incoming boundaries,
                # so fresh names always merge; an existing instrument must
                # already share them (merge() checks).
                factory = (lambda inst=instrument: Histogram(
                    boundaries=inst.boundaries,
                    retain_limit=inst.retain_limit))
            else:
                factory = Counter if kind == "counter" else Gauge
            mine = self._instrument(kind, name, dict(labels), factory)
            mine.merge(instrument)

    def state(self) -> Dict[str, Any]:
        """Full JSON-serializable registry state (for worker shipping)."""
        with self._lock:
            items = list(self._metrics.items())
            kinds = dict(self._kinds)
        records = []
        for (name, labels), instrument in sorted(items):
            record: Dict[str, Any] = {
                "kind": kinds[name],
                "name": name,
                "labels": dict(labels),
            }
            if isinstance(instrument, Histogram):
                record["histogram"] = instrument.state()
            else:
                record["value"] = instrument.value
            records.append(record)
        return {"schema": METRICS_SCHEMA_VERSION, "metrics": records}

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold a serialized registry (:meth:`state`) into this one."""
        for record in state["metrics"]:
            kind = record["kind"]
            name = record["name"]
            labels = record["labels"]
            if kind == "counter":
                self.counter(name, **labels).inc(record["value"] or 0.0)
            elif kind == "gauge":
                if record["value"] is not None:
                    self.gauge(name, **labels).set(record["value"])
                else:
                    self.gauge(name, **labels)
            elif kind == "histogram":
                incoming = Histogram.from_state(record["histogram"])
                mine = self._instrument(
                    "histogram", name, labels,
                    lambda inc=incoming: Histogram(
                        boundaries=inc.boundaries,
                        retain_limit=inc.retain_limit))
                mine.merge(incoming)
            else:
                raise ConfigError(f"unknown metric kind {kind!r} in state")

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`state` output."""
        registry = cls()
        registry.merge_state(state)
        return registry

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0.0 when never touched)."""
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._metrics.get(key)
        return instrument.value if isinstance(instrument, Counter) else 0.0

    def snapshot(self) -> List[Dict[str, Any]]:
        """All instruments as plain records, sorted by (name, labels).

        Counter/gauge records carry ``value``; histogram records carry the
        :meth:`Histogram.summary` fields plus the non-empty ``buckets``
        (``[upper_bound, count]`` pairs) and a ``truncated`` flag.
        """
        with self._lock:
            items = list(self._metrics.items())
            kinds = dict(self._kinds)
        records = []
        for (name, labels), instrument in sorted(items):
            record: Dict[str, Any] = {
                "type": "metric",
                "kind": kinds[name],
                "name": name,
                "labels": dict(labels),
            }
            if isinstance(instrument, Histogram):
                record.update(instrument.summary())
                record["buckets"] = instrument.nonzero_buckets()
                record["truncated"] = instrument.truncated
            else:
                record["value"] = instrument.value
            records.append(record)
        return records

    def clear(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()
