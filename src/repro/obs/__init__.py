"""Observability: structured tracing, metrics and exporters.

The paper's Evaluator is itself a monitoring system, so the reproduction
carries first-class telemetry: :mod:`repro.obs.spans` times nested units
of pipeline work, :mod:`repro.obs.metrics` counts what happened (samples,
cache hits, t-test pairs), and :mod:`repro.obs.exporters` renders both for
humans (console), tooling (JSONL) and tests (in-memory).  The module-level
API in :mod:`repro.obs.runtime` is what instrumented code calls; it is a
zero-overhead no-op until telemetry is enabled via ``REPRO_TELEMETRY=1``,
:class:`TelemetryConfig`, or the CLI's ``--telemetry`` flag.

Quickstart::

    from repro import obs
    obs.configure(obs.TelemetryConfig(enabled=True))
    with obs.span("my.stage", items=4):
        obs.inc("my.counter")
    obs.flush()          # prints the stage breakdown
"""

from .exporters import (
    TELEMETRY_SCHEMA_VERSION,
    ConsoleExporter,
    InMemoryExporter,
    JsonlExporter,
    TelemetrySnapshot,
    read_jsonl,
)
from .distributed import (
    merge_worker_payload,
    start_chunk_capture,
    worker_payload,
)
from .metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_labels,
    log_bucket_boundaries,
)
from .profiling import profile_stage, profiling_enabled
from .progress import ProgressReporter
from .report import (
    RUN_REPORT_SCHEMA_VERSION,
    build_run_report,
    capture_environment,
    deterministic_metric_records,
    write_run_report,
)
from .runtime import (
    ENV_ENABLED,
    ENV_OUT,
    ENV_PROFILE,
    ENV_PROGRESS,
    Telemetry,
    TelemetryConfig,
    active,
    configure,
    current_context,
    flush,
    inc,
    is_enabled,
    observe,
    reset,
    session,
    set_gauge,
    span,
    traced,
)
from .spans import NOOP_SPAN, Span, SpanContext, SpanTracer

__all__ = [
    "ConsoleExporter",
    "Counter",
    "ENV_ENABLED",
    "ENV_OUT",
    "ENV_PROFILE",
    "ENV_PROGRESS",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonlExporter",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ProgressReporter",
    "RUN_REPORT_SCHEMA_VERSION",
    "Span",
    "SpanContext",
    "SpanTracer",
    "TELEMETRY_SCHEMA_VERSION",
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySnapshot",
    "active",
    "build_run_report",
    "capture_environment",
    "configure",
    "current_context",
    "deterministic_metric_records",
    "flush",
    "format_labels",
    "inc",
    "is_enabled",
    "log_bucket_boundaries",
    "merge_worker_payload",
    "observe",
    "profile_stage",
    "profiling_enabled",
    "read_jsonl",
    "reset",
    "session",
    "set_gauge",
    "span",
    "start_chunk_capture",
    "traced",
    "worker_payload",
]
