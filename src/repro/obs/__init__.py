"""Observability: structured tracing, metrics and exporters.

The paper's Evaluator is itself a monitoring system, so the reproduction
carries first-class telemetry: :mod:`repro.obs.spans` times nested units
of pipeline work, :mod:`repro.obs.metrics` counts what happened (samples,
cache hits, t-test pairs), and :mod:`repro.obs.exporters` renders both for
humans (console), tooling (JSONL) and tests (in-memory).  The module-level
API in :mod:`repro.obs.runtime` is what instrumented code calls; it is a
zero-overhead no-op until telemetry is enabled via ``REPRO_TELEMETRY=1``,
:class:`TelemetryConfig`, or the CLI's ``--telemetry`` flag.

Quickstart::

    from repro import obs
    obs.configure(obs.TelemetryConfig(enabled=True))
    with obs.span("my.stage", items=4):
        obs.inc("my.counter")
    obs.flush()          # prints the stage breakdown
"""

from .exporters import (
    ConsoleExporter,
    InMemoryExporter,
    JsonlExporter,
    TelemetrySnapshot,
    read_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, format_labels
from .runtime import (
    ENV_ENABLED,
    ENV_OUT,
    Telemetry,
    TelemetryConfig,
    active,
    configure,
    flush,
    inc,
    is_enabled,
    observe,
    reset,
    session,
    set_gauge,
    span,
    traced,
)
from .spans import NOOP_SPAN, Span, SpanTracer

__all__ = [
    "ConsoleExporter",
    "Counter",
    "ENV_ENABLED",
    "ENV_OUT",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonlExporter",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "SpanTracer",
    "Telemetry",
    "TelemetryConfig",
    "TelemetrySnapshot",
    "active",
    "configure",
    "flush",
    "format_labels",
    "inc",
    "is_enabled",
    "observe",
    "read_jsonl",
    "reset",
    "session",
    "set_gauge",
    "span",
    "traced",
]
