"""Telemetry exporters: console summary, JSONL file sink, in-memory sink.

Exporters consume a :class:`TelemetrySnapshot` — the finished span trees
plus a metrics snapshot — taken when the runtime flushes.  Three sinks
cover the three consumers: humans (console stage breakdown), tooling
(JSONL, one JSON object per span/metric record), and tests (in-memory).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from ..errors import ConfigError
from .metrics import format_labels
from .spans import Span

#: Version stamped on every exported snapshot (the JSONL header record and
#: the console banner).  Bump when the record layout changes so downstream
#: readers can dispatch on it; version 2 added histogram ``buckets`` /
#: ``truncated`` fields and the header record itself.
TELEMETRY_SCHEMA_VERSION = 2


@dataclass
class TelemetrySnapshot:
    """Everything telemetry knows at one flush point.

    Attributes:
        spans: Finished root spans (each the root of a tree).
        metrics: Metric records from :meth:`MetricsRegistry.snapshot`.
    """

    spans: List[Span] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)

    def records(self) -> List[Dict[str, Any]]:
        """Flat JSON-serializable records: every span, then every metric."""
        out: List[Dict[str, Any]] = []
        for root in self.spans:
            for span in root.walk():
                out.append(span.to_dict())
        out.extend(self.metrics)
        return out

    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """Combine two snapshots into a new one.

        Span trees concatenate; metric records merge exactly for counters
        (values add) and gauges (the incoming set value wins), and at
        bucket resolution for histograms — counts, totals, min/max and
        bucket counts combine exactly, percentiles are re-derived from the
        merged buckets.  For loss-free histogram percentiles merge at the
        :class:`~repro.obs.metrics.MetricsRegistry` level instead.
        """
        merged: Dict[tuple, Dict[str, Any]] = {}
        order: List[tuple] = []
        for record in list(self.metrics) + list(other.metrics):
            key = (record["name"],
                   tuple(sorted(record["labels"].items())))
            if key not in merged:
                merged[key] = {**record, "labels": dict(record["labels"])}
                if record["kind"] == "histogram":
                    merged[key]["buckets"] = [list(b)
                                              for b in record["buckets"]]
                order.append(key)
                continue
            base = merged[key]
            if base["kind"] != record["kind"]:
                raise ConfigError(
                    f"metric {record['name']!r} is a {base['kind']} in one "
                    f"snapshot and a {record['kind']} in the other")
            if record["kind"] == "counter":
                base["value"] += record["value"]
            elif record["kind"] == "gauge":
                if record["value"] is not None:
                    base["value"] = record["value"]
            else:
                _merge_histogram_records(base, record)
        out = TelemetrySnapshot(spans=list(self.spans) + list(other.spans),
                                metrics=[merged[key] for key in order])
        out.metrics.sort(key=lambda r: (r["name"],
                                        tuple(sorted(r["labels"].items()))))
        return out

    def find_spans(self, name: str) -> List[Span]:
        """All spans named ``name`` across the trees."""
        return [span for root in self.spans for span in root.find(name)]

    def header(self) -> Dict[str, Any]:
        """The schema header record written ahead of a snapshot's records."""
        return {
            "type": "meta",
            "schema": TELEMETRY_SCHEMA_VERSION,
            "spans": sum(1 for root in self.spans for _ in root.walk()),
            "metrics": len(self.metrics),
        }

    def counter_value(self, name: str, **labels: Any) -> float:
        """Summed value of counter ``name`` over matching label sets.

        With no labels given, every label set of the counter is summed;
        with labels, only records whose labels are a superset match.
        """
        wanted = {str(k): str(v) for k, v in labels.items()}
        total = 0.0
        for record in self.metrics:
            if record["kind"] != "counter" or record["name"] != name:
                continue
            if all(record["labels"].get(k) == v for k, v in wanted.items()):
                total += record["value"]
        return total


class ConsoleExporter:
    """Renders a snapshot as the human-readable stage breakdown."""

    def __init__(self, max_children_per_name: int = 8):
        self.max_children_per_name = max_children_per_name

    def _format_span(self, span: Span, depth: int, lines: List[str]) -> None:
        indent = "  " * depth
        attrs = ""
        if span.attributes:
            attrs = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items()))
        flag = "  [error]" if span.status == "error" else ""
        lines.append(f"{indent}{span.name:<{max(1, 34 - 2 * depth)}} "
                     f"wall={span.wall_s * 1e3:9.2f}ms "
                     f"cpu={span.cpu_s * 1e3:9.2f}ms{flag}{attrs}")
        by_name: Dict[str, List[Span]] = {}
        for child in span.children:
            by_name.setdefault(child.name, []).append(child)
        for name, group in by_name.items():
            if len(group) > self.max_children_per_name:
                wall = sum(s.wall_s for s in group)
                cpu = sum(s.cpu_s for s in group)
                child_indent = "  " * (depth + 1)
                lines.append(
                    f"{child_indent}{name} x{len(group):<5} "
                    f"wall={wall * 1e3:9.2f}ms cpu={cpu * 1e3:9.2f}ms")
            else:
                for child in group:
                    self._format_span(child, depth + 1, lines)

    def format(self, snapshot: TelemetrySnapshot) -> str:
        """The full console summary (spans, counters, gauges, histograms)."""
        lines: List[str] = ["telemetry summary", "=" * 17]
        if snapshot.spans:
            lines.append("")
            lines.append("pipeline stages (wall / cpu):")
            for root in snapshot.spans:
                self._format_span(root, 1, lines)
        kinds = {"counter": [], "gauge": [], "histogram": []}
        for record in snapshot.metrics:
            kinds[record["kind"]].append(record)
        if kinds["counter"]:
            lines.append("")
            lines.append("counters:")
            for rec in kinds["counter"]:
                label = rec["name"] + format_labels(
                    tuple(sorted(rec["labels"].items())))
                lines.append(f"  {label:<44} {rec['value']:>12g}")
        if kinds["gauge"]:
            lines.append("")
            lines.append("gauges:")
            for rec in kinds["gauge"]:
                label = rec["name"] + format_labels(
                    tuple(sorted(rec["labels"].items())))
                value = rec["value"]
                shown = "unset" if value is None else f"{value:g}"
                lines.append(f"  {label:<44} {shown:>12}")
        if kinds["histogram"]:
            lines.append("")
            lines.append("histograms:")
            for rec in kinds["histogram"]:
                label = rec["name"] + format_labels(
                    tuple(sorted(rec["labels"].items())))
                lines.append(
                    f"  {label:<44} count={rec['count']:<6g} "
                    f"mean={rec['mean']:.4g} p50={rec['p50']:.4g} "
                    f"p95={rec['p95']:.4g} max={rec['max']:.4g}")
        return "\n".join(lines)

    def export(self, snapshot: TelemetrySnapshot) -> None:
        """Print the summary to stdout."""
        print(self.format(snapshot))


def _merge_histogram_records(base: Dict[str, Any],
                             record: Dict[str, Any]) -> None:
    """Fold one snapshot-level histogram record into another in place."""
    buckets: Dict[float, int] = {}
    for bound, count in list(base["buckets"]) + list(record["buckets"]):
        bound = math.inf if bound in (None, "inf") else float(bound)
        buckets[bound] = buckets.get(bound, 0) + int(count)
    ordered = sorted(buckets.items())
    count = base["count"] + record["count"]
    total = base["total"] + record["total"]
    base.update(
        count=count,
        total=total,
        mean=total / count if count else 0.0,
        min=min(base["min"], record["min"]) if count else 0.0,
        max=max(base["max"], record["max"]) if count else 0.0,
        buckets=[[bound, bucket_count] for bound, bucket_count in ordered],
        truncated=True,  # percentiles below are bucket-resolution
    )
    for quantile, field_name in ((50, "p50"), (95, "p95")):
        base[field_name] = _bucket_percentile(ordered, count, quantile,
                                              base["max"])


def _bucket_percentile(ordered_buckets, count: int, q: float,
                       observed_max: float) -> float:
    """Nearest-rank percentile over ``[(upper_bound, count)]`` buckets."""
    if count == 0:
        return 0.0
    rank = max(0, math.ceil(q / 100.0 * count) - 1)
    seen = 0
    for bound, bucket_count in ordered_buckets:
        seen += bucket_count
        if rank < seen:
            return observed_max if math.isinf(bound) else bound
    return observed_max


class JsonlExporter:
    """Appends JSON span/metric records (one object per line) to a file.

    Each export writes one schema header record followed by the snapshot's
    records.  The whole batch is encoded up front and appended with a
    single ``os.write`` on an ``O_APPEND`` descriptor, so concurrent
    writers (parallel benches, multi-process runs sharing one sink) never
    interleave partial lines — every line in the file is a complete JSON
    object from exactly one export.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def export(self, snapshot: TelemetrySnapshot) -> Path:
        """Write the snapshot's records; returns the file path."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(snapshot.header(), default=str)]
        lines.extend(json.dumps(record, default=str)
                     for record in snapshot.records())
        payload = ("\n".join(lines) + "\n").encode("utf-8")
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        return self.path


class InMemoryExporter:
    """Keeps exported snapshots in a list — the test sink."""

    def __init__(self) -> None:
        self.snapshots: List[TelemetrySnapshot] = []

    def export(self, snapshot: TelemetrySnapshot) -> None:
        """Store the snapshot."""
        self.snapshots.append(snapshot)

    @property
    def last(self) -> TelemetrySnapshot:
        """The most recent snapshot (empty one when nothing exported)."""
        return self.snapshots[-1] if self.snapshots else TelemetrySnapshot()

    def records(self) -> List[Dict[str, Any]]:
        """Flat records across every stored snapshot."""
        out: List[Dict[str, Any]] = []
        for snapshot in self.snapshots:
            out.extend(snapshot.records())
        return out


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL telemetry file back into records (round-trip helper)."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
