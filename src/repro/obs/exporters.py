"""Telemetry exporters: console summary, JSONL file sink, in-memory sink.

Exporters consume a :class:`TelemetrySnapshot` — the finished span trees
plus a metrics snapshot — taken when the runtime flushes.  Three sinks
cover the three consumers: humans (console stage breakdown), tooling
(JSONL, one JSON object per span/metric record), and tests (in-memory).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from .metrics import format_labels
from .spans import Span


@dataclass
class TelemetrySnapshot:
    """Everything telemetry knows at one flush point.

    Attributes:
        spans: Finished root spans (each the root of a tree).
        metrics: Metric records from :meth:`MetricsRegistry.snapshot`.
    """

    spans: List[Span] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)

    def records(self) -> List[Dict[str, Any]]:
        """Flat JSON-serializable records: every span, then every metric."""
        out: List[Dict[str, Any]] = []
        for root in self.spans:
            for span in root.walk():
                out.append(span.to_dict())
        out.extend(self.metrics)
        return out

    def find_spans(self, name: str) -> List[Span]:
        """All spans named ``name`` across the trees."""
        return [span for root in self.spans for span in root.find(name)]

    def counter_value(self, name: str, **labels: Any) -> float:
        """Summed value of counter ``name`` over matching label sets.

        With no labels given, every label set of the counter is summed;
        with labels, only records whose labels are a superset match.
        """
        wanted = {str(k): str(v) for k, v in labels.items()}
        total = 0.0
        for record in self.metrics:
            if record["kind"] != "counter" or record["name"] != name:
                continue
            if all(record["labels"].get(k) == v for k, v in wanted.items()):
                total += record["value"]
        return total


class ConsoleExporter:
    """Renders a snapshot as the human-readable stage breakdown."""

    def __init__(self, max_children_per_name: int = 8):
        self.max_children_per_name = max_children_per_name

    def _format_span(self, span: Span, depth: int, lines: List[str]) -> None:
        indent = "  " * depth
        attrs = ""
        if span.attributes:
            attrs = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(span.attributes.items()))
        flag = "  [error]" if span.status == "error" else ""
        lines.append(f"{indent}{span.name:<{max(1, 34 - 2 * depth)}} "
                     f"wall={span.wall_s * 1e3:9.2f}ms "
                     f"cpu={span.cpu_s * 1e3:9.2f}ms{flag}{attrs}")
        by_name: Dict[str, List[Span]] = {}
        for child in span.children:
            by_name.setdefault(child.name, []).append(child)
        for name, group in by_name.items():
            if len(group) > self.max_children_per_name:
                wall = sum(s.wall_s for s in group)
                cpu = sum(s.cpu_s for s in group)
                child_indent = "  " * (depth + 1)
                lines.append(
                    f"{child_indent}{name} x{len(group):<5} "
                    f"wall={wall * 1e3:9.2f}ms cpu={cpu * 1e3:9.2f}ms")
            else:
                for child in group:
                    self._format_span(child, depth + 1, lines)

    def format(self, snapshot: TelemetrySnapshot) -> str:
        """The full console summary (spans, counters, gauges, histograms)."""
        lines: List[str] = ["telemetry summary", "=" * 17]
        if snapshot.spans:
            lines.append("")
            lines.append("pipeline stages (wall / cpu):")
            for root in snapshot.spans:
                self._format_span(root, 1, lines)
        kinds = {"counter": [], "gauge": [], "histogram": []}
        for record in snapshot.metrics:
            kinds[record["kind"]].append(record)
        if kinds["counter"]:
            lines.append("")
            lines.append("counters:")
            for rec in kinds["counter"]:
                label = rec["name"] + format_labels(
                    tuple(sorted(rec["labels"].items())))
                lines.append(f"  {label:<44} {rec['value']:>12g}")
        if kinds["gauge"]:
            lines.append("")
            lines.append("gauges:")
            for rec in kinds["gauge"]:
                label = rec["name"] + format_labels(
                    tuple(sorted(rec["labels"].items())))
                value = rec["value"]
                shown = "unset" if value is None else f"{value:g}"
                lines.append(f"  {label:<44} {shown:>12}")
        if kinds["histogram"]:
            lines.append("")
            lines.append("histograms:")
            for rec in kinds["histogram"]:
                label = rec["name"] + format_labels(
                    tuple(sorted(rec["labels"].items())))
                lines.append(
                    f"  {label:<44} count={rec['count']:<6g} "
                    f"mean={rec['mean']:.4g} p50={rec['p50']:.4g} "
                    f"p95={rec['p95']:.4g} max={rec['max']:.4g}")
        return "\n".join(lines)

    def export(self, snapshot: TelemetrySnapshot) -> None:
        """Print the summary to stdout."""
        print(self.format(snapshot))


class JsonlExporter:
    """Appends one JSON object per span/metric record to a file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def export(self, snapshot: TelemetrySnapshot) -> Path:
        """Write the snapshot's records; returns the file path."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            for record in snapshot.records():
                handle.write(json.dumps(record, default=str) + "\n")
        return self.path


class InMemoryExporter:
    """Keeps exported snapshots in a list — the test sink."""

    def __init__(self) -> None:
        self.snapshots: List[TelemetrySnapshot] = []

    def export(self, snapshot: TelemetrySnapshot) -> None:
        """Store the snapshot."""
        self.snapshots.append(snapshot)

    @property
    def last(self) -> TelemetrySnapshot:
        """The most recent snapshot (empty one when nothing exported)."""
        return self.snapshots[-1] if self.snapshots else TelemetrySnapshot()

    def records(self) -> List[Dict[str, Any]]:
        """Flat records across every stored snapshot."""
        out: List[Dict[str, Any]] = []
        for snapshot in self.snapshots:
            out.extend(snapshot.records())
        return out


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL telemetry file back into records (round-trip helper)."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
