"""Run reports: a self-describing JSON artifact for one experiment.

``RUN_REPORT.json`` packages everything needed to interpret (and audit)
one pipeline run after the fact: the merged cross-process metrics, the
experiment-wide span tree, an environment capture (CPU count, platform,
backend/engine choices, content fingerprints), the per-stage resource
profile, and the Evaluator's verdict.  The CLI's ``repro report``
subcommand produces it; CI uploads it as the bench-smoke artifact.

This module also owns :func:`deterministic_metric_records` — the filter
defining which merged metrics are *guaranteed* identical across worker
counts (the merge-determinism contract gated by
``benchmarks/bench_pipeline.py`` and the worker-telemetry tests).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..atomicio import atomic_write_text
from ..version import __version__
from .exporters import TelemetrySnapshot
from .metrics import METRICS_SCHEMA_VERSION

__all__ = [
    "RUN_REPORT_SCHEMA_VERSION",
    "build_run_report",
    "capture_environment",
    "deterministic_metric_records",
    "write_run_report",
]

#: Version stamped on every ``RUN_REPORT.json``.
#: 2: added the ``streaming`` section (alarm-latency records, tick count,
#: accumulator memory) produced by replaying the run through the
#: streaming evaluator.
RUN_REPORT_SCHEMA_VERSION = 2

#: Metric-name prefixes whose values legitimately depend on process
#: topology (how many workers ran, how chunks were scheduled, what each
#: process compiled or resampled) rather than on what was computed.
_NONDETERMINISTIC_PREFIXES = (
    "profile.",     # resource usage varies run to run
    "engine.",      # per-process compilations scale with worker count
    "supervisor.",  # retries/restarts depend on scheduling and faults
    "parallel.",    # worker-count gauges by definition
    "pipeline.",    # stage wall-clock
    "faults.",      # injected-fault counts depend on attempt interleaving
    "retry.",       # retry attempts follow the faults, not the data
)

#: Exact metric names excluded for the same reason.
_NONDETERMINISTIC_NAMES = frozenset({
    "measure.chunk",      # chunk count follows the worker count
    "train.step",         # timing histogram
    "train.alloc_bytes",  # allocator behaviour is per-process
})


def _is_deterministic(name: str) -> bool:
    if name in _NONDETERMINISTIC_NAMES:
        return False
    if name.endswith("_ns") or name.endswith("_s"):
        return False  # wall-clock / CPU-time histograms
    return not name.startswith(_NONDETERMINISTIC_PREFIXES)


def deterministic_metric_records(
        metrics: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The metric records covered by the merge-determinism guarantee.

    For one seed, these records are identical — values, labels, histogram
    buckets — whether the pipeline ran sequentially or across any number
    of workers.  Timing histograms, resource profiles and per-process
    bookkeeping (engine compilations, supervisor retries, chunk counts)
    are excluded: they faithfully describe *how* the run executed, which
    legitimately differs with process topology.  Everything counting
    *what was computed* (samples measured, cache traffic, t-test pairs
    and rejections, checkpoint writes) must merge exactly.

    Returns the surviving records sorted by ``(name, labels)``.
    """
    kept = [record for record in metrics
            if _is_deterministic(record["name"])]
    kept.sort(key=lambda r: (r["name"], tuple(sorted(r["labels"].items()))))
    return kept


def capture_environment(config: Optional[Any] = None,
                        result: Optional[Any] = None) -> Dict[str, Any]:
    """What this run executed on — the report's reproducibility anchor.

    ``cpu_count`` leads because it decides whether parallel speedups are
    even possible (the 1-core CI caveat); the rest pins the software
    stack and, when an :class:`~repro.core.experiment.ExperimentConfig` /
    result pair is given, the experiment's own choices and fingerprints.
    """
    try:
        start_method = multiprocessing.get_start_method(allow_none=True)
    except Exception:
        start_method = None
    env: Dict[str, Any] = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "repro_version": __version__,
        "metrics_schema": METRICS_SCHEMA_VERSION,
        "start_method": start_method,
    }
    if config is not None:
        env.update(
            dataset=config.dataset,
            backend=config.backend,
            engine=config.engine,
            workers=config.workers,
            samples_per_category=config.samples_per_category,
            categories=list(config.categories),
            model_fingerprint=config.model_key(),
        )
    if result is not None:
        backend = getattr(result, "backend", None)
        fingerprint = getattr(backend, "fingerprint", None)
        if fingerprint is not None:
            env["backend_fingerprint"] = fingerprint()
        if backend is not None:
            env["backend_used"] = getattr(backend, "name", type(backend).__name__)
    return env


def _profile_by_stage(snapshot: TelemetrySnapshot) -> Dict[str, Dict[str, Any]]:
    """``profile.*`` histogram summaries grouped by stage label."""
    profile: Dict[str, Dict[str, Any]] = {}
    for record in snapshot.metrics:
        if record["kind"] != "histogram":
            continue
        if not record["name"].startswith("profile."):
            continue
        stage = record["labels"].get("stage", "?")
        metric = record["name"][len("profile."):]
        profile.setdefault(stage, {})[metric] = {
            "count": record["count"],
            "mean": record["mean"],
            "max": record["max"],
            "p95": record["p95"],
        }
    return profile


def build_run_report(snapshot: TelemetrySnapshot,
                     config: Optional[Any] = None,
                     result: Optional[Any] = None,
                     streaming: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
    """Assemble the ``RUN_REPORT.json`` payload for one run.

    Args:
        snapshot: The merged telemetry snapshot of the run.
        config: Optional :class:`~repro.core.experiment.ExperimentConfig`.
        result: Optional :class:`~repro.core.experiment.ExperimentResult`
            (adds accuracy/alarm and backend fingerprints).
        streaming: Optional streaming-evaluation section (see
            :func:`repro.core.streaming.streaming_report_section`) with
            alarm-latency records in deterministic order.
    """
    report: Dict[str, Any] = {
        "type": "run_report",
        "schema": RUN_REPORT_SCHEMA_VERSION,
        "environment": capture_environment(config, result),
        "metrics": snapshot.metrics,
        "deterministic_metrics": deterministic_metric_records(
            snapshot.metrics),
        "spans": [root.to_tree_dict() for root in snapshot.spans],
        "profile": _profile_by_stage(snapshot),
    }
    if result is not None:
        report["result"] = {
            "test_accuracy": result.test_accuracy,
            "alarm": result.report.alarm,
            "distinguishable_pairs": sum(
                r.distinguishable for r in result.report.results),
            "pairs": len(result.report.results),
            "confidence": result.report.confidence,
        }
    if streaming is not None:
        report["streaming"] = streaming
    return report


def write_run_report(report: Dict[str, Any],
                     path: Union[str, Path]) -> Path:
    """Write the report atomically (temp file + rename); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return atomic_write_text(
        path, json.dumps(report, indent=2, default=str) + "\n")
