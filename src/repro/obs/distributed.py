"""Cross-process telemetry: worker-side capture, payload shipping, merging.

Worker processes run a real in-memory telemetry runtime (no exporters) and
ship what they recorded back to the parent as a plain picklable payload:
the worker's span trees (:meth:`~repro.obs.spans.Span.to_tree_dict`) plus
its metrics state (:meth:`~repro.obs.metrics.MetricsRegistry.state`).  The
parent adopts the spans under its own ``parallel.measure`` span and merges
the metrics exactly, so the experiment-wide snapshot is identical no
matter how many workers ran or in what order chunks completed — provided
callers merge payloads in a deterministic order (the executor sorts by
``(category, chunk start)``).

Capture is *per chunk*: the worker resets its runtime before each chunk
and builds the payload only after the chunk succeeded.  A failed attempt's
telemetry is discarded with the attempt, so chunk retries never
double-count — the supervisor keeps exactly one result (and therefore one
payload) per chunk.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .exporters import TELEMETRY_SCHEMA_VERSION
from .metrics import MetricsRegistry
from .runtime import active, is_enabled
from .spans import Span

__all__ = [
    "merge_worker_payload",
    "start_chunk_capture",
    "worker_payload",
]


def start_chunk_capture() -> None:
    """Reset the active runtime's recordings ahead of one chunk of work.

    Dropping previously recorded spans and metrics (not the runtime
    itself) makes the payload built afterwards cover exactly one chunk —
    the unit the supervisor deduplicates on.  ProcessPoolExecutor workers
    run tasks serially, so per-chunk reset needs no synchronisation.
    """
    runtime = active()
    runtime.tracer.clear()
    runtime.metrics = MetricsRegistry()


def worker_payload() -> Dict[str, Any]:
    """Everything the active runtime recorded, as one picklable payload."""
    runtime = active()
    return {
        "schema": TELEMETRY_SCHEMA_VERSION,
        "trace_id": runtime.tracer.trace_id,
        "parent_span_id": (runtime.parent_context.span_id
                           if runtime.parent_context else None),
        "spans": [root.to_tree_dict()
                  for root in runtime.tracer.root_spans()],
        "metrics": runtime.metrics.state(),
    }


def merge_worker_payload(payload: Optional[Dict[str, Any]],
                         parent_span: Optional[Span] = None) -> None:
    """Fold one worker payload into the active runtime.

    Spans are re-hung under ``parent_span`` (fresh ids, recorded
    durations); metrics merge exactly.  No-op when telemetry is disabled
    or the payload is None (a worker that ran with telemetry off).
    """
    if payload is None or not is_enabled():
        return
    runtime = active()
    for tree in payload.get("spans", ()):
        runtime.tracer.adopt(tree, parent=parent_span)
    metrics_state = payload.get("metrics")
    if metrics_state:
        runtime.metrics.merge_state(metrics_state)
