"""Global telemetry runtime: configuration, fast-path API, flushing.

The whole pipeline is instrumented through this module's free functions
(:func:`span`, :func:`inc`, :func:`observe`...).  With telemetry disabled —
the default — each call is a single attribute check returning a shared
no-op, so the instrumented hot paths cost effectively nothing.  Enabling
telemetry (``REPRO_TELEMETRY=1``, ``ExperimentConfig.telemetry``, or the
CLI's ``--telemetry``) routes the same calls into a live
:class:`~repro.obs.spans.SpanTracer` and
:class:`~repro.obs.metrics.MetricsRegistry`, flushed through the
configured exporters.
"""

from __future__ import annotations

import functools
import os
import sys
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional

from .exporters import ConsoleExporter, JsonlExporter, TelemetrySnapshot
from .metrics import MetricsRegistry
from .spans import NOOP_SPAN, SpanContext, SpanTracer

#: Environment variable switching telemetry on ("1", "true", "yes", "on").
ENV_ENABLED = "REPRO_TELEMETRY"
#: Environment variable naming the JSONL output file.
ENV_OUT = "REPRO_TELEMETRY_OUT"
#: Environment variable switching resource profiling on (implies enabled).
ENV_PROFILE = "REPRO_TELEMETRY_PROFILE"
#: Environment variable switching the stderr progress reporter on.
ENV_PROGRESS = "REPRO_TELEMETRY_PROGRESS"

_TRUTHY = ("1", "true", "yes", "on")


@dataclass(frozen=True)
class TelemetryConfig:
    """Telemetry behaviour of one run.

    Attributes:
        enabled: Master switch; everything below is inert when False.
        console: Print the human-readable summary on flush.
        jsonl_path: JSONL sink file ('' disables the file sink).
        profile: Sample per-stage resource usage (CPU time, RSS peak,
            tracemalloc peak) into ``profile.*`` histograms; only
            meaningful with ``enabled``.
        progress: Emit the live stderr progress line during parallel
            measurement.  Independent of ``enabled`` — progress is a
            human signal, not telemetry data.
    """

    enabled: bool = False
    console: bool = True
    jsonl_path: str = ""
    profile: bool = False
    progress: bool = False

    @classmethod
    def from_env(cls) -> "TelemetryConfig":
        """Configuration implied by the ``REPRO_TELEMETRY*`` variables."""
        def truthy(name: str) -> bool:
            return os.environ.get(name, "").strip().lower() in _TRUTHY

        out = os.environ.get(ENV_OUT, "").strip()
        profile = truthy(ENV_PROFILE)
        return cls(enabled=truthy(ENV_ENABLED) or bool(out) or profile,
                   jsonl_path=out, profile=profile,
                   progress=truthy(ENV_PROGRESS))


class Telemetry:
    """One live telemetry context: tracer + metrics + exporters.

    Args:
        config: Telemetry behaviour (default: everything off).
        parent_context: When this runtime lives in a worker process, the
            :class:`~repro.obs.spans.SpanContext` of the parent's enclosing
            span — the tracer inherits its trace id so shipped spans join
            the parent's trace.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None,
                 parent_context: Optional[SpanContext] = None):
        self.config = config or TelemetryConfig()
        self.enabled = self.config.enabled
        self.parent_context = parent_context
        self.tracer = SpanTracer(
            trace_id=parent_context.trace_id if parent_context else None)
        self.metrics = MetricsRegistry()
        self.exporters: List[Any] = []
        #: True once a JSONL flush has succeeded (CLI success message gate).
        self.jsonl_written = False

    def snapshot(self) -> TelemetrySnapshot:
        """The current cumulative snapshot (finished spans + metrics)."""
        return TelemetrySnapshot(spans=self.tracer.root_spans(),
                                 metrics=self.metrics.snapshot())

    def flush(self, console: Optional[bool] = None) -> TelemetrySnapshot:
        """Export the cumulative snapshot through every configured sink.

        Args:
            console: Override the config's console flag for this flush.

        Returns:
            The exported snapshot.
        """
        snapshot = self.snapshot()
        if self.config.jsonl_path:
            try:
                JsonlExporter(self.config.jsonl_path).export(snapshot)
                self.jsonl_written = True
            except OSError as exc:
                # The run's results must survive a bad sink path.
                print(f"warning: could not write telemetry JSONL to "
                      f"{self.config.jsonl_path}: {exc}", file=sys.stderr)
        for exporter in self.exporters:
            exporter.export(snapshot)
        show = self.config.console if console is None else console
        if show:
            ConsoleExporter().export(snapshot)
        return snapshot


#: The active runtime; module functions below delegate to it.
_ACTIVE = Telemetry(TelemetryConfig.from_env())


def active() -> Telemetry:
    """The currently active :class:`Telemetry` runtime."""
    return _ACTIVE


def configure(config: TelemetryConfig,
              parent_context: Optional[SpanContext] = None) -> Telemetry:
    """Install a fresh runtime for ``config`` and return it."""
    global _ACTIVE
    _ACTIVE = Telemetry(config, parent_context=parent_context)
    return _ACTIVE


def current_context() -> Optional[SpanContext]:
    """Propagatable context of the innermost open span (None if none)."""
    if not _ACTIVE.enabled:
        return None
    return _ACTIVE.tracer.current_context()


def reset() -> Telemetry:
    """Re-read the environment and install a fresh runtime (test helper)."""
    return configure(TelemetryConfig.from_env())


def is_enabled() -> bool:
    """Whether the active runtime records anything (the fast-path check)."""
    return _ACTIVE.enabled


def span(name: str, **attributes: Any):
    """Open a (possibly no-op) span; use as a context manager."""
    if not _ACTIVE.enabled:
        return NOOP_SPAN
    return _ACTIVE.tracer.span(name, **attributes)


def traced(name: Optional[str] = None, **attributes: Any) -> Callable:
    """Decorator wrapping each call of a function in :func:`span`."""
    def decorate(func: Callable) -> Callable:
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _ACTIVE.enabled:
                return func(*args, **kwargs)
            with _ACTIVE.tracer.span(span_name, **attributes):
                return func(*args, **kwargs)
        return wrapper
    return decorate


def inc(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Increment counter ``name`` (no-op when disabled)."""
    if _ACTIVE.enabled:
        _ACTIVE.metrics.inc(name, amount, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set gauge ``name`` (no-op when disabled)."""
    if _ACTIVE.enabled:
        _ACTIVE.metrics.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record one histogram observation (no-op when disabled)."""
    if _ACTIVE.enabled:
        _ACTIVE.metrics.observe(name, value, **labels)


def flush(console: Optional[bool] = None) -> TelemetrySnapshot:
    """Flush the active runtime (see :meth:`Telemetry.flush`)."""
    return _ACTIVE.flush(console=console)


@contextmanager
def session(config: TelemetryConfig) -> Iterator[Telemetry]:
    """Temporarily install a runtime for ``config``, restoring on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = Telemetry(config)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
