"""Live measurement progress: a throttled stderr reporter.

Measurement dominates the pipeline's wall-clock (~99% in
``BENCH_pipeline.json``), and until now the only sign of life during a
long parallel collection was the final result.  :class:`ProgressReporter`
implements the chunk-observer interface of
:class:`repro.resilience.ChunkSupervisor` — completed-chunk callbacks,
failures, pool restarts — and renders a single updating status line on
stderr: chunks done, sample rate, ETA, retry/restart counts.

Off by default; enabled with ``--progress`` or
``REPRO_TELEMETRY_PROGRESS=1``.  On a TTY the line redraws in place
(``\\r``); otherwise updates are plain lines throttled to
``min_interval_s`` so logs stay readable.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable, Dict, Optional, TextIO

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Renders live progress from supervisor chunk callbacks.

    Args:
        total_chunks: Chunks the run will complete.
        total_samples: Samples across all chunks (enables the ETA).
        stream: Output stream (default: ``sys.stderr``).
        min_interval_s: Minimum seconds between renders (the final
            :meth:`finish` render is never throttled).
        label: Prefix on the status line.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(self, total_chunks: int,
                 total_samples: Optional[int] = None,
                 stream: Optional[TextIO] = None,
                 min_interval_s: float = 0.25,
                 label: str = "measure",
                 clock: Callable[[], float] = time.monotonic):
        self.total_chunks = total_chunks
        self.total_samples = total_samples
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.label = label
        self.clock = clock
        self.done_chunks = 0
        self.done_samples = 0
        self.retries = 0
        self.lost = 0
        self.restarts = 0
        self.per_category: Dict[Any, int] = {}
        self._start = clock()
        self._last_render = -float("inf")
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._finished = False

    # ------------------------------------------------------------------
    # Supervisor observer interface
    # ------------------------------------------------------------------

    def chunk_done(self, category: Any, samples: int) -> None:
        """One chunk completed successfully."""
        self.done_chunks += 1
        self.done_samples += samples
        self.per_category[category] = self.per_category.get(category, 0) + 1
        self._render()

    def chunk_failed(self, category: Any,
                     error: Optional[BaseException] = None) -> None:
        """One chunk attempt raised (it may be retried)."""
        self.retries += 1
        self._render()

    def chunk_lost(self, category: Any) -> None:
        """One chunk was lost to a worker death (it will be resubmitted)."""
        self.lost += 1
        self._render()

    def pool_restart(self) -> None:
        """The worker pool broke and is being rebuilt."""
        self.restarts += 1
        self._render()

    def finish(self) -> None:
        """Render the final state and release the line (idempotent)."""
        if self._finished:
            return
        self._finished = True
        self._render(force=True)
        if self._tty:
            self.stream.write("\n")
            self.stream.flush()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format_line(self) -> str:
        """The current status line (no trailing newline)."""
        elapsed = max(self.clock() - self._start, 1e-9)
        rate = self.done_samples / elapsed
        parts = [f"{self.label}: {self.done_chunks}/{self.total_chunks} "
                 f"chunks"]
        if self.total_samples:
            parts.append(f"{self.done_samples}/{self.total_samples} samples")
            remaining = self.total_samples - self.done_samples
            if 0 < remaining and rate > 0:
                parts.append(f"eta {remaining / rate:.0f}s")
        else:
            parts.append(f"{self.done_samples} samples")
        parts.append(f"{rate:.1f}/s")
        if self.retries:
            parts.append(f"retries={self.retries}")
        if self.lost or self.restarts:
            parts.append(f"lost={self.lost} restarts={self.restarts}")
        return "  ".join(parts)

    def _render(self, force: bool = False) -> None:
        now = self.clock()
        if not force and now - self._last_render < self.min_interval_s:
            return
        self._last_render = now
        line = self.format_line()
        if self._tty:
            self.stream.write("\r\x1b[2K" + line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
