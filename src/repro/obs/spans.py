"""Span-based tracing: timed, nestable units of pipeline work.

A :class:`Span` records where wall-clock and CPU time went during one unit
of work (an epoch, a measurement pass, a t-test sweep).  Spans nest: the
tracer keeps a per-thread stack, so a span opened while another is active
becomes its child, and finished root spans form the trees that exporters
render as the pipeline stage breakdown.
"""

from __future__ import annotations

import functools
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class SpanContext:
    """Propagatable identity of one span: ``(trace id, span id)``.

    A parent process hands its current context to worker processes
    (picklable, two plain fields); workers stamp it on the telemetry they
    ship back, and the parent re-parents their span trees under the span
    the context names — one experiment-wide trace across processes.
    """

    trace_id: str
    span_id: int


class Span:
    """One timed unit of work.

    Attributes:
        name: Dotted span name (e.g. ``"experiment.train"``).
        attributes: Arbitrary key/value annotations.
        parent: Enclosing span, or None for a root.
        children: Spans opened while this one was active.
        status: ``"ok"``, ``"error"``, or ``"open"`` while running.
        error: ``repr`` of the exception that escaped the span, if any.
    """

    __slots__ = ("name", "attributes", "parent", "children", "span_id",
                 "status", "error", "_start_wall", "_end_wall",
                 "_start_cpu", "_end_cpu")

    def __init__(self, name: str, span_id: int,
                 parent: Optional["Span"] = None,
                 attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.span_id = span_id
        self.parent = parent
        self.children: List["Span"] = []
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.status = "open"
        self.error: Optional[str] = None
        self._start_wall = time.perf_counter()
        self._start_cpu = time.process_time()
        self._end_wall: Optional[float] = None
        self._end_cpu: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one annotation on this span."""
        self.attributes[key] = value

    def finish(self, error: Optional[BaseException] = None) -> None:
        """Close the span; idempotent, monotonic end time."""
        if self._end_wall is not None:
            return
        self._end_wall = time.perf_counter()
        self._end_cpu = time.process_time()
        if error is not None:
            self.status = "error"
            self.error = repr(error)
        else:
            self.status = "ok"

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------

    @property
    def wall_s(self) -> float:
        """Elapsed wall-clock seconds (to now while still open)."""
        end = self._end_wall if self._end_wall is not None else time.perf_counter()
        return max(0.0, end - self._start_wall)

    @property
    def cpu_s(self) -> float:
        """Elapsed process CPU seconds (to now while still open)."""
        end = self._end_cpu if self._end_cpu is not None else time.process_time()
        return max(0.0, end - self._start_cpu)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has run."""
        return self._end_wall is not None

    def walk(self) -> Iterator["Span"]:
        """Yield this span and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """All spans named ``name`` in this subtree (depth-first order)."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable record of this span (no children)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent_id": self.parent.span_id if self.parent else None,
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
        }

    def to_tree_dict(self) -> Dict[str, Any]:
        """JSON-serializable record of this span *and* its subtree.

        Durations are stored, not absolute timestamps, so the tree can be
        shipped across processes and re-hung under a new parent (see
        :meth:`SpanTracer.adopt`) without clock coordination.
        """
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "children": [child.to_tree_dict() for child in self.children],
        }

    @classmethod
    def from_summary(cls, name: str, span_id: int,
                     parent: Optional["Span"] = None,
                     attributes: Optional[Dict[str, Any]] = None,
                     wall_s: float = 0.0, cpu_s: float = 0.0,
                     status: str = "ok",
                     error: Optional[str] = None) -> "Span":
        """A finished span rebuilt from recorded durations (no live clock)."""
        span = cls(name, span_id, parent=parent, attributes=attributes)
        span._start_wall = 0.0
        span._end_wall = float(wall_s)
        span._start_cpu = 0.0
        span._end_cpu = float(cpu_s)
        span.status = status
        span.error = error
        return span

    def __repr__(self) -> str:
        state = f"{self.wall_s:.4f}s" if self.finished else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NoopSpan:
    """Stateless stand-in returned when telemetry is disabled.

    Supports the full :class:`Span` surface used at instrumentation sites
    (context manager + ``set_attribute``) at zero bookkeeping cost; a single
    shared instance is safe because it stores nothing.
    """

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        """No-op."""

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


#: Shared no-op span; reentrant because it is stateless.
NOOP_SPAN = _NoopSpan()


class SpanTracer:
    """Collects span trees with a per-thread active-span stack.

    Args:
        trace_id: Identity shared by every span this tracer records; a
            worker tracer inherits the parent's trace id through a
            propagated :class:`SpanContext` (default: a fresh random id).
    """

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.roots: List[Span] = []

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of the current one (context manager).

        The span closes on exit even when an exception escapes, recording
        ``status="error"`` and re-raising.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(name, span_id, parent=parent, attributes=attributes)
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.finish(error=exc)
            raise
        else:
            span.finish()
        finally:
            stack.pop()
            if parent is None:
                with self._lock:
                    self.roots.append(span)

    def traced(self, name: Optional[str] = None,
               **attributes: Any) -> Callable:
        """Decorator form of :meth:`span` (default name: the function's)."""
        def decorate(func: Callable) -> Callable:
            span_name = name or func.__qualname__

            @functools.wraps(func)
            def wrapper(*args: Any, **kwargs: Any) -> Any:
                with self.span(span_name, **attributes):
                    return func(*args, **kwargs)
            return wrapper
        return decorate

    def current_context(self) -> Optional[SpanContext]:
        """The :class:`SpanContext` of the innermost open span, if any."""
        current = self.current
        if current is None:
            return None
        return SpanContext(self.trace_id, current.span_id)

    def adopt(self, tree: Dict[str, Any],
              parent: Optional[Span] = None) -> Span:
        """Re-hang a shipped span tree (:meth:`Span.to_tree_dict`) here.

        Every adopted span gets a fresh id from this tracer (shipped ids
        are process-local and would collide), keeps its recorded durations
        and attributes, and becomes a child of ``parent`` — or a new root
        when ``parent`` is None.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span.from_summary(
            tree["name"], span_id, parent=parent,
            attributes=tree.get("attributes"),
            wall_s=tree.get("wall_s", 0.0), cpu_s=tree.get("cpu_s", 0.0),
            status=tree.get("status", "ok"), error=tree.get("error"))
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        for child in tree.get("children", ()):
            self.adopt(child, parent=span)
        return span

    def root_spans(self) -> List[Span]:
        """Finished root spans (a consistent copy)."""
        with self._lock:
            return list(self.roots)

    def all_spans(self) -> List[Span]:
        """Every finished span, depth first across root trees."""
        return [span for root in self.root_spans() for span in root.walk()]

    def find(self, name: str) -> List[Span]:
        """All finished spans named ``name``."""
        return [span for span in self.all_spans() if span.name == name]

    def clear(self) -> None:
        """Drop all recorded root spans (open stacks are untouched)."""
        with self._lock:
            self.roots.clear()
