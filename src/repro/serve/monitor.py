"""Per-tenant evaluation core of the monitoring daemon.

A :class:`TenantMonitor` owns exactly the machinery one ``repro stream``
run owns — a :class:`~repro.core.streaming.StreamingEvaluator` plus an
optional :class:`~repro.core.drift.DriftMonitor` — and folds measurement
rounds into it in a canonical order: **sorted category order, then one
tick**.  Because per-category moment accumulators are independent and the
tick points coincide, a daemon that ingests the same row sequence as an
offline replay produces bit-identical t statistics, p-values and
first-detection records, no matter how the rounds were interleaved on the
wire.  That equivalence is the daemon's correctness contract and is
enforced by test and bench.

On top of the stream-identical detection bookkeeping sits the *resident*
alarm layer: a stream that runs forever cannot re-test at a fixed alpha
(every leak-free tenant would eventually alarm), so each tick ``t`` is
re-tested at the spent level :func:`~repro.core.sequential.spend_alpha`
``(alpha, t)``, Bonferroni-split across the tick's (pair, event) cells,
and the verdict is passed through the configured
:class:`~repro.core.alarm.AlarmPolicy`.  A union bound — across ticks by
the spending series, across cells by the split — caps the lifetime
false-alarm probability of this layer at ``alpha``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.alarm import Alarm
from ..core.drift import DriftAlarm, DriftMonitor
from ..core.sequential import spend_alpha
from ..core.streaming import AlarmRecord, StreamingEvaluator
from ..errors import EvaluationError
from .config import ServeConfig, TenantSpec

__all__ = ["MeasurementRound", "RoundOutcome", "TenantMonitor"]


@dataclass(frozen=True)
class MeasurementRound:
    """One admission unit: a batch of rows for every category of a tenant.

    Attributes:
        tenant: Target tenant.
        index: 0-based round sequence number (per tenant).
        batches: ``category -> (B, E)`` float64 measurement rows; every
            configured category must be present with the same ``B``.
        submitted_at: Producer-side monotonic timestamp (seconds), used
            for ingest-latency and alarm-lag accounting.
    """

    tenant: str
    index: int
    batches: Mapping[int, np.ndarray]
    submitted_at: float = 0.0

    def nbytes(self) -> int:
        """Payload bytes (the row arrays; admission accounting)."""
        return int(sum(rows.nbytes for rows in self.batches.values()))


@dataclass(frozen=True)
class RoundOutcome:
    """What ingesting one round produced.

    Attributes:
        tenant: The tenant.
        round_index: The ingested round.
        tick: Evaluation tick index (None while the evaluator warms up).
        new_detections: First-detection records raised on this tick
            (identical to what ``repro stream`` would record).
        leakage_alarm: The spending-layer policy decision (None before
            the first tick).
        spent_alpha: Significance level the spending layer tested at.
        drift_alarms: Drift cells first raised on this tick.
    """

    tenant: str
    round_index: int
    tick: Optional[int]
    new_detections: Tuple[AlarmRecord, ...] = ()
    leakage_alarm: Optional[Alarm] = None
    spent_alpha: Optional[float] = None
    drift_alarms: Tuple[DriftAlarm, ...] = ()

    @property
    def alarmed(self) -> bool:
        """True when the spending alarm layer fired on this round."""
        return bool(self.leakage_alarm is not None
                    and self.leakage_alarm.triggered)


class TenantMonitor:
    """Streaming leakage + drift evaluation for one tenant.

    Args:
        spec: The tenant being monitored.
        config: Daemon-wide settings (confidence, spending, policy...).
    """

    def __init__(self, spec: TenantSpec, config: ServeConfig):
        self.spec = spec
        self.config = config
        self.evaluator = StreamingEvaluator(
            confidence=config.confidence, method=config.method,
            events=spec.events)
        self.drift: Optional[DriftMonitor] = None
        if config.drift_threshold is not None:
            self.drift = DriftMonitor(window=config.drift_window,
                                      threshold=config.drift_threshold)
        self.rounds_ingested = 0
        self._alarm_history: List[RoundOutcome] = []
        self._first_leakage_alarm: Optional[RoundOutcome] = None

    def ingest_round(self, round_: MeasurementRound) -> RoundOutcome:
        """Fold one round in: sorted categories, then a single tick.

        The canonical fold order is load-bearing: it is exactly the order
        ``MeasurementSession.stream`` and ``replay_stream`` use, which is
        what makes daemon verdicts bit-identical to offline ones.

        Ingestion is all-or-nothing: every batch is validated and
        converted before the first accumulator is touched, so a rejected
        round leaves the monitor bit-identical to before the call.  The
        daemon's exactly-once re-ingest after a consumer restart depends
        on this — a round that half-mutated state before raising would be
        double-counted on replay.
        """
        if round_.tenant != self.spec.tenant:
            raise EvaluationError(
                f"round for tenant {round_.tenant!r} routed to monitor "
                f"of {self.spec.tenant!r}")
        missing = set(self.spec.categories) - set(round_.batches)
        if missing:
            raise EvaluationError(
                f"round {round_.index} of tenant {round_.tenant!r} is "
                f"missing categories {sorted(missing)}")
        columns = len(self.spec.events)
        batches: Dict[int, np.ndarray] = {}
        for category in sorted(round_.batches):
            try:
                rows = np.asarray(round_.batches[category],
                                  dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise EvaluationError(
                    f"round {round_.index} of tenant {round_.tenant!r}: "
                    f"category {category} rows are not numeric") from exc
            if rows.ndim == 1:
                rows = rows[None, :]
            if rows.ndim != 2 or rows.shape[1] != columns:
                raise EvaluationError(
                    f"round {round_.index} of tenant {round_.tenant!r}: "
                    f"category {category} rows have shape {rows.shape}, "
                    f"expected (B, {columns})")
            batches[category] = rows
        # Validated float64 (B, E) arrays only from here on: the folds
        # below are pure accumulator arithmetic and cannot raise.
        for category, rows in batches.items():
            self.evaluator.observe_rows(category, rows)
            if self.drift is not None:
                self.drift.observe(category, rows)
        self.rounds_ingested += 1
        if not self.evaluator.ready:
            return RoundOutcome(tenant=self.spec.tenant,
                                round_index=round_.index, tick=None)
        tick = self.evaluator.tick()
        alpha = spend_alpha(self.config.alpha, tick.tick,
                            scheme=self.config.spending)
        # The spent budget covers the tick's whole (pair, event) family:
        # each cell is tested at a Bonferroni share, so the union bound
        # holds across cells within a tick as well as across ticks.
        cells = len(tick.pairs) * len(self.evaluator.events)
        alpha_cell = alpha / cells if cells else 0.0
        # Degenerate spent budget: p-values can never beat alpha == 0.0,
        # so skip the re-test instead of asking for confidence == 1.0.
        leakage_alarm = None
        if alpha_cell > 0.0:
            report = self.evaluator.report(confidence=1.0 - alpha_cell)
            leakage_alarm = self.config.policy.decide(report)
        drift_alarms: Tuple[DriftAlarm, ...] = ()
        if self.drift is not None:
            drift_alarms = tuple(self.drift.check(
                self.evaluator.moments, self.evaluator.events, tick.tick))
        outcome = RoundOutcome(
            tenant=self.spec.tenant,
            round_index=round_.index,
            tick=tick.tick,
            new_detections=tuple(tick.new_detections),
            leakage_alarm=leakage_alarm,
            spent_alpha=alpha,
            drift_alarms=drift_alarms,
        )
        if outcome.alarmed:
            self._alarm_history.append(outcome)
            if self._first_leakage_alarm is None:
                self._first_leakage_alarm = outcome
        return outcome

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def leakage_alarmed(self) -> bool:
        """True once the spending alarm layer has ever fired."""
        return self._first_leakage_alarm is not None

    @property
    def first_leakage_alarm(self) -> Optional[RoundOutcome]:
        """The first spending-layer alarm (None while quiet)."""
        return self._first_leakage_alarm

    @property
    def drift_alarmed(self) -> bool:
        """True once any drift cell has fired."""
        return self.drift is not None and self.drift.alarm

    def memory_bytes(self) -> int:
        """Evaluator + drift state bytes (flat in stream length)."""
        total = self.evaluator.memory_bytes()
        if self.drift is not None:
            total += self.drift.memory_bytes()
        return total

    def summary(self) -> Dict[str, object]:
        """JSON-friendly tenant status row."""
        detections = self.evaluator.alarm_latency()
        return {
            "tenant": self.spec.tenant,
            "model": self.spec.model,
            "rounds": self.rounds_ingested,
            "ticks": self.evaluator.ticks,
            "detections": len(detections),
            "leakage_alarm": self.leakage_alarmed,
            "leakage_alarm_tick": (
                self._first_leakage_alarm.tick
                if self._first_leakage_alarm else None),
            "drift_alarm": self.drift_alarmed,
            "drift_alarms": (self.drift.alarm_rows()
                             if self.drift is not None else []),
            "memory_bytes": self.memory_bytes(),
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def state(self) -> Dict[str, np.ndarray]:
        """Npz-able monitor state (evaluator, drift, alarm history).

        Alongside the evaluator accumulators and drift windows/alarm
        table, the spending-layer alarm history persists as ``(tick,
        round_index)`` rows so :attr:`leakage_alarmed` and the summary's
        first-alarm tick survive a checkpoint/resume.
        """
        out = self.evaluator.state()
        out["serve/rounds"] = np.asarray([self.rounds_ingested],
                                         dtype=np.int64)
        if self._alarm_history:
            out["serve/alarm_rounds"] = np.asarray(
                [[outcome.tick, outcome.round_index]
                 for outcome in self._alarm_history], dtype=np.int64)
        if self.drift is not None:
            out.update(self.drift.state())
        return out

    @classmethod
    def from_state(cls, arrays: Mapping[str, np.ndarray],
                   spec: TenantSpec, config: ServeConfig) -> "TenantMonitor":
        """Rebuild a monitor from persisted :meth:`state` arrays.

        Restored alarm-history records carry the tick, round index and
        (recomputed) spent alpha of each alarmed round; the full
        :class:`~repro.core.alarm.Alarm` decision object is not
        persisted, so :attr:`leakage_alarmed`, the first-alarm tick and
        the alarm count survive the round trip while the per-alarm
        report details do not.
        """
        monitor = cls(spec, config)
        monitor.evaluator = StreamingEvaluator.from_state(
            arrays, confidence=config.confidence, method=config.method)
        if "serve/rounds" in arrays:
            monitor.rounds_ingested = int(
                np.asarray(arrays["serve/rounds"])[0])
        if "serve/alarm_rounds" in arrays:
            rows = np.asarray(arrays["serve/alarm_rounds"], dtype=np.int64)
            for tick, round_index in rows.tolist():
                monitor._alarm_history.append(RoundOutcome(
                    tenant=spec.tenant, round_index=int(round_index),
                    tick=int(tick),
                    spent_alpha=spend_alpha(config.alpha, int(tick),
                                            scheme=config.spending)))
            monitor._first_leakage_alarm = monitor._alarm_history[0]
        if monitor.drift is not None:
            monitor.drift = DriftMonitor.from_state(
                arrays, window=config.drift_window,
                threshold=config.drift_threshold)
        return monitor
