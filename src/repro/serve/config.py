"""Configuration of the multi-tenant monitoring daemon.

A :class:`ServeConfig` describes one daemon: which tenants it monitors
(each a :class:`TenantSpec` naming the model under watch and the input
categories whose leakage is evaluated), how much queue memory admission
may use, and how alarms are decided.  Everything is a plain frozen
dataclass so a config embeds losslessly into run reports and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.alarm import AlarmPolicy, PAPER_POLICY
from ..core.sequential import SPENDING_SCHEMES
from ..errors import ConfigError
from ..uarch.events import ALL_EVENTS, HpcEvent

__all__ = ["ADMISSION_POLICIES", "ServeConfig", "TenantSpec"]

#: Supported admission policies (see :class:`~repro.serve.queues.Admission`).
ADMISSION_POLICIES = ("block", "reject")


@dataclass(frozen=True)
class TenantSpec:
    """One monitored deployment: a (tenant, model) pair and its streams.

    Attributes:
        tenant: Tenant identifier (unique per daemon).
        model: Identifier of the model under watch (informational: keyed
            into metrics and reports).
        categories: Input categories whose counter streams are compared
            pairwise (>= 2).
        events: Hardware events measured per sample, in column order.
    """

    tenant: str
    model: str = "model"
    categories: Tuple[int, ...] = (0, 1)
    events: Tuple[HpcEvent, ...] = ALL_EVENTS

    def __post_init__(self):
        if not self.tenant:
            raise ConfigError("tenant must be a non-empty string")
        if len(self.categories) < 2:
            raise ConfigError(
                f"tenant {self.tenant!r} needs >= 2 categories, "
                f"got {len(self.categories)}")
        if len(set(self.categories)) != len(self.categories):
            raise ConfigError(
                f"tenant {self.tenant!r} has duplicate categories")
        if not self.events:
            raise ConfigError(f"tenant {self.tenant!r} needs >= 1 event")


@dataclass(frozen=True)
class ServeConfig:
    """Daemon-wide settings.

    Attributes:
        tenants: The monitored deployments (unique tenant names).
        batch_size: Measurement rows per category per round.
        confidence: Per-tick detection confidence (the same bookkeeping
            ``repro stream`` uses, so verdicts are comparable bit-exactly).
        method: ``"welch"`` or ``"student"``.
        admission: ``"block"`` (producers wait for queue space — lossless,
            backpressure propagates to callers) or ``"reject"`` (full
            shards drop the whole round — lossy, bounded producer latency).
        queue_capacity: Rounds buffered per (tenant, category) shard; the
            daemon's queue memory is bounded by
            ``tenants * categories * capacity * batch_size * events * 8``
            bytes of rows.
        spending: Alpha-spending scheme of the resident alarm layer
            (:func:`~repro.core.sequential.spend_alpha`).
        alpha: Lifetime false-alarm budget of the spending alarm layer.
        policy: Rejection-count policy applied to each spending-layer
            report before an operational leakage alarm is raised.
        drift_window: Trailing rows per category for drift alarms.
        drift_threshold: |z| at which a drift cell alarms (None disables
            drift monitoring).
        state_dir: When set, per-tenant monitor state is checkpointed here
            on shutdown (atomic npz files, one per tenant).
        max_consumer_restarts: Consumer crashes tolerated per tenant
            before the tenant is marked failed.
    """

    tenants: Tuple[TenantSpec, ...]
    batch_size: int = 25
    confidence: float = 0.95
    method: str = "welch"
    admission: str = "block"
    queue_capacity: int = 8
    spending: str = "geometric"
    alpha: float = 0.05
    policy: AlarmPolicy = field(default_factory=lambda: PAPER_POLICY)
    drift_window: int = 32
    drift_threshold: Optional[float] = None
    state_dir: Optional[str] = None
    max_consumer_restarts: int = 3

    def __post_init__(self):
        if not self.tenants:
            raise ConfigError("need at least one tenant")
        names = [spec.tenant for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigError(
                f"confidence must be in (0, 1), got {self.confidence}")
        if self.admission not in ADMISSION_POLICIES:
            raise ConfigError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}")
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.spending not in SPENDING_SCHEMES:
            raise ConfigError(
                f"spending must be one of {SPENDING_SCHEMES}, "
                f"got {self.spending!r}")
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.max_consumer_restarts < 0:
            raise ConfigError(
                f"max_consumer_restarts must be >= 0, "
                f"got {self.max_consumer_restarts}")

    def spec(self, tenant: str) -> TenantSpec:
        """The :class:`TenantSpec` of ``tenant`` (ConfigError if unknown)."""
        for spec in self.tenants:
            if spec.tenant == tenant:
                return spec
        raise ConfigError(f"unknown tenant {tenant!r}")
