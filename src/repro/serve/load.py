"""Synthetic load generation for the monitoring daemon.

Producers here play the role the measurement session plays in
production: they emit per-category ``(B, E)`` rows.  The synthetic
streams are seeded Gaussians whose means differ *by category* — the
side-channel signal of the paper, category-dependent counter
distributions, in its purest form — so leakage alarms genuinely fire and
alarm-lag numbers mean something.  An optional mean shift injected after
a configurable round exercises the drift alarm path the same way.

The generator is deliberately deterministic: the full sample sequence of
a run is a pure function of its seed, which is what lets tests and the
bench replay the identical sequence offline and demand bit-equal
verdicts from the daemon.
"""

from __future__ import annotations

import asyncio
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from .config import ServeConfig, TenantSpec
from .daemon import MonitorDaemon
from .monitor import MeasurementRound

__all__ = ["LoadReport", "SyntheticTenantLoad", "percentile", "run_load"]

#: Baseline mean / sigma of the synthetic counter columns.
BASE_MEAN = 1000.0
BASE_SIGMA = 40.0
#: Per-category mean separation (in sigmas: a strong but not instant leak).
CATEGORY_STEP = 20.0


@dataclass
class SyntheticTenantLoad:
    """Deterministic row stream for one tenant.

    Attributes:
        spec: The tenant to generate for.
        seed: RNG seed (per tenant, so tenants are independent streams).
        drift_after_round: When set, every category's mean shifts by
            ``drift_shift`` sigmas starting at this 0-based round —
            leakage *between* categories is unchanged (all shift
            together) but each category drifts from its own history.
        drift_shift: Injected shift in baseline sigmas.
    """

    spec: TenantSpec
    seed: int = 0
    drift_after_round: Optional[int] = None
    drift_shift: float = 6.0
    _tenant_key: int = field(init=False, repr=False)

    def __post_init__(self):
        # crc32, not hash(): str hashing is salted per process and would
        # break the replay-the-same-sequence-offline contract.
        self._tenant_key = zlib.crc32(self.spec.tenant.encode("utf-8"))

    def round_batches(self, round_index: int,
                      batch_size: int) -> Dict[int, np.ndarray]:
        """The ``category -> (B, E)`` rows of one round.

        A pure function of ``(tenant, seed, round_index)`` — no shared
        RNG state — so replays need not re-generate earlier rounds and
        admission-rejected rounds do not perturb later ones.
        """
        rng = np.random.default_rng(np.random.SeedSequence(
            [self._tenant_key, self.seed, round_index]))
        events = len(self.spec.events)
        batches: Dict[int, np.ndarray] = {}
        shift = 0.0
        if (self.drift_after_round is not None
                and round_index >= self.drift_after_round):
            shift = self.drift_shift * BASE_SIGMA
        for category in sorted(self.spec.categories):
            mean = BASE_MEAN + CATEGORY_STEP * category + shift
            batches[category] = rng.normal(
                mean, BASE_SIGMA, size=(batch_size, events))
        return batches

    def rounds(self, count: int,
               batch_size: int) -> List[Dict[int, np.ndarray]]:
        """Materialize ``count`` rounds (test/bench replay helper)."""
        return [self.round_batches(i, batch_size) for i in range(count)]


@dataclass(frozen=True)
class LoadReport:
    """What a load run measured (per tenant).

    Attributes:
        tenant: The tenant.
        rounds_offered: Rounds the producer generated.
        rounds_admitted: Rounds past admission.
        rounds_rejected: Rounds dropped by ``reject`` admission.
        ingest_latency_ms: Submit-to-ingested latency per admitted round.
        alarm_lag_ms: Submit-to-alarm latency of spending-layer alarms.
        first_alarm_round: Round index of the first leakage alarm.
        drift_alarm_rounds: Round indices where drift cells first fired.
    """

    tenant: str
    rounds_offered: int
    rounds_admitted: int
    rounds_rejected: int
    ingest_latency_ms: Tuple[float, ...]
    alarm_lag_ms: Tuple[float, ...]
    first_alarm_round: Optional[int]
    drift_alarm_rounds: Tuple[int, ...]


def percentile(values, q: float) -> float:
    """Percentile of a (possibly empty) latency series, NaN when empty."""
    if not values:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


async def run_load(daemon: MonitorDaemon, rounds: int,
                   rps: float = 0.0,
                   seed: int = 0,
                   drift_after_round: Optional[int] = None,
                   drift_shift: float = 6.0) -> Dict[str, LoadReport]:
    """Drive every configured tenant with synthetic producers.

    One producer task per tenant generates ``rounds`` rounds and submits
    them through the daemon's admission layer, pacing to ``rps`` rounds
    per second per tenant when positive (0 means as fast as admission
    allows — under ``block`` admission that is consumer speed, i.e. pure
    backpressure).  The daemon must already be started; this drains it
    before returning but does not stop it.

    Returns:
        Per-tenant :class:`LoadReport`.
    """
    if rounds < 1:
        raise ConfigError(f"rounds must be >= 1, got {rounds}")
    config = daemon.config
    outcomes: Dict[str, list] = {spec.tenant: []
                                 for spec in config.tenants}
    ingested_at: Dict[Tuple[str, int], float] = {}
    submitted_at: Dict[Tuple[str, int], float] = {}

    previous_callback = daemon._on_outcome

    def on_outcome(outcome):
        outcomes[outcome.tenant].append(outcome)
        ingested_at[(outcome.tenant, outcome.round_index)] = time.monotonic()
        if previous_callback is not None:
            previous_callback(outcome)

    daemon._on_outcome = on_outcome

    async def produce(spec: TenantSpec) -> Tuple[int, int]:
        load = SyntheticTenantLoad(spec, seed=seed,
                                   drift_after_round=drift_after_round,
                                   drift_shift=drift_shift)
        admitted = rejected = 0
        interval = 1.0 / rps if rps > 0 else 0.0
        next_due = time.monotonic()
        for index in range(rounds):
            if interval:
                delay = next_due - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                next_due += interval
            now = time.monotonic()
            round_ = MeasurementRound(
                tenant=spec.tenant, index=index,
                batches=load.round_batches(index, config.batch_size),
                submitted_at=now)
            submitted_at[(spec.tenant, index)] = now
            if await daemon.submit_round(round_):
                admitted += 1
            else:
                rejected += 1
            if not interval:
                # Yield so consumers interleave even at unbounded rate.
                await asyncio.sleep(0)
        return admitted, rejected

    counts = await asyncio.gather(
        *(produce(spec) for spec in config.tenants))
    await daemon.drain()
    daemon._on_outcome = previous_callback

    reports: Dict[str, LoadReport] = {}
    for spec, (admitted, rejected) in zip(config.tenants, counts):
        tenant = spec.tenant
        latencies = []
        alarm_lags = []
        first_alarm = None
        drift_rounds = []
        for outcome in outcomes[tenant]:
            key = (tenant, outcome.round_index)
            if key in submitted_at and key in ingested_at:
                latencies.append(
                    (ingested_at[key] - submitted_at[key]) * 1e3)
            if outcome.alarmed:
                if first_alarm is None:
                    first_alarm = outcome.round_index
                if key in submitted_at and key in ingested_at:
                    alarm_lags.append(
                        (ingested_at[key] - submitted_at[key]) * 1e3)
            if outcome.drift_alarms:
                drift_rounds.append(outcome.round_index)
        reports[tenant] = LoadReport(
            tenant=tenant,
            rounds_offered=rounds,
            rounds_admitted=admitted,
            rounds_rejected=rejected,
            ingest_latency_ms=tuple(latencies),
            alarm_lag_ms=tuple(alarm_lags),
            first_alarm_round=first_alarm,
            drift_alarm_rounds=tuple(drift_rounds),
        )
    return reports
