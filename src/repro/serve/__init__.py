"""Resident multi-tenant leakage monitoring (``repro serve``).

The offline pipeline asks "did this model leak during this run?"; a
deployment wants the question answered *continuously*, for many models at
once, on a machine whose memory it cannot exhaust.  This package is that
daemon, built entirely from stdlib asyncio plus the repo's own streaming
machinery:

* :mod:`~repro.serve.config` — tenants, admission policy, alarm settings;
* :mod:`~repro.serve.queues` — bounded per-(tenant, category) shards with
  round-atomic admission (``block`` backpressure or whole-round
  ``reject``);
* :mod:`~repro.serve.monitor` — per-tenant streaming evaluation whose
  verdicts are bit-identical to ``repro stream`` on the same rows, plus
  the alpha-spending alarm layer and drift alarms;
* :mod:`~repro.serve.daemon` — supervised consumer tasks with
  exactly-once crash recovery and atomic state checkpoints;
* :mod:`~repro.serve.load` — deterministic synthetic producers for the
  CLI, tests and ``benchmarks/bench_serve.py``.
"""

from .config import ADMISSION_POLICIES, ServeConfig, TenantSpec
from .daemon import MonitorDaemon, TenantFailure
from .load import LoadReport, SyntheticTenantLoad, run_load
from .monitor import MeasurementRound, RoundOutcome, TenantMonitor
from .queues import AdmissionController

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionController",
    "LoadReport",
    "MeasurementRound",
    "MonitorDaemon",
    "RoundOutcome",
    "ServeConfig",
    "SyntheticTenantLoad",
    "TenantFailure",
    "TenantMonitor",
    "TenantSpec",
    "run_load",
]
