"""The resident monitoring daemon: admission, consumers, supervision.

One :class:`MonitorDaemon` hosts a :class:`~repro.serve.queues.
AdmissionController` and, per tenant, a :class:`~repro.serve.monitor.
TenantMonitor` drained by a dedicated asyncio consumer task.  The
consumer assembles rounds by awaiting each category shard **in sorted
category order** — round alignment is implied by per-shard FIFO order
plus round-atomic admission, so no reassembly buffer is needed — and
folds them into the monitor, raising leakage and drift alarms through the
callbacks the embedding application registers.

Crash safety follows the exactly-once discipline of the parallel
executor's supervisor: a fetched round is parked in an in-flight slot
before ingestion and cleared only after the monitor accepted it.  When a
consumer task dies mid-ingest the supervising wrapper restarts it (up to
``max_consumer_restarts`` times, counted in telemetry) and the restarted
consumer re-ingests the parked round before fetching new work — no round
is lost, none is double-counted, and the monitor's verdicts remain
bit-identical to an offline replay of the admitted sequence.

Shutdown (:meth:`MonitorDaemon.stop`) drains every shard, cancels the
consumers and — when ``state_dir`` is configured — checkpoints each
tenant's monitor state through the atomic-write discipline of
:mod:`repro.atomicio`, so a daemon killed between rounds resumes without
re-observing anything.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..atomicio import atomic_write_bytes
from ..errors import EvaluationError
from ..obs import runtime as obs
from .config import ServeConfig
from .monitor import MeasurementRound, RoundOutcome, TenantMonitor
from .queues import AdmissionController, RoundShard, TenantFailure

__all__ = ["MonitorDaemon", "TenantFailure"]


class MonitorDaemon:
    """Multi-tenant streaming leakage monitor.

    Args:
        config: Daemon configuration.
        on_outcome: Optional callback receiving every
            :class:`~repro.serve.monitor.RoundOutcome` (alarms included);
            invoked on the event loop, so it must be fast and non-blocking.
        ingest_fault: Test-only fault hook called as ``(tenant,
            round_index)`` after a round is fetched but before it is
            ingested; raising from it simulates a consumer crash at the
            worst possible moment (the same role
            :class:`~repro.resilience.faults.FlakyBackend` plays for
            measurement acquisition).
    """

    def __init__(self, config: ServeConfig,
                 on_outcome: Optional[Callable[[RoundOutcome], None]] = None,
                 ingest_fault: Optional[Callable[[str, int], None]] = None):
        self.config = config
        self.admission = AdmissionController(config)
        self.monitors: Dict[str, TenantMonitor] = {}
        self.restarts: Dict[str, int] = {}
        self.failed: Dict[str, BaseException] = {}
        self._on_outcome = on_outcome
        self._ingest_fault = ingest_fault
        self._inflight: Dict[str, Optional[MeasurementRound]] = {}
        self._tasks: List[asyncio.Task] = []
        self._started = False
        self._stopped = False
        state_dir = Path(config.state_dir) if config.state_dir else None
        for spec in config.tenants:
            monitor = None
            if state_dir is not None:
                monitor = self._load_checkpoint(state_dir, spec.tenant)
            self.monitors[spec.tenant] = (
                monitor if monitor is not None
                else TenantMonitor(spec, config))
            self.restarts[spec.tenant] = 0
            self._inflight[spec.tenant] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn one supervised consumer task per tenant."""
        if self._started:
            raise EvaluationError("daemon already started")
        self._started = True
        for spec in self.config.tenants:
            task = asyncio.get_running_loop().create_task(
                self._supervise(spec.tenant),
                name=f"serve-consumer-{spec.tenant}")
            self._tasks.append(task)
        obs.inc("serve.started")

    async def drain(self) -> None:
        """Wait until every live tenant's admitted rounds are ingested.

        Failed tenants never block the drain: their consumers are gone,
        so their shards would never join — a tenant that is already dead
        is skipped, and one dying mid-drain releases the wait the moment
        its failure event fires.
        """
        await asyncio.gather(*(self._drain_tenant(spec.tenant)
                               for spec in self.config.tenants))

    async def _drain_tenant(self, tenant: str) -> None:
        join = asyncio.gather(
            *(queue.join()
              for queue in self.admission.shards(tenant).values()))
        dead = asyncio.get_running_loop().create_task(
            self.admission.failure_event(tenant).wait())
        try:
            await asyncio.wait({join, dead},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in (join, dead):
                task.cancel()
            await asyncio.gather(join, dead, return_exceptions=True)

    async def stop(self, drain: bool = True) -> Dict[str, Dict[str, object]]:
        """Drain (optionally), cancel consumers, checkpoint, summarize."""
        if drain:
            await self.drain()
        self._stopped = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, TenantFailure):
                pass
        self._tasks.clear()
        if self.config.state_dir:
            self._checkpoint_all(Path(self.config.state_dir))
        obs.inc("serve.stopped")
        return self.summary()

    # ------------------------------------------------------------------
    # Producer API
    # ------------------------------------------------------------------

    async def submit_round(self, round_: MeasurementRound) -> bool:
        """Admit one producer round (see :meth:`AdmissionController.submit`).

        Raises:
            TenantFailure: The target tenant's consumer is dead.
        """
        if round_.tenant in self.failed:
            raise TenantFailure(
                f"tenant {round_.tenant!r} failed: "
                f"{self.failed[round_.tenant]}")
        admitted = await self.admission.submit(round_)
        if admitted:
            obs.inc("serve.rounds", tenant=round_.tenant)
        return admitted

    # ------------------------------------------------------------------
    # Consumer internals
    # ------------------------------------------------------------------

    async def _supervise(self, tenant: str) -> None:
        """Run the consumer, restarting it on crashes (bounded budget)."""
        while True:
            try:
                await self._consume(tenant)
            except asyncio.CancelledError:
                raise
            except BaseException as exc:
                self.restarts[tenant] += 1
                obs.inc("serve.consumer_restart", tenant=tenant)
                if self.restarts[tenant] > self.config.max_consumer_restarts:
                    self.failed[tenant] = exc
                    # Wake producers blocked on this tenant's full shards
                    # (and any drain waiting on them) — nothing will ever
                    # consume those queues again.
                    self.admission.fail_tenant(tenant)
                    obs.inc("serve.tenant_failed", tenant=tenant)
                    raise TenantFailure(
                        f"tenant {tenant!r} consumer exceeded "
                        f"{self.config.max_consumer_restarts} restarts"
                    ) from exc

    async def _consume(self, tenant: str) -> None:
        """Fetch rounds and fold them into the tenant's monitor, forever."""
        monitor = self.monitors[tenant]
        shards = self.admission.shards(tenant)
        categories = sorted(shards)
        while True:
            round_ = self._inflight[tenant]
            if round_ is None:
                round_ = await self._fetch_round(tenant, shards, categories)
                # Parked before ingestion: a crash from here on loses
                # nothing — the restarted consumer re-ingests this round.
                self._inflight[tenant] = round_
            if self._ingest_fault is not None:
                self._ingest_fault(tenant, round_.index)
            started = time.monotonic()
            outcome = monitor.ingest_round(round_)
            self._inflight[tenant] = None
            for category in categories:
                shards[category].task_done()
            self.admission.on_round_consumed(tenant, round_.nbytes())
            self._record(tenant, round_, outcome, started)

    async def _fetch_round(self, tenant: str,
                           shards: Dict[int, "asyncio.Queue[RoundShard]"],
                           categories: List[int]) -> MeasurementRound:
        """Assemble the next round from the category shards (FIFO-aligned)."""
        batches: Dict[int, np.ndarray] = {}
        index: Optional[int] = None
        submitted_at = 0.0
        for category in categories:
            shard = await shards[category].get()
            if index is None:
                index = shard.round_index
                submitted_at = shard.submitted_at
            elif shard.round_index != index:
                # Round-atomic admission makes this unreachable; check it
                # anyway — a desync here corrupts every later verdict.
                raise EvaluationError(
                    f"shard desync for tenant {tenant!r}: category "
                    f"{category} yielded round {shard.round_index}, "
                    f"expected {index}")
            batches[category] = shard.rows
        return MeasurementRound(tenant=tenant, index=int(index or 0),
                                batches=batches, submitted_at=submitted_at)

    def _record(self, tenant: str, round_: MeasurementRound,
                outcome: RoundOutcome, started: float) -> None:
        now = time.monotonic()
        obs.observe("serve.ingest_ns", (now - started) * 1e9, tenant=tenant)
        if round_.submitted_at:
            obs.observe("serve.round_latency_ms",
                        (now - round_.submitted_at) * 1e3, tenant=tenant)
        if outcome.alarmed and round_.submitted_at:
            obs.observe("serve.alarm_lag_ms",
                        (now - round_.submitted_at) * 1e3, tenant=tenant)
        if outcome.drift_alarms:
            obs.inc("serve.drift_alarms", len(outcome.drift_alarms),
                    tenant=tenant)
        if self._on_outcome is not None:
            self._on_outcome(outcome)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    @staticmethod
    def _checkpoint_path(state_dir: Path, tenant: str) -> Path:
        return state_dir / f"tenant-{tenant}.npz"

    def _checkpoint_all(self, state_dir: Path) -> None:
        state_dir.mkdir(parents=True, exist_ok=True)
        for tenant, monitor in self.monitors.items():
            if monitor.evaluator.events is None:
                continue  # never observed anything; nothing to persist
            arrays = monitor.state()
            atomic_write_bytes(
                self._checkpoint_path(state_dir, tenant),
                lambda stream, arrays=arrays: np.savez(stream, **arrays))
            obs.inc("serve.checkpoints", tenant=tenant)

    def _load_checkpoint(self, state_dir: Path,
                         tenant: str) -> Optional[TenantMonitor]:
        path = self._checkpoint_path(state_dir, tenant)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                arrays = {key: data[key] for key in data.files}
            monitor = TenantMonitor.from_state(
                arrays, self.config.spec(tenant), self.config)
        except Exception:
            obs.inc("serve.checkpoint_corrupt", tenant=tenant)
            return None
        obs.inc("serve.resumed", tenant=tenant)
        return monitor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant status rows plus daemon-level accounting."""
        out: Dict[str, Dict[str, object]] = {}
        for tenant, monitor in self.monitors.items():
            row = monitor.summary()
            row["admitted"] = self.admission.admitted[tenant]
            row["rejected"] = self.admission.rejected[tenant]
            row["restarts"] = self.restarts[tenant]
            row["failed"] = tenant in self.failed
            out[tenant] = row
        return out
