"""Sharded admission queues: bounded memory between producers and monitors.

Measurement producers are decoupled from evaluation by per-(tenant,
category) FIFO shards — ``asyncio.Queue`` instances bounded at
``queue_capacity`` rounds each, so the daemon's buffered-row memory has a
hard configuration-time ceiling no matter how fast producers run.

Admission is **round-atomic**: a round either lands one batch on *every*
category shard of its tenant or touches none of them.  This invariant is
what keeps per-category sample counts aligned — a half-admitted round
would desynchronize the accumulator columns and silently corrupt every
verdict after it.  Two mechanisms enforce it:

* a per-tenant submission lock, so concurrent producers cannot interleave
  their per-category puts (under ``block`` admission a producer may
  suspend mid-round; without the lock another producer's batches could
  slot between its categories and pair up into mixed rounds downstream);
* under ``reject`` admission, fullness of all shards is checked before
  any put and the puts themselves are non-blocking — no awaits between
  check and commit, so the check cannot go stale.
"""

from __future__ import annotations

import asyncio
from typing import Dict

import numpy as np

from ..errors import EvaluationError
from ..obs import runtime as obs
from .config import ServeConfig
from .monitor import MeasurementRound

__all__ = ["AdmissionController", "RoundShard", "TenantFailure"]


class TenantFailure(EvaluationError):
    """A tenant's consumer is dead (restart budget exhausted).

    Raised by the daemon's producer API for new submissions to a failed
    tenant, and by :meth:`AdmissionController.submit` to wake producers
    that were already blocked on a full shard when the tenant died.
    """


class RoundShard:
    """One (round_index, rows) entry on a category shard."""

    __slots__ = ("round_index", "submitted_at", "rows")

    def __init__(self, round_index: int, submitted_at: float,
                 rows: np.ndarray):
        self.round_index = round_index
        self.submitted_at = submitted_at
        self.rows = rows


class AdmissionController:
    """Bounded, round-atomic admission into per-(tenant, category) shards.

    Args:
        config: Daemon configuration (tenants, capacity, policy).
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self._shards: Dict[str, Dict[int, "asyncio.Queue[RoundShard]"]] = {}
        self._locks: Dict[str, asyncio.Lock] = {}
        self._peak_bytes = 0
        self._buffered_bytes: Dict[str, int] = {}
        self.admitted: Dict[str, int] = {}
        self.rejected: Dict[str, int] = {}
        self._failures: Dict[str, asyncio.Event] = {}
        for spec in config.tenants:
            self._shards[spec.tenant] = {
                category: asyncio.Queue(maxsize=config.queue_capacity)
                for category in sorted(spec.categories)}
            self._locks[spec.tenant] = asyncio.Lock()
            self._failures[spec.tenant] = asyncio.Event()
            self._buffered_bytes[spec.tenant] = 0
            self.admitted[spec.tenant] = 0
            self.rejected[spec.tenant] = 0

    def shards(self, tenant: str) -> Dict[int, "asyncio.Queue[RoundShard]"]:
        """The category shards of ``tenant`` (sorted-key dict)."""
        try:
            return self._shards[tenant]
        except KeyError:
            raise EvaluationError(f"unknown tenant {tenant!r}") from None

    async def submit(self, round_: MeasurementRound) -> bool:
        """Admit one round (all category shards) or reject it whole.

        Returns:
            True when admitted.  Under ``block`` admission this awaits
            shard space and always returns True; under ``reject`` a round
            facing any full shard is dropped in O(1) and False returned.

        Raises:
            TenantFailure: The tenant died — before this submission, or
                while it was blocked on a full shard (:meth:`fail_tenant`
                wakes the blocked producer instead of leaving it awaiting
                a consumer that will never drain).  A round interrupted
                mid-commit may leave batches on some shards; that is
                harmless, because a failed tenant's shards are never
                consumed again.
        """
        shards = self.shards(round_.tenant)
        missing = set(shards) - set(round_.batches)
        if missing:
            raise EvaluationError(
                f"round {round_.index} for tenant {round_.tenant!r} is "
                f"missing categories {sorted(missing)}")
        failed = self._failures[round_.tenant]
        async with self._locks[round_.tenant]:
            if failed.is_set():
                raise TenantFailure(
                    f"tenant {round_.tenant!r} failed; round "
                    f"{round_.index} not admitted")
            if self.config.admission == "reject":
                # Fullness check and puts with no awaits in between: the
                # whole round commits against one consistent snapshot.
                if any(queue.full() for queue in shards.values()):
                    self.rejected[round_.tenant] += 1
                    obs.inc("serve.rejected_rounds", tenant=round_.tenant)
                    return False
                for category in sorted(shards):
                    shards[category].put_nowait(RoundShard(
                        round_.index, round_.submitted_at,
                        round_.batches[category]))
            else:
                for category in sorted(shards):
                    await shards[category].put(RoundShard(
                        round_.index, round_.submitted_at,
                        round_.batches[category]))
                    # A put that was blocked when the tenant died is
                    # woken by fail_tenant's shard flush (the freed slot
                    # completes it); this check turns that wake-up — and
                    # a failure racing a non-blocked round — into the
                    # failure the producer must see.
                    if failed.is_set():
                        raise TenantFailure(
                            f"tenant {round_.tenant!r} failed while "
                            f"round {round_.index} was being admitted")
            self.admitted[round_.tenant] += 1
            self._buffered_bytes[round_.tenant] += round_.nbytes()
            self._note_depth(round_.tenant, shards)
        return True

    def fail_tenant(self, tenant: str) -> None:
        """Mark ``tenant`` dead: wake its blocked producer for good.

        Flushing the dead tenant's shards frees the slot any blocked put
        is waiting on (the per-tenant lock admits at most one in-flight
        submit, so one flush wakes it); the put then completes and its
        :meth:`submit` raises :class:`TenantFailure` on the post-put
        failure check, as does every later submit at the pre-check.
        Idempotent; the flushed rounds were destined for a consumer that
        no longer exists.
        """
        self._failures[tenant].set()
        for queue in self.shards(tenant).values():
            while True:
                try:
                    queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
        self._buffered_bytes[tenant] = 0
        self._note_depth(tenant, self.shards(tenant))

    def failure_event(self, tenant: str) -> asyncio.Event:
        """The failure event of ``tenant`` (set once the consumer died)."""
        try:
            return self._failures[tenant]
        except KeyError:
            raise EvaluationError(f"unknown tenant {tenant!r}") from None

    def on_round_consumed(self, tenant: str, nbytes: int) -> None:
        """Consumer callback: a fetched round left the buffer."""
        self._buffered_bytes[tenant] = max(
            0, self._buffered_bytes[tenant] - nbytes)
        self._note_depth(tenant, self.shards(tenant))

    def _note_depth(self, tenant: str,
                    shards: Dict[int, "asyncio.Queue[RoundShard]"]) -> None:
        depth = max(queue.qsize() for queue in shards.values())
        obs.set_gauge("serve.queue_depth", depth, tenant=tenant)
        total = sum(self._buffered_bytes.values())
        if total > self._peak_bytes:
            self._peak_bytes = total
        obs.set_gauge("serve.queue_bytes", total)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def peak_buffered_bytes(self) -> int:
        """High-water mark of buffered row bytes across all tenants."""
        return self._peak_bytes

    def buffered_bytes(self, tenant: str) -> int:
        """Row bytes currently buffered for ``tenant``."""
        return self._buffered_bytes[tenant]

    def depth(self, tenant: str) -> int:
        """Deepest category shard of ``tenant`` (rounds)."""
        return max(q.qsize() for q in self.shards(tenant).values())

    def capacity_bytes(self, batch_size: int) -> int:
        """Configuration-time ceiling on buffered row bytes."""
        total = 0
        for spec in self.config.tenants:
            total += (len(spec.categories) * self.config.queue_capacity
                      * batch_size * len(spec.events) * 8)
        return total

    def pending(self, tenant: str) -> int:
        """Rounds admitted but not yet fully consumed for ``tenant``."""
        return max(q.qsize() for q in self.shards(tenant).values())
