"""Supervised execution of parallel measurement chunks.

A plain ``multiprocessing.Pool`` gives the measurement executor nothing to
work with when a worker dies: the parent either hangs or surfaces a bare
pool traceback, and every chunk the dead worker held is silently lost.
This module supervises the pool instead:

* dead workers (OOM kill, segfault, ``SIGKILL``) break the pool; the
  supervisor rebuilds it and resubmits exactly the chunks that never
  reported a result — completed chunks are never re-measured, so no
  ``(category, index)`` is lost or duplicated;
* poisoned chunks (a task that raises) are retried a bounded number of
  times, then recorded;
* when either budget is exhausted, the supervisor raises a
  :class:`repro.errors.MeasurementError` carrying structured per-chunk
  diagnostics instead of a bare traceback.

Built on :class:`concurrent.futures.ProcessPoolExecutor`, whose broken-pool
detection is exactly the dead-worker signal ``multiprocessing.Pool`` lacks.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import MeasurementError
from ..obs import runtime as obs

__all__ = ["ChunkDiagnostic", "ChunkSupervisor"]


@dataclass(frozen=True)
class ChunkDiagnostic:
    """What happened to one failed chunk.

    Attributes:
        category: Chunk's category.
        start: First sample index (inclusive).
        stop: Last sample index (exclusive).
        attempts: Task attempts consumed (resubmissions after worker death
            do not count — the chunk never ran to a verdict).
        error: Message of the last failure.
    """

    category: int
    start: int
    stop: int
    attempts: int
    error: str

    def format(self) -> str:
        """One-line human-readable diagnosis of the chunk failure."""
        return (f"chunk (category={self.category}, samples "
                f"[{self.start}, {self.stop})): {self.error} "
                f"(after {self.attempts} attempt(s))")


class ChunkSupervisor:
    """Runs chunk tasks across worker processes with failure containment.

    Args:
        context: Multiprocessing context (see
            :func:`repro.parallel.resolve_context`).
        workers: Worker-process count.
        initializer: Per-worker initializer (the executor's
            ``_init_worker``).
        initargs: Initializer arguments.
        max_restarts: Pool rebuilds tolerated after worker deaths before
            giving up on the chunks still pending.
        max_chunk_retries: Re-submissions allowed per chunk whose task
            *raised* (total attempts per chunk = ``1 + max_chunk_retries``).
    """

    def __init__(self, context, workers: int,
                 initializer: Optional[Callable] = None,
                 initargs: Tuple = (),
                 max_restarts: int = 3,
                 max_chunk_retries: int = 2):
        if workers < 1:
            raise MeasurementError(f"workers must be >= 1, got {workers}")
        if max_restarts < 0 or max_chunk_retries < 0:
            raise MeasurementError(
                "max_restarts and max_chunk_retries must be >= 0")
        self.context = context
        self.workers = workers
        self.initializer = initializer
        self.initargs = initargs
        self.max_restarts = max_restarts
        self.max_chunk_retries = max_chunk_retries

    def run(self, task: Callable, chunks: Sequence,
            observer=None) -> Dict[Tuple[int, int], object]:
        """Execute ``task(chunk)`` for every chunk; return results by key.

        Args:
            task: Callable run on each chunk inside a worker.
            chunks: Chunk specs (``category``/``start``/``stop`` fields).
            observer: Optional progress observer (duck-typed, e.g.
                :class:`repro.obs.progress.ProgressReporter`) receiving
                ``chunk_done(category, samples)``,
                ``chunk_failed(category, error)``,
                ``chunk_lost(category)`` and ``pool_restart()`` callbacks
                as chunks resolve.

        Returns:
            ``{(chunk.category, chunk.start): task result}`` with exactly
            one entry per submitted chunk.

        Raises:
            MeasurementError: When any chunk exhausted its retries or the
                pool broke more than ``max_restarts`` times; the error's
                ``diagnostics`` list one :class:`ChunkDiagnostic` per
                unfinished chunk.
        """
        completed: Dict[Tuple[int, int], object] = {}
        attempts: Dict[Tuple[int, int], int] = {}
        failed: List[ChunkDiagnostic] = []
        pending = list(chunks)
        restarts = 0
        while pending:
            resubmit: List = []
            broke = False
            with ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=self.context,
                    initializer=self.initializer,
                    initargs=self.initargs) as pool:
                futures = {pool.submit(task, spec): spec for spec in pending}
                for future in as_completed(futures):
                    spec = futures[future]
                    key = (spec.category, spec.start)
                    try:
                        completed[key] = future.result()
                        if observer is not None:
                            observer.chunk_done(spec.category,
                                                spec.stop - spec.start)
                    except BrokenProcessPool:
                        # The chunk never ran to a verdict — a worker died
                        # under it (or it was queued behind the death).
                        broke = True
                        resubmit.append(spec)
                        obs.inc("supervisor.chunk_lost",
                                category=spec.category)
                        if observer is not None:
                            observer.chunk_lost(spec.category)
                    except Exception as exc:
                        used = attempts.get(key, 0) + 1
                        attempts[key] = used
                        obs.inc("supervisor.chunk_error",
                                category=spec.category,
                                error=type(exc).__name__)
                        if observer is not None:
                            observer.chunk_failed(spec.category, error=exc)
                        if used <= self.max_chunk_retries:
                            resubmit.append(spec)
                        else:
                            failed.append(ChunkDiagnostic(
                                spec.category, spec.start, spec.stop,
                                attempts=used, error=str(exc)))
            if broke:
                restarts += 1
                obs.inc("supervisor.restart")
                if observer is not None:
                    observer.pool_restart()
                if restarts > self.max_restarts:
                    failed.extend(ChunkDiagnostic(
                        spec.category, spec.start, spec.stop,
                        attempts=attempts.get((spec.category, spec.start), 0),
                        error="worker died and the pool-restart budget "
                              f"({self.max_restarts}) is exhausted")
                        for spec in resubmit)
                    resubmit = []
            pending = resubmit
        if failed:
            raise MeasurementError(
                f"{len(failed)} measurement chunk(s) could not be "
                "completed:\n  "
                + "\n  ".join(diag.format() for diag in failed),
                diagnostics=failed,
            )
        return completed
