"""Retry policies for flaky measurement backends.

Real ``perf stat`` acquisitions fail transiently all the time: counter
multiplexing starves an event group, ``perf_event_paranoid`` flips under
the evaluator's feet, a scheduler stall pushes the measured subprocess past
its timeout.  Related hardware-measurement work (CSI-NN, arXiv:1810.09076;
Shukla et al., arXiv:2208.01113) simply repeats and discards bad
acquisitions; :class:`RetryPolicy` builds that into the pipeline.

Retries are only sound because measurements are *idempotent*: a readout is
a pure function of its ``(category, index)`` identity (the sim backend's
per-sample noise keys) or an independent draw from the same physical
distribution (real ``perf``).  Re-running a failed attempt therefore never
skews the collected distributions — it only fills the hole the failure
left.

Backoff delays are deterministic: the jitter is derived by hashing
``(seed, category, index, attempt)``, so two runs of the same failing
schedule sleep identically — no wall-clock or global RNG state leaks into
the measurement path.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

from ..errors import BackendError, ConfigError
from ..obs import runtime as obs

__all__ = ["RetryPolicy", "NO_RETRY"]

#: Key used for jitter derivation when the caller has no measurement key.
_DEFAULT_KEY = (-1, -1)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Args:
        max_attempts: Total tries per operation (1 = no retry).
        backoff_base: Delay before the second attempt, in seconds.
        backoff_factor: Multiplier applied per further attempt.
        max_backoff: Ceiling on any single delay.
        jitter: Fractional jitter; each delay is scaled by a factor drawn
            deterministically from ``[1 - jitter, 1 + jitter]``.
        seed: Seed of the jitter hash (so schedules are reproducible).
        retryable: Exception types worth retrying.  Defaults to
            :class:`repro.errors.BackendError` — the base of every
            acquisition failure, including
            :class:`~repro.errors.PerfUnavailableError`.
        sleep: Injectable sleep function (tests pass a recorder).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retryable: Tuple[Type[BaseException], ...] = (BackendError,)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.max_backoff < 0:
            raise ConfigError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")

    # ------------------------------------------------------------------
    # Schedule
    # ------------------------------------------------------------------

    def delay(self, key: Optional[Tuple[int, int]], attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based).

        The jitter factor is a pure function of ``(seed, key, attempt)``,
        so the full backoff schedule of any measurement is reproducible.
        """
        category, index = key if key is not None else _DEFAULT_KEY
        base = min(self.max_backoff,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))
        if base <= 0 or self.jitter == 0:
            return max(0.0, base)
        digest = hashlib.sha256(
            f"{self.seed}:{category}:{index}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "little") / 2 ** 64  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def call(self, operation: Callable[[], object],
             key: Optional[Tuple[int, int]] = None,
             label: str = "measure"):
        """Run ``operation`` under this policy; return its result.

        Retryable failures are counted (``retry.attempt``) and retried
        after :meth:`delay`; the last failure is re-raised unchanged once
        the budget is exhausted (``retry.exhausted``), so callers see the
        original exception type.

        Args:
            operation: Zero-argument callable to (re-)execute.
            key: ``(category, index)`` identity of the measurement —
                feeds the deterministic jitter and the telemetry labels.
            label: Short operation name for telemetry.
        """
        for attempt in range(1, self.max_attempts + 1):
            try:
                return operation()
            except self.retryable as exc:
                obs.inc("retry.attempt", op=label,
                        error=type(exc).__name__)
                if attempt >= self.max_attempts:
                    obs.inc("retry.exhausted", op=label)
                    raise
                pause = self.delay(key, attempt)
                if pause > 0:
                    self.sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover

    def call_until(self, probe: Callable[[], bool],
                   key: Optional[Tuple[int, int]] = None,
                   label: str = "probe") -> bool:
        """Repeat a boolean probe until it succeeds or attempts run out.

        Unlike :meth:`call` this treats a falsy *return value* as the
        transient failure — the shape of :func:`repro.hpc.perf_available`,
        which reports problems as ``False`` rather than raising.
        """
        for attempt in range(1, self.max_attempts + 1):
            if probe():
                return True
            obs.inc("retry.attempt", op=label, error="probe-false")
            if attempt >= self.max_attempts:
                obs.inc("retry.exhausted", op=label)
                return False
            pause = self.delay(key, attempt)
            if pause > 0:
                self.sleep(pause)
        return False  # pragma: no cover


#: Single-attempt policy: the "retries disabled" sentinel.
NO_RETRY = RetryPolicy(max_attempts=1)
