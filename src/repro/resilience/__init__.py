"""Fault tolerance for the measurement pipeline.

Real hosts are hostile to ``perf stat``: counters multiplex, paranoid
levels flip mid-run, measured subprocesses stall past their timeouts and
worker processes get killed.  This package makes the Evaluator survive all
of it:

* :mod:`~repro.resilience.retry` — bounded, deterministically-jittered
  retry of individual acquisitions;
* :mod:`~repro.resilience.faults` — a reproducible fault-injection harness
  (every failure mode scriptable at exact measurement keys) so the
  resilience machinery itself is testable;
* :mod:`~repro.resilience.supervisor` — worker supervision for the
  parallel executor: dead workers are detected, their lost chunks
  resubmitted, and exhaustion surfaces structured per-chunk diagnostics;
* :mod:`~repro.resilience.shutdown` — SIGTERM/SIGINT trapped into a
  cooperative stop flag so streaming runs flush their checkpoint and exit
  at a round boundary instead of dying mid-write.

Because every measurement is a pure function of its ``(category, index)``
key, recovery never changes results: a run that limped through timeouts,
garbage readouts and worker deaths produces bit-identical distributions to
a clean run.
"""

from .faults import FaultKind, FaultPlan, FaultSpec, FlakyBackend
from .retry import NO_RETRY, RetryPolicy
from .shutdown import GracefulShutdown
from .supervisor import ChunkDiagnostic, ChunkSupervisor

__all__ = [
    "ChunkDiagnostic",
    "ChunkSupervisor",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FlakyBackend",
    "GracefulShutdown",
    "NO_RETRY",
    "RetryPolicy",
]
